#!/usr/bin/env python
"""Quickstart: cooperative caching on a DTN contact trace in ~30 lines.

Loads a synthetic stand-in for the MIT Reality trace, runs the paper's
intentional NCL caching scheme against the NoCache baseline under the
paper's workload, and prints the three headline metrics.

Run:
    python examples/quickstart.py
"""

from repro import (
    IntentionalCaching,
    IntentionalConfig,
    NoCache,
    Simulator,
    SimulatorConfig,
    WorkloadConfig,
    load_preset_trace,
)
from repro.units import HOUR, MEGABIT, WEEK


def main() -> None:
    # A reduced-scale MIT-Reality-like trace (full node count, ~2 months).
    trace = load_preset_trace("mit_reality", seed=1, node_factor=1.0, time_factor=0.25)
    print(f"trace: {trace}")

    workload = WorkloadConfig(
        mean_data_lifetime=1 * WEEK,     # T_L
        mean_data_size=100 * MEGABIT,    # s_avg
    )

    schemes = {
        "intentional (paper)": IntentionalCaching(
            IntentionalConfig(num_ncls=8, ncl_time_budget=1 * WEEK)
        ),
        "nocache (baseline)": NoCache(),
    }

    print(f"{'scheme':22s} {'ratio':>7s} {'delay':>9s} {'copies/item':>12s}")
    for label, scheme in schemes.items():
        result = Simulator(trace, scheme, workload, SimulatorConfig(seed=7)).run()
        delay_h = result.mean_access_delay / HOUR
        print(
            f"{label:22s} {result.successful_ratio:7.3f} "
            f"{delay_h:8.1f}h {result.caching_overhead:12.2f}"
        )


if __name__ == "__main__":
    main()
