#!/usr/bin/env python
"""Scenario: live traffic information in a vehicular ad-hoc network.

The paper's second motivating application: "the availability of live
traffic information about specific road segments will be beneficial for
nearby vehicles to avoid traffic delays" (Sec. I).  Vehicles meet at
intersections and along arterials — a contact process with strong hubs
(taxis, buses circulating all day) and very short data lifetimes (a
congestion report is stale within the hour).

This example builds a custom synthetic vehicular trace directly through
:class:`SyntheticTraceConfig` (no CRAWDAD preset), runs all five schemes,
and sweeps the number of NCLs to pick a deployment operating point.

Run:
    python examples/vanet_traffic_info.py
"""

from repro import (
    BundleCache,
    CacheData,
    IntentionalCaching,
    IntentionalConfig,
    NoCache,
    RandomCache,
    Simulator,
    SimulatorConfig,
    SyntheticTraceConfig,
    WorkloadConfig,
    generate_synthetic_trace,
)
from repro.units import DAY, HOUR, MEGABIT, MINUTE


def build_vehicular_trace():
    """A city fleet: 80 vehicles over 4 days, dense contacts, short stops.

    Buses/taxis act as hubs (heavy-tailed activity), and 6 districts give
    the community structure road networks induce.
    """
    config = SyntheticTraceConfig(
        name="vanet-city",
        num_nodes=80,
        duration=4 * DAY,
        total_contacts=90_000,
        granularity=10.0,                 # DSRC beacons are fast
        mean_contact_duration=2 * MINUTE,  # a traffic-light stop
        activity_sigma=1.2,
        num_communities=6,
        community_bias=10.0,
        seed=42,
    )
    return generate_synthetic_trace(config)


def main() -> None:
    trace = build_vehicular_trace()
    print(f"vehicular trace: {trace}")

    workload = WorkloadConfig(
        mean_data_lifetime=1 * HOUR,    # congestion reports go stale fast
        mean_data_size=5 * MEGABIT,     # a road-segment report with imagery
        zipf_exponent=1.0,              # some segments are far hotter
    )

    ncl_budget = 30 * MINUTE  # reports must travel within half an hour

    print(f"\n{'scheme':14s} {'ratio':>7s} {'delay':>10s} {'copies/item':>12s}")
    schemes = {
        "intentional": lambda: IntentionalCaching(
            IntentionalConfig(num_ncls=6, ncl_time_budget=ncl_budget)
        ),
        "nocache": NoCache,
        "randomcache": RandomCache,
        "cachedata": CacheData,
        "bundlecache": BundleCache,
    }
    for label, factory in schemes.items():
        result = Simulator(trace, factory(), workload, SimulatorConfig(seed=7)).run()
        print(
            f"{label:14s} {result.successful_ratio:7.3f} "
            f"{result.mean_access_delay / MINUTE:9.1f}m {result.caching_overhead:12.2f}"
        )

    print("\nPicking K (roadside-unit placement budget):")
    print(f"{'K':>3s} {'ratio':>7s} {'delay':>10s} {'copies/item':>12s}")
    for k in (1, 2, 4, 6, 10):
        scheme = IntentionalCaching(
            IntentionalConfig(num_ncls=k, ncl_time_budget=ncl_budget)
        )
        result = Simulator(trace, scheme, workload, SimulatorConfig(seed=7)).run()
        print(
            f"{k:3d} {result.successful_ratio:7.3f} "
            f"{result.mean_access_delay / MINUTE:9.1f}m {result.caching_overhead:12.2f}"
        )


if __name__ == "__main__":
    main()
