#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation.

Runs the full experiment harness (Table I, Figs. 4, 9-13) and writes
rendered tables, ASCII charts, and CSVs under ``results/``.  The numbers
recorded in EXPERIMENTS.md come from this script at ``--scale paper``.

Run:
    python examples/run_paper_experiments.py --scale bench   # minutes
    python examples/run_paper_experiments.py --scale paper   # ~an hour
"""

import argparse
import time
from pathlib import Path

from repro.experiments.configs import BENCH_SCALE, PAPER_SCALE, SMOKE_SCALE
from repro.experiments.figures import (
    fig4,
    fig7,
    fig9a,
    fig9b,
    fig10,
    fig11,
    fig12,
    fig13,
    table1,
)
from repro.experiments.report import (
    render_figure,
    render_markdown,
    render_table,
    results_to_csv,
    table_to_csv,
    table_to_markdown,
)

SCALES = {"smoke": SMOKE_SCALE, "bench": BENCH_SCALE, "paper": PAPER_SCALE}


def save_figure(outdir: Path, figures, stem: str, report: list) -> None:
    if not isinstance(figures, dict):
        figures = {"": figures}
    for suffix, figure in figures.items():
        name = f"{stem}{suffix}"
        (outdir / f"{name}.txt").write_text(render_figure(figure, chart=True))
        (outdir / f"{name}.csv").write_text(results_to_csv(figure))
        report.append(render_markdown(figure))
        print(render_figure(figure, chart=False))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="bench")
    parser.add_argument("--outdir", default="results")
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help="subset of experiments, e.g. --only table1 fig10",
    )
    args = parser.parse_args()
    scale = SCALES[args.scale]
    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)

    experiments = {
        "table1": lambda: table1(scale),
        "fig4": lambda: fig4(scale),
        "fig7": lambda: fig7(),
        "fig9a": lambda: fig9a(scale),
        "fig9b": lambda: fig9b(),
        "fig10": lambda: fig10(scale),
        "fig11": lambda: fig11(scale),
        "fig12": lambda: fig12(scale),
        "fig13": lambda: fig13(scale),
    }
    selected = args.only or list(experiments)

    report: list = [f"# Reproduced results (scale: {scale.name})\n"]
    for name in selected:
        if name not in experiments:
            raise SystemExit(f"unknown experiment {name!r}; pick from {list(experiments)}")
        start = time.time()
        print(f"=== {name} (scale={scale.name}) ===")
        result = experiments[name]()
        if name == "table1":
            (outdir / "table1.txt").write_text(render_table(result))
            (outdir / "table1.csv").write_text(table_to_csv(result))
            report.append(table_to_markdown(result))
            print(render_table(result))
        else:
            save_figure(outdir, result, name, report)
        print(f"--- {name} done in {time.time() - start:.1f}s\n")
    (outdir / "REPORT.md").write_text("\n".join(report))
    print(f"combined markdown report: {outdir / 'REPORT.md'}")


if __name__ == "__main__":
    main()
