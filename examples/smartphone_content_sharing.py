#!/usr/bin/env python
"""Scenario: smartphone content sharing at a conference.

The paper's introduction motivates cooperative caching with smartphone
users finding "interesting digital content from their nearby peers".
This example models that setting on an Infocom06-like conference trace:
short-lived content (talks' slides, demos — 3 h lifetime), Bluetooth
links, and K = 5 NCLs (the paper's Fig. 13 sweet spot).

It then compares the three probabilistic response strategies of
Sec. V-C — the Eq. (4) sigmoid, the path-aware p_CR variant, and the
always-respond ablation — showing the accessibility/overhead trade-off
the paper optimises: always-respond emits the most data copies, the
sigmoid cuts copies while keeping the successful ratio close.

Run:
    python examples/smartphone_content_sharing.py
"""

from repro import (
    IntentionalCaching,
    IntentionalConfig,
    Simulator,
    SimulatorConfig,
    WorkloadConfig,
    load_preset_trace,
)
from repro.units import HOUR, MEGABIT


def main() -> None:
    trace = load_preset_trace("infocom06", seed=1, node_factor=1.0, time_factor=0.3)
    print(f"conference trace: {trace}")

    workload = WorkloadConfig(
        mean_data_lifetime=3 * HOUR,   # live conference content
        mean_data_size=50 * MEGABIT,   # slide decks / short clips
    )

    print(
        f"\n{'response strategy':20s} {'ratio':>7s} {'delay':>9s} "
        f"{'responses sent':>15s} {'delivered':>10s}"
    )
    for strategy in ("always", "sigmoid", "path_aware"):
        scheme = IntentionalCaching(
            IntentionalConfig(
                num_ncls=5,
                ncl_time_budget=1 * HOUR,
                response_strategy=strategy,
            )
        )
        result = Simulator(trace, scheme, workload, SimulatorConfig(seed=7)).run()
        print(
            f"{strategy:20s} {result.successful_ratio:7.3f} "
            f"{result.mean_access_delay / HOUR:8.2f}h "
            f"{result.responses_emitted:15d} {result.responses_delivered:10d}"
        )

    print(
        "\nThe sigmoid and path-aware strategies trim emitted data copies "
        "(each costs a ~50 Mb transfer) while keeping the successful ratio "
        "close to the always-respond ceiling — the Sec. V-C trade-off."
    )


if __name__ == "__main__":
    main()
