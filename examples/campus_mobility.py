#!/usr/bin/env python
"""Scenario: campus content sharing on a *mobility-derived* trace.

Where the other examples replay calibrated contact statistics, this one
generates contacts from first principles: a working-day mobility model
(students commuting between homes and shared lab buildings) is sampled
into a contact trace, the paper's exponential inter-contact assumption
is checked on that trace (Sec. III-B), and the caching schemes are then
compared on it.

Run:
    python examples/campus_mobility.py
"""

from repro import (
    BundleCache,
    IntentionalCaching,
    IntentionalConfig,
    NoCache,
    Simulator,
    SimulatorConfig,
    WorkloadConfig,
)
from repro.traces.analysis import exponential_fit_report
from repro.traces.mobility import WorkingDayModel, contacts_from_mobility
from repro.units import DAY, HOUR, MEGABIT


def main() -> None:
    # 40 students, 4 lab buildings, 10 simulated days.
    model = WorkingDayModel(
        num_nodes=40,
        area=(1500.0, 1500.0),
        num_offices=4,
        seed=11,
    )
    trace = contacts_from_mobility(
        model,
        duration=10 * DAY,
        radio_range=12.0,        # Bluetooth-class
        sample_period=300.0,     # 5-minute scans, like MIT Reality
        name="campus-wdm",
    )
    print(f"mobility-derived trace: {trace}")

    report = exponential_fit_report(trace, min_samples=5)
    print("exponential inter-contact fit (Sec. III-B check):")
    for key, value in report.as_row().items():
        print(f"  {key}: {value}")
    print(
        "  -> a strict daily schedule gives periodic (not exponential)\n"
        "     inter-contacts; the paper's Poisson model is an approximation\n"
        "     whose fit quality is exactly what this report quantifies."
    )

    workload = WorkloadConfig(
        mean_data_lifetime=1 * DAY,
        mean_data_size=30 * MEGABIT,
    )
    print(f"\n{'scheme':14s} {'ratio':>7s} {'delay':>9s} {'copies/item':>12s}")
    schemes = {
        "intentional": lambda: IntentionalCaching(
            IntentionalConfig(num_ncls=4, ncl_time_budget=12 * HOUR)
        ),
        "nocache": NoCache,
        "bundlecache": BundleCache,
    }
    for label, factory in schemes.items():
        result = Simulator(trace, factory(), workload, SimulatorConfig(seed=7)).run()
        print(
            f"{label:14s} {result.successful_ratio:7.3f} "
            f"{result.mean_access_delay / HOUR:8.1f}h {result.caching_overhead:12.2f}"
        )


if __name__ == "__main__":
    main()
