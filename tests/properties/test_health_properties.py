"""Property tests for the windowed-delta health contracts.

Two invariants back the live health monitor's design:

* **Delta consistency** — chopping a stream of collector events into
  arbitrary windows and summing each window's
  :meth:`CollectorTotals.delta` must reproduce the final totals
  bit-exactly, whatever the window boundaries (the foundation of
  :func:`repro.obs.health.check_health_consistency`).
* **Monotone sketch counts** — the O(1) ``view()`` probes of
  :class:`P2Quantile` and :class:`ReservoirSampler` report observation
  counts that never decrease and grow by exactly the number of
  observations between views, so windowed consumers can difference
  them safely.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.data import Query
from repro.metrics.collector import CollectorTotals, MetricsCollector
from repro.metrics.streaming import P2Quantile, ReservoirSampler
from repro.obs.health import HealthMonitor, check_health_consistency
from repro.obs.slo import SLORule

# One collector event: (kind, payload) applied in stream order.
_EVENTS = st.lists(
    st.sampled_from(["query", "deliver", "lookup_hit", "lookup_miss", "data"]),
    min_size=0,
    max_size=60,
)


def _apply_events(collector, kinds):
    """Drive the collector with a deterministic event stream; yields the
    collector after every event so callers can snapshot anywhere."""
    qid = 0
    open_queries = []
    for kind in kinds:
        if kind == "query":
            query = Query(
                query_id=qid, requester=0, data_id=qid, created_at=float(qid),
                time_constraint=1e9,
            )
            collector.on_query_created(query)
            open_queries.append(query)
            qid += 1
        elif kind == "deliver" and open_queries:
            query = open_queries.pop(0)
            collector.on_query_satisfied(query, query.created_at + 1.0)
        elif kind == "lookup_hit":
            collector.on_cache_lookup(True)
        elif kind == "lookup_miss":
            collector.on_cache_lookup(False)
        elif kind == "data":
            collector._data_generated += 1  # cheap stand-in for on_data_generated
        yield collector


@given(kinds=_EVENTS, cuts=st.sets(st.integers(min_value=0, max_value=60)))
@settings(max_examples=200, deadline=None)
def test_window_deltas_sum_to_totals(kinds, cuts):
    """Sum of per-window CollectorTotals deltas == final totals, for any
    choice of window boundaries over any event stream."""
    collector = MetricsCollector(streaming=True)
    views = [collector.totals()]
    for i, state in enumerate(_apply_events(collector, kinds)):
        if i in cuts:
            views.append(state.totals())
    views.append(collector.totals())
    deltas = [later.delta(earlier) for earlier, later in zip(views, views[1:])]
    summed = CollectorTotals(
        *(sum(delta[i] for delta in deltas) for i in range(len(CollectorTotals._fields)))
    )
    assert summed == collector.totals().delta(views[0])


@given(kinds=_EVENTS)
@settings(max_examples=100, deadline=None)
def test_totals_are_monotone_per_field(kinds):
    """Every CollectorTotals counter is non-decreasing in stream order."""
    collector = MetricsCollector(streaming=True)
    previous = collector.totals()
    for state in _apply_events(collector, kinds):
        current = state.totals()
        assert all(a >= b for a, b in zip(current, previous))
        previous = current


@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=0,
        max_size=120,
    ),
    q=st.sampled_from([0.5, 0.95, 0.99]),
)
@settings(max_examples=150, deadline=None)
def test_p2_view_counts_monotone_and_exact(values, q):
    """P2Quantile.view(): counts increase by exactly one per observation
    and the view's estimate equals the live property at capture time."""
    sketch = P2Quantile(q)
    last = sketch.view()
    assert last.count == 0
    for i, value in enumerate(values):
        sketch.observe(value)
        view = sketch.view()
        assert view.count == last.count + 1 == i + 1
        assert view.estimate == sketch.value or (
            np.isnan(view.estimate) and np.isnan(sketch.value)
        )
        last = view


@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=0,
        max_size=120,
    ),
    capacity=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=150, deadline=None)
def test_reservoir_view_counts_monotone_and_bounded(values, capacity, seed):
    """ReservoirSampler.view(): counts monotone by one per observation,
    held size equals min(count, capacity) for Algorithm R."""
    sampler = ReservoirSampler(capacity, np.random.default_rng(seed))
    last = sampler.view()
    for value in values:
        sampler.observe(value)
        view = sampler.view()
        assert view.count == last.count + 1
        assert view.held == min(view.count, capacity)
        last = view


@given(
    windows=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=30),   # issued
            st.integers(min_value=0, max_value=30),   # satisfied (capped below)
        ),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=100, deadline=None)
def test_monitor_snapshots_delta_consistent_for_any_schedule(windows):
    """HealthMonitor over a scripted metrics source: whatever the
    per-window activity, check_health_consistency accepts the stream
    and snapshot deltas reproduce the totals."""

    class FakeMetrics:
        def __init__(self):
            self.totals_value = CollectorTotals(0, 0, 0, 0, 0, 0, 0, 0)
            self.open = 0
            self.delay_p50 = float("nan")
            self.delay_p95 = float("nan")
            self.delay_p99 = float("nan")

        def totals(self):
            return self.totals_value

        @property
        def open_queries(self):
            return self.open

        def pending_queries(self, now):
            return self.open

    class FakeSimulator:
        def __init__(self):
            self.metrics = FakeMetrics()
            self.workload_process = type("WP", (), {"arrivals": None})()

        def ncl_load(self, now):
            return {}

    sim = FakeSimulator()
    monitor = HealthMonitor([SLORule("r", "backlog", "<=", 1e9)])
    monitor.attach(sim)
    for i, (issued, satisfied) in enumerate(windows):
        satisfied = min(satisfied, issued + sim.metrics.open)
        t = sim.metrics.totals_value
        sim.metrics.totals_value = CollectorTotals(
            t.queries_issued + issued,
            t.queries_satisfied + satisfied,
            t.duplicate_deliveries,
            t.late_deliveries,
            t.cache_lookups + issued,
            t.cache_hits + satisfied,
            t.data_generated + 1,
            t.responses_delivered + satisfied,
        )
        sim.metrics.open += issued - satisfied
        monitor.observe_window(i, i * 10.0, (i + 1) * 10.0)
    report = monitor.report()
    check_health_consistency(report, sim.metrics.totals(), baseline=monitor.baseline)
    assert sum(s.queries_issued for s in report.snapshots) == (
        sim.metrics.totals().queries_issued
    )
