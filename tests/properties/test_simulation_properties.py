"""Property-based tests over whole simulations.

Random small traces and workloads; whatever the draw, a run must finish
with coherent, mutually consistent metrics.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.caching import IntentionalCaching, IntentionalConfig, NoCache, RandomCache
from repro.sim.simulator import Simulator, SimulatorConfig
from repro.traces.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.units import DAY, HOUR, MEGABIT
from repro.workload.config import WorkloadConfig


@settings(max_examples=12, deadline=None)
@given(
    num_nodes=st.integers(min_value=4, max_value=16),
    contacts=st.integers(min_value=200, max_value=2000),
    lifetime_hours=st.floats(min_value=2.0, max_value=24.0),
    size_mb=st.floats(min_value=5.0, max_value=150.0),
    scheme_index=st.integers(min_value=0, max_value=2),
    seed=st.integers(min_value=0, max_value=50),
)
def test_any_simulation_yields_coherent_metrics(
    num_nodes, contacts, lifetime_hours, size_mb, scheme_index, seed
):
    trace = generate_synthetic_trace(
        SyntheticTraceConfig(
            name="prop-sim",
            num_nodes=num_nodes,
            duration=3 * DAY,
            total_contacts=contacts,
            granularity=60.0,
            seed=seed,
        )
    )
    workload = WorkloadConfig(
        mean_data_lifetime=lifetime_hours * HOUR,
        mean_data_size=int(size_mb * MEGABIT),
    )
    factories = [
        lambda: IntentionalCaching(
            IntentionalConfig(num_ncls=min(2, num_nodes), ncl_time_budget=2 * HOUR)
        ),
        NoCache,
        RandomCache,
    ]
    result = Simulator(
        trace, factories[scheme_index](), workload, SimulatorConfig(seed=seed)
    ).run()

    assert 0.0 <= result.successful_ratio <= 1.0
    assert result.queries_satisfied <= result.queries_issued
    assert result.caching_overhead >= 0.0
    assert result.replaced_items >= 0
    assert result.responses_delivered <= result.responses_emitted + result.queries_satisfied
    if result.queries_issued:
        assert result.successful_ratio == result.queries_satisfied / result.queries_issued
