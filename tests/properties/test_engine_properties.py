"""Property-based tests for the discrete-event engine."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sim.engine import EventEngine
from repro.sim.events import EventKind

schedule_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.integers(min_value=0, max_value=4),  # priority
    ),
    max_size=80,
)


@settings(max_examples=100)
@given(entries=schedule_strategy)
def test_events_processed_in_total_order(entries):
    engine = EventEngine()
    seen = []
    engine.register(EventKind.CUSTOM, lambda e: seen.append((e.time, e.priority, e.sequence)))
    for time, priority in entries:
        engine.schedule(time, EventKind.CUSTOM, priority=priority)
    processed = engine.run()
    assert processed == len(entries)
    assert seen == sorted(seen)


@settings(max_examples=50)
@given(
    entries=schedule_strategy,
    cutoff=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)
def test_run_until_is_a_clean_partition(entries, cutoff):
    engine = EventEngine()
    seen = []
    engine.register(EventKind.CUSTOM, lambda e: seen.append(e.time))
    for time, priority in entries:
        engine.schedule(time, EventKind.CUSTOM, priority=priority)
    engine.run(until=cutoff)
    assert all(t <= cutoff for t in seen)
    assert engine.pending == sum(1 for t, _ in entries if t > cutoff)
    engine.run()
    assert engine.pending == 0
    assert len(seen) == len(entries)
