"""Property-based tests for popularity estimation (Eq. 5-6)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.popularity import PopularityEstimator

timestamps = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=0,
    max_size=30,
).map(sorted)


@given(ts=timestamps, horizon=st.floats(min_value=0.0, max_value=1e7))
def test_popularity_is_a_probability(ts, horizon):
    est = PopularityEstimator()
    for t in ts:
        est.record_request(t)
    last = ts[-1] if ts else 0.0
    assert 0.0 <= est.popularity(last + horizon) <= 1.0


@given(ts=timestamps)
def test_popularity_monotone_in_expiry_horizon(ts):
    est = PopularityEstimator()
    for t in ts:
        est.record_request(t)
    last = ts[-1] if ts else 0.0
    values = [est.popularity(last + h) for h in (1.0, 100.0, 10_000.0)]
    assert values == sorted(values)


@settings(max_examples=60)
@given(
    a_ts=timestamps,
    b_ts=timestamps,
)
def test_merge_count_additivity(a_ts, b_ts):
    a = PopularityEstimator()
    b = PopularityEstimator()
    for t in a_ts:
        a.record_request(t)
    for t in b_ts:
        b.record_request(t)
    total = a.request_count + b.request_count
    a.merge(b)
    assert a.request_count == total
