"""Property-based tests for the pairwise cache exchange (Sec. V-D)."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.buffer import CacheBuffer
from repro.core.replacement import (
    ExchangeContext,
    FIFOPolicy,
    GreedyDualSizePolicy,
    LRUPolicy,
    UtilityKnapsackPolicy,
)
from tests.conftest import make_item

pool_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=20),              # data id
        st.integers(min_value=5, max_value=50),              # size
        st.floats(min_value=0.0, max_value=1.0),             # utility
        st.booleans(),                                       # starts at A?
    ),
    max_size=12,
)


def build(pool, cap_a, cap_b):
    buffer_a, buffer_b = CacheBuffer(cap_a), CacheBuffer(cap_b)
    utilities = {}
    for data_id, size, utility, at_a in pool:
        item = make_item(data_id=data_id, size=size, lifetime=1000.0)
        utilities[data_id] = utility
        if at_a:
            buffer_a.put(item)
        else:
            buffer_b.put(item)
    context = ExchangeContext(
        now=0.0,
        utility_a=lambda d: utilities.get(d.data_id, 0.0),
        utility_b=lambda d: utilities.get(d.data_id, 0.0),
        rng=np.random.default_rng(0),
    )
    return buffer_a, buffer_b, context


POLICIES = [
    UtilityKnapsackPolicy(probabilistic=True),
    UtilityKnapsackPolicy(probabilistic=False),
    FIFOPolicy(),
    LRUPolicy(),
]


@settings(max_examples=80)
@given(
    pool=pool_strategy,
    cap_a=st.integers(min_value=20, max_value=200),
    cap_b=st.integers(min_value=20, max_value=200),
    policy_index=st.integers(min_value=0, max_value=len(POLICIES) - 1),
)
def test_exchange_conserves_or_drops_items(pool, cap_a, cap_b, policy_index):
    """Every pooled item ends up at A, at B, or in `dropped` — never
    duplicated, never silently vanished — and capacities are respected."""
    buffer_a, buffer_b, context = build(pool, cap_a, cap_b)
    before_ids = set(buffer_a.data_ids()) | set(buffer_b.data_ids())
    policy = POLICIES[policy_index]
    result = policy.exchange(buffer_a, buffer_b, context)

    after_ids = set(buffer_a.data_ids()) | set(buffer_b.data_ids())
    dropped_ids = {d.data_id for d in result.dropped}
    assert after_ids | dropped_ids == before_ids
    assert not (after_ids & dropped_ids)
    assert buffer_a.used <= buffer_a.capacity
    assert buffer_b.used <= buffer_b.capacity


@settings(max_examples=80)
@given(
    pool=pool_strategy,
    cap=st.integers(min_value=100, max_value=400),
)
def test_nothing_dropped_when_everything_fits(pool, cap):
    """Items leave the cache only under space pressure (Fig. 8b)."""
    total = sum(size for _, size, _, _ in pool)
    if total > cap:
        return
    buffer_a, buffer_b, context = build(pool, cap, cap)
    policy = UtilityKnapsackPolicy(probabilistic=True)
    result = policy.exchange(buffer_a, buffer_b, context)
    assert not result.dropped


@settings(max_examples=50)
@given(pool=pool_strategy)
def test_gds_exchange_respects_capacity(pool):
    buffer_a, buffer_b, context = build(pool, 80, 80)
    policy = GreedyDualSizePolicy()
    policy.exchange(buffer_a, buffer_b, context)
    assert buffer_a.used <= 80
    assert buffer_b.used <= 80
