"""Property-based tests for trace generation and statistics."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.traces.stats import summarize_trace
from repro.traces.synthetic import SyntheticTraceConfig, generate_synthetic_trace


@settings(max_examples=25, deadline=None)
@given(
    num_nodes=st.integers(min_value=2, max_value=40),
    total_contacts=st.integers(min_value=10, max_value=3000),
    duration_days=st.floats(min_value=0.5, max_value=30.0),
    seed=st.integers(min_value=0, max_value=1000),
    communities=st.integers(min_value=1, max_value=5),
)
def test_generated_traces_are_well_formed(
    num_nodes, total_contacts, duration_days, seed, communities
):
    config = SyntheticTraceConfig(
        name="prop",
        num_nodes=num_nodes,
        duration=duration_days * 86400.0,
        total_contacts=total_contacts,
        granularity=60.0,
        num_communities=communities,
        seed=seed,
    )
    trace = generate_synthetic_trace(config)
    assert trace.num_nodes == num_nodes
    for contact in trace:
        assert 0.0 <= contact.start <= contact.end <= config.duration
        assert 0 <= contact.node_a < contact.node_b < num_nodes
    # sorted by start time
    starts = [c.start for c in trace]
    assert starts == sorted(starts)


@settings(max_examples=20, deadline=None)
@given(
    num_nodes=st.integers(min_value=3, max_value=30),
    total_contacts=st.integers(min_value=50, max_value=2000),
    seed=st.integers(min_value=0, max_value=100),
)
def test_summary_statistics_are_consistent(num_nodes, total_contacts, seed):
    config = SyntheticTraceConfig(
        name="prop",
        num_nodes=num_nodes,
        duration=5 * 86400.0,
        total_contacts=total_contacts,
        granularity=30.0,
        seed=seed,
    )
    trace = generate_synthetic_trace(config)
    summary = summarize_trace(trace)
    assert summary.num_contacts == trace.num_contacts
    assert 0.0 <= summary.fraction_pairs_met <= 1.0
    assert summary.pairwise_frequency_met >= summary.pairwise_frequency_all - 1e-12
    assert summary.mean_contact_duration >= 0.0
