"""Property-based tests for trace generation and statistics.

Also home of the outcome-classification property (satellite of the
diagnose layer): the audit path (:class:`repro.obs.derive.QueryAudit`)
and the causal path (:class:`repro.obs.causality.QueryCausality`) both
classify through the shared :func:`repro.obs.derive.classify_outcome` /
:func:`delivery_in_constraint` predicates, so boundary deliveries and
truncated traces can never classify differently between the two.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.obs import build_causality, delivery_in_constraint
from repro.obs.derive import audit_queries, classify_outcome
from repro.obs.events import TraceEvent, TraceEventKind
from repro.traces.stats import summarize_trace
from repro.traces.synthetic import SyntheticTraceConfig, generate_synthetic_trace


@settings(max_examples=25, deadline=None)
@given(
    num_nodes=st.integers(min_value=2, max_value=40),
    total_contacts=st.integers(min_value=10, max_value=3000),
    duration_days=st.floats(min_value=0.5, max_value=30.0),
    seed=st.integers(min_value=0, max_value=1000),
    communities=st.integers(min_value=1, max_value=5),
)
def test_generated_traces_are_well_formed(
    num_nodes, total_contacts, duration_days, seed, communities
):
    config = SyntheticTraceConfig(
        name="prop",
        num_nodes=num_nodes,
        duration=duration_days * 86400.0,
        total_contacts=total_contacts,
        granularity=60.0,
        num_communities=communities,
        seed=seed,
    )
    trace = generate_synthetic_trace(config)
    assert trace.num_nodes == num_nodes
    for contact in trace:
        assert 0.0 <= contact.start <= contact.end <= config.duration
        assert 0 <= contact.node_a < contact.node_b < num_nodes
    # sorted by start time
    starts = [c.start for c in trace]
    assert starts == sorted(starts)


@settings(max_examples=20, deadline=None)
@given(
    num_nodes=st.integers(min_value=3, max_value=30),
    total_contacts=st.integers(min_value=50, max_value=2000),
    seed=st.integers(min_value=0, max_value=100),
)
def test_summary_statistics_are_consistent(num_nodes, total_contacts, seed):
    config = SyntheticTraceConfig(
        name="prop",
        num_nodes=num_nodes,
        duration=5 * 86400.0,
        total_contacts=total_contacts,
        granularity=30.0,
        seed=seed,
    )
    trace = generate_synthetic_trace(config)
    summary = summarize_trace(trace)
    assert summary.num_contacts == trace.num_contacts
    assert 0.0 <= summary.fraction_pairs_met <= 1.0
    assert summary.pairwise_frequency_met >= summary.pairwise_frequency_all - 1e-12
    assert summary.mean_contact_duration >= 0.0


def _query_events(created, constraint, delivery_offset, trail):
    """One query's stream: created, response emitted, maybe delivered.

    ``delivery_offset`` is the delivery time relative to ``expires_at``
    (None = never delivered; 0.0 = exactly at the boundary); ``trail``
    extends the trace past the last event, modelling truncation points
    on either side of the constraint.  ``QUERY_SATISFIED`` is emitted
    exactly when the recorder would have: for an in-constraint delivery.
    """
    K = TraceEventKind
    expires_at = created + constraint
    events = [
        TraceEvent(
            time=created, kind=K.QUERY_CREATED, node=0, data_id=1, query_id=1,
            attrs={"time_constraint": constraint},
        ),
        TraceEvent(
            time=created, kind=K.RESPONSE_EMITTED, node=2, query_id=1,
            attrs={"sequence": 1},
        ),
    ]
    last = created
    if delivery_offset is not None:
        delivered_at = expires_at + delivery_offset
        events.append(
            TraceEvent(
                time=delivered_at, kind=K.RESPONSE_DELIVERED, node=0, query_id=1,
                attrs={"carrier": 2, "responder": 2, "sequence": 1},
            )
        )
        if delivery_in_constraint(delivered_at, expires_at):
            events.append(
                TraceEvent(
                    time=delivered_at, kind=K.QUERY_SATISFIED, node=0, query_id=1,
                    attrs={"created_at": created},
                )
            )
        last = delivered_at
    if trail > 0:
        events.append(TraceEvent(time=last + trail, kind=K.SAMPLE, node=0))
    return events


@settings(max_examples=200, deadline=None)
@given(
    created=st.floats(min_value=0.0, max_value=1e6),
    constraint=st.floats(min_value=1e-3, max_value=1e6),
    delivery_offset=st.one_of(
        st.none(),
        st.just(0.0),  # exactly at the expiry boundary
        st.floats(min_value=-1e6, max_value=1e6),
    ),
    trail=st.floats(min_value=0.0, max_value=2e6),
)
def test_audit_and_causality_outcomes_never_diverge(
    created, constraint, delivery_offset, trail
):
    """Boundary deliveries and truncated traces classify identically
    through the audit path and the causal-chain path."""
    events = _query_events(created, constraint, delivery_offset, trail)
    trace_end = max(e.time for e in events)
    audit = audit_queries(events)[1]
    causality = build_causality(events)
    query = causality.queries[1]
    assert causality.trace_end == trace_end
    assert query.outcome(trace_end) == audit.outcome(trace_end)
    # the shared predicate is the single source of the satisfied verdict
    if delivery_offset is not None:
        satisfied = delivery_in_constraint(
            created + constraint + delivery_offset, created + constraint
        )
        assert (query.outcome(trace_end) == "satisfied") == satisfied


def test_boundary_delivery_is_satisfied_in_both_layers():
    """A delivery landing exactly at ``expires_at`` satisfies — ``<=``,
    never ``<`` — in the audit, the chains, and the bare predicate."""
    events = _query_events(10.0, 5.0, 0.0, trail=1.0)
    trace_end = max(e.time for e in events)
    assert delivery_in_constraint(15.0, 15.0)
    assert audit_queries(events)[1].outcome(trace_end) == "satisfied"
    assert build_causality(events).queries[1].outcome(trace_end) == "satisfied"


def test_truncated_trace_is_pending_in_both_layers():
    """A trace ending before the constraint elapsed keeps the query
    pending (not expired) on both paths."""
    events = _query_events(0.0, 100.0, None, trail=0.0)
    trace_end = max(e.time for e in events)
    assert trace_end < 100.0
    assert classify_outcome(None, 100.0, trace_end) == "pending"
    assert audit_queries(events)[1].outcome(trace_end) == "pending"
    assert build_causality(events).queries[1].outcome(trace_end) == "pending"
