"""Property-based tests for forwarding strategies."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.graph.contact_graph import ContactGraph
from repro.routing.base import ForwardAction
from repro.routing.gradient import GradientRouter
from repro.routing.rate_gradient import RateGradientRouter
from repro.units import HOUR


@st.composite
def random_graph(draw):
    n = draw(st.integers(min_value=3, max_value=10))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    rates = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < 0.5:
                rates[i, j] = rates[j, i] = rng.uniform(0.1, 5.0) / HOUR
    return ContactGraph.from_rate_matrix(rates)


@settings(max_examples=40, deadline=None)
@given(graph=random_graph(), data=st.data())
def test_gradient_decisions_are_antisymmetric(graph, data):
    """If the peer is strictly better, the carrier forwards; swapping the
    roles must then yield KEEP — no forwarding loops between two nodes."""
    router = GradientRouter(horizon=5 * HOUR)
    n = graph.num_nodes
    carrier = data.draw(st.integers(min_value=0, max_value=n - 1))
    peer = data.draw(st.integers(min_value=0, max_value=n - 1))
    destination = data.draw(st.integers(min_value=0, max_value=n - 1))
    if len({carrier, peer, destination}) < 3:
        return
    forward = router.decide(carrier, peer, destination, graph, 1.0)
    backward = router.decide(peer, carrier, destination, graph, 1.0)
    assert not (forward.transfers and backward.transfers)


@settings(max_examples=40, deadline=None)
@given(graph=random_graph(), data=st.data())
def test_rate_gradient_antisymmetric(graph, data):
    router = RateGradientRouter()
    n = graph.num_nodes
    carrier = data.draw(st.integers(min_value=0, max_value=n - 1))
    peer = data.draw(st.integers(min_value=0, max_value=n - 1))
    destination = data.draw(st.integers(min_value=0, max_value=n - 1))
    if len({carrier, peer, destination}) < 3:
        return
    forward = router.decide(carrier, peer, destination, graph, 1.0)
    backward = router.decide(peer, carrier, destination, graph, 1.0)
    assert not (forward.transfers and backward.transfers)


@settings(max_examples=40, deadline=None)
@given(graph=random_graph(), data=st.data())
def test_destination_always_accepts(graph, data):
    n = graph.num_nodes
    carrier = data.draw(st.integers(min_value=0, max_value=n - 1))
    destination = data.draw(st.integers(min_value=0, max_value=n - 1))
    if carrier == destination:
        return
    for router in (GradientRouter(horizon=1 * HOUR), RateGradientRouter()):
        decision = router.decide(carrier, destination, destination, graph, 1.0)
        assert decision.action is ForwardAction.HANDOVER


@settings(max_examples=30, deadline=None)
@given(graph=random_graph(), data=st.data())
def test_gradient_chain_terminates(graph, data):
    """Repeatedly handing a bundle to the best neighbor must reach a
    local maximum in at most N steps (scores strictly increase)."""
    router = GradientRouter(horizon=5 * HOUR)
    n = graph.num_nodes
    carrier = data.draw(st.integers(min_value=0, max_value=n - 1))
    destination = data.draw(st.integers(min_value=0, max_value=n - 1))
    if carrier == destination:
        return
    hops = 0
    while hops <= n:
        candidates = [
            peer
            for peer in range(n)
            if peer != carrier
            and router.decide(carrier, peer, destination, graph, 1.0).transfers
        ]
        if not candidates or destination in candidates:
            break
        carrier = candidates[0]
        hops += 1
    assert hops <= n
