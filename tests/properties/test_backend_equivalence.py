"""Backend equivalence: python dispatch == oracles, numba == python bitwise.

The kernel registry's contract (``repro.kernels``) has two layers:

* the *python* backend — dispatch with no overrides — must agree with
  each kernel's retained ``_reference_*`` oracle (to tight numeric
  tolerance where the vectorized path reorders float reductions, and
  exactly where it does not);
* the *numba* backend must agree with the python backend **bitwise** on
  every registered kernel and end-to-end on whole simulations — these
  tests skip cleanly when the optional extra is not installed.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.core.knapsack import (
    KnapsackItem,
    KnapsackPool,
    _knapsack_keep,
    _reference_knapsack_dp,
    solve_knapsack,
)
from repro.core.ncl import _reference_ncl_metrics, ncl_metrics
from repro.graph.contact_graph import ContactGraph
from repro.graph.paths import _reference_weight_matrix, shortest_path_weight_matrix
from repro.graph.weight_cache import shared_weight_cache
from repro.mathutils.hypoexponential import (
    _reference_cdf_batch,
    hypoexponential_cdf_batch,
    pad_rate_rows,
)
from repro.traces.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.units import DAY, HOUR, MEGABIT, WEEK
from repro.workload.config import WorkloadConfig

requires_numba = pytest.mark.skipif(
    "numba" not in kernels.available_backend_names(),
    reason="numba not installed (optional extra)",
)


def _graph(seed=2, num_nodes=16):
    return ContactGraph.from_trace(
        generate_synthetic_trace(
            SyntheticTraceConfig(
                name=f"equiv-{seed}",
                num_nodes=num_nodes,
                duration=4 * DAY,
                total_contacts=num_nodes * 60,
                granularity=60.0,
                seed=seed,
            )
        )
    )


rate_rows = st.lists(
    st.lists(
        st.floats(min_value=1e-6, max_value=1e-2, allow_nan=False),
        min_size=0,
        max_size=6,
    ),
    min_size=1,
    max_size=40,
)


# --- python dispatch vs oracles ------------------------------------------


@settings(max_examples=60, deadline=None)
@given(rows=rate_rows, t=st.floats(min_value=1.0, max_value=1e6))
def test_hypoexp_batch_matches_reference(rows, t):
    padded = pad_rate_rows(rows)
    fast = hypoexponential_cdf_batch(padded, t)
    slow = _reference_cdf_batch(rows, t)
    np.testing.assert_allclose(fast, slow, atol=1e-10, rtol=0)


@pytest.mark.parametrize("seed", [2, 5, 11])
def test_weight_matrix_matches_reference(seed):
    graph = _graph(seed)
    fast = shortest_path_weight_matrix(graph, 1 * WEEK)
    slow = _reference_weight_matrix(graph, 1 * WEEK)
    np.testing.assert_allclose(fast, slow, atol=1e-9, rtol=0)


@pytest.mark.parametrize("seed", [2, 5])
def test_ncl_metrics_match_reference(seed):
    graph = _graph(seed)
    shared_weight_cache().clear()
    fast = ncl_metrics(graph, 1 * WEEK)
    slow = _reference_ncl_metrics(graph, 1 * WEEK)
    np.testing.assert_allclose(fast, slow, atol=1e-9, rtol=0)


knapsack_instances = st.tuples(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            st.integers(min_value=1, max_value=600 * MEGABIT),
        ),
        min_size=0,
        max_size=24,
    ),
    st.integers(min_value=1, max_value=600 * MEGABIT),
)


@settings(max_examples=80, deadline=None)
@given(instance=knapsack_instances)
def test_knapsack_pool_matches_solve(instance):
    raw, capacity = instance
    items = [KnapsackItem(i, value, size) for i, (value, size) in enumerate(raw)]
    direct = solve_knapsack(items, capacity)
    pooled = KnapsackPool().solve(items, capacity)
    assert direct == pooled
    assert direct.total_size <= capacity


def test_knapsack_dispatch_runs_reference_on_python():
    with kernels.use_backend("python"):
        keep = _knapsack_keep([0.5, 0.9], [2, 3], 5)
    assert keep == _reference_knapsack_dp([0.5, 0.9], [2, 3], 5)


# --- numba backend: bitwise agreement with python -------------------------


def _both_backends(fn):
    with kernels.use_backend("python"):
        shared_weight_cache().clear()
        python_result = fn()
    with kernels.use_backend("numba"):
        kernels.warmup()
        shared_weight_cache().clear()
        numba_result = fn()
    return python_result, numba_result


@requires_numba
@settings(max_examples=40, deadline=None)
@given(rows=rate_rows, t=st.floats(min_value=1.0, max_value=1e6))
def test_numba_hypoexp_bitwise(rows, t):
    padded = pad_rate_rows(rows)
    python_result, numba_result = _both_backends(
        lambda: hypoexponential_cdf_batch(padded, t)
    )
    assert np.array_equal(python_result, numba_result)


@requires_numba
@pytest.mark.parametrize("seed", [2, 5, 11])
def test_numba_weight_matrix_bitwise(seed):
    graph = _graph(seed)
    python_result, numba_result = _both_backends(
        lambda: shortest_path_weight_matrix(graph, 1 * WEEK)
    )
    assert np.array_equal(python_result, numba_result)


@requires_numba
@pytest.mark.parametrize("seed", [2, 5])
def test_numba_ncl_metrics_bitwise(seed):
    graph = _graph(seed)
    python_result, numba_result = _both_backends(
        lambda: ncl_metrics(graph, 1 * WEEK)
    )
    assert np.array_equal(python_result, numba_result)


@requires_numba
@settings(max_examples=60, deadline=None)
@given(instance=knapsack_instances)
def test_numba_knapsack_bitwise(instance):
    raw, capacity = instance
    items = [KnapsackItem(i, value, size) for i, (value, size) in enumerate(raw)]
    python_result, numba_result = _both_backends(
        lambda: solve_knapsack(items, capacity)
    )
    assert python_result == numba_result


# --- end-to-end: identical SimulationResult across backends ---------------


def _static_spec():
    from repro.scenario import ScenarioSpec, SchemeSpec, TraceSpec

    return ScenarioSpec(
        trace=TraceSpec(name="mit_reality", seed=1, node_factor=0.35, time_factor=0.08),
        scheme=SchemeSpec(name="intentional", num_ncls=3),
    )


def _churn_spec():
    from repro.scenario import RunSpec, ScenarioSpec, SchemeSpec, TraceSpec
    from repro.sim.dynamics import DynamicsConfig, DynamicsEvent

    return ScenarioSpec(
        trace=TraceSpec(name="mit_reality", seed=1, node_factor=0.35, time_factor=0.08),
        scheme=SchemeSpec(name="intentional", num_ncls=3, reelect=True),
        run=RunSpec(seed=7),
        dynamics=DynamicsConfig(
            events=(
                DynamicsEvent(action="fail_central", at_fraction=0.3),
                DynamicsEvent(action="leave", at_fraction=0.45, node=3),
                DynamicsEvent(action="join", at_fraction=0.7, node=3),
            )
        ),
    )


def _run_spec(spec):
    from repro.scenario import build_trace, scheme_factory, simulator_config
    from repro.sim.simulator import Simulator

    trace = build_trace(spec.trace)
    workload = WorkloadConfig(
        mean_data_lifetime=trace.duration * 0.1, mean_data_size=100_000_000
    )
    sim = Simulator(trace, scheme_factory(spec)(), workload, simulator_config(spec))
    return sim.run()


@requires_numba
@pytest.mark.parametrize("spec_builder", [_static_spec, _churn_spec])
def test_numba_simulation_bitwise(spec_builder):
    spec = spec_builder()
    python_result, numba_result = _both_backends(lambda: _run_spec(spec))
    assert python_result == numba_result


@requires_numba
def test_numba_parallel_runner_bitwise():
    """serial == workers=4 must keep holding under the numba backend."""
    from repro.caching.nocache import NoCache
    from repro.experiments.runner import run_repeated

    trace = generate_synthetic_trace(
        SyntheticTraceConfig(
            name="backend-runner",
            num_nodes=12,
            duration=4 * DAY,
            total_contacts=4000,
            granularity=60.0,
            seed=5,
        )
    )
    workload = WorkloadConfig(mean_data_lifetime=8 * HOUR, mean_data_size=10 * MEGABIT)
    seeds = tuple(range(1, 9))
    with kernels.use_backend("numba"):
        kernels.warmup()
        serial = run_repeated(trace, NoCache, workload, seeds=seeds)
        parallel = run_repeated(trace, NoCache, workload, seeds=seeds, workers=4)
    assert serial.successful_ratio == parallel.successful_ratio
    assert serial.queries_issued == parallel.queries_issued
    assert serial.caching_overhead == parallel.caching_overhead
