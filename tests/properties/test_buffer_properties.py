"""Property-based tests for cache-buffer invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.buffer import CacheBuffer
from tests.conftest import make_item

operations = st.lists(
    st.tuples(
        st.sampled_from(["put", "remove", "get", "evict"]),
        st.integers(min_value=0, max_value=15),  # data id
        st.integers(min_value=1, max_value=60),  # size
        st.floats(min_value=0.0, max_value=200.0),  # now / lifetime knob
    ),
    max_size=60,
)


@settings(max_examples=120)
@given(ops=operations, capacity=st.integers(min_value=10, max_value=150))
def test_buffer_invariants_under_random_operations(ops, capacity):
    buffer = CacheBuffer(capacity)
    for op, data_id, size, t in ops:
        if op == "put":
            buffer.put(make_item(data_id=data_id, size=size, lifetime=max(t, 1.0)))
        elif op == "remove":
            buffer.remove(data_id)
        elif op == "get":
            buffer.get(data_id)
        elif op == "evict":
            buffer.evict_expired(now=t)
        # Invariants hold after every operation:
        items = buffer.items()
        assert buffer.used == sum(d.size for d in items)
        assert 0 <= buffer.used <= buffer.capacity
        assert len({d.data_id for d in items}) == len(items)
        assert sorted(d.data_id for d in buffer.insertion_order()) == sorted(
            d.data_id for d in items
        )
        assert sorted(d.data_id for d in buffer.access_order()) == sorted(
            d.data_id for d in items
        )
