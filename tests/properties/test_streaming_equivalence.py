"""Property tests: the streaming collector matches the exact collector.

Two layers:

* **Event-stream level** — random delivery schedules fed to a paired
  exact/streaming collector: every shared counter and the mean delay
  must agree bitwise (the running ``_delay_sum`` adds in the identical
  order as the exact path's ``sum(list)``), and the documented
  divergence (post-expiry duplicates may classify late) is bounded by
  the duplicates+late sum staying equal.
* **Whole-simulation level** — the same (trace, scheme, workload, seed)
  run with ``streaming_metrics`` off and on must produce equal
  :class:`SimulationResult`\\ s (NaN-aware: an idle run's NaN delay is
  equal to itself).
"""

import dataclasses
import math

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.caching import IntentionalCaching, IntentionalConfig, NoCache
from repro.core.data import Query
from repro.metrics.collector import MetricsCollector
from repro.sim.simulator import Simulator, SimulatorConfig
from repro.traces.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.units import DAY, HOUR, MEGABIT
from repro.workload.config import WorkloadConfig


def _results_equal(a, b) -> bool:
    for field in dataclasses.fields(a):
        va, vb = getattr(a, field.name), getattr(b, field.name)
        if isinstance(va, float) and math.isnan(va) and math.isnan(vb):
            continue
        if va != vb:
            return False
    return True


#: one schedule entry: (query index, issue time, constraint, delivery offsets)
query_schedules = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1000.0),   # created_at
        st.floats(min_value=1.0, max_value=500.0),    # time_constraint
        st.lists(                                     # delivery delays
            st.floats(min_value=0.0, max_value=800.0),
            max_size=4,
        ),
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(schedule=query_schedules)
def test_collectors_agree_on_any_delivery_schedule(schedule):
    exact = MetricsCollector()
    streaming = MetricsCollector(streaming=True)

    # Replay in global time order, as a simulation would.
    events = []
    for index, (created_at, constraint, delays) in enumerate(schedule):
        query = Query(
            query_id=index,
            requester=0,
            data_id=index,
            created_at=created_at,
            time_constraint=constraint,
        )
        events.append((created_at, 0, "create", query))
        for delay in delays:
            events.append((created_at + delay, 1, "deliver", query))
    events.sort(key=lambda e: (e[0], e[1], e[3].query_id))

    for now, _, kind, query in events:
        if kind == "create":
            exact.on_query_created(query)
            streaming.on_query_created(query)
        else:
            exact.record_delivery(query, now)
            streaming.record_delivery(query, now)

    assert streaming.queries_issued == exact.queries_issued
    assert streaming.queries_satisfied == exact.queries_satisfied
    # Documented divergence: a duplicate arriving after the query expired
    # may classify "late" in streaming mode — only the sum is invariant.
    assert (
        streaming.duplicate_deliveries + streaming.late_deliveries
        == exact.duplicate_deliveries + exact.late_deliveries
    )

    result_exact = exact.finalize("prop", seed=0)
    result_streaming = streaming.finalize("prop", seed=0)
    assert result_streaming.queries_issued == result_exact.queries_issued
    assert result_streaming.queries_satisfied == result_exact.queries_satisfied
    assert result_streaming.successful_ratio == result_exact.successful_ratio
    # Bitwise: both sides add the same delays in the same (delivery) order.
    if result_exact.queries_satisfied:
        assert result_streaming.mean_access_delay == result_exact.mean_access_delay
    else:
        assert math.isnan(result_streaming.mean_access_delay)
        assert math.isnan(result_exact.mean_access_delay)


@settings(max_examples=60, deadline=None)
@given(schedule=query_schedules)
def test_streaming_state_stays_bounded(schedule):
    """After every query expires, the open set must be empty and the
    satisfied set prunable — no per-query dict survives in streaming
    mode (the acceptance criterion's memory contract, in miniature)."""
    streaming = MetricsCollector(streaming=True, reservoir_size=8)
    horizon = 0.0
    for index, (created_at, constraint, delays) in enumerate(schedule):
        query = Query(
            query_id=index,
            requester=0,
            data_id=index,
            created_at=created_at,
            time_constraint=constraint,
        )
        streaming.on_query_created(query)
        for delay in sorted(delays):
            streaming.record_delivery(query, created_at + delay)
        horizon = max(horizon, query.expires_at)
    assert streaming._queries is None           # no full record exists
    assert streaming._satisfied_at is None
    assert len(streaming.delay_reservoir) <= 8
    assert streaming.pending_queries(horizon + 1.0) == 0
    assert streaming.open_queries == 0
    streaming._retire_satisfied(horizon + 1.0)
    assert len(streaming._satisfied) == 0


@settings(max_examples=6, deadline=None)
@given(
    num_nodes=st.integers(min_value=6, max_value=14),
    contacts=st.integers(min_value=300, max_value=1500),
    lifetime_hours=st.floats(min_value=4.0, max_value=20.0),
    use_ncl=st.booleans(),
    seed=st.integers(min_value=0, max_value=30),
)
def test_streaming_simulation_matches_exact(
    num_nodes, contacts, lifetime_hours, use_ncl, seed
):
    trace = generate_synthetic_trace(
        SyntheticTraceConfig(
            name="prop-streaming",
            num_nodes=num_nodes,
            duration=3 * DAY,
            total_contacts=contacts,
            granularity=60.0,
            seed=seed,
        )
    )
    workload = WorkloadConfig(
        mean_data_lifetime=lifetime_hours * HOUR, mean_data_size=20 * MEGABIT
    )

    def scheme():
        if use_ncl:
            return IntentionalCaching(
                IntentionalConfig(num_ncls=2, ncl_time_budget=2 * HOUR)
            )
        return NoCache()

    exact = Simulator(
        trace, scheme(), workload, SimulatorConfig(seed=seed)
    ).run()
    streaming = Simulator(
        trace, scheme(), workload, SimulatorConfig(seed=seed, streaming_metrics=True)
    ).run()
    assert _results_equal(streaming, exact)
