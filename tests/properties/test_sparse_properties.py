"""Sparse-core properties: k-NN kernel vs dense oracles, incremental NCL.

The scale-out path must never change answers, only cost:

* the ``knn_weight_rows`` kernel agrees with its dense pure-python
  oracle ``_reference_knn_weight_rows`` (1e-9) across contact densities,
  and with ``k >= N-1`` recovers the full dense weight matrix;
* ``sparse_ncl_metrics`` agrees with its dense oracle
  ``_reference_sparse_ncl_metrics`` and converges monotonically in k to
  the exact ``ncl_metrics``;
* storage mode is invisible: a forced-sparse graph produces bitwise the
  same kernel outputs as the same rates stored densely;
* the incremental NCL update (``repro.graph.incremental``) is bitwise
  the scratch weight matrix after arbitrary churn;
* end-to-end, a forced-sparse run equals a forced-dense run bitwise
  when both use the same (k-NN) metric, serial and with workers=4.
"""

import dataclasses
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.core.ncl import (
    _reference_sparse_ncl_metrics,
    ncl_metrics,
    sparse_ncl_metrics,
)
from repro.graph import incremental
from repro.graph.contact_graph import ContactGraph
from repro.graph.paths import shortest_path_weight_matrix
from repro.graph.sparse import (
    _reference_knn_weight_rows,
    knn_weight_matrix,
    knn_weight_rows,
)
from repro.graph.weight_cache import shared_weight_cache
from repro.traces.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.units import DAY, HOUR, WEEK
from repro.workload.config import WorkloadConfig

requires_numba = pytest.mark.skipif(
    "numba" not in kernels.available_backend_names(),
    reason="numba not installed (optional extra)",
)


def _graph(seed=2, num_nodes=16, contacts_per_node=60, sparse=None):
    return ContactGraph.from_trace(
        generate_synthetic_trace(
            SyntheticTraceConfig(
                name=f"sparse-prop-{seed}-{contacts_per_node}",
                num_nodes=num_nodes,
                duration=4 * DAY,
                total_contacts=num_nodes * contacts_per_node,
                granularity=60.0,
                seed=seed,
            )
        ),
        sparse=sparse,
    )


#: random sparse edge sets: n nodes, a rate per drawn (i, j) pair
graph_cases = st.integers(min_value=4, max_value=20).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
                st.floats(min_value=1e-6, max_value=1e-2, allow_nan=False),
            ),
            min_size=1,
            max_size=3 * n,
        ),
    )
)


def _from_case(case, sparse=None):
    n, raw = case
    edges = {}
    for i, j, rate in raw:
        if i != j:
            edges[(min(i, j), max(i, j))] = rate
    return ContactGraph.from_edges(
        n, [(i, j, rate) for (i, j), rate in edges.items()], sparse=sparse
    )


# --- k-NN kernel vs dense oracle across densities --------------------------


@pytest.mark.parametrize("contacts_per_node", [6, 25, 120])
@pytest.mark.parametrize("k", [1, 4, 15])
def test_knn_rows_match_dense_oracle_across_densities(contacts_per_node, k):
    graph = _graph(seed=3, contacts_per_node=contacts_per_node)
    fast = knn_weight_matrix(graph, 1 * WEEK, k)
    slow = _reference_knn_weight_rows(graph, 1 * WEEK, k)
    np.testing.assert_allclose(fast, slow, atol=1e-9, rtol=0)


@settings(max_examples=40, deadline=None)
@given(case=graph_cases, k=st.integers(min_value=1, max_value=24))
def test_knn_rows_match_dense_oracle_random(case, k):
    graph = _from_case(case)
    fast = knn_weight_matrix(graph, 6 * HOUR, k)
    slow = _reference_knn_weight_rows(graph, 6 * HOUR, k)
    np.testing.assert_allclose(fast, slow, atol=1e-9, rtol=0)


@pytest.mark.parametrize("contacts_per_node", [6, 25, 120])
def test_full_k_recovers_dense_weight_matrix(contacts_per_node):
    graph = _graph(seed=5, contacts_per_node=contacts_per_node)
    n = graph.num_nodes
    dense = shortest_path_weight_matrix(graph, 1 * WEEK)
    truncated = knn_weight_matrix(graph, 1 * WEEK, n - 1)
    np.testing.assert_allclose(truncated, dense, atol=1e-9, rtol=0)


@pytest.mark.parametrize("contacts_per_node", [6, 25, 120])
def test_sparse_ncl_metrics_match_oracle_and_dense(contacts_per_node):
    graph = _graph(seed=7, contacts_per_node=contacts_per_node)
    n = graph.num_nodes
    shared_weight_cache().clear()
    sparse = sparse_ncl_metrics(graph, 1 * WEEK, k=n - 1)
    oracle = _reference_sparse_ncl_metrics(graph, 1 * WEEK, k=n - 1)
    np.testing.assert_allclose(sparse, oracle, atol=1e-9, rtol=0)
    shared_weight_cache().clear()
    exact = ncl_metrics(graph, 1 * WEEK)
    np.testing.assert_allclose(sparse, exact, atol=1e-9, rtol=0)


# --- monotone convergence in k --------------------------------------------


@settings(max_examples=25, deadline=None)
@given(case=graph_cases)
def test_knn_metric_monotone_in_k(case):
    """Larger k only adds non-negative Eq. 3 terms: the truncated metric
    is non-decreasing in k (to summation-order rounding) and bounded by
    the exact metric."""
    graph = _from_case(case)
    n = graph.num_nodes
    previous = None
    for k in range(1, n):
        metrics = sparse_ncl_metrics(graph, 6 * HOUR, k=k)
        if previous is not None:
            assert np.all(metrics >= previous - 1e-12)
        previous = metrics
    shared_weight_cache().clear()
    exact = ncl_metrics(graph, 6 * HOUR)
    assert np.all(previous <= exact + 1e-9)


# --- storage-mode independence --------------------------------------------


@settings(max_examples=30, deadline=None)
@given(case=graph_cases, k=st.integers(min_value=1, max_value=12))
def test_knn_rows_bitwise_across_storage_modes(case, k):
    dense_store = _from_case(case, sparse=False)
    sparse_store = _from_case(case, sparse=True)
    a = knn_weight_rows(dense_store, 6 * HOUR, k)
    b = knn_weight_rows(sparse_store, 6 * HOUR, k)
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.weights, b.weights)
    assert np.array_equal(
        dense_store.aggregate_rates(), sparse_store.aggregate_rates()
    )


# --- incremental NCL == scratch after arbitrary churn ----------------------


churn_steps = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=15),
        st.floats(min_value=0.0, max_value=1e-2, allow_nan=False),
    ),
    min_size=1,
    max_size=30,
)


@settings(max_examples=30, deadline=None)
@given(steps=churn_steps, seed=st.integers(min_value=0, max_value=5))
def test_incremental_update_bitwise_equals_scratch(steps, seed):
    graph = _graph(seed=seed, num_nodes=16)
    budget = 6 * HOUR
    _, state = incremental.build_state(graph, budget)
    for i, j, rate in steps:
        if i == j:
            continue
        graph.set_rate(i, j, rate)
        updated = incremental.update_state(state, graph, budget)
        scratch = shortest_path_weight_matrix(graph, budget)
        if updated is None:
            # Guard tripped (pad-width change, too dirty): rebuild.
            _, state = incremental.build_state(graph, budget)
            updated = state.weights
        assert np.array_equal(updated, scratch)


def test_incremental_kill_switch(monkeypatch):
    """REPRO_INCREMENTAL_NCL=0 must bypass the incremental path."""
    monkeypatch.setenv(incremental.ENV_FLAG, "0")
    assert not incremental.incremental_enabled()
    monkeypatch.setenv(incremental.ENV_FLAG, "1")
    assert incremental.incremental_enabled()


# --- end-to-end: storage mode invisible, serial == workers=4 ---------------


def _assert_same_fields(a, b):
    """Field-wise equality that treats NaN == NaN (no-success delays)."""
    da, db = dataclasses.asdict(a), dataclasses.asdict(b)
    assert da.keys() == db.keys()
    for key in da:
        x, y = da[key], db[key]
        if isinstance(x, float) and math.isnan(x):
            assert isinstance(y, float) and math.isnan(y), key
        else:
            assert x == y, key


def _sparse_spec(knn_k, sparse_graph):
    from repro.scenario import RunSpec, ScenarioSpec, SchemeSpec, TraceSpec

    return ScenarioSpec(
        trace=TraceSpec(name="infocom05", seed=1, node_factor=0.6, time_factor=0.3),
        scheme=SchemeSpec(name="intentional", num_ncls=3, knn_k=knn_k),
        run=RunSpec(seed=7, sparse_graph=sparse_graph),
    )


def _run_end_to_end(spec):
    from repro.scenario import build_trace, scheme_factory, simulator_config
    from repro.sim.simulator import Simulator

    trace = build_trace(spec.trace)
    workload = WorkloadConfig(
        mean_data_lifetime=trace.duration * 0.1, mean_data_size=100_000_000
    )
    sim = Simulator(trace, scheme_factory(spec)(), workload, simulator_config(spec))
    return sim.run()


def test_end_to_end_bitwise_across_storage_modes():
    """With the same truncated metric on both sides, forcing sparse
    storage must not change a single result field (N≤100 trace scale)."""
    dense_result = _run_end_to_end(_sparse_spec(knn_k=8, sparse_graph=False))
    sparse_result = _run_end_to_end(_sparse_spec(knn_k=8, sparse_graph=True))
    _assert_same_fields(dense_result, sparse_result)


def test_sparse_serial_matches_workers():
    """The forced-sparse pipeline through the process-pool runner must
    aggregate bitwise-identically to the serial sweep."""
    from repro.experiments.runner import run_experiment
    from repro.scenario import build_trace, scheme_factory, simulator_config

    spec = _sparse_spec(knn_k=8, sparse_graph=True)
    trace = build_trace(spec.trace)
    workload = WorkloadConfig(
        mean_data_lifetime=trace.duration * 0.1, mean_data_size=100_000_000
    )
    seeds = (7, 8, 9, 10)
    config = simulator_config(spec)
    serial = run_experiment(trace, scheme_factory(spec), workload, seeds, config=config)
    parallel = run_experiment(
        trace, scheme_factory(spec), workload, seeds, config=config, workers=4
    )
    _assert_same_fields(serial.aggregate, parallel.aggregate)
    for a, b in zip(serial.results, parallel.results):
        _assert_same_fields(a, b)


# --- numba backend: bitwise agreement on the sparse kernel -----------------


@requires_numba
@pytest.mark.parametrize("contacts_per_node", [6, 60])
@pytest.mark.parametrize("k", [2, 8])
def test_numba_knn_rows_bitwise(contacts_per_node, k):
    graph = _graph(seed=11, contacts_per_node=contacts_per_node)
    with kernels.use_backend("python"):
        python_rows = knn_weight_rows(graph, 1 * WEEK, k)
    with kernels.use_backend("numba"):
        kernels.warmup()
        numba_rows = knn_weight_rows(graph, 1 * WEEK, k)
    assert np.array_equal(python_rows.indptr, numba_rows.indptr)
    assert np.array_equal(python_rows.indices, numba_rows.indices)
    assert np.array_equal(python_rows.weights, numba_rows.weights)
