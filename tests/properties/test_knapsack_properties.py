"""Property-based tests for the knapsack solver (Eq. 7)."""

import itertools

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.knapsack import KnapsackItem, solve_knapsack

small_items = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        st.integers(min_value=1, max_value=30),
    ),
    min_size=0,
    max_size=8,
)


def brute_force_value(items, capacity):
    best = 0.0
    for r in range(len(items) + 1):
        for combo in itertools.combinations(items, r):
            if sum(i.size for i in combo) <= capacity:
                best = max(best, sum(i.value for i in combo))
    return best


@settings(max_examples=150)
@given(raw=small_items, capacity=st.integers(min_value=0, max_value=100))
def test_exact_on_unquantised_instances(raw, capacity):
    items = [KnapsackItem(i, v, s) for i, (v, s) in enumerate(raw)]
    solution = solve_knapsack(items, capacity)
    assert solution.total_size <= capacity
    assert solution.total_value == sum(i.value for i in solution.selected)
    assert abs(solution.total_value - brute_force_value(items, capacity)) < 1e-9


@settings(max_examples=60)
@given(
    raw=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            st.integers(min_value=1_000_000, max_value=300_000_000),
        ),
        min_size=0,
        max_size=10,
    ),
    capacity=st.integers(min_value=0, max_value=600_000_000),
)
def test_quantised_never_overfills(raw, capacity):
    items = [KnapsackItem(i, v, s) for i, (v, s) in enumerate(raw)]
    solution = solve_knapsack(items, capacity)
    assert solution.total_size <= capacity
    selected_keys = set(solution.keys)
    assert len(selected_keys) == len(solution.selected)  # no duplicates


@settings(max_examples=60)
@given(raw=small_items, capacity=st.integers(min_value=0, max_value=100))
def test_deterministic(raw, capacity):
    items = [KnapsackItem(i, v, s) for i, (v, s) in enumerate(raw)]
    a = solve_knapsack(items, capacity)
    b = solve_knapsack(items, capacity)
    assert a.keys == b.keys
