"""Property-based tests for the hypoexponential kernel (Eq. 1-2)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.mathutils.hypoexponential import (
    _closed_form_cdf,
    _matrix_cdf,
    _rates_well_separated,
    hypoexponential_cdf,
)

rates_strategy = st.lists(
    st.floats(min_value=1e-6, max_value=10.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=6,
)
time_strategy = st.floats(min_value=0.0, max_value=1e5, allow_nan=False)


@given(rates=rates_strategy, t=time_strategy)
def test_cdf_is_a_probability(rates, t):
    value = hypoexponential_cdf(rates, t)
    assert 0.0 <= value <= 1.0


@given(rates=rates_strategy, t1=time_strategy, t2=time_strategy)
def test_cdf_monotone_in_time(rates, t1, t2):
    lo, hi = sorted((t1, t2))
    assert hypoexponential_cdf(rates, lo) <= hypoexponential_cdf(rates, hi) + 1e-12


@given(
    rates=rates_strategy,
    extra=st.floats(min_value=1e-6, max_value=10.0),
    t=st.floats(min_value=1e-3, max_value=1e5),
)
def test_extra_hop_never_increases_probability(rates, extra, t):
    assert hypoexponential_cdf(rates + [extra], t) <= hypoexponential_cdf(rates, t) + 1e-9


@settings(max_examples=60)
@given(
    rates=st.lists(
        st.floats(min_value=0.01, max_value=5.0), min_size=2, max_size=5, unique=True
    ),
    t=st.floats(min_value=0.01, max_value=100.0),
)
def test_closed_form_agrees_with_matrix_exponential(rates, t):
    if not _rates_well_separated(rates):
        return  # the closed form is only contractually valid here
    closed = _closed_form_cdf(rates, t)
    matrix = _matrix_cdf(rates, t)
    assert abs(closed - matrix) < 1e-6


@given(
    rate=st.floats(min_value=1e-4, max_value=10.0),
    count=st.integers(min_value=1, max_value=5),
    t=st.floats(min_value=0.0, max_value=100.0),
)
def test_identical_rates_match_erlang(rate, count, t):
    """Repeated rates must reduce to the Erlang CDF."""
    import math

    value = hypoexponential_cdf([rate] * count, t)
    if t <= 0:
        assert value == 0.0
        return
    erlang = 1.0 - sum(
        math.exp(-rate * t) * (rate * t) ** k / math.factorial(k) for k in range(count)
    )
    assert abs(value - min(1.0, max(0.0, erlang))) < 1e-7
