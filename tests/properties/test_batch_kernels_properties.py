"""Property tests pinning the vectorized kernels to their scalar oracles.

The batch hypoexponential CDF and the scipy-Dijkstra NCL metrics are
performance rewrites of pure-Python reference code; these tests assert
the rewrites are *numerically interchangeable* with the originals —
including on the adversarial inputs (near-duplicate rates, disconnected
graphs) that motivated the fallback machinery.
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core.ncl import _reference_ncl_metrics, ncl_metrics
from repro.graph.contact_graph import ContactGraph
from repro.graph.paths import (
    _reference_shortest_path_weights_from,
    shortest_path_weight_matrix,
    shortest_path_weights_from,
)
from repro.mathutils.hypoexponential import (
    hypoexponential_cdf,
    hypoexponential_cdf_batch,
    pad_rate_rows,
)

rate_row = st.lists(
    st.floats(min_value=1e-5, max_value=10.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=6,
)


@st.composite
def rate_rows_with_near_duplicates(draw):
    """Batches of rate tuples, a fraction perturbed into near-duplicates."""
    rows = draw(st.lists(rate_row, min_size=1, max_size=12))
    for row in rows:
        if len(row) >= 2 and draw(st.booleans()):
            jitter = draw(st.floats(min_value=-1e-9, max_value=1e-9))
            row[1] = row[0] * (1.0 + jitter)
    return rows


@settings(max_examples=150, deadline=None)
@given(rows=rate_rows_with_near_duplicates(), t=st.floats(min_value=0.0, max_value=1e4))
def test_batch_cdf_matches_scalar(rows, t):
    batch = hypoexponential_cdf_batch(rows, t)
    for row, value in zip(rows, batch):
        assert abs(value - hypoexponential_cdf(row, t)) < 1e-10


@settings(max_examples=60, deadline=None)
@given(
    rows=rate_rows_with_near_duplicates(),
    ts=st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=1, max_size=1),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_batch_cdf_matches_scalar_with_per_row_times(rows, ts, seed):
    rng = np.random.default_rng(seed)
    times = rng.uniform(0.0, 1e4, len(rows))
    batch = hypoexponential_cdf_batch(rows, times)
    for row, t, value in zip(rows, times, batch):
        assert abs(value - hypoexponential_cdf(row, float(t))) < 1e-10


@settings(max_examples=80, deadline=None)
@given(rows=st.lists(rate_row, min_size=1, max_size=8), t=st.floats(min_value=0.0, max_value=1e4))
def test_batch_cdf_accepts_padded_matrix_form(rows, t):
    ragged = hypoexponential_cdf_batch(rows, t)
    padded = hypoexponential_cdf_batch(pad_rate_rows(rows), t)
    np.testing.assert_array_equal(ragged, padded)


def _random_graph(num_nodes: int, edge_probability: float, seed: int) -> ContactGraph:
    rng = np.random.default_rng(seed)
    rates = np.zeros((num_nodes, num_nodes))
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            if rng.random() < edge_probability:
                rates[i, j] = rates[j, i] = rng.uniform(1e-4, 1.0)
    return ContactGraph.from_rate_matrix(rates)


@settings(max_examples=40, deadline=None)
@given(
    num_nodes=st.integers(min_value=2, max_value=14),
    edge_probability=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**16),
    budget=st.floats(min_value=0.5, max_value=1e4),
)
def test_scipy_ncl_metrics_match_reference(num_nodes, edge_probability, seed, budget):
    """The acceptance oracle: vectorized Eq. (3) == pure-Python Eq. (3)
    on random graphs, including disconnected ones.

    Tolerance note: the vectorized matrix evaluates each unordered pair
    once (p_ij = p_ji) while the reference sweeps every source row, so
    half the pairs are compared across *reversed* hop orders.  Near the
    closed form's separation threshold (adjacent rates within ~1e-6
    relative) its coefficients are large and cancelling, and either
    evaluation order carries a genuine ~1e-8 absolute error against the
    matrix-exponential truth — 1e-7 is the honest agreement bound, not
    1e-9 (hypothesis found rates separated by 5.7e-6 that exceed it).
    """
    graph = _random_graph(num_nodes, edge_probability, seed)
    fast = ncl_metrics(graph, budget)
    reference = _reference_ncl_metrics(graph, budget)
    np.testing.assert_allclose(fast, reference, atol=1e-7, rtol=0)


@settings(max_examples=40, deadline=None)
@given(
    num_nodes=st.integers(min_value=2, max_value=14),
    edge_probability=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**16),
    budget=st.floats(min_value=0.5, max_value=1e4),
)
def test_scipy_weight_vector_matches_reference(num_nodes, edge_probability, seed, budget):
    graph = _random_graph(num_nodes, edge_probability, seed)
    source = seed % num_nodes
    fast = shortest_path_weights_from(graph, source, budget)
    reference = _reference_shortest_path_weights_from(graph, source, budget)
    np.testing.assert_allclose(fast, reference, atol=1e-9, rtol=0)


@settings(max_examples=25, deadline=None)
@given(
    num_nodes=st.integers(min_value=2, max_value=12),
    edge_probability=st.floats(min_value=0.1, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**16),
    budget=st.floats(min_value=0.5, max_value=1e4),
)
def test_weight_matrix_rows_are_single_source_sweeps(num_nodes, edge_probability, seed, budget):
    graph = _random_graph(num_nodes, edge_probability, seed)
    matrix = shortest_path_weight_matrix(graph, budget)
    assert matrix.shape == (num_nodes, num_nodes)
    np.testing.assert_allclose(matrix, matrix.T, atol=1e-12)
    for source in range(num_nodes):
        # 1e-7, not 1e-9: rows mix pairs evaluated in both hop orders
        # (see the tolerance note on the NCL oracle test above).
        np.testing.assert_allclose(
            matrix[source],
            _reference_shortest_path_weights_from(graph, source, budget),
            atol=1e-7,
            rtol=0,
        )
