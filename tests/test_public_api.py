"""Public API surface tests."""

import importlib

import pytest

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_is_semver(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    @pytest.mark.parametrize(
        "module",
        [
            "repro.mathutils",
            "repro.traces",
            "repro.graph",
            "repro.routing",
            "repro.core",
            "repro.caching",
            "repro.sim",
            "repro.workload",
            "repro.metrics",
            "repro.experiments",
        ],
    )
    def test_subpackage_alls_resolve(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__, f"{module} lacks a module docstring"
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_quickstart_docstring_flow(self):
        """The package docstring's quickstart must actually work."""
        from repro import (
            IntentionalCaching,
            IntentionalConfig,
            Simulator,
            WorkloadConfig,
            load_preset_trace,
        )

        trace = load_preset_trace("mit_reality", node_factor=0.3, time_factor=0.1)
        scheme = IntentionalCaching(IntentionalConfig(num_ncls=4))
        result = Simulator(trace, scheme, WorkloadConfig()).run()
        assert 0.0 <= result.successful_ratio <= 1.0

    def test_every_public_scheme_has_distinct_name(self):
        from repro.caching import (
            BundleCache,
            CacheData,
            IntentionalCaching,
            NoCache,
            RandomCache,
        )

        names = {
            cls.name
            for cls in (IntentionalCaching, NoCache, RandomCache, CacheData, BundleCache)
        }
        assert len(names) == 5
