"""Run directories: save/load round-trip and report rendering."""

import dataclasses

import pytest

from repro.caching.nocache import NoCache
from repro.errors import ConfigurationError
from repro.experiments.runner import run_experiment
from repro.experiments.runstore import load_run, render_run_report, save_run
from repro.sim.simulator import SimulatorConfig
from repro.traces.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.units import DAY, HOUR, MEGABIT
from repro.workload.config import WorkloadConfig


@pytest.fixture(scope="module")
def experiment():
    trace = generate_synthetic_trace(
        SyntheticTraceConfig(
            name="runstore",
            num_nodes=10,
            duration=4 * DAY,
            total_contacts=1500,
            granularity=60.0,
            seed=2,
        )
    )
    workload = WorkloadConfig(mean_data_lifetime=8 * HOUR, mean_data_size=10 * MEGABIT)
    return run_experiment(
        trace,
        NoCache,
        workload,
        seeds=(1, 2),
        config=SimulatorConfig(profile=True, timeseries=True),
    )


class TestSaveLoad:
    def test_round_trip(self, experiment, tmp_path):
        run_dir = str(tmp_path / "run")
        save_run(experiment, run_dir)
        loaded = load_run(run_dir)
        assert loaded["manifest"] == experiment.manifest
        assert loaded["metrics"] == experiment.registry.snapshot()
        assert loaded["profile"].keys() == experiment.profile.keys()
        assert loaded["timeseries"] == experiment.timeseries
        assert loaded["result"]["aggregate"] == dataclasses.asdict(
            experiment.aggregate
        )
        assert loaded["trace_path"] is None  # tracing was off
        assert loaded["health_path"] is None  # serve-mode only

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_run(str(tmp_path / "absent"))

    def test_empty_directory_reports_gracefully(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert "(run directory is empty)" in render_run_report(str(empty))


class TestRenderReport:
    def test_sections_present(self, experiment, tmp_path):
        run_dir = str(tmp_path / "run")
        save_run(experiment, run_dir)
        report = render_run_report(run_dir)
        for heading in (
            "## Provenance",
            "## Metrics",
            "## Instrument registry",
            "## Profile",
            "## Time series",
        ):
            assert heading in report
        assert experiment.manifest["config_hash"] in report
        # mean ± 95% CI rendering of the aggregate
        assert "±" in report

    def test_health_log_renders_live_health_section(self, experiment, tmp_path):
        from pathlib import Path

        from repro.obs.health import HealthReport, HealthSnapshot, write_health_log

        run_dir = str(tmp_path / "run")
        save_run(experiment, run_dir)
        snapshot = HealthSnapshot(
            index=0, start=0.0, end=3600.0,
            queries_issued=10, queries_satisfied=4, duplicate_deliveries=0,
            late_deliveries=0, cache_lookups=10, cache_hits=4,
            data_generated=2, responses_delivered=4, backlog=6,
            backlog_delta=6, success_ratio=0.4, cache_hit_ratio=0.4,
            queries_per_sim_second=10 / 3600.0, delay_p50=30.0,
            delay_p95=120.0, delay_p99=200.0, ncl_load_cv=0.0,
            flash_crowd=False,
        )
        report = HealthReport(
            snapshots=(snapshot,), transitions=(), anomalies=(), flash_window=None
        )
        write_health_log(Path(run_dir) / "health.jsonl", report)
        rendered = render_run_report(run_dir)
        assert "## Live health" in rendered
        assert "1 windows" in rendered
        assert load_run(run_dir)["health_path"] is not None

    def test_profile_tree_is_checked_before_rendering(self, experiment, tmp_path):
        run_dir = str(tmp_path / "run")
        save_run(experiment, run_dir)
        import json
        import os

        profile_path = os.path.join(run_dir, "profile.json")
        bad = {
            "outer": {"calls": 1.0, "own": 0.0, "cum": 1.0},
            "outer/child": {"calls": 1.0, "own": 5.0, "cum": 5.0},
        }
        with open(profile_path, "w") as handle:
            json.dump(bad, handle)
        with pytest.raises(ValueError, match="inconsistent"):
            render_run_report(run_dir)
