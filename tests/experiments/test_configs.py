"""Unit tests for experiment scales and factories."""

import pytest

from repro.caching.intentional import IntentionalCaching
from repro.core.replacement import UtilityKnapsackPolicy
from repro.errors import ConfigurationError
from repro.experiments.configs import (
    BENCH_SCALE,
    PAPER_SCALE,
    SMOKE_SCALE,
    ExperimentScale,
    load_scaled_trace,
    replacement_factories,
    scheme_factories,
)
from repro.units import HOUR


class TestScales:
    def test_presets_ordered_by_size(self):
        assert SMOKE_SCALE.node_factor < BENCH_SCALE.node_factor <= PAPER_SCALE.node_factor
        assert SMOKE_SCALE.time_factor < PAPER_SCALE.time_factor

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentScale("bad", node_factor=1.0, time_factor=1.0, seeds=())
        with pytest.raises(ConfigurationError):
            ExperimentScale("bad", node_factor=0.0, time_factor=1.0, seeds=(1,))

    def test_load_scaled_trace(self):
        trace = load_scaled_trace("infocom05", SMOKE_SCALE)
        assert trace.num_nodes < 41  # scaled down


class TestFactories:
    def test_five_schemes(self):
        factories = scheme_factories(num_ncls=3, ncl_time_budget=1 * HOUR)
        assert set(factories) == {
            "intentional",
            "nocache",
            "randomcache",
            "cachedata",
            "bundlecache",
        }
        scheme = factories["intentional"]()
        assert isinstance(scheme, IntentionalCaching)
        assert scheme.config.num_ncls == 3

    def test_factories_make_fresh_instances(self):
        factories = scheme_factories(num_ncls=2, ncl_time_budget=1 * HOUR)
        assert factories["intentional"]() is not factories["intentional"]()

    def test_replacement_override(self):
        factories = scheme_factories(
            num_ncls=2,
            ncl_time_budget=1 * HOUR,
            replacement=lambda: UtilityKnapsackPolicy(probabilistic=False),
        )
        scheme = factories["intentional"]()
        assert scheme.replacement.probabilistic is False

    def test_four_replacement_policies(self):
        assert set(replacement_factories()) == {
            "utility_knapsack",
            "fifo",
            "lru",
            "gds",
        }
        for factory in replacement_factories().values():
            assert factory() is not factory()
