"""Unit tests for the experiment runner."""

import pytest

from repro.caching.nocache import NoCache
from repro.experiments.runner import run_comparison, run_repeated, run_single
from repro.traces.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.units import DAY, HOUR, MEGABIT
from repro.workload.config import WorkloadConfig


@pytest.fixture(scope="module")
def trace():
    return generate_synthetic_trace(
        SyntheticTraceConfig(
            name="runner",
            num_nodes=10,
            duration=4 * DAY,
            total_contacts=1500,
            granularity=60.0,
            seed=2,
        )
    )


@pytest.fixture(scope="module")
def workload():
    return WorkloadConfig(mean_data_lifetime=8 * HOUR, mean_data_size=10 * MEGABIT)


class TestRunners:
    def test_run_single(self, trace, workload):
        result = run_single(trace, NoCache(), workload, seed=3)
        assert result.seed == 3
        assert result.name == "nocache"

    def test_run_repeated_aggregates_seeds(self, trace, workload):
        agg = run_repeated(trace, NoCache, workload, seeds=(1, 2, 3))
        assert agg.runs == 3
        assert 0.0 <= agg.successful_ratio <= 1.0

    def test_run_comparison_covers_all_factories(self, trace, workload):
        comparison = run_comparison(
            trace, {"a": NoCache, "b": NoCache}, workload, seeds=(1,)
        )
        assert set(comparison) == {"a", "b"}

    def test_paired_runs_identical_for_same_scheme(self, trace, workload):
        """Same factory + same seeds must give identical aggregates —
        the paired-comparison property the evaluation relies on."""
        a = run_repeated(trace, NoCache, workload, seeds=(5,))
        b = run_repeated(trace, NoCache, workload, seeds=(5,))
        assert a.successful_ratio == b.successful_ratio
        assert a.queries_issued == b.queries_issued
