"""Unit tests for the experiment runner."""

import dataclasses
import math
import os

import pytest

from repro.caching.nocache import NoCache
from repro.errors import SimulationError
from repro.experiments.runner import (
    run_comparison,
    run_experiment,
    run_repeated,
    run_single,
)
from repro.sim.simulator import SimulatorConfig
from repro.traces.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.units import DAY, HOUR, MEGABIT
from repro.workload.config import WorkloadConfig


class CrashOnce:
    """Picklable scheme factory that kills its worker process on first
    use (simulating an OOM-killed/segfaulting worker), then behaves like
    ``NoCache``.  The sentinel file makes the crash happen exactly once
    across all processes."""

    def __init__(self, sentinel_path: str):
        self.sentinel_path = sentinel_path

    def __call__(self):
        try:
            with open(self.sentinel_path, "x"):
                pass
        except FileExistsError:
            return NoCache()
        os._exit(1)  # hard kill: no exception, the pool just breaks


class AlwaysCrash:
    """Factory that kills every worker that touches it."""

    def __call__(self):  # pragma: no cover - dies before returning
        os._exit(1)


class ExplodingFactory:
    """Factory that raises a deterministic (picklable) task error."""

    def __call__(self):
        raise RuntimeError("deterministic task failure")


@pytest.fixture(scope="module")
def trace():
    return generate_synthetic_trace(
        SyntheticTraceConfig(
            name="runner",
            num_nodes=10,
            duration=4 * DAY,
            total_contacts=1500,
            granularity=60.0,
            seed=2,
        )
    )


@pytest.fixture(scope="module")
def workload():
    return WorkloadConfig(mean_data_lifetime=8 * HOUR, mean_data_size=10 * MEGABIT)


class TestRunners:
    def test_run_single(self, trace, workload):
        result = run_single(trace, NoCache(), workload, seed=3)
        assert result.seed == 3
        assert result.name == "nocache"

    def test_run_repeated_aggregates_seeds(self, trace, workload):
        agg = run_repeated(trace, NoCache, workload, seeds=(1, 2, 3))
        assert agg.runs == 3
        assert 0.0 <= agg.successful_ratio <= 1.0

    def test_run_comparison_covers_all_factories(self, trace, workload):
        comparison = run_comparison(
            trace, {"a": NoCache, "b": NoCache}, workload, seeds=(1,)
        )
        assert set(comparison) == {"a", "b"}

    def test_paired_runs_identical_for_same_scheme(self, trace, workload):
        """Same factory + same seeds must give identical aggregates —
        the paired-comparison property the evaluation relies on."""
        a = run_repeated(trace, NoCache, workload, seeds=(5,))
        b = run_repeated(trace, NoCache, workload, seeds=(5,))
        assert a.successful_ratio == b.successful_ratio
        assert a.queries_issued == b.queries_issued


def assert_bitwise_identical(a, b):
    """Field-by-field equality of aggregate dataclasses, NaN-tolerant
    (a delay of NaN means 'no query satisfied' and must match NaN)."""
    assert type(a) is type(b)
    for field in dataclasses.fields(a):
        x, y = getattr(a, field.name), getattr(b, field.name)
        if isinstance(x, float) and math.isnan(x):
            assert isinstance(y, float) and math.isnan(y), field.name
        else:
            assert x == y, field.name


class TestParallelRunners:
    def test_parallel_run_repeated_bitwise_identical_to_serial(self, trace, workload):
        """workers=4 must reproduce the serial aggregate exactly: every
        run is a pure function of its seed, and results are collected in
        seed order on both paths."""
        serial = run_repeated(trace, NoCache, workload, seeds=(1, 2, 3, 4))
        parallel = run_repeated(trace, NoCache, workload, seeds=(1, 2, 3, 4), workers=4)
        assert_bitwise_identical(serial, parallel)

    def test_parallel_run_comparison_matches_serial(self, trace, workload):
        factories = {"a": NoCache, "b": NoCache}
        serial = run_comparison(trace, factories, workload, seeds=(1, 2))
        parallel = run_comparison(trace, factories, workload, seeds=(1, 2), workers=4)
        assert set(serial) == set(parallel)
        for name in serial:
            assert_bitwise_identical(serial[name], parallel[name])

    def test_single_seed_skips_the_pool(self, trace, workload):
        # workers > 1 with one task stays serial (no pool overhead).
        agg = run_repeated(trace, NoCache, workload, seeds=(9,), workers=8)
        assert_bitwise_identical(agg, run_repeated(trace, NoCache, workload, seeds=(9,)))

    def test_workers_none_and_one_are_serial(self, trace, workload):
        a = run_repeated(trace, NoCache, workload, seeds=(1, 2), workers=None)
        b = run_repeated(trace, NoCache, workload, seeds=(1, 2), workers=1)
        assert_bitwise_identical(a, b)


class TestWorkerCrashRecovery:
    """Satellite 4: a worker crash must not scramble the seed→run
    mapping.  Seeds are pinned inside each task tuple, so the retried
    tasks reproduce exactly what the crashed pool would have computed."""

    def test_crash_retry_is_bitwise_identical_to_serial(
        self, trace, workload, tmp_path
    ):
        """Fault injection: the first task hard-kills its worker, which
        breaks the whole pool mid-flight.  The runner must retry the
        unfinished tasks on a fresh pool and still produce the exact
        serial aggregate — no seed re-derivation in completion order."""
        reference = run_repeated(trace, NoCache, workload, seeds=(1, 2, 3, 4))
        crashing = CrashOnce(str(tmp_path / "crashed.sentinel"))
        recovered = run_repeated(
            trace, crashing, workload, seeds=(1, 2, 3, 4), workers=2
        )
        assert_bitwise_identical(reference, recovered)

    def test_crash_retry_in_comparison_grid(self, trace, workload, tmp_path):
        factories = {"a": CrashOnce(str(tmp_path / "a.sentinel")), "b": NoCache}
        reference = run_comparison(
            trace, {"a": NoCache, "b": NoCache}, workload, seeds=(1, 2)
        )
        recovered = run_comparison(trace, factories, workload, seeds=(1, 2), workers=2)
        for name in reference:
            assert_bitwise_identical(reference[name], recovered[name])

    def test_persistent_crashes_exhaust_retries(self, trace, workload):
        with pytest.raises(SimulationError, match="worker crash"):
            run_repeated(
                trace,
                AlwaysCrash(),
                workload,
                seeds=(1, 2),
                workers=2,
                max_retries=1,
            )

    def test_deterministic_task_errors_propagate_without_retry(
        self, trace, workload
    ):
        # A task exception is not a crash: it is deterministic, so
        # retrying would just re-raise it more slowly.
        with pytest.raises(RuntimeError, match="deterministic task failure"):
            run_repeated(
                trace, ExplodingFactory(), workload, seeds=(1, 2), workers=2
            )


def _strip_times(profile):
    """Deterministic view of a profile: call counts only (span wall-clock
    times legitimately differ between runs and machines)."""
    return {path: stats["calls"] for path, stats in profile.items()}


class TestRunExperiment:
    """run_experiment: telemetry and provenance riding along the results."""

    def test_serial_experiment_carries_telemetry(self, trace, workload):
        experiment = run_experiment(
            trace,
            NoCache,
            workload,
            seeds=(1, 2),
            config=SimulatorConfig(profile=True, timeseries=True),
        )
        assert experiment.aggregate.runs == 2
        assert len(experiment.results) == 2
        snapshot = experiment.registry.snapshot()
        assert snapshot["sim.queries_issued"] == experiment.aggregate.queries_issued * 2
        assert "sim.contact" in experiment.profile
        assert {row["seed"] for row in experiment.timeseries} == {1, 2}
        assert experiment.manifest["seeds"] == [1, 2]
        assert experiment.manifest["config"]["simulator"]["profile"] is True

    def test_results_match_run_repeated_bitwise(self, trace, workload):
        """Turning telemetry on must not perturb the simulation: the
        aggregate equals the plain run_repeated aggregate exactly."""
        experiment = run_experiment(
            trace,
            NoCache,
            workload,
            seeds=(1, 2, 3),
            config=SimulatorConfig(profile=True, timeseries=True),
        )
        reference = run_repeated(trace, NoCache, workload, seeds=(1, 2, 3))
        assert_bitwise_identical(experiment.aggregate, reference)

    def test_parallel_merge_equals_serial(self, trace, workload):
        """Satellite: per-worker registries/profiles/time-series merged
        across a 4-worker pool must match the serial sweep on every
        deterministic part (wall-clock span times excluded)."""
        config = SimulatorConfig(profile=True, timeseries=True)
        serial = run_experiment(
            trace, NoCache, workload, seeds=(1, 2, 3, 4), config=config
        )
        parallel = run_experiment(
            trace, NoCache, workload, seeds=(1, 2, 3, 4), config=config, workers=4
        )
        for a, b in zip(serial.results, parallel.results):
            assert_bitwise_identical(a, b)
        assert serial.registry.snapshot() == parallel.registry.snapshot()
        assert _strip_times(serial.profile) == _strip_times(parallel.profile)
        assert serial.timeseries == parallel.timeseries
        assert serial.manifest["config_hash"] == parallel.manifest["config_hash"]

    def test_config_hash_ignores_seed_and_trace_path(self, trace, workload):
        first = run_experiment(
            trace, NoCache, workload, seeds=(1,),
            config=SimulatorConfig(seed=1, trace_path="/tmp/a.jsonl"),
        )
        second = run_experiment(
            trace, NoCache, workload, seeds=(7, 8),
            config=SimulatorConfig(seed=99, trace_path=None),
        )
        assert first.manifest["config_hash"] == second.manifest["config_hash"]

    def test_scheme_info_lands_in_manifest(self, trace, workload):
        experiment = run_experiment(
            trace, NoCache, workload, seeds=(1,),
            scheme_info={"name": "nocache", "k": 4},
        )
        assert experiment.manifest["config"]["scheme"] == {"name": "nocache", "k": 4}
        default = run_experiment(trace, NoCache, workload, seeds=(1,))
        assert default.manifest["config"]["scheme"] == "nocache"
