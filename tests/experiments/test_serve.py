"""Tests for the long-lived batch replay (``repro serve``)."""

import dataclasses
import math

import pytest

from repro.caching.nocache import NoCache
from repro.errors import ConfigurationError
from repro.experiments.serve import (
    BatchResult,
    ServeOutcome,
    ServeSession,
    serve_repeated,
    summarize_throughput,
)
from repro.obs.health import HealthMonitor, check_health_consistency
from repro.obs.slo import SLORule, parse_slo_rule
from repro.sim.dynamics import DynamicsConfig, DynamicsEvent
from repro.sim.simulator import Simulator, SimulatorConfig
from repro.traces.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.units import DAY, HOUR, MEGABIT
from repro.workload.config import WorkloadConfig


def serve_trace(seed=4):
    return generate_synthetic_trace(
        SyntheticTraceConfig(
            name="serve-tiny",
            num_nodes=12,
            duration=6 * DAY,
            total_contacts=2500,
            granularity=60.0,
            seed=seed,
        )
    )


def workload(**overrides):
    return WorkloadConfig(
        mean_data_lifetime=12 * HOUR, mean_data_size=20 * MEGABIT, **overrides
    )


def bitwise_equal(a, b):
    """Recursive bitwise equality: floats compare by their IEEE-754
    bytes (NaN == NaN when the bit patterns match, +0.0 != -0.0),
    containers and dataclasses recurse."""
    import struct

    if isinstance(a, float) and isinstance(b, float):
        return struct.pack("<d", a) == struct.pack("<d", b)
    if dataclasses.is_dataclass(a) and dataclasses.is_dataclass(b):
        return type(a) is type(b) and all(
            bitwise_equal(getattr(a, f.name), getattr(b, f.name))
            for f in dataclasses.fields(a)
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            bitwise_equal(x, y) for x, y in zip(a, b)
        )
    return a == b


def results_equal(a, b):
    """SimulationResult equality that treats NaN == NaN (an idle batch
    leaves ``mean_access_delay`` NaN in both runs; dataclass ``==``
    would call that a mismatch)."""
    for field in dataclasses.fields(a):
        va, vb = getattr(a, field.name), getattr(b, field.name)
        if isinstance(va, float) and math.isnan(va) and math.isnan(vb):
            continue
        if va != vb:
            return False
    return True


class TestServeSession:
    def test_batches_cover_contiguous_windows(self):
        session = ServeSession(serve_trace(), NoCache(), workload())
        first = session.run_batch()
        second = session.run_batch(rounds=2)
        period = session.query_period
        warmup = session.simulator.warmup_end
        assert first.start == warmup
        assert first.end == warmup + period
        assert second.start == first.end
        assert second.end == warmup + 3 * period
        assert session.batches_run == 2
        session.finalize()

    def test_batches_issue_queries(self):
        session = ServeSession(serve_trace(), NoCache(), workload())
        batches = [session.run_batch() for _ in range(4)]
        assert sum(b.queries_issued for b in batches) > 0
        assert all(b.wall_seconds >= 0.0 for b in batches)
        result = session.finalize()
        assert result.queries_issued == sum(b.queries_issued for b in batches)

    def test_session_outlives_the_recorded_trace(self):
        """The whole point of serve mode: batches keep running after the
        trace's own evaluation window ends, by cycling its contacts."""
        trace = serve_trace()
        session = ServeSession(trace, NoCache(), workload())
        rounds_in_trace = int(
            (trace.end_time - session.simulator.warmup_end) / session.query_period
        )
        batches = [session.run_batch() for _ in range(rounds_in_trace + 4)]
        assert batches[-1].end > trace.end_time
        tail = sum(b.queries_issued for b in batches[rounds_in_trace:])
        assert tail > 0
        session.finalize()

    def test_defaults_to_streaming_collector(self):
        session = ServeSession(serve_trace(), NoCache(), workload())
        assert session.simulator.metrics.streaming
        session.finalize()

    def test_run_batch_after_finalize_rejected(self):
        session = ServeSession(serve_trace(), NoCache(), workload())
        session.finalize()
        with pytest.raises(ConfigurationError):
            session.run_batch()

    def test_zero_round_batch_rejected(self):
        session = ServeSession(serve_trace(), NoCache(), workload())
        with pytest.raises(ConfigurationError):
            session.run_batch(rounds=0)
        session.finalize()

    def test_dynamics_incompatible_with_serving(self):
        dynamics = DynamicsConfig(events=(DynamicsEvent("leave", 0.5, node=1),))
        config = SimulatorConfig(streaming_metrics=True, dynamics=dynamics)
        with pytest.raises(ConfigurationError):
            ServeSession(serve_trace(), NoCache(), workload(), config)

    def test_run_and_serve_are_exclusive(self):
        sim = Simulator(serve_trace(), NoCache(), workload(), SimulatorConfig(seed=1))
        sim.run()
        with pytest.raises(ConfigurationError):
            sim.start_session()


class TestBatchResult:
    def test_queries_per_second(self):
        batch = BatchResult(0, 0.0, 1.0, 500, 10, 0, 0, 3, wall_seconds=0.25)
        assert batch.queries_per_second == 2000.0

    def test_idle_batch_reports_zero(self):
        batch = BatchResult(0, 0.0, 1.0, 0, 0, 0, 0, 0, wall_seconds=0.25)
        assert batch.queries_per_second == 0.0

    def test_deterministic_fields_exclude_wall_clock(self):
        a = BatchResult(0, 0.0, 1.0, 5, 2, 1, 0, 3, wall_seconds=0.1)
        b = dataclasses.replace(a, wall_seconds=99.0)
        assert a.deterministic_fields == b.deterministic_fields

    def test_summarize_throughput(self):
        batches = [
            BatchResult(0, 0.0, 1.0, 100, 40, 0, 0, 5, wall_seconds=0.5),
            BatchResult(1, 1.0, 2.0, 300, 60, 0, 0, 2, wall_seconds=0.5),
        ]
        summary = summarize_throughput(batches)
        assert summary["batches"] == 2
        assert summary["queries_issued"] == 400
        assert summary["queries_satisfied"] == 100
        assert summary["queries_per_second"] == pytest.approx(400.0)

    def test_summarize_empty(self):
        """Satellite regression: an empty batch list must roll up to all
        zeros, never raise (rates have empty denominators)."""
        summary = summarize_throughput([])
        assert summary["batches"] == 0
        assert summary["queries_per_second"] == 0.0
        assert summary["queries_per_sim_second"] == 0.0
        assert summary["success_ratio"] == 0.0
        assert summary["sim_seconds"] == 0

    def test_summarize_zero_duration_batches(self):
        """Satellite regression: batches with zero wall-clock AND zero
        simulated duration must not divide by zero."""
        batches = [
            BatchResult(0, 5.0, 5.0, 10, 4, 0, 0, 1, wall_seconds=0.0),
            BatchResult(1, 5.0, 5.0, 0, 0, 0, 0, 1, wall_seconds=0.0),
        ]
        summary = summarize_throughput(batches)
        assert summary["queries_issued"] == 10
        assert summary["queries_per_second"] == 0.0
        assert summary["queries_per_sim_second"] == 0.0
        assert summary["success_ratio"] == pytest.approx(0.4)

    def test_summarize_success_and_sim_rate(self):
        batches = [
            BatchResult(0, 0.0, 10.0, 100, 40, 0, 0, 5, wall_seconds=0.5),
            BatchResult(1, 10.0, 20.0, 300, 60, 0, 0, 2, wall_seconds=0.5),
        ]
        summary = summarize_throughput(batches)
        assert summary["success_ratio"] == pytest.approx(0.25)
        assert summary["sim_seconds"] == pytest.approx(20.0)
        assert summary["queries_per_sim_second"] == pytest.approx(20.0)


class TestServeRepeated:
    def test_workers_match_serial_bitwise(self):
        """workers=4 must reproduce the serial serve outcomes bit for bit
        on every deterministic field (satellite e's batch contract)."""
        trace = serve_trace()
        seeds = [1, 2, 3, 4]
        serial = serve_repeated(
            trace, NoCache, workload(), seeds=seeds, batches=3
        )
        parallel = serve_repeated(
            trace, NoCache, workload(), seeds=seeds, batches=3, workers=4
        )
        assert len(serial) == len(parallel) == len(seeds)
        for out_s, out_p in zip(serial, parallel):
            assert results_equal(out_s.result, out_p.result)
            assert [b.deterministic_fields for b in out_s.batches] == [
                b.deterministic_fields for b in out_p.batches
            ]

    def test_seeds_are_pinned_in_order(self):
        outcomes = serve_repeated(
            serve_trace(), NoCache, workload(), seeds=[7, 8], batches=1
        )
        assert [outcome.result.seed for outcome in outcomes] == [7, 8]

    def test_unmonitored_outcome_has_no_health(self):
        outcomes = serve_repeated(
            serve_trace(), NoCache, workload(), seeds=[7], batches=1
        )
        assert isinstance(outcomes[0], ServeOutcome)
        assert outcomes[0].health is None

    def test_bursty_arrivals_served(self):
        wl = workload(arrival_process="bursty")
        outcomes = serve_repeated(
            serve_trace(), NoCache, wl, seeds=[5], batches=4
        )
        result, batches = outcomes[0].result, outcomes[0].batches
        assert result.queries_issued == sum(b.queries_issued for b in batches)
        assert outcomes[0].memory == ()  # no mem_profile: no samples


class TestServeHealth:
    """Tentpole: live health snapshots riding along serve sessions."""

    RULES = (
        SLORule("tight", "success_ratio", ">=", 0.99, sustain=1),
        SLORule("lenient_backlog", "backlog", "<=", 1e9, sustain=1),
    )

    def test_snapshots_tile_the_session(self):
        monitor = HealthMonitor()
        session = ServeSession(serve_trace(), NoCache(), workload(), health=monitor)
        batches = [session.run_batch() for _ in range(4)]
        session.finalize()
        report = monitor.report()
        assert len(report.snapshots) == 4
        for batch, snap in zip(batches, report.snapshots):
            assert (snap.index, snap.start, snap.end) == (
                batch.index,
                batch.start,
                batch.end,
            )
            assert snap.queries_issued == batch.queries_issued
            assert snap.queries_satisfied == batch.queries_satisfied
            assert snap.backlog == batch.pending_queries

    def test_snapshot_deltas_sum_to_collector_totals(self):
        monitor = HealthMonitor()
        session = ServeSession(serve_trace(), NoCache(), workload(), health=monitor)
        for _ in range(5):
            session.run_batch()
        totals = session.simulator.metrics.totals()
        result = session.finalize()
        report = monitor.report()
        check_health_consistency(report, totals, baseline=monitor.baseline)
        assert sum(s.queries_issued for s in report.snapshots) == result.queries_issued
        assert (
            sum(s.queries_satisfied for s in report.snapshots)
            == result.queries_satisfied
        )

    def test_health_matches_serial_vs_workers_bitwise(self):
        """The tentpole determinism contract: health snapshots, SLO
        transitions and anomalies are simulated-time functions only, so
        workers=4 reproduces the serial stream bit for bit."""
        trace = serve_trace()
        seeds = [1, 2, 3, 4]
        serial = serve_repeated(
            trace, NoCache, workload(), seeds=seeds, batches=3,
            slo_rules=self.RULES,
        )
        parallel = serve_repeated(
            trace, NoCache, workload(), seeds=seeds, batches=3, workers=4,
            slo_rules=self.RULES,
        )
        for out_s, out_p in zip(serial, parallel):
            assert out_s.health is not None and out_p.health is not None
            # IEEE-754 byte comparison: NaN == NaN when the bit patterns
            # match, and any drift in a real value breaks it.
            assert bitwise_equal(out_s.health, out_p.health)

    def test_always_breaching_rule_fires_deterministically(self):
        """An unreachable floor must violate on the first evidence-bearing
        window, in both serial and parallel runs."""
        rule = SLORule("impossible", "success_ratio", ">=", 2.0, sustain=1)
        outcomes = serve_repeated(
            serve_trace(), NoCache, workload(), seeds=[7], batches=3,
            slo_rules=(rule,),
        )
        health = outcomes[0].health
        assert health is not None
        violated = [t for t in health.transitions if t.kind == "slo.violated"]
        assert len(violated) == 1
        assert violated[0].rule == "impossible"
        first_evidence = next(
            s for s in health.snapshots if s.queries_issued > 0
        )
        assert violated[0].time == first_evidence.end

    def test_flash_crowd_window_annotated(self):
        """Flash-crowd serves record the surge window and mark the
        overlapping snapshots (the first replay cycle only)."""
        wl = workload(
            arrival_process="flash_crowd",
            arrival_params={"at": 0.0, "duration": 0.5, "probability": 0.9},
        )
        outcomes = serve_repeated(
            serve_trace(), NoCache, wl, seeds=[5], batches=4,
            monitor_health=True,
        )
        health = outcomes[0].health
        assert health is not None
        assert health.flash_window is not None
        start, end = health.flash_window
        assert start < end
        flagged = [s for s in health.snapshots if s.flash_crowd]
        assert flagged, "no snapshot overlapped the surge window"
        for snap in health.snapshots:
            assert snap.flash_crowd == (snap.start < end and start < snap.end)

    def test_slo_cli_specs_work_through_serve(self):
        outcomes = serve_repeated(
            serve_trace(), NoCache, workload(), seeds=[7], batches=2,
            slo_rules=(parse_slo_rule("backlog<=1e9"),),
        )
        health = outcomes[0].health
        assert health is not None
        assert health.transitions == ()
