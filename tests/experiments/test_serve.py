"""Tests for the long-lived batch replay (``repro serve``)."""

import dataclasses
import math

import pytest

from repro.caching.nocache import NoCache
from repro.errors import ConfigurationError
from repro.experiments.serve import (
    BatchResult,
    ServeSession,
    serve_repeated,
    summarize_throughput,
)
from repro.sim.dynamics import DynamicsConfig, DynamicsEvent
from repro.sim.simulator import Simulator, SimulatorConfig
from repro.traces.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.units import DAY, HOUR, MEGABIT
from repro.workload.config import WorkloadConfig


def serve_trace(seed=4):
    return generate_synthetic_trace(
        SyntheticTraceConfig(
            name="serve-tiny",
            num_nodes=12,
            duration=6 * DAY,
            total_contacts=2500,
            granularity=60.0,
            seed=seed,
        )
    )


def workload(**overrides):
    return WorkloadConfig(
        mean_data_lifetime=12 * HOUR, mean_data_size=20 * MEGABIT, **overrides
    )


def results_equal(a, b):
    """SimulationResult equality that treats NaN == NaN (an idle batch
    leaves ``mean_access_delay`` NaN in both runs; dataclass ``==``
    would call that a mismatch)."""
    for field in dataclasses.fields(a):
        va, vb = getattr(a, field.name), getattr(b, field.name)
        if isinstance(va, float) and math.isnan(va) and math.isnan(vb):
            continue
        if va != vb:
            return False
    return True


class TestServeSession:
    def test_batches_cover_contiguous_windows(self):
        session = ServeSession(serve_trace(), NoCache(), workload())
        first = session.run_batch()
        second = session.run_batch(rounds=2)
        period = session.query_period
        warmup = session.simulator.warmup_end
        assert first.start == warmup
        assert first.end == warmup + period
        assert second.start == first.end
        assert second.end == warmup + 3 * period
        assert session.batches_run == 2
        session.finalize()

    def test_batches_issue_queries(self):
        session = ServeSession(serve_trace(), NoCache(), workload())
        batches = [session.run_batch() for _ in range(4)]
        assert sum(b.queries_issued for b in batches) > 0
        assert all(b.wall_seconds >= 0.0 for b in batches)
        result = session.finalize()
        assert result.queries_issued == sum(b.queries_issued for b in batches)

    def test_session_outlives_the_recorded_trace(self):
        """The whole point of serve mode: batches keep running after the
        trace's own evaluation window ends, by cycling its contacts."""
        trace = serve_trace()
        session = ServeSession(trace, NoCache(), workload())
        rounds_in_trace = int(
            (trace.end_time - session.simulator.warmup_end) / session.query_period
        )
        batches = [session.run_batch() for _ in range(rounds_in_trace + 4)]
        assert batches[-1].end > trace.end_time
        tail = sum(b.queries_issued for b in batches[rounds_in_trace:])
        assert tail > 0
        session.finalize()

    def test_defaults_to_streaming_collector(self):
        session = ServeSession(serve_trace(), NoCache(), workload())
        assert session.simulator.metrics.streaming
        session.finalize()

    def test_run_batch_after_finalize_rejected(self):
        session = ServeSession(serve_trace(), NoCache(), workload())
        session.finalize()
        with pytest.raises(ConfigurationError):
            session.run_batch()

    def test_zero_round_batch_rejected(self):
        session = ServeSession(serve_trace(), NoCache(), workload())
        with pytest.raises(ConfigurationError):
            session.run_batch(rounds=0)
        session.finalize()

    def test_dynamics_incompatible_with_serving(self):
        dynamics = DynamicsConfig(events=(DynamicsEvent("leave", 0.5, node=1),))
        config = SimulatorConfig(streaming_metrics=True, dynamics=dynamics)
        with pytest.raises(ConfigurationError):
            ServeSession(serve_trace(), NoCache(), workload(), config)

    def test_run_and_serve_are_exclusive(self):
        sim = Simulator(serve_trace(), NoCache(), workload(), SimulatorConfig(seed=1))
        sim.run()
        with pytest.raises(ConfigurationError):
            sim.start_session()


class TestBatchResult:
    def test_queries_per_second(self):
        batch = BatchResult(0, 0.0, 1.0, 500, 10, 0, 0, 3, wall_seconds=0.25)
        assert batch.queries_per_second == 2000.0

    def test_idle_batch_reports_zero(self):
        batch = BatchResult(0, 0.0, 1.0, 0, 0, 0, 0, 0, wall_seconds=0.25)
        assert batch.queries_per_second == 0.0

    def test_deterministic_fields_exclude_wall_clock(self):
        a = BatchResult(0, 0.0, 1.0, 5, 2, 1, 0, 3, wall_seconds=0.1)
        b = dataclasses.replace(a, wall_seconds=99.0)
        assert a.deterministic_fields == b.deterministic_fields

    def test_summarize_throughput(self):
        batches = [
            BatchResult(0, 0.0, 1.0, 100, 40, 0, 0, 5, wall_seconds=0.5),
            BatchResult(1, 1.0, 2.0, 300, 60, 0, 0, 2, wall_seconds=0.5),
        ]
        summary = summarize_throughput(batches)
        assert summary["batches"] == 2
        assert summary["queries_issued"] == 400
        assert summary["queries_satisfied"] == 100
        assert summary["queries_per_second"] == pytest.approx(400.0)

    def test_summarize_empty(self):
        assert summarize_throughput([])["queries_per_second"] == 0.0


class TestServeRepeated:
    def test_workers_match_serial_bitwise(self):
        """workers=4 must reproduce the serial serve outcomes bit for bit
        on every deterministic field (satellite e's batch contract)."""
        trace = serve_trace()
        seeds = [1, 2, 3, 4]
        serial = serve_repeated(
            trace, NoCache, workload(), seeds=seeds, batches=3
        )
        parallel = serve_repeated(
            trace, NoCache, workload(), seeds=seeds, batches=3, workers=4
        )
        assert len(serial) == len(parallel) == len(seeds)
        for (res_s, batches_s), (res_p, batches_p) in zip(serial, parallel):
            assert results_equal(res_s, res_p)
            assert [b.deterministic_fields for b in batches_s] == [
                b.deterministic_fields for b in batches_p
            ]

    def test_seeds_are_pinned_in_order(self):
        outcomes = serve_repeated(
            serve_trace(), NoCache, workload(), seeds=[7, 8], batches=1
        )
        assert [result.seed for result, _ in outcomes] == [7, 8]

    def test_bursty_arrivals_served(self):
        wl = workload(arrival_process="bursty")
        outcomes = serve_repeated(
            serve_trace(), NoCache, wl, seeds=[5], batches=4
        )
        result, batches = outcomes[0]
        assert result.queries_issued == sum(b.queries_issued for b in batches)
