"""Unit tests for the benchmark regression guard's comparison logic."""

import json

from repro.experiments.benchguard import compare_against_baseline, load_benchmark_means


class TestCompare:
    def test_within_threshold_passes(self):
        rows = compare_against_baseline({"k": 1.2}, {"k": 1.0}, threshold=1.5)
        assert rows == [("k", 1.2, 1.0, False)]

    def test_regression_beyond_threshold_fails(self):
        rows = compare_against_baseline({"k": 1.6}, {"k": 1.0}, threshold=1.5)
        assert rows[0][3] is True

    def test_new_benchmark_without_baseline_never_fails(self):
        rows = compare_against_baseline({"new": 99.0}, {}, threshold=1.5)
        assert rows == [("new", 99.0, None, False)]

    def test_rows_sorted_by_name(self):
        rows = compare_against_baseline({"b": 1.0, "a": 1.0}, {}, threshold=1.5)
        assert [row[0] for row in rows] == ["a", "b"]


class TestLoadMeans:
    def test_extracts_means_from_pytest_benchmark_json(self, tmp_path):
        report = {
            "benchmarks": [
                {"name": "test_bench_kernel_x", "stats": {"mean": 0.25, "min": 0.2}},
                {"name": "test_bench_kernel_y", "stats": {"mean": 1.5}},
            ]
        }
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(report))
        assert load_benchmark_means(path) == {
            "test_bench_kernel_x": 0.25,
            "test_bench_kernel_y": 1.5,
        }

    def test_empty_report_yields_empty_map(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("{}")
        assert load_benchmark_means(path) == {}
