"""Unit tests for the benchmark regression guard's comparison logic."""

import json

import pytest

from repro.experiments.benchguard import (
    HEALTH_OVERHEAD_THRESHOLD,
    MEMORY_FOOTPRINT_THRESHOLD,
    MEMORY_OVERHEAD_THRESHOLD,
    check_health_overhead,
    check_memory_footprint,
    check_memory_overhead,
    check_profiler_overhead,
    check_reelection_overhead,
    check_throughput,
    check_twin_overhead,
    compare_against_baseline,
    load_benchmark_means,
    load_benchmark_memory,
    load_benchmark_queries,
)


class TestCompare:
    def test_within_threshold_passes(self):
        rows = compare_against_baseline({"k": 1.2}, {"k": 1.0}, threshold=1.5)
        assert rows == [("k", 1.2, 1.0, False)]

    def test_regression_beyond_threshold_fails(self):
        rows = compare_against_baseline({"k": 1.6}, {"k": 1.0}, threshold=1.5)
        assert rows[0][3] is True

    def test_new_benchmark_without_baseline_never_fails(self):
        rows = compare_against_baseline({"new": 99.0}, {}, threshold=1.5)
        assert rows == [("new", 99.0, None, False)]

    def test_rows_sorted_by_name(self):
        rows = compare_against_baseline({"b": 1.0, "a": 1.0}, {}, threshold=1.5)
        assert [row[0] for row in rows] == ["a", "b"]


class TestTwinOverhead:
    @pytest.mark.parametrize(
        "check, suffixed",
        [
            (check_profiler_overhead, "k_profiled"),
            (check_reelection_overhead, "k_reelect"),
            (check_health_overhead, "k_health"),
            (check_memory_overhead, "k_memory"),
        ],
    )
    def test_within_limit_passes(self, check, suffixed):
        rows = check({"k": 1.0, suffixed: 1.04})
        assert rows == [(suffixed, 1.04, False)]

    @pytest.mark.parametrize(
        "check, suffixed",
        [
            (check_profiler_overhead, "k_profiled"),
            (check_reelection_overhead, "k_reelect"),
            (check_health_overhead, "k_health"),
            (check_memory_overhead, "k_memory"),
        ],
    )
    def test_beyond_limit_fails(self, check, suffixed):
        rows = check({"k": 1.0, suffixed: 1.10})
        assert rows[0][2] is True

    def test_missing_twin_yields_no_row(self):
        assert check_twin_overhead({"k_reelect": 1.0}, "_reelect", 1.05) == []

    def test_zero_time_twin_yields_no_row(self):
        assert check_twin_overhead({"k": 0.0, "k_reelect": 1.0}, "_reelect", 1.05) == []

    def test_plain_benchmarks_are_not_paired(self):
        assert check_twin_overhead({"a": 1.0, "b": 2.0}, "_reelect", 1.05) == []

    def test_health_pairs_with_unmonitored_serve_twin(self):
        means = {
            "test_bench_throughput_serve_batches": 2.0,
            "test_bench_throughput_serve_batches_health": 2.06,
        }
        rows = check_health_overhead(means)
        assert rows == [("test_bench_throughput_serve_batches_health", 1.03, False)]
        assert HEALTH_OVERHEAD_THRESHOLD == 1.05


class TestLoadMeans:
    def test_extracts_means_from_pytest_benchmark_json(self, tmp_path):
        report = {
            "benchmarks": [
                {"name": "test_bench_kernel_x", "stats": {"mean": 0.25, "min": 0.2}},
                {"name": "test_bench_kernel_y", "stats": {"mean": 1.5}},
            ]
        }
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(report))
        assert load_benchmark_means(path) == {
            "test_bench_kernel_x": 0.25,
            "test_bench_kernel_y": 1.5,
        }

    def test_empty_report_yields_empty_map(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("{}")
        assert load_benchmark_means(path) == {}


class TestLoadQueries:
    def test_extracts_query_counts_from_extra_info(self, tmp_path):
        report = {
            "benchmarks": [
                {
                    "name": "test_bench_throughput_x",
                    "stats": {"mean": 0.5},
                    "extra_info": {"queries": 20000},
                },
                # Plain benchmarks carry no queries and are excluded.
                {"name": "test_bench_kernel_y", "stats": {"mean": 1.5}},
                {
                    "name": "test_bench_kernel_z",
                    "stats": {"mean": 1.0},
                    "extra_info": {"other": 3},
                },
            ]
        }
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(report))
        assert load_benchmark_queries(path) == {"test_bench_throughput_x": 20000}

    def test_empty_report_yields_empty_map(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("{}")
        assert load_benchmark_queries(path) == {}


class TestThroughput:
    def test_within_threshold_passes(self):
        # 1000 q / 0.5 s = 2000 q/s against a 2500 q/s baseline: above
        # the 2500/1.5 floor, so not a regression.
        rows = check_throughput({"t": 0.5}, {"t": 1000}, {"t": 2500.0})
        assert rows == [("t", 2000.0, 2500.0, False)]

    def test_below_floor_fails(self):
        rows = check_throughput(
            {"t": 1.0}, {"t": 1000}, {"t": 2000.0}, threshold=1.5
        )
        assert rows == [("t", 1000.0, 2000.0, True)]

    def test_new_benchmark_without_baseline_never_fails(self):
        rows = check_throughput({"t": 0.5}, {"t": 1000}, {})
        assert rows == [("t", 2000.0, None, False)]

    def test_benchmark_without_mean_yields_no_row(self):
        assert check_throughput({}, {"t": 1000}, {}) == []

    def test_rows_sorted_by_name(self):
        rows = check_throughput(
            {"b": 1.0, "a": 1.0}, {"b": 10, "a": 10}, {}
        )
        assert [row[0] for row in rows] == ["a", "b"]


class TestLoadMemory:
    def test_extracts_rss_and_subsystem_stamps(self, tmp_path):
        report = {
            "benchmarks": [
                {
                    "name": "test_bench_large_end_to_end_1e5",
                    "stats": {"mean": 100.0},
                    "extra_info": {
                        "peak_rss_mb": 17500.5,
                        "mem_subsystems": {"nodes": 9000000, "events": 2000},
                    },
                },
                {
                    "name": "test_bench_large_setup_1e5",
                    "stats": {"mean": 10.0},
                    "extra_info": {"peak_rss_mb": 800.0},
                },
                # Plain benchmarks carry no RSS stamp and are excluded.
                {"name": "test_bench_kernel_y", "stats": {"mean": 1.5}},
            ]
        }
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(report))
        assert load_benchmark_memory(path) == {
            "test_bench_large_end_to_end_1e5": {
                "peak_rss_mb": 17500.5,
                "subsystems": {"nodes": 9000000, "events": 2000},
            },
            "test_bench_large_setup_1e5": {"peak_rss_mb": 800.0},
        }

    def test_empty_report_yields_empty_map(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("{}")
        assert load_benchmark_memory(path) == {}


class TestMemoryFootprint:
    def test_synthetic_regression_beyond_ceiling_fails(self):
        # 1.3x the committed footprint must trip the 1.2x ceiling.
        rows = check_memory_footprint(
            {"e2e": {"peak_rss_mb": 1300.0}}, {"e2e": {"peak_rss_mb": 1000.0}}
        )
        assert rows == [("e2e", 1300.0, 1000.0, True)]
        assert MEMORY_FOOTPRINT_THRESHOLD == 1.2

    def test_growth_within_ceiling_passes(self):
        rows = check_memory_footprint(
            {"e2e": {"peak_rss_mb": 1100.0}}, {"e2e": {"peak_rss_mb": 1000.0}}
        )
        assert rows == [("e2e", 1100.0, 1000.0, False)]

    def test_new_benchmark_without_baseline_never_fails(self):
        rows = check_memory_footprint({"fresh": {"peak_rss_mb": 9999.0}}, {})
        assert rows == [("fresh", 9999.0, None, False)]

    def test_parametrised_name_falls_back_to_base_baseline(self):
        rows = check_memory_footprint(
            {"e2e[numba]": {"peak_rss_mb": 1500.0}},
            {"e2e": {"peak_rss_mb": 1000.0}},
        )
        assert rows == [("e2e[numba]", 1500.0, 1000.0, True)]

    def test_memory_twin_cap_matches_other_instruments(self):
        assert MEMORY_OVERHEAD_THRESHOLD == 1.05
