"""Unit tests for result rendering."""

import math

from repro.experiments.figures import FigureResult, Series, TableResult
from repro.experiments.report import (
    render_ascii_chart,
    render_figure,
    render_table,
    results_to_csv,
    table_to_csv,
)


def figure():
    return FigureResult(
        figure_id="figX",
        title="Demo figure",
        x_label="x",
        y_label="y",
        series=[
            Series("up", x=[1.0, 2.0, 3.0], y=[0.1, 0.2, 0.3]),
            Series("down", x=[1.0, 2.0, 3.0], y=[0.3, 0.2, 0.1]),
        ],
    )


class TestTableRendering:
    def test_columns_and_rows(self):
        table = TableResult(
            table_id="t", title="T", rows=[{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}]
        )
        text = render_table(table)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5  # title, header, rule, two rows

    def test_empty_table(self):
        assert "(no rows)" in render_table(TableResult("t", "T", rows=[]))

    def test_table_csv(self):
        table = TableResult("t", "T", rows=[{"a": 1, "b": 2}])
        assert table_to_csv(table) == "a,b\n1,2\n"
        assert table_to_csv(TableResult("t", "T", rows=[])) == ""


class TestFigureRendering:
    def test_render_contains_series_labels(self):
        text = render_figure(figure(), chart=False)
        assert "up" in text and "down" in text
        assert "figX" in text

    def test_render_with_chart(self):
        text = render_figure(figure(), chart=True)
        assert "*" in text  # chart markers present

    def test_nan_values_rendered(self):
        result = FigureResult(
            "f", "t", "x", "y", series=[Series("s", x=[1.0], y=[float("nan")])]
        )
        assert "nan" in render_figure(result, chart=False)


class TestAsciiChart:
    def test_chart_dimensions(self):
        chart = render_ascii_chart(figure().series, width=40, height=8)
        lines = chart.splitlines()
        assert len(lines) >= 8

    def test_empty_series(self):
        assert render_ascii_chart([]) == "(no data)"

    def test_constant_series_does_not_crash(self):
        series = [Series("flat", x=[1.0, 2.0], y=[5.0, 5.0])]
        assert "flat" in render_ascii_chart(series)


class TestCsvExport:
    def test_round_trippable_structure(self):
        csv = results_to_csv(figure())
        lines = csv.strip().splitlines()
        assert lines[0] == "x,up,down"
        assert len(lines) == 4
        cells = lines[1].split(",")
        assert float(cells[0]) == 1.0
        assert float(cells[1]) == 0.1


class TestMarkdown:
    def test_markdown_table_structure(self):
        from repro.experiments.report import render_markdown

        text = render_markdown(figure())
        lines = text.strip().splitlines()
        assert lines[2] == "| x | up | down |"
        assert lines[3].startswith("|---")
        assert len(lines) == 7  # title, blank, header, rule, 3 rows

    def test_markdown_handles_nan(self):
        from repro.experiments.figures import FigureResult, Series
        from repro.experiments.report import render_markdown

        result = FigureResult(
            "f", "t", "x", "y", series=[Series("s", x=[1.0], y=[float("nan")])]
        )
        assert "nan" in render_markdown(result)


class TestTableMarkdown:
    def test_table_markdown_structure(self):
        from repro.experiments.report import table_to_markdown

        table = TableResult("t1", "Demo", rows=[{"a": 1, "b": 2.5}])
        text = table_to_markdown(table)
        lines = text.strip().splitlines()
        assert lines[0].startswith("**t1**")
        assert lines[2] == "| a | b |"
        assert lines[-1] == "| 1 | 2.5 |"

    def test_empty_table_markdown(self):
        from repro.experiments.report import table_to_markdown

        assert "(no rows)" in table_to_markdown(TableResult("t", "T", rows=[]))
