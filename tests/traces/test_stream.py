"""Streaming trace layer: contract, determinism, and bounded memory.

The scale-out trace path replaces the materialised contact list with
replayable bounded-memory iterators.  These tests pin:

* the stream contract (sorted starts, in-range ids, replayability);
* ``materialize()`` as the explicit escape hatch — streamed contacts
  and the materialised trace are the same events in the same order;
* graph estimation and full simulation agree between the streamed and
  materialised forms of the same trace;
* iteration memory stays bounded (tracemalloc), unlike materialising;
* the ``sparse1e5`` catalog preset and its scenario-registry wiring.
"""

import csv
import math
import tracemalloc

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceConsistencyError
from repro.graph.contact_graph import ContactGraph
from repro.traces.catalog import STREAM_PRESETS, load_stream_trace
from repro.traces.contact import Contact, ContactTrace
from repro.traces.loaders import stream_csv_contacts
from repro.traces.stream import (
    ContactStream,
    SparseSyntheticConfig,
    StreamingTrace,
    stream_synthetic_contacts,
)
from repro.units import DAY, HOUR


def _small_stream(num_nodes=60, total_contacts=2_000, seed=3):
    return stream_synthetic_contacts(
        SparseSyntheticConfig(
            name="stream-test",
            num_nodes=num_nodes,
            duration=1 * DAY,
            total_contacts=total_contacts,
            granularity=60.0,
            ring_neighbors=4,
            shortcut_neighbors=2,
            seed=seed,
        )
    )


# --- protocol & contract ---------------------------------------------------


def test_streaming_trace_satisfies_protocol():
    stream = _small_stream()
    assert isinstance(stream, ContactStream)
    assert isinstance(ContactTrace([], num_nodes=2, granularity=1.0), ContactStream)


def test_stream_is_replayable_and_deterministic():
    stream = _small_stream()
    first = list(stream)
    second = list(stream)
    assert first == second
    assert len(first) > 0
    starts = [c.start for c in first]
    assert starts == sorted(starts)


def test_same_seed_same_contacts_different_seed_differs():
    assert list(_small_stream(seed=5)) == list(_small_stream(seed=5))
    assert list(_small_stream(seed=5)) != list(_small_stream(seed=6))


def test_materialize_escape_hatch_preserves_events():
    stream = _small_stream()
    trace = stream.materialize()
    assert isinstance(trace, ContactTrace)
    assert trace.num_nodes == stream.num_nodes
    assert trace.granularity == stream.granularity
    assert list(trace) == list(stream)


def test_unsorted_stream_rejected_lazily():
    contacts = [Contact(100.0, 160.0, 0, 1), Contact(40.0, 100.0, 1, 2)]
    stream = StreamingTrace(
        name="bad", num_nodes=3, start_time=0.0, end_time=200.0,
        factory=lambda: iter(contacts),
    )
    with pytest.raises(TraceConsistencyError, match="not time-sorted"):
        list(stream)


def test_out_of_range_node_rejected_lazily():
    contacts = [Contact(10.0, 20.0, 0, 7)]
    stream = StreamingTrace(
        name="bad", num_nodes=3, start_time=0.0, end_time=30.0,
        factory=lambda: iter(contacts),
    )
    with pytest.raises(TraceConsistencyError, match="num_nodes"):
        list(stream)


def test_stream_validation():
    with pytest.raises(ConfigurationError):
        StreamingTrace(name="x", num_nodes=0, start_time=0.0, end_time=1.0,
                       factory=list)
    with pytest.raises(ConfigurationError):
        StreamingTrace(name="x", num_nodes=2, start_time=5.0, end_time=1.0,
                       factory=list)


# --- estimation & simulation equivalence -----------------------------------


def test_graph_estimation_identical_streamed_vs_materialized():
    stream = _small_stream()
    from_stream = ContactGraph.from_trace(stream)
    from_trace = ContactGraph.from_trace(stream.materialize())
    a = from_stream.csr_rates()
    b = from_trace.csr_rates()
    assert all(np.array_equal(x, y) for x, y in zip(a, b))


def test_simulation_identical_streamed_vs_materialized():
    import dataclasses

    from repro.caching.intentional import IntentionalCaching, IntentionalConfig
    from repro.sim.simulator import Simulator, SimulatorConfig
    from repro.workload.config import WorkloadConfig

    stream = _small_stream(num_nodes=30, total_contacts=800)
    workload = WorkloadConfig(
        mean_data_lifetime=6 * HOUR, mean_data_size=100_000_000
    )

    def run(trace):
        sim = Simulator(
            trace,
            IntentionalCaching(IntentionalConfig(num_ncls=3, ncl_time_budget=6 * HOUR)),
            workload,
            SimulatorConfig(seed=11),
        )
        return dataclasses.asdict(sim.run())

    streamed = run(stream)
    materialized = run(stream.materialize())
    for key, value in streamed.items():
        other = materialized[key]
        if isinstance(value, float) and math.isnan(value):
            assert isinstance(other, float) and math.isnan(other), key
        else:
            assert value == other, key


# --- bounded memory --------------------------------------------------------


def test_stream_iteration_memory_is_bounded():
    """Consuming the stream must not accumulate contacts: its traced
    peak stays far below the materialised list of the same events."""
    stream = _small_stream(num_nodes=400, total_contacts=60_000)

    tracemalloc.start()
    count = 0
    for _contact in stream:
        count += 1
    _, stream_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    tracemalloc.start()
    trace = stream.materialize()
    _, materialize_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert count == len(trace.contacts)
    assert count > 10_000
    # One window of contacts in flight vs the whole trace resident.
    assert stream_peak < materialize_peak / 3


def test_csv_stream_memory_is_bounded(tmp_path):
    rows = 30_000
    path = tmp_path / "contacts.csv"
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["node_a", "node_b", "start", "end"])
        for i in range(rows):
            writer.writerow([i % 50, (i + 1) % 50, float(i), float(i) + 30.0])

    stream = stream_csv_contacts(path, num_nodes=50, end_time=rows + 40.0)

    tracemalloc.start()
    count = sum(1 for _ in stream)
    _, stream_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    tracemalloc.start()
    materialized = stream.materialize()
    _, materialize_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert count == rows == len(materialized.contacts)
    assert stream_peak < materialize_peak / 3


# --- catalog preset & scenario wiring --------------------------------------


def test_sparse1e5_preset_is_registered():
    preset = STREAM_PRESETS["sparse1e5"]
    assert preset.num_devices == 100_000
    assert preset.ncl_time_budget > 0


def test_load_stream_trace_scales_like_trace_presets():
    stream = load_stream_trace("sparse1e5", seed=2, node_factor=0.001, time_factor=0.05)
    assert isinstance(stream, StreamingTrace)
    assert stream.num_nodes == 100
    contacts = list(stream)
    assert contacts == list(stream)
    assert all(c.node_a < 100 and c.node_b < 100 for c in contacts)


def test_load_stream_trace_unknown_key():
    with pytest.raises(KeyError, match="sparse1e5"):
        load_stream_trace("nope")


def test_scenario_build_trace_returns_stream():
    from repro.scenario import TraceSpec, build_trace
    from repro.scenario.build import resolve_ncl_time_budget
    from repro.scenario import ScenarioSpec, SchemeSpec

    spec = TraceSpec(name="sparse1e5", seed=1, node_factor=0.0005, time_factor=0.05)
    trace = build_trace(spec)
    assert isinstance(trace, StreamingTrace)
    assert trace.num_nodes == 50
    # The stream preset supplies the explicit NCL time budget, so the
    # adaptive (O(N²)) calibration never runs on the scale-out path.
    scenario = ScenarioSpec(trace=spec, scheme=SchemeSpec(num_ncls=4))
    assert resolve_ncl_time_budget(scenario) == STREAM_PRESETS["sparse1e5"].ncl_time_budget
