"""Unit tests for inter-contact time analysis."""

import numpy as np
import pytest

from repro.traces.analysis import (
    aggregate_intercontact_ccdf,
    exponential_fit_report,
    fit_exponential,
    pair_intercontact_samples,
)
from repro.traces.contact import Contact, ContactTrace
from repro.traces.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.units import DAY


class TestPairSamples:
    def test_gaps_between_meetings(self):
        contacts = [
            Contact(0.0, 10.0, 0, 1),
            Contact(50.0, 60.0, 0, 1),
            Contact(100.0, 110.0, 0, 1),
        ]
        trace = ContactTrace(contacts, num_nodes=2)
        assert pair_intercontact_samples(trace, 0, 1) == [40.0, 40.0]

    def test_order_insensitive_pair(self):
        trace = ContactTrace(
            [Contact(0.0, 1.0, 0, 1), Contact(5.0, 6.0, 0, 1)], num_nodes=2
        )
        assert pair_intercontact_samples(trace, 1, 0) == [4.0]

    def test_touching_meetings_yield_no_gap(self):
        trace = ContactTrace(
            [Contact(0.0, 10.0, 0, 1), Contact(10.0, 20.0, 0, 1)], num_nodes=2
        )
        assert pair_intercontact_samples(trace, 0, 1) == []

    def test_unseen_pair_empty(self):
        trace = ContactTrace([Contact(0.0, 1.0, 0, 1)], num_nodes=3)
        assert pair_intercontact_samples(trace, 0, 2) == []


class TestExponentialFit:
    def test_mle_rate_is_inverse_mean(self):
        samples = [10.0, 20.0, 30.0]
        fit = fit_exponential(samples)
        assert fit.rate == pytest.approx(1.0 / 20.0)
        assert fit.mean_intercontact == pytest.approx(20.0)
        assert fit.sample_size == 3

    def test_too_few_samples(self):
        assert fit_exponential([]) is None
        assert fit_exponential([5.0]) is None
        assert fit_exponential([0.0, -1.0]) is None

    def test_true_exponential_fits_well(self, rng):
        samples = rng.exponential(100.0, size=500)
        fit = fit_exponential(samples)
        assert fit.ks_distance < 0.08
        assert fit.is_plausible()

    def test_uniform_sample_fits_poorly(self, rng):
        samples = rng.uniform(99.0, 101.0, size=500)  # almost deterministic
        fit = fit_exponential(samples)
        assert fit.ks_distance > 0.3
        assert not fit.is_plausible()


class TestAggregateCcdf:
    def test_ccdf_monotone_decreasing(self):
        trace = generate_synthetic_trace(
            SyntheticTraceConfig(
                name="ccdf", num_nodes=15, duration=5 * DAY,
                total_contacts=2000, granularity=60.0, seed=3,
            )
        )
        grid, ccdf = aggregate_intercontact_ccdf(trace)
        assert len(grid) == len(ccdf) > 0
        assert all(a >= b - 1e-12 for a, b in zip(ccdf, ccdf[1:]))
        assert all(0.0 <= v <= 1.0 for v in ccdf)

    def test_empty_trace(self):
        trace = ContactTrace([Contact(0.0, 1.0, 0, 1)], num_nodes=2)
        grid, ccdf = aggregate_intercontact_ccdf(trace)
        assert grid.size == 0


class TestFitReport:
    def test_synthetic_traces_are_mostly_exponential(self):
        """The generator samples Poisson contacts, so pairwise gaps should
        fit exponentials well — validating the paper's model holds on our
        trace substitute."""
        trace = generate_synthetic_trace(
            SyntheticTraceConfig(
                name="fits", num_nodes=20, duration=20 * DAY,
                total_contacts=8000, granularity=60.0, seed=3,
            )
        )
        report = exponential_fit_report(trace, min_samples=10)
        assert report.pairs_fitted > 0
        assert report.fraction_plausible > 0.5
        assert report.rate_range[0] > 0

    def test_report_row(self):
        trace = generate_synthetic_trace(
            SyntheticTraceConfig(
                name="fits", num_nodes=10, duration=5 * DAY,
                total_contacts=1500, granularity=60.0, seed=3,
            )
        )
        row = exponential_fit_report(trace).as_row()
        assert set(row) >= {"pairs_fitted", "median_ks", "plausible_frac"}
