"""Unit tests for the trace toolkit."""

import pytest

from repro.errors import ConfigurationError, TraceConsistencyError
from repro.traces.contact import Contact, ContactTrace
from repro.traces.toolkit import (
    filter_nodes,
    merge_traces,
    most_active_nodes,
    shift_time,
    thin_contacts,
)


@pytest.fixture
def trace():
    contacts = [
        Contact(0.0, 10.0, 0, 1),
        Contact(20.0, 30.0, 1, 2),
        Contact(40.0, 50.0, 0, 2),
        Contact(60.0, 70.0, 0, 3),
        Contact(80.0, 90.0, 0, 1),
    ]
    return ContactTrace(contacts, num_nodes=4, granularity=5.0, name="base")


class TestFilterNodes:
    def test_keeps_only_selected_pairs(self, trace):
        filtered = filter_nodes(trace, [0, 1])
        assert filtered.num_nodes == 2
        assert filtered.num_contacts == 2  # the two (0,1) meetings

    def test_remaps_ids_contiguously(self, trace):
        filtered = filter_nodes(trace, [1, 3])
        assert filtered.num_nodes == 2
        assert all(c.node_b <= 1 for c in filtered)

    def test_validation(self, trace):
        with pytest.raises(ConfigurationError):
            filter_nodes(trace, [0])
        with pytest.raises(ConfigurationError):
            filter_nodes(trace, [0, 99])


class TestMostActive:
    def test_ranking(self, trace):
        # participations: 0 -> 4, 1 -> 3, 2 -> 2, 3 -> 1
        assert most_active_nodes(trace, 2) == [0, 1]

    def test_bounds(self, trace):
        with pytest.raises(ConfigurationError):
            most_active_nodes(trace, 0)
        with pytest.raises(ConfigurationError):
            most_active_nodes(trace, 5)


class TestShiftTime:
    def test_shift_forward(self, trace):
        shifted = shift_time(trace, 100.0)
        assert shifted.start_time == 100.0
        assert shifted.end_time == 190.0
        assert shifted.num_contacts == trace.num_contacts

    def test_shift_before_zero_rejected(self, trace):
        with pytest.raises(TraceConsistencyError):
            shift_time(trace, -1.0)


class TestMerge:
    def test_merge_pools_and_sorts(self, trace):
        other = ContactTrace(
            [Contact(15.0, 18.0, 2, 3)], num_nodes=4, granularity=20.0, name="o"
        )
        merged = merge_traces([trace, other], name="both")
        assert merged.num_contacts == 6
        starts = [c.start for c in merged]
        assert starts == sorted(starts)
        assert merged.granularity == 5.0  # finest of the inputs

    def test_mismatched_universe_rejected(self, trace):
        other = ContactTrace([Contact(0.0, 1.0, 0, 1)], num_nodes=3)
        with pytest.raises(ConfigurationError):
            merge_traces([trace, other])

    def test_empty_list_rejected(self):
        with pytest.raises(ConfigurationError):
            merge_traces([])


class TestThin:
    def test_keep_all(self, trace):
        assert thin_contacts(trace, 1.0).num_contacts == trace.num_contacts

    def test_thinning_reduces_contacts(self):
        contacts = [Contact(float(i), float(i) + 0.5, 0, 1) for i in range(400)]
        big = ContactTrace(contacts, num_nodes=2)
        thin = thin_contacts(big, 0.5, seed=1)
        assert 120 < thin.num_contacts < 280

    def test_deterministic(self, trace):
        a = thin_contacts(trace, 0.6, seed=3)
        b = thin_contacts(trace, 0.6, seed=3)
        assert list(a.contacts) == list(b.contacts)

    def test_validation(self, trace):
        with pytest.raises(ConfigurationError):
            thin_contacts(trace, 0.0)
        with pytest.raises(ConfigurationError):
            thin_contacts(trace, 1.2)


class TestCompositions:
    def test_filter_then_merge_roundtrip(self, trace):
        """Splitting a trace by node groups and merging the halves back
        (on the shared universe) preserves the intra-group contacts."""
        group_a = filter_nodes(trace, [0, 1], name="a")
        # re-expand to the original universe by shifting ids is out of
        # scope; instead verify merge of two time-slices reconstitutes
        first = trace.slice(0.0, 45.0, name="first")
        second = trace.slice(45.0, 1000.0, name="second")
        merged = merge_traces([first, second], name="rejoined")
        assert merged.num_contacts == trace.num_contacts
        assert [c.pair for c in merged] == [c.pair for c in trace]

    def test_thin_then_summary_consistency(self, trace):
        from repro.traces.stats import summarize_trace

        thin = thin_contacts(trace, 0.6, seed=9)
        summary = summarize_trace(thin)
        assert summary.num_contacts == thin.num_contacts
