"""Unit tests for mobility-model contact generation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traces.mobility import (
    RandomWaypointModel,
    WorkingDayModel,
    contacts_from_mobility,
)
from repro.units import DAY, HOUR


class TestRandomWaypoint:
    def test_positions_stay_in_area(self):
        model = RandomWaypointModel(num_nodes=8, area=(500.0, 300.0), seed=1)
        for t in np.linspace(0, 4 * HOUR, 30):
            coords = model.positions(float(t))
            assert coords.shape == (8, 2)
            assert (coords[:, 0] >= 0).all() and (coords[:, 0] <= 500.0).all()
            assert (coords[:, 1] >= 0).all() and (coords[:, 1] <= 300.0).all()

    def test_movement_respects_speed_bound(self):
        model = RandomWaypointModel(
            num_nodes=4, min_speed=1.0, max_speed=2.0, max_pause=0.0, seed=1
        )
        previous = model.positions(0.0)
        step = 10.0
        for t in np.arange(step, 2 * HOUR, step):
            current = model.positions(float(t))
            displacement = np.linalg.norm(current - previous, axis=1)
            assert (displacement <= 2.0 * step + 1e-6).all()
            previous = current

    def test_nodes_actually_move(self):
        model = RandomWaypointModel(num_nodes=4, max_pause=0.0, seed=1)
        a = model.positions(0.0)
        b = model.positions(1 * HOUR)
        assert np.linalg.norm(a - b, axis=1).max() > 10.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RandomWaypointModel(num_nodes=1)
        with pytest.raises(ConfigurationError):
            RandomWaypointModel(num_nodes=3, min_speed=0.0)
        with pytest.raises(ConfigurationError):
            RandomWaypointModel(num_nodes=3, min_speed=2.0, max_speed=1.0)
        with pytest.raises(ConfigurationError):
            RandomWaypointModel(num_nodes=3, max_pause=-1.0)


class TestWorkingDay:
    def test_at_home_at_night(self):
        model = WorkingDayModel(num_nodes=6, seed=2)
        midnight = model.positions(0.0)
        assert np.allclose(midnight, model._homes)

    def test_at_office_midday(self):
        model = WorkingDayModel(
            num_nodes=6, num_offices=2, jitter=0.0, lunch_duration=0.0, seed=2
        )
        noon = model.positions(13 * HOUR)
        for node in range(6):
            office = model._office_point(node)
            assert np.linalg.norm(noon[node] - office) < 1e-6

    def test_lunch_gathers_nodes_at_cafeteria(self):
        model = WorkingDayModel(
            num_nodes=10, num_offices=3, jitter=0.0, lunch_duration=1 * HOUR, seed=2
        )
        at_cafeteria = 0
        for node in range(10):
            t = float(model._lunch_start[node]) + 60.0
            pos = model.positions(t)[node]
            if np.linalg.norm(pos - model._cafeteria) < 20.0:
                at_cafeteria += 1
        assert at_cafeteria == 10

    def test_lunch_creates_cross_office_contacts(self):
        model = WorkingDayModel(
            num_nodes=16, num_offices=4, area=(1000.0, 1000.0), jitter=0.0, seed=5
        )
        trace = contacts_from_mobility(
            model, duration=2 * DAY, radio_range=15.0, sample_period=300.0
        )
        cross = sum(
            1
            for c in trace
            if model._office_of[c.node_a] != model._office_of[c.node_b]
        )
        assert cross > 0

    def test_daily_periodicity(self):
        model = WorkingDayModel(num_nodes=4, seed=2)
        assert np.allclose(model.positions(5 * HOUR), model.positions(5 * HOUR + DAY))

    def test_office_colleagues_co_located(self):
        model = WorkingDayModel(
            num_nodes=20, num_offices=2, jitter=0.0, lunch_duration=0.0, seed=2
        )
        noon = model.positions(13 * HOUR)
        same = [
            (a, b)
            for a in range(20)
            for b in range(a + 1, 20)
            if model._office_of[a] == model._office_of[b]
        ]
        distances = [np.linalg.norm(noon[a] - noon[b]) for a, b in same]
        assert np.median(distances) < 30.0  # desk-scale separation

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkingDayModel(num_nodes=6, num_offices=0)
        with pytest.raises(ConfigurationError):
            WorkingDayModel(num_nodes=6, work_start=20 * HOUR, work_hours=8 * HOUR)


class TestContactExtraction:
    def test_rwp_trace_is_well_formed(self):
        model = RandomWaypointModel(num_nodes=12, area=(200.0, 200.0), seed=3)
        trace = contacts_from_mobility(
            model, duration=4 * HOUR, radio_range=20.0, sample_period=30.0
        )
        assert trace.num_nodes == 12
        assert trace.num_contacts > 0
        for contact in trace:
            assert contact.duration >= 0.0

    def test_working_day_produces_office_communities(self):
        model = WorkingDayModel(
            num_nodes=12, num_offices=2, area=(800.0, 800.0), jitter=0.0, seed=3
        )
        trace = contacts_from_mobility(
            model, duration=1 * DAY, radio_range=15.0, sample_period=600.0
        )
        # colleagues (same office) should dominate the contact volume
        colleague_contacts = 0
        stranger_contacts = 0
        for contact in trace:
            if model._office_of[contact.node_a] == model._office_of[contact.node_b]:
                colleague_contacts += 1
            else:
                stranger_contacts += 1
        assert colleague_contacts > stranger_contacts

    def test_radio_range_monotonicity(self):
        model_narrow = RandomWaypointModel(num_nodes=10, area=(300.0, 300.0), seed=4)
        model_wide = RandomWaypointModel(num_nodes=10, area=(300.0, 300.0), seed=4)
        narrow = contacts_from_mobility(
            model_narrow, duration=2 * HOUR, radio_range=10.0, sample_period=30.0
        )
        wide = contacts_from_mobility(
            model_wide, duration=2 * HOUR, radio_range=50.0, sample_period=30.0
        )
        assert wide.num_contacts >= narrow.num_contacts

    def test_validation(self):
        model = RandomWaypointModel(num_nodes=4, seed=1)
        with pytest.raises(ConfigurationError):
            contacts_from_mobility(model, duration=0.0)
        with pytest.raises(ConfigurationError):
            contacts_from_mobility(model, duration=10.0, radio_range=0.0)

    def test_simulatable_end_to_end(self):
        """A mobility-derived trace drives the full caching simulator."""
        from repro.caching import IntentionalCaching, IntentionalConfig
        from repro.sim.simulator import Simulator, SimulatorConfig
        from repro.units import MEGABIT
        from repro.workload.config import WorkloadConfig

        model = RandomWaypointModel(num_nodes=14, area=(250.0, 250.0), seed=5)
        trace = contacts_from_mobility(
            model, duration=8 * HOUR, radio_range=25.0, sample_period=60.0
        )
        workload = WorkloadConfig(
            mean_data_lifetime=1 * HOUR, mean_data_size=5 * MEGABIT
        )
        scheme = IntentionalCaching(
            IntentionalConfig(num_ncls=2, ncl_time_budget=0.5 * HOUR)
        )
        result = Simulator(trace, scheme, workload, SimulatorConfig(seed=6)).run()
        assert 0.0 <= result.successful_ratio <= 1.0


class TestContactExtractionEdgeCases:
    def test_stationary_co_located_nodes_one_long_contact(self):
        class Frozen:
            num_nodes = 2

            def positions(self, t):
                return np.zeros((2, 2))

        trace = contacts_from_mobility(
            Frozen(), duration=1 * HOUR, radio_range=10.0, sample_period=60.0
        )
        assert trace.num_contacts == 1
        assert trace.contacts[0].duration >= 1 * HOUR

    def test_never_close_nodes_no_contacts(self):
        class Apart:
            num_nodes = 2

            def positions(self, t):
                return np.array([[0.0, 0.0], [1000.0, 1000.0]])

        trace = contacts_from_mobility(
            Apart(), duration=1 * HOUR, radio_range=10.0, sample_period=60.0
        )
        assert trace.num_contacts == 0

    def test_granularity_matches_sample_period(self):
        model = RandomWaypointModel(num_nodes=4, seed=1)
        trace = contacts_from_mobility(
            model, duration=1 * HOUR, radio_range=30.0, sample_period=45.0
        )
        assert trace.granularity == 45.0
