"""Unit tests for Table I statistics computation."""

import pytest

from repro.traces.contact import Contact, ContactTrace
from repro.traces.stats import summarize_trace
from repro.units import DAY


@pytest.fixture
def toy_trace():
    # 3 nodes over exactly 2 days; pair (0,1) meets twice, (1,2) once.
    contacts = [
        Contact(0.0, 100.0, 0, 1),
        Contact(1 * DAY, 1 * DAY + 200.0, 0, 1),
        Contact(2 * DAY - 300.0, 2 * DAY, 1, 2),
    ]
    return ContactTrace(contacts, num_nodes=3, granularity=10.0, name="toy")


class TestSummary:
    def test_counts_and_duration(self, toy_trace):
        summary = summarize_trace(toy_trace)
        assert summary.num_devices == 3
        assert summary.num_contacts == 3
        assert summary.duration_days == pytest.approx(2.0)

    def test_pairwise_frequency_all_pairs(self, toy_trace):
        summary = summarize_trace(toy_trace)
        # 3 contacts / (3 pairs * 2 days)
        assert summary.pairwise_frequency_all == pytest.approx(0.5)

    def test_pairwise_frequency_met_pairs(self, toy_trace):
        summary = summarize_trace(toy_trace)
        # 3 contacts / (2 pairs that met * 2 days)
        assert summary.pairwise_frequency_met == pytest.approx(0.75)

    def test_fraction_pairs_met(self, toy_trace):
        assert summarize_trace(toy_trace).fraction_pairs_met == pytest.approx(2 / 3)

    def test_contact_durations(self, toy_trace):
        summary = summarize_trace(toy_trace)
        assert summary.mean_contact_duration == pytest.approx(200.0)
        assert summary.median_contact_duration == pytest.approx(200.0)

    def test_per_node_contacts(self, toy_trace):
        summary = summarize_trace(toy_trace)
        # node participations: 0 -> 2, 1 -> 3, 2 -> 1; mean = 2 per 2 days
        assert summary.mean_contacts_per_node_per_day == pytest.approx(1.0)

    def test_as_row_keys(self, toy_trace):
        row = summarize_trace(toy_trace).as_row()
        assert row["trace"] == "toy"
        assert row["devices"] == 3
        assert "pair_freq_all_per_day" in row
