"""Unit tests for the Table I trace presets."""

import pytest

from repro.traces.catalog import TRACE_PRESETS, load_preset_trace
from repro.units import DAY, HOUR, WEEK


class TestPresetValues:
    """The presets must carry Table I verbatim."""

    def test_all_four_traces_present(self):
        assert set(TRACE_PRESETS) == {"infocom05", "infocom06", "mit_reality", "ucsd"}

    @pytest.mark.parametrize(
        "key,devices,contacts,duration,granularity",
        [
            ("infocom05", 41, 22_459, 3, 120),
            ("infocom06", 78, 182_951, 4, 120),
            ("mit_reality", 97, 114_046, 246, 300),
            ("ucsd", 275, 123_225, 77, 20),
        ],
    )
    def test_table1_statistics(self, key, devices, contacts, duration, granularity):
        preset = TRACE_PRESETS[key]
        assert preset.num_devices == devices
        assert preset.num_contacts == contacts
        assert preset.duration_days == duration
        assert preset.granularity_seconds == granularity

    def test_ncl_time_budgets_match_sec_iv_b(self):
        assert TRACE_PRESETS["infocom05"].ncl_time_budget == 1 * HOUR
        assert TRACE_PRESETS["infocom06"].ncl_time_budget == 1 * HOUR
        assert TRACE_PRESETS["mit_reality"].ncl_time_budget == 1 * WEEK
        assert TRACE_PRESETS["ucsd"].ncl_time_budget == 3 * DAY

    def test_default_ncl_counts_match_evaluation(self):
        assert TRACE_PRESETS["infocom06"].default_num_ncls == 5  # Sec. VI-D
        assert TRACE_PRESETS["mit_reality"].default_num_ncls == 8  # Sec. VI-B


class TestLoading:
    def test_unknown_key_lists_alternatives(self):
        with pytest.raises(KeyError, match="infocom05"):
            load_preset_trace("nope")

    def test_full_scale_matches_preset(self):
        trace = load_preset_trace("infocom05", seed=3)
        preset = TRACE_PRESETS["infocom05"]
        assert trace.num_nodes == preset.num_devices
        assert trace.num_contacts == pytest.approx(preset.num_contacts, rel=0.05)
        assert trace.duration <= preset.duration_days * DAY

    def test_scaled_load(self):
        trace = load_preset_trace("infocom05", node_factor=0.5, time_factor=0.5)
        assert trace.num_nodes == pytest.approx(20, abs=1)

    def test_deterministic_per_seed(self):
        a = load_preset_trace("infocom05", seed=3, node_factor=0.3, time_factor=0.2)
        b = load_preset_trace("infocom05", seed=3, node_factor=0.3, time_factor=0.2)
        assert list(a.contacts) == list(b.contacts)
