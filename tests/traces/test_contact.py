"""Unit tests for the contact-trace model."""

import pytest

from repro.errors import TraceConsistencyError
from repro.traces.contact import Contact, ContactTrace


class TestContact:
    def test_canonical_pair_ordering(self):
        contact = Contact(0.0, 10.0, 5, 2)
        assert contact.node_a == 2
        assert contact.node_b == 5
        assert contact.pair == (2, 5)

    def test_duration(self):
        assert Contact(3.0, 10.0, 0, 1).duration == 7.0

    def test_rejects_reversed_interval(self):
        with pytest.raises(TraceConsistencyError):
            Contact(10.0, 3.0, 0, 1)

    def test_rejects_self_contact(self):
        with pytest.raises(TraceConsistencyError):
            Contact(0.0, 1.0, 3, 3)

    def test_peer_of(self):
        contact = Contact(0.0, 1.0, 2, 7)
        assert contact.peer_of(2) == 7
        assert contact.peer_of(7) == 2
        with pytest.raises(ValueError):
            contact.peer_of(4)

    def test_involves(self):
        contact = Contact(0.0, 1.0, 2, 7)
        assert contact.involves(2) and contact.involves(7)
        assert not contact.involves(0)

    def test_ordering_is_temporal(self):
        early = Contact(1.0, 2.0, 0, 1)
        late = Contact(3.0, 4.0, 0, 1)
        assert early < late


class TestContactTrace:
    def _trace(self):
        contacts = [
            Contact(10.0, 20.0, 0, 1),
            Contact(0.0, 5.0, 1, 2),
            Contact(30.0, 45.0, 0, 2),
        ]
        return ContactTrace(contacts, num_nodes=3, granularity=5.0, name="t")

    def test_contacts_sorted_by_start(self):
        trace = self._trace()
        starts = [c.start for c in trace]
        assert starts == sorted(starts)

    def test_basic_accessors(self):
        trace = self._trace()
        assert trace.num_nodes == 3
        assert trace.num_contacts == 3
        assert trace.start_time == 0.0
        assert trace.end_time == 45.0
        assert trace.duration == 45.0
        assert len(trace) == 3

    def test_num_nodes_inferred(self):
        trace = ContactTrace([Contact(0.0, 1.0, 2, 9)])
        assert trace.num_nodes == 10

    def test_empty_trace_needs_num_nodes(self):
        with pytest.raises(TraceConsistencyError):
            ContactTrace([])
        trace = ContactTrace([], num_nodes=5)
        assert trace.duration == 0.0

    def test_rejects_out_of_range_node(self):
        with pytest.raises(TraceConsistencyError):
            ContactTrace([Contact(0.0, 1.0, 0, 5)], num_nodes=3)

    def test_pair_contact_counts(self):
        trace = self._trace()
        counts = trace.pair_contact_counts()
        assert counts == {(0, 1): 1, (1, 2): 1, (0, 2): 1}

    def test_contacts_in_window_half_open(self):
        trace = self._trace()
        window = trace.contacts_in_window(0.0, 10.0)
        assert [c.pair for c in window] == [(1, 2)]
        # start == window end is excluded
        assert all(c.start < 10.0 for c in window)

    def test_slice_preserves_node_count(self):
        trace = self._trace()
        sliced = trace.slice(0.0, 12.0)
        assert sliced.num_nodes == 3
        assert sliced.num_contacts == 2

    def test_split_halves_partitions_contacts(self):
        trace = self._trace()
        warmup, evaluation = trace.split_halves()
        assert warmup.num_contacts + evaluation.num_contacts == trace.num_contacts
        midpoint = trace.start_time + trace.duration / 2
        assert all(c.start < midpoint for c in warmup)
        assert all(c.start >= midpoint for c in evaluation)
