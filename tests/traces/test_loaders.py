"""Unit tests for trace-file parsers."""

import io

import pytest

from repro.errors import TraceFormatError
from repro.traces.loaders import (
    load_crawdad_imote,
    load_csv_contacts,
    load_one_connectivity,
)


class TestCrawdadImote:
    def test_basic_parse(self):
        text = io.StringIO(
            "# comment line\n"
            "1 2 100 160 1 0\n"
            "2 3 200 260\n"
            "\n"
            "1 3 50 90\n"
        )
        trace = load_crawdad_imote(text)
        assert trace.num_nodes == 3
        assert trace.num_contacts == 3
        # time shifted so the earliest contact starts at 0
        assert trace.start_time == 0.0
        assert trace.end_time == 260.0 - 50.0

    def test_node_ids_remapped_contiguously(self):
        text = io.StringIO("10 50 0 5\n50 99 10 12\n")
        trace = load_crawdad_imote(text)
        assert trace.num_nodes == 3

    def test_self_sightings_dropped(self):
        text = io.StringIO("1 1 0 10\n1 2 0 10\n")
        trace = load_crawdad_imote(text)
        assert trace.num_contacts == 1

    def test_too_few_fields_rejected(self):
        with pytest.raises(TraceFormatError):
            load_crawdad_imote(io.StringIO("1 2 100\n"))

    def test_non_numeric_rejected(self):
        with pytest.raises(TraceFormatError):
            load_crawdad_imote(io.StringIO("a b c d\n"))

    def test_reversed_interval_rejected(self):
        with pytest.raises(TraceFormatError):
            load_crawdad_imote(io.StringIO("1 2 100 50\n"))

    def test_empty_input_rejected(self):
        with pytest.raises(TraceFormatError):
            load_crawdad_imote(io.StringIO("# nothing here\n"))


class TestOneConnectivity:
    def test_up_down_pairs(self):
        text = io.StringIO(
            "10 CONN 1 2 up\n"
            "50 CONN 1 2 down\n"
            "60 CONN 2 3 up\n"
            "90 CONN 2 3 down\n"
        )
        trace = load_one_connectivity(text)
        assert trace.num_contacts == 2
        durations = sorted(c.duration for c in trace)
        assert durations == [30.0, 40.0]

    def test_still_open_links_closed_at_eof(self):
        text = io.StringIO("10 CONN 1 2 up\n70 CONN 3 4 up\n80 CONN 3 4 down\n")
        trace = load_one_connectivity(text)
        assert trace.num_contacts == 2
        longest = max(trace, key=lambda c: c.duration)
        assert longest.duration == pytest.approx(70.0)

    def test_down_without_up_rejected(self):
        with pytest.raises(TraceFormatError):
            load_one_connectivity(io.StringIO("10 CONN 1 2 down\n"))

    def test_unknown_state_rejected(self):
        with pytest.raises(TraceFormatError):
            load_one_connectivity(io.StringIO("10 CONN 1 2 sideways\n"))

    def test_malformed_record_rejected(self):
        with pytest.raises(TraceFormatError):
            load_one_connectivity(io.StringIO("10 LINK 1 2 up\n"))


class TestCsv:
    def test_with_header(self):
        text = io.StringIO("node_a,node_b,start,end\n1,2,0,30\n2,3,10,40\n")
        trace = load_csv_contacts(text)
        assert trace.num_contacts == 2

    def test_without_header(self):
        text = io.StringIO("1,2,0,30\n")
        trace = load_csv_contacts(text)
        assert trace.num_contacts == 1

    def test_short_row_rejected(self):
        with pytest.raises(TraceFormatError):
            load_csv_contacts(io.StringIO("1,2,0\n"))

    def test_bad_number_rejected(self):
        with pytest.raises(TraceFormatError):
            load_csv_contacts(io.StringIO("1,2,zero,30\n"))

    def test_roundtrip_through_file(self, tmp_path):
        path = tmp_path / "contacts.csv"
        path.write_text("0,1,5,25\n1,2,30,60\n")
        trace = load_csv_contacts(path, name="filetrace")
        assert trace.name == "filetrace"
        assert trace.num_contacts == 2
