"""Unit tests for synthetic trace generation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traces.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.units import DAY


def config(**overrides):
    base = dict(
        name="test",
        num_nodes=30,
        duration=10 * DAY,
        total_contacts=5000,
        granularity=60.0,
        seed=9,
    )
    base.update(overrides)
    return SyntheticTraceConfig(**base)


class TestDeterminism:
    def test_same_config_same_trace(self):
        a = generate_synthetic_trace(config())
        b = generate_synthetic_trace(config())
        assert a.num_contacts == b.num_contacts
        assert list(a.contacts) == list(b.contacts)

    def test_different_seed_different_trace(self):
        a = generate_synthetic_trace(config(seed=1))
        b = generate_synthetic_trace(config(seed=2))
        assert list(a.contacts) != list(b.contacts)


class TestCalibration:
    def test_total_contacts_close_to_target(self):
        trace = generate_synthetic_trace(config())
        # Poisson with mean 5000: 5 sigma ~ 350.
        assert trace.num_contacts == pytest.approx(5000, abs=400)

    def test_duration_respected(self):
        trace = generate_synthetic_trace(config())
        assert trace.end_time <= 10 * DAY
        assert trace.start_time >= 0.0

    def test_contact_durations_at_least_granularity(self):
        trace = generate_synthetic_trace(config())
        interior = [c for c in trace if c.end < trace.duration]
        assert all(c.duration >= 60.0 - 1e-9 for c in interior)

    def test_mean_contact_duration_override(self):
        trace = generate_synthetic_trace(config(mean_contact_duration=600.0))
        durations = np.array([c.duration for c in trace])
        assert durations.mean() == pytest.approx(600.0, rel=0.25)


class TestHeterogeneity:
    def test_node_contact_counts_are_skewed(self):
        trace = generate_synthetic_trace(config(num_nodes=60, total_contacts=20000))
        per_node = np.zeros(60)
        for contact in trace:
            per_node[contact.node_a] += 1
            per_node[contact.node_b] += 1
        assert per_node.max() > 3.0 * np.median(per_node)

    def test_communities_concentrate_contacts(self):
        plain = generate_synthetic_trace(config(num_communities=1))
        grouped = generate_synthetic_trace(
            config(num_communities=5, community_bias=20.0)
        )
        # With strong communities, fewer distinct pairs share the same
        # total contact volume.
        assert len(grouped.pair_contact_counts()) < len(plain.pair_contact_counts())


class TestScaled:
    def test_scaled_preserves_pair_density(self):
        base = config(num_nodes=40, total_contacts=8000)
        scaled = base.scaled(node_factor=0.5, time_factor=1.0)
        base_density = base.total_contacts / (40 * 39 / 2)
        scaled_density = scaled.total_contacts / (
            scaled.num_nodes * (scaled.num_nodes - 1) / 2
        )
        assert scaled_density == pytest.approx(base_density, rel=0.05)

    def test_time_factor_scales_duration_and_contacts(self):
        base = config()
        scaled = base.scaled(time_factor=0.5)
        assert scaled.duration == pytest.approx(base.duration * 0.5)
        assert scaled.total_contacts == pytest.approx(base.total_contacts * 0.5, rel=0.01)

    def test_scaled_rejects_nonpositive_factors(self):
        with pytest.raises(ConfigurationError):
            config().scaled(node_factor=0.0)


class TestValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"num_nodes": 1},
            {"duration": 0.0},
            {"total_contacts": 0},
            {"granularity": 0.0},
            {"activity_sigma": 0.0},
            {"mean_contact_duration": -1.0},
            {"num_communities": 0},
            {"community_bias": 0.5},
        ],
    )
    def test_invalid_configs_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            config(**overrides)
