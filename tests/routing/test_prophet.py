"""Unit tests for the PRoPHET router."""

import pytest

from repro.errors import ConfigurationError
from repro.graph.contact_graph import ContactGraph
from repro.routing.base import ForwardAction
from repro.routing.prophet import ProphetRouter


@pytest.fixture
def graph():
    return ContactGraph(4)


class TestPredictabilityUpdates:
    def test_encounter_raises_predictability(self):
        router = ProphetRouter(num_nodes=3)
        router.on_encounter(0, 1, now=0.0)
        assert router.predictability(0, 1) == pytest.approx(0.75)
        assert router.predictability(1, 0) == pytest.approx(0.75)

    def test_repeated_encounters_converge_to_one(self):
        router = ProphetRouter(num_nodes=3)
        for i in range(20):
            router.on_encounter(0, 1, now=float(i))
        assert router.predictability(0, 1) > 0.99
        assert router.predictability(0, 1) <= 1.0

    def test_aging_decays_predictability(self):
        router = ProphetRouter(num_nodes=3, gamma=0.5, aging_unit=100.0)
        router.on_encounter(0, 1, now=0.0)
        before = router.predictability(0, 1)
        router.on_encounter(0, 2, now=200.0)  # ages node 0's table by 2 units
        assert router.predictability(0, 1) == pytest.approx(before * 0.25)

    def test_transitivity(self):
        router = ProphetRouter(num_nodes=3)
        router.on_encounter(1, 2, now=0.0)  # 1 knows 2
        router.on_encounter(0, 1, now=1.0)  # 0 learns about 2 via 1
        assert router.predictability(0, 2) > 0.0
        # transitive estimate bounded by P(0,1) * P(1,2) * beta
        bound = router.predictability(0, 1) * router.predictability(1, 2) * 0.25
        assert router.predictability(0, 2) <= bound + 1e-9

    def test_self_predictability_stays_zero(self):
        router = ProphetRouter(num_nodes=3)
        router.on_encounter(0, 1, now=0.0)
        router.on_encounter(1, 2, now=1.0)
        for node in range(3):
            assert router.predictability(node, node) == 0.0

    def test_bad_pair_rejected(self):
        router = ProphetRouter(num_nodes=3)
        with pytest.raises(ConfigurationError):
            router.on_encounter(0, 0, now=0.0)
        with pytest.raises(ConfigurationError):
            router.on_encounter(0, 9, now=0.0)


class TestDecisions:
    def test_handover_to_destination(self, graph):
        router = ProphetRouter(num_nodes=4)
        assert router.decide(0, 3, 3, graph, 1.0).action is ForwardAction.HANDOVER

    def test_forwards_to_better_predictor(self, graph):
        router = ProphetRouter(num_nodes=4)
        router.on_encounter(1, 3, now=0.0)  # node 1 has met destination 3
        decision = router.decide(0, 1, 3, graph, 1.0)
        assert decision.action is ForwardAction.REPLICATE
        assert decision.peer_score > decision.carrier_score

    def test_keeps_when_peer_is_worse(self, graph):
        router = ProphetRouter(num_nodes=4)
        router.on_encounter(0, 3, now=0.0)  # carrier knows the destination
        assert router.decide(0, 1, 3, graph, 1.0).action is ForwardAction.KEEP

    def test_single_copy_mode(self, graph):
        router = ProphetRouter(num_nodes=4, replicate=False)
        router.on_encounter(1, 3, now=0.0)
        assert router.decide(0, 1, 3, graph, 1.0).action is ForwardAction.HANDOVER


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 1},
            {"num_nodes": 3, "p_init": 0.0},
            {"num_nodes": 3, "p_init": 1.5},
            {"num_nodes": 3, "beta": -0.1},
            {"num_nodes": 3, "gamma": 0.0},
            {"num_nodes": 3, "aging_unit": 0.0},
        ],
    )
    def test_bad_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            ProphetRouter(**kwargs)
