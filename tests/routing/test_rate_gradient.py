"""Unit tests for local-knowledge social forwarding."""

from repro.graph.contact_graph import ContactGraph
from repro.routing.base import ForwardAction
from repro.routing.rate_gradient import RateGradientRouter
from repro.units import HOUR


def two_community_graph():
    """0 hub of {1,2}; 3 hub of {4,5}; hubs linked."""
    graph = ContactGraph(6)
    graph.set_rate(0, 1, 2.0 / HOUR)
    graph.set_rate(0, 2, 2.0 / HOUR)
    graph.set_rate(3, 4, 2.0 / HOUR)
    graph.set_rate(3, 5, 2.0 / HOUR)
    graph.set_rate(0, 3, 1.0 / HOUR)
    return graph


class TestScores:
    def test_direct_contact_beats_hubness(self):
        graph = two_community_graph()
        router = RateGradientRouter()
        # node 4 meets 5's... wait: direct rate(4,5)=0; but 3 meets 5.
        direct_score = router.score(3, 5, graph)
        hub_score = router.score(0, 5, graph)  # 0 never meets 5
        assert direct_score > hub_score

    def test_hubness_orders_non_knowing_nodes(self):
        graph = two_community_graph()
        router = RateGradientRouter()
        # neither 1 nor 0 meets node 5 directly; 0 is the bigger hub
        assert router.score(0, 5, graph) > router.score(1, 5, graph)

    def test_all_scores_nonnegative(self):
        graph = two_community_graph()
        router = RateGradientRouter()
        for node in range(6):
            for dest in range(6):
                if node != dest:
                    assert router.score(node, dest, graph) >= 0.0


class TestDecisions:
    def test_destination_handover(self):
        graph = two_community_graph()
        router = RateGradientRouter()
        assert (
            router.decide(0, 5, 5, graph, 1.0).action is ForwardAction.HANDOVER
        )

    def test_climbs_to_destination_community(self):
        graph = two_community_graph()
        router = RateGradientRouter()
        # bundle at node 1 destined for node 5: 1 -> 0 (bigger hub)
        assert router.decide(1, 0, 5, graph, 1.0).action is ForwardAction.HANDOVER
        # 0 -> 3 (3 meets 5 directly, beats any hubness score)
        assert router.decide(0, 3, 5, graph, 1.0).action is ForwardAction.HANDOVER
        # 3 keeps until it meets 5 (no one scores higher)
        assert router.decide(3, 4, 5, graph, 1.0).action is ForwardAction.KEEP

    def test_replicate_mode(self):
        graph = two_community_graph()
        router = RateGradientRouter(replicate=True)
        assert router.decide(1, 0, 5, graph, 1.0).action is ForwardAction.REPLICATE

    def test_empty_graph_keeps_everything(self):
        graph = ContactGraph(3)
        router = RateGradientRouter()
        assert router.decide(0, 1, 2, graph, 1.0).action is ForwardAction.KEEP
