"""Unit tests for epidemic, direct-delivery, and spray-and-wait routers."""

import pytest

from repro.errors import ConfigurationError
from repro.routing.base import ForwardAction
from repro.routing.direct import DirectDeliveryRouter
from repro.routing.epidemic import EpidemicRouter
from repro.routing.spray import SprayAndWaitRouter


class TestEpidemic:
    def test_always_replicates(self, line_graph):
        router = EpidemicRouter()
        decision = router.decide(0, 1, 3, line_graph, 1.0)
        assert decision.action is ForwardAction.REPLICATE


class TestDirect:
    def test_handover_only_to_destination(self, line_graph):
        router = DirectDeliveryRouter()
        assert router.decide(0, 3, 3, line_graph, 1.0).action is ForwardAction.HANDOVER
        assert router.decide(0, 1, 3, line_graph, 1.0).action is ForwardAction.KEEP


class TestSprayAndWait:
    def test_binary_split(self, line_graph):
        router = SprayAndWaitRouter(initial_copies=8)
        decision = router.decide(0, 1, 3, line_graph, 1.0, copies=8)
        assert decision.action is ForwardAction.REPLICATE
        assert decision.peer_score == 4.0
        assert decision.carrier_score == 4.0

    def test_odd_split(self, line_graph):
        router = SprayAndWaitRouter()
        decision = router.decide(0, 1, 3, line_graph, 1.0, copies=5)
        assert decision.peer_score == 2.0
        assert decision.carrier_score == 3.0

    def test_single_copy_waits(self, line_graph):
        router = SprayAndWaitRouter()
        assert router.decide(0, 1, 3, line_graph, 1.0, copies=1).action is ForwardAction.KEEP

    def test_single_copy_delivers_to_destination(self, line_graph):
        router = SprayAndWaitRouter()
        assert (
            router.decide(2, 3, 3, line_graph, 1.0, copies=1).action
            is ForwardAction.HANDOVER
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SprayAndWaitRouter(initial_copies=0)
