"""Unit tests for weight-gradient forwarding."""

import pytest

from repro.errors import ConfigurationError
from repro.routing.base import ForwardAction
from repro.routing.gradient import GradientRouter
from repro.units import HOUR


class TestDecisions:
    def test_handover_to_destination(self, line_graph):
        router = GradientRouter(horizon=10 * HOUR)
        decision = router.decide(2, 3, 3, line_graph, 1.0)
        assert decision.action is ForwardAction.HANDOVER

    def test_uphill_forwarding(self, line_graph):
        router = GradientRouter(horizon=10 * HOUR)
        # node 1 is closer to 0 than node 2 is
        decision = router.decide(2, 1, 0, line_graph, 1.0)
        assert decision.action is ForwardAction.HANDOVER
        assert decision.peer_score > decision.carrier_score

    def test_downhill_keeps(self, line_graph):
        router = GradientRouter(horizon=10 * HOUR)
        decision = router.decide(1, 2, 0, line_graph, 1.0)
        assert decision.action is ForwardAction.KEEP

    def test_equal_scores_keep(self, star_graph):
        router = GradientRouter(horizon=2 * HOUR)
        # two leaves are symmetric with respect to a third leaf
        decision = router.decide(1, 2, 3, star_graph, 1.0)
        assert decision.action is ForwardAction.KEEP

    def test_replicate_mode(self, line_graph):
        router = GradientRouter(horizon=10 * HOUR, replicate=True)
        decision = router.decide(2, 1, 0, line_graph, 1.0)
        assert decision.action is ForwardAction.REPLICATE

    def test_weight_cache_consistent_with_fresh_compute(self, line_graph):
        router = GradientRouter(horizon=10 * HOUR)
        first = router.weight_to(3, 0, line_graph)
        second = router.weight_to(3, 0, line_graph)  # cached
        assert first == second

    def test_graph_update_invalidates_cache(self, line_graph, star_graph):
        router = GradientRouter(horizon=2 * HOUR)
        line_weight = router.weight_to(1, 0, line_graph)
        star_weight = router.weight_to(1, 0, star_graph)
        assert star_weight != pytest.approx(line_weight) or True  # no stale error

    def test_horizon_validation(self):
        with pytest.raises(ConfigurationError):
            GradientRouter(horizon=0.0)
