"""Integration tests for the experiment harness (tables/figures)."""

import math

import pytest

from repro.experiments import (
    SMOKE_SCALE,
    fig4,
    fig9a,
    fig9b,
    fig13,
    render_figure,
    render_table,
    results_to_csv,
    table1,
)
from repro.experiments.configs import ExperimentScale


@pytest.fixture(scope="module")
def smoke():
    return SMOKE_SCALE


class TestTable1:
    def test_four_rows(self, smoke):
        result = table1(smoke)
        assert len(result.rows) == 4
        assert {row["trace"].split("-")[0] for row in result.rows} == {
            "infocom05",
            "infocom06",
            "mit_reality",
            "ucsd",
        }

    def test_renders(self, smoke):
        text = render_table(table1(smoke))
        assert "devices" in text and "infocom05" in text


class TestFig4:
    def test_metric_series_sorted_descending(self, smoke):
        result = fig4(smoke, traces=("infocom05", "mit_reality"))
        for series in result.series:
            assert series.y == sorted(series.y, reverse=True)
            assert all(0.0 <= v <= 1.0 for v in series.y)

    def test_skewed_distribution(self, smoke):
        result = fig4(smoke, traces=("mit_reality",))
        values = result.series[0].y
        top = values[0]
        median = values[len(values) // 2]
        assert top > 1.2 * max(median, 1e-9)


class TestFig9:
    def test_fig9a_generated_decreases_with_lifetime(self, smoke):
        result = fig9a(smoke)
        generated = next(s for s in result.series if "generated" in s.label)
        assert generated.y[0] > generated.y[-1]

    def test_fig9b_matches_eq8(self):
        result = fig9b(num_items=20)
        for series in result.series:
            assert sum(series.y) == pytest.approx(1.0)
            assert series.y == sorted(series.y, reverse=True)

    def test_fig9b_exponent_ordering(self):
        result = fig9b(num_items=20)
        by_label = {s.label: s for s in result.series}
        assert by_label["s=1.5"].y[0] > by_label["s=0.5"].y[0]


class TestRendering:
    def test_figure_renders_with_chart(self):
        result = fig9b(num_items=10)
        text = render_figure(result, chart=True)
        assert "fig9b" in text
        assert "s=1" in text

    def test_csv_export(self):
        result = fig9b(num_items=5)
        csv = results_to_csv(result)
        lines = csv.strip().splitlines()
        assert lines[0].startswith("x,")
        assert len(lines) == 6


class TestSweepExperiment:
    """One real sweep at minimal scale: the Fig. 13 K-sensitivity."""

    def test_fig13_structure(self):
        tiny = ExperimentScale("tiny", node_factor=0.3, time_factor=0.06, seeds=(7,))
        figures = fig13(tiny, ncl_counts=(1, 4), sizes_mb=(100,))
        assert set(figures) == {"a", "b", "c"}
        ratio_series = figures["a"].series[0]
        assert ratio_series.x == [1.0, 4.0]
        assert all(0.0 <= v <= 1.0 for v in ratio_series.y)
        delay_series = figures["b"].series[0]
        assert all(v > 0 or math.isnan(v) for v in delay_series.y)
