"""Tiny-scale structural tests for the sweep experiments (Figs. 10-12).

Full shape assertions live in the benchmarks; these integration tests
run each sweep at a minimal scale and verify structure: all sub-figures
present, all five schemes/four policies covered, series aligned with the
sweep axis, values in-domain.
"""

import math

import pytest

from repro.experiments.configs import ExperimentScale
from repro.experiments.figures import fig10, fig11, fig12

TINY = ExperimentScale("tiny", node_factor=0.28, time_factor=0.06, seeds=(7,))

SCHEMES = {"intentional", "nocache", "randomcache", "cachedata", "bundlecache"}
POLICIES = {"utility_knapsack", "fifo", "lru", "gds"}


def _check_structure(figures, expected_labels, x_len):
    assert set(figures) == {"a", "b", "c"}
    for figure in figures.values():
        assert {s.label for s in figure.series} == expected_labels
        for series in figure.series:
            assert len(series.x) == x_len
            assert len(series.y) == x_len
    for series in figures["a"].series:  # ratios
        assert all(0.0 <= v <= 1.0 for v in series.y)
    for series in figures["b"].series:  # delays (hours) or NaN
        assert all(v >= 0.0 or math.isnan(v) for v in series.y)
    for series in figures["c"].series:  # overheads
        assert all(v >= 0.0 for v in series.y)


class TestFig10Structure:
    @pytest.fixture(scope="class")
    def figures(self):
        return fig10(TINY, lifetime_fractions=(0.1, 0.4))

    def test_structure(self, figures):
        _check_structure(figures, SCHEMES, x_len=2)

    def test_nocache_has_no_copies(self, figures):
        nocache = next(s for s in figures["c"].series if s.label == "nocache")
        assert all(v == 0.0 for v in nocache.y)


class TestFig11Structure:
    def test_structure(self):
        figures = fig11(TINY, sizes_mb=(40, 160))
        _check_structure(figures, SCHEMES, x_len=2)
        assert figures["a"].series[0].x == [40.0, 160.0]


class TestFig12Structure:
    def test_structure(self):
        figures = fig12(TINY, sizes_mb=(40, 160))
        _check_structure(figures, POLICIES, x_len=2)
        assert "replaced" in figures["c"].y_label
