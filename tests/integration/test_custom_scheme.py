"""Extensibility contract: a third-party scheme built on the public API.

Mirrors the NeighborCache example from docs/TUTORIAL.md — if this test
breaks, the documented extension surface broke.
"""

from repro.caching.base import CachingScheme
from repro.caching.nocache import NoCache
from repro.core.replacement import LRUPolicy
from repro.sim.bundles import QueryBundle
from repro.sim.simulator import Simulator, SimulatorConfig
from repro.traces.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.units import DAY, HOUR, MEGABIT
from repro.workload.config import WorkloadConfig


class NeighborCache(CachingScheme):
    """Flood queries epidemically; requesters' caches fill via LRU."""

    name = "neighborcache"

    def __init__(self):
        super().__init__()
        self._lru = LRUPolicy()

    def on_data_generated(self, node, data, now):
        self.answer_pending_queries(node, data.data_id, now)

    def on_query_generated(self, node, query, now):
        node.observe_query(query, now)
        source = self.services.lookup_data(query.data_id)
        if source is not None:
            node.store_bundle(
                QueryBundle(
                    created_at=now,
                    expires_at=query.expires_at,
                    query=query,
                    target_central=source.source,
                )
            )
        self.try_respond(node, query, now)

    def on_data_delivered(self, node, data, query, now):
        self._lru.admit(node.buffer, data, now)

    def on_contact(self, a, b, now, budget):
        self.housekeeping(a, now)
        self.housekeeping(b, now)
        self.process_responses(a, b, now, budget)
        self.process_responses(b, a, now, budget)
        for x, y in ((a, b), (b, a)):
            for bundle in x.bundles:
                if isinstance(bundle, QueryBundle) and not y.has_seen(bundle.key):
                    if budget.try_consume(bundle.size_bits):
                        y.store_bundle(
                            QueryBundle(
                                created_at=bundle.created_at,
                                expires_at=bundle.expires_at,
                                query=bundle.query,
                                target_central=bundle.target_central,
                            )
                        )
                        y.observe_query(bundle.query, now)
                        self.try_respond(y, bundle.query, now)


class TestCustomScheme:
    def _setup(self):
        trace = generate_synthetic_trace(
            SyntheticTraceConfig(
                name="custom",
                num_nodes=14,
                duration=4 * DAY,
                total_contacts=3000,
                granularity=60.0,
                seed=4,
            )
        )
        workload = WorkloadConfig(
            mean_data_lifetime=12 * HOUR, mean_data_size=20 * MEGABIT
        )
        return trace, workload

    def test_custom_scheme_runs_end_to_end(self):
        trace, workload = self._setup()
        result = Simulator(
            trace, NeighborCache(), workload, SimulatorConfig(seed=7)
        ).run()
        assert 0.0 <= result.successful_ratio <= 1.0
        assert result.queries_satisfied > 0

    def test_flooding_scheme_beats_nocache(self):
        """Epidemic query flooding + requester caching must outperform
        the do-nothing baseline — sanity that custom behaviour matters."""
        trace, workload = self._setup()
        custom = Simulator(
            trace, NeighborCache(), workload, SimulatorConfig(seed=7)
        ).run()
        plain = Simulator(trace, NoCache(), workload, SimulatorConfig(seed=7)).run()
        assert custom.successful_ratio >= plain.successful_ratio

    def test_custom_scheme_caches_at_requesters(self):
        trace, workload = self._setup()
        sim = Simulator(trace, NeighborCache(), workload, SimulatorConfig(seed=7))
        result = sim.run()
        assert result.caching_overhead > 0.0
