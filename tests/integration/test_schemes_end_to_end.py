"""Integration tests: all five schemes end-to-end on scaled paper traces.

These assert the qualitative *shapes* the paper reports, with generous
margins: intentional caching leads the baselines on successful ratio,
NoCache caches nothing, RandomCache burns the most buffer among
incidental schemes, every metric stays within its domain.
"""

import pytest

from repro.caching import (
    BundleCache,
    CacheData,
    IntentionalCaching,
    IntentionalConfig,
    NoCache,
    RandomCache,
)
from repro.sim.simulator import Simulator, SimulatorConfig
from repro.traces.catalog import TRACE_PRESETS, load_preset_trace
from repro.units import MEGABIT, WEEK
from repro.workload.config import WorkloadConfig


@pytest.fixture(scope="module")
def mit_trace():
    return load_preset_trace("mit_reality", seed=1, node_factor=0.6, time_factor=0.15)


@pytest.fixture(scope="module")
def mit_results(mit_trace):
    preset = TRACE_PRESETS["mit_reality"]
    lifetime = mit_trace.duration * 0.1
    workload = WorkloadConfig(mean_data_lifetime=lifetime, mean_data_size=100 * MEGABIT)
    schemes = {
        "intentional": lambda: IntentionalCaching(
            IntentionalConfig(num_ncls=5, ncl_time_budget=preset.ncl_time_budget)
        ),
        "nocache": NoCache,
        "randomcache": RandomCache,
        "cachedata": CacheData,
        "bundlecache": BundleCache,
    }
    return {
        name: Simulator(mit_trace, factory(), workload, SimulatorConfig(seed=7)).run()
        for name, factory in schemes.items()
    }


class TestDomains:
    def test_ratios_are_probabilities(self, mit_results):
        for result in mit_results.values():
            assert 0.0 <= result.successful_ratio <= 1.0

    def test_satisfied_at_most_issued(self, mit_results):
        for result in mit_results.values():
            assert result.queries_satisfied <= result.queries_issued

    def test_delays_within_constraint(self, mit_results, mit_trace):
        constraint = mit_trace.duration * 0.1 / 2
        for result in mit_results.values():
            if result.queries_satisfied:
                assert 0.0 < result.mean_access_delay <= constraint

    def test_overheads_nonnegative(self, mit_results):
        for result in mit_results.values():
            assert result.caching_overhead >= 0.0
            assert result.replacement_overhead >= 0.0


class TestPaperShapes:
    def test_queries_get_satisfied_at_all(self, mit_results):
        assert mit_results["intentional"].queries_satisfied > 0

    def test_intentional_beats_nocache(self, mit_results):
        assert (
            mit_results["intentional"].successful_ratio
            > mit_results["nocache"].successful_ratio
        )

    def test_intentional_at_least_matches_incidental_baselines(self, mit_results):
        best_baseline = max(
            mit_results[name].successful_ratio
            for name in ("randomcache", "cachedata", "bundlecache")
        )
        # generous tolerance: single seed at reduced scale is noisy
        assert mit_results["intentional"].successful_ratio >= 0.85 * best_baseline

    def test_nocache_has_zero_cached_copies(self, mit_results):
        assert mit_results["nocache"].caching_overhead == 0.0

    def test_intentional_caches_multiple_copies(self, mit_results):
        assert mit_results["intentional"].caching_overhead > 0.1

    def test_only_intentional_exchanges(self, mit_results):
        assert mit_results["intentional"].exchanges > 0
        for name in ("nocache", "randomcache", "cachedata", "bundlecache"):
            assert mit_results[name].exchanges == 0

    def test_every_scheme_issues_comparable_query_counts(self, mit_results):
        counts = [r.queries_issued for r in mit_results.values()]
        assert max(counts) - min(counts) <= 0.2 * max(counts)
