"""Failure injection: degenerate inputs the simulator must survive.

Each test builds a pathological network/workload condition — starved
buffers, oversized data, isolated nodes, empty warm-ups, expired-on-
arrival queries — and asserts the simulation completes with coherent
metrics instead of crashing or mis-counting.
"""

import pytest

from repro.caching import (
    BundleCache,
    CacheData,
    IntentionalCaching,
    IntentionalConfig,
    NoCache,
    RandomCache,
)
from repro.sim.simulator import Simulator, SimulatorConfig
from repro.traces.contact import Contact, ContactTrace
from repro.traces.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.units import DAY, HOUR, MEGABIT
from repro.workload.config import WorkloadConfig

ALL_SCHEMES = [
    lambda: IntentionalCaching(IntentionalConfig(num_ncls=2, ncl_time_budget=2 * HOUR)),
    NoCache,
    RandomCache,
    CacheData,
    BundleCache,
]


def tiny_trace(seed=3, num_nodes=10, contacts=1200):
    return generate_synthetic_trace(
        SyntheticTraceConfig(
            name="inject",
            num_nodes=num_nodes,
            duration=4 * DAY,
            total_contacts=contacts,
            granularity=60.0,
            seed=seed,
        )
    )


class TestStarvedBuffers:
    """Buffers barely larger than a single item: constant eviction churn."""

    @pytest.mark.parametrize("factory", ALL_SCHEMES)
    def test_completes_with_coherent_metrics(self, factory):
        workload = WorkloadConfig(
            mean_data_lifetime=12 * HOUR,
            mean_data_size=60 * MEGABIT,
            buffer_min=70 * MEGABIT,
            buffer_max=95 * MEGABIT,
        )
        result = Simulator(tiny_trace(), factory(), workload, SimulatorConfig(seed=5)).run()
        assert 0.0 <= result.successful_ratio <= 1.0
        assert result.queries_satisfied <= result.queries_issued


class TestOversizedData:
    """Data larger than every buffer: nothing can ever be cached."""

    def test_intentional_degrades_to_source_only(self):
        workload = WorkloadConfig(
            mean_data_lifetime=12 * HOUR,
            mean_data_size=900 * MEGABIT,   # items are 450-1350 Mb
            buffer_min=200 * MEGABIT,
            buffer_max=300 * MEGABIT,
        )
        scheme = IntentionalCaching(
            IntentionalConfig(num_ncls=2, ncl_time_budget=2 * HOUR)
        )
        sim = Simulator(tiny_trace(), scheme, workload, SimulatorConfig(seed=5))
        result = sim.run()
        # no item fits any buffer -> zero copies, but the run is healthy
        assert result.caching_overhead == 0.0
        assert result.queries_issued > 0


class TestIsolatedNodes:
    """Nodes that never contact anyone must not break selection/routing."""

    def test_trace_with_hermit_nodes(self):
        contacts = []
        t = 0.0
        for round_index in range(120):
            base = round_index * 1800.0
            contacts.append(Contact(base, base + 300.0, 0, 1))
            contacts.append(Contact(base + 400.0, base + 700.0, 1, 2))
        # nodes 3 and 4 never appear
        trace = ContactTrace(contacts, num_nodes=5, granularity=60.0, name="hermits")
        workload = WorkloadConfig(mean_data_lifetime=6 * HOUR, mean_data_size=10 * MEGABIT)
        scheme = IntentionalCaching(
            IntentionalConfig(num_ncls=2, ncl_time_budget=2 * HOUR)
        )
        result = Simulator(trace, scheme, workload, SimulatorConfig(seed=5)).run()
        assert 0.0 <= result.successful_ratio <= 1.0


class TestDegenerateWorkloads:
    def test_zero_generation_probability(self):
        workload = WorkloadConfig(
            mean_data_lifetime=12 * HOUR,
            mean_data_size=10 * MEGABIT,
            generation_probability=0.0,
        )
        result = Simulator(
            tiny_trace(), NoCache(), workload, SimulatorConfig(seed=5)
        ).run()
        assert result.data_generated == 0
        assert result.queries_issued == 0
        assert result.successful_ratio == 0.0

    def test_certain_generation(self):
        workload = WorkloadConfig(
            mean_data_lifetime=12 * HOUR,
            mean_data_size=10 * MEGABIT,
            generation_probability=1.0,
        )
        result = Simulator(
            tiny_trace(), NoCache(), workload, SimulatorConfig(seed=5)
        ).run()
        assert result.data_generated >= 10  # every node generates round one

    def test_extremely_short_lifetimes(self):
        """Data expires before most contacts can move it."""
        workload = WorkloadConfig(
            mean_data_lifetime=300.0,  # five minutes
            mean_data_size=10 * MEGABIT,
        )
        scheme = IntentionalCaching(
            IntentionalConfig(num_ncls=2, ncl_time_budget=1 * HOUR)
        )
        result = Simulator(tiny_trace(), scheme, workload, SimulatorConfig(seed=5)).run()
        assert 0.0 <= result.successful_ratio <= 1.0

    def test_uniform_query_pattern(self):
        workload = WorkloadConfig(
            mean_data_lifetime=12 * HOUR,
            mean_data_size=10 * MEGABIT,
            zipf_exponent=0.0,
        )
        result = Simulator(
            tiny_trace(), NoCache(), workload, SimulatorConfig(seed=5)
        ).run()
        assert result.queries_issued > 0


class TestStarvedLinks:
    """Near-zero link capacity: almost nothing can be transferred."""

    def test_low_capacity_link(self):
        workload = WorkloadConfig(
            mean_data_lifetime=12 * HOUR, mean_data_size=50 * MEGABIT
        )
        scheme = IntentionalCaching(
            IntentionalConfig(num_ncls=2, ncl_time_budget=2 * HOUR)
        )
        result = Simulator(
            tiny_trace(),
            scheme,
            workload,
            SimulatorConfig(seed=5, link_capacity=1000.0),  # 1 kb/s
        ).run()
        # data transfers are impossible; only locally satisfiable queries win
        assert result.caching_overhead == 0.0
        assert 0.0 <= result.successful_ratio <= 1.0

    def test_capacity_affects_outcomes(self):
        workload = WorkloadConfig(
            mean_data_lifetime=12 * HOUR, mean_data_size=50 * MEGABIT
        )

        def run(capacity):
            scheme = IntentionalCaching(
                IntentionalConfig(num_ncls=2, ncl_time_budget=2 * HOUR)
            )
            return Simulator(
                tiny_trace(),
                scheme,
                workload,
                SimulatorConfig(seed=5, link_capacity=capacity),
            ).run()

        fast = run(2.1e6)
        slow = run(1000.0)
        assert fast.successful_ratio >= slow.successful_ratio
