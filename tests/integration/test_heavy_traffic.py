"""Heavy-traffic acceptance: bounded collector memory at scale.

The tentpole's memory contract: a streaming-mode run holds O(open +
reservoir) per-query state no matter how many queries pass through.
The ungated tests prove it at ~10⁵ queries (fast enough for tier-1);
``REPRO_BIG_TESTS=1`` unlocks the full 10⁶-query acceptance runs, both
as a raw collector feed and as an end-to-end bursty serve session.
"""

import os

import pytest

from repro.caching.nocache import NoCache
from repro.core.data import Query
from repro.experiments.serve import ServeSession
from repro.metrics.collector import MetricsCollector
from repro.traces.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.units import DAY, HOUR, MEGABIT
from repro.workload.config import WorkloadConfig

BIG = os.environ.get("REPRO_BIG_TESTS") == "1"
big_only = pytest.mark.skipif(
    not BIG, reason="set REPRO_BIG_TESTS=1 for the 10^6-query acceptance runs"
)

#: per-query state allowance: the open window is one constraint wide, so
#: state must track the wave width (here ≤ 2 waves), never the history.
WAVE = 1_000


def drive_streaming_collector(num_queries: int) -> MetricsCollector:
    """Feed *num_queries* in overlapping waves; assert bounded state
    throughout (not only at the end — growth must never happen)."""
    collector = MetricsCollector(streaming=True, reservoir_size=256)
    constraint = float(WAVE)  # each wave's queries expire as the next ends
    for index in range(num_queries):
        t = float(index)
        query = Query(
            query_id=index,
            requester=0,
            data_id=index,
            created_at=t,
            time_constraint=constraint,
        )
        collector.on_query_created(query)
        if index % 3 == 0:
            collector.record_delivery(query, t + 1.0)        # first
        if index % 9 == 0:
            collector.record_delivery(query, t + 2.0)        # duplicate
        if index % WAVE == 0:
            collector.pending_queries(t)
            assert collector.open_queries <= 2 * WAVE
            assert len(collector._satisfied) <= 2 * WAVE
    assert collector._queries is None
    assert collector._satisfied_at is None
    assert len(collector.delay_reservoir) == 256
    assert collector.queries_issued == num_queries
    return collector


def test_streaming_collector_bounded_at_100k():
    collector = drive_streaming_collector(100_000)
    result = collector.finalize("heavy", seed=0)
    assert result.queries_satisfied == pytest.approx(100_000 / 3, rel=0.01)
    assert result.mean_access_delay == 1.0


@big_only
def test_streaming_collector_bounded_at_1m():
    """Acceptance: 10⁶ queries, O(1) per-query state in the collector."""
    collector = drive_streaming_collector(1_000_000)
    assert collector.open_queries <= 2 * WAVE
    assert len(collector._satisfied) <= 2 * WAVE


def _bursty_session(num_nodes=24, seed=3):
    trace = generate_synthetic_trace(
        SyntheticTraceConfig(
            name="heavy-bursty",
            num_nodes=num_nodes,
            duration=6 * DAY,
            total_contacts=4000,
            granularity=60.0,
            seed=seed,
        )
    )
    workload = WorkloadConfig(
        mean_data_lifetime=6 * HOUR,
        mean_data_size=20 * MEGABIT,
        arrival_process="bursty",
        arrival_params={"base": 0.5, "burst": 3.0},
    )
    return ServeSession(trace, NoCache(), workload)


def _assert_session_bounded(session, num_nodes):
    metrics = session.simulator.metrics
    assert metrics.streaming
    assert metrics._queries is None
    # Open queries span at most the constraint window: one query round,
    # every node bursting — far below the cumulative issue count.
    assert metrics.open_queries <= 10 * num_nodes
    assert len(metrics._satisfied) <= 10 * num_nodes


def test_serve_session_bursty_bounded_memory():
    """Moderate ungated end-to-end check of the same contract."""
    session = _bursty_session()
    issued = 0
    for _ in range(8):
        batch = session.run_batch(rounds=20)
        issued += batch.queries_issued
        _assert_session_bounded(session, 24)
    assert issued > 2_000
    result = session.finalize()
    assert result.queries_issued == issued


@big_only
def test_serve_session_bursty_1m_queries():
    """Acceptance: a 10⁶-query bursty serve run completes with the
    collector holding a bounded open set (no per-query dict growth)."""
    session = _bursty_session(num_nodes=48, seed=9)
    issued = 0
    while issued < 1_000_000:
        batch = session.run_batch(rounds=500)
        issued += batch.queries_issued
        _assert_session_bounded(session, 48)
    result = session.finalize()
    assert result.queries_issued == issued
    assert result.queries_issued >= 1_000_000
