"""Dynamic-network integration: churn scenarios end-to-end.

Covers the acceptance contract of the scenario + dynamics layer:

* the shipped ``examples/churn.json`` runs end-to-end — central-node
  failures trigger re-election, and queries still succeed afterwards;
* a churn run under ``workers=4`` is bitwise-identical to serial, and a
  traced churn run passes the trace/metrics cross-audit with the new
  event kinds present;
* the scenario path is a drop-in for legacy direct construction:
  bitwise-equal results, pinned against golden numbers.
"""

import os

import pytest

from repro.caching import IntentionalCaching, IntentionalConfig
from repro.obs.events import TraceEventKind
from repro.obs.recorder import MemoryRecorder
from repro.scenario import (
    RunSpec,
    ScenarioSpec,
    SchemeSpec,
    TraceSpec,
    build_trace,
    run_scenario,
    scheme_factory,
    simulator_config,
)
from repro.sim.dynamics import DynamicsConfig, DynamicsEvent
from repro.sim.simulator import Simulator, SimulatorConfig
from repro.traces.catalog import TRACE_PRESETS, load_preset_trace
from repro.workload.config import WorkloadConfig

EXAMPLE_SCENARIO = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "examples", "churn.json"
)


def _smoke_churn_spec(repeat: int = 1) -> ScenarioSpec:
    """A fast churn scenario: smoke-scale trace, the full action set."""
    return ScenarioSpec(
        trace=TraceSpec(name="mit_reality", seed=1, node_factor=0.35, time_factor=0.08),
        scheme=SchemeSpec(name="intentional", num_ncls=3, reelect=True),
        workload=WorkloadConfig(
            mean_data_lifetime=212544.0 * 0.8, mean_data_size=100_000_000
        ),
        run=RunSpec(seed=7, repeat=repeat),
        dynamics=DynamicsConfig(
            events=(
                DynamicsEvent(action="fail_central", at_fraction=0.3),
                DynamicsEvent(action="leave", at_fraction=0.45, node=3),
                DynamicsEvent(action="join", at_fraction=0.7, node=3),
            )
        ),
    )


class TestExampleScenario:
    @pytest.fixture(scope="class")
    def churn_run(self):
        spec = ScenarioSpec.load(EXAMPLE_SCENARIO)
        recorder = MemoryRecorder()
        trace = build_trace(spec.trace)
        simulator = Simulator(
            trace,
            scheme_factory(spec)(),
            spec.workload,
            simulator_config(spec),
            recorder=recorder,
        )
        # run() cross-audits result vs trace-derived metrics because the
        # recorder is in-memory — the audit must absorb the new
        # node/NCL/migration event kinds.
        result = simulator.run()
        return result, recorder.events

    def test_queries_succeed_after_central_failures(self, churn_run):
        result, _ = churn_run
        assert result.queries_issued > 0
        assert result.successful_ratio > 0.0

    def test_dynamics_events_are_traced(self, churn_run):
        _, events = churn_run
        kinds = {event.kind for event in events}
        assert TraceEventKind.NODE_FAILED in kinds
        assert TraceEventKind.NODE_LEFT in kinds
        assert TraceEventKind.NODE_JOINED in kinds
        assert TraceEventKind.NCL_REELECTED in kinds

    def test_failed_centrals_trigger_reelection(self, churn_run):
        _, events = churn_run
        reelections = [e for e in events if e.kind is TraceEventKind.NCL_REELECTED]
        failures = [e for e in events if e.kind is TraceEventKind.NODE_FAILED]
        assert len(failures) == 2  # the two fail_central events
        assert reelections, "central failures must move the committee"
        for event in reelections:
            assert event.attrs["old"] != event.attrs["new"]


class TestParallelDeterminism:
    def test_churn_sweep_workers_match_serial_bitwise(self):
        spec = _smoke_churn_spec(repeat=4)
        serial = run_scenario(spec)
        parallel = run_scenario(spec, workers=4)
        assert serial.results == parallel.results  # frozen rows, bitwise
        assert serial.aggregate == parallel.aggregate
        assert (
            serial.manifest["config_hash"] == parallel.manifest["config_hash"]
        )


class TestLegacyParity:
    """The scenario path is a thin shim: identical results, pinned."""

    @pytest.fixture(scope="class")
    def parity_runs(self):
        preset = TRACE_PRESETS["mit_reality"]
        trace = load_preset_trace(
            "mit_reality", seed=1, node_factor=0.35, time_factor=0.08
        )
        workload = WorkloadConfig(
            mean_data_lifetime=trace.duration * 0.1, mean_data_size=100_000_000
        )
        legacy = Simulator(
            trace,
            IntentionalCaching(
                IntentionalConfig(num_ncls=5, ncl_time_budget=preset.ncl_time_budget)
            ),
            workload,
            SimulatorConfig(seed=7),
        ).run()

        spec = ScenarioSpec(
            trace=TraceSpec(
                name="mit_reality", seed=1, node_factor=0.35, time_factor=0.08
            ),
            scheme=SchemeSpec(name="intentional", num_ncls=5),
            workload=workload,
            run=RunSpec(seed=7),
        )
        scenario = Simulator(
            build_trace(spec.trace),
            scheme_factory(spec)(),
            workload,
            simulator_config(spec),
        ).run()
        return legacy, scenario

    def test_scenario_path_is_bitwise_identical(self, parity_runs):
        legacy, scenario = parity_runs
        assert legacy == scenario

    def test_golden_numbers(self, parity_runs):
        legacy, _ = parity_runs
        # Pinned from the seed revision: any drift here means the
        # refactor changed simulation behaviour, not just plumbing.
        assert legacy.queries_issued == 296
        assert legacy.queries_satisfied == 29
        assert legacy.data_generated == 31
        assert legacy.exchanges == 108
        assert legacy.successful_ratio == pytest.approx(0.0979729729, rel=1e-9)
