"""Smoke tests for the runnable example scripts.

Examples are user-facing documentation; these tests execute their
importable pieces (and the experiment runner's CLI path end-to-end at
smoke scale) so they cannot rot.
"""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


class TestRunPaperExperiments:
    def test_smoke_run_writes_outputs(self, tmp_path):
        proc = subprocess.run(
            [
                sys.executable,
                str(EXAMPLES / "run_paper_experiments.py"),
                "--scale",
                "smoke",
                "--outdir",
                str(tmp_path),
                "--only",
                "table1",
                "fig9b",
            ],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert (tmp_path / "table1.txt").exists()
        assert (tmp_path / "table1.csv").exists()
        assert (tmp_path / "fig9b.txt").exists()
        assert (tmp_path / "fig9b.csv").exists()
        csv_text = (tmp_path / "fig9b.csv").read_text()
        assert csv_text.startswith("x,")

    def test_unknown_experiment_fails_cleanly(self, tmp_path):
        proc = subprocess.run(
            [
                sys.executable,
                str(EXAMPLES / "run_paper_experiments.py"),
                "--outdir",
                str(tmp_path),
                "--only",
                "fig99",
            ],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode != 0
        assert "fig99" in proc.stderr or "fig99" in proc.stdout


class TestExampleImports:
    """Each example's main() must at least be importable and callable in
    a trimmed form; quickstart is fast enough to execute outright."""

    def test_examples_exist(self):
        names = {p.name for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart.py",
            "smartphone_content_sharing.py",
            "vanet_traffic_info.py",
            "campus_mobility.py",
            "run_paper_experiments.py",
        } <= names

    def test_examples_compile(self):
        for script in EXAMPLES.glob("*.py"):
            source = script.read_text()
            compile(source, str(script), "exec")

    def test_examples_have_docstrings_and_mains(self):
        for script in EXAMPLES.glob("*.py"):
            source = script.read_text()
            assert source.lstrip().startswith(('"""', "#!")), script.name
            if script.name != "run_paper_experiments.py":
                assert "def main()" in source, script.name
            assert '__name__ == "__main__"' in source, script.name
