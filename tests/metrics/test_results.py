"""Unit tests for result aggregation."""

import math

import pytest

from repro.metrics.results import SimulationResult, aggregate_results


def result(name="s", seed=0, ratio=0.5, delay=3600.0, copies=1.0):
    return SimulationResult(
        name=name,
        seed=seed,
        queries_issued=100,
        queries_satisfied=int(100 * ratio),
        successful_ratio=ratio,
        mean_access_delay=delay,
        caching_overhead=copies,
        data_generated=10,
        replaced_items=5,
        replacement_overhead=0.5,
        exchanges=3,
        responses_emitted=60,
        responses_delivered=50,
        bits_transferred=1000,
    )


class TestAggregation:
    def test_mean_of_runs(self):
        agg = aggregate_results([result(seed=1, ratio=0.4), result(seed=2, ratio=0.6)])
        assert agg.successful_ratio == pytest.approx(0.5)
        assert agg.runs == 2

    def test_confidence_interval_positive_with_spread(self):
        agg = aggregate_results([result(seed=1, ratio=0.4), result(seed=2, ratio=0.6)])
        assert agg.successful_ratio_ci > 0.0

    def test_single_run_has_zero_ci(self):
        agg = aggregate_results([result()])
        assert agg.successful_ratio_ci == 0.0

    def test_nan_delays_skipped(self):
        agg = aggregate_results(
            [result(seed=1, delay=float("nan")), result(seed=2, delay=100.0)]
        )
        assert agg.mean_access_delay == pytest.approx(100.0)

    def test_all_nan_delay_is_nan(self):
        agg = aggregate_results([result(delay=float("nan"))])
        assert math.isnan(agg.mean_access_delay)

    def test_rejects_mixed_schemes(self):
        with pytest.raises(ValueError):
            aggregate_results([result(name="a"), result(name="b")])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            aggregate_results([])


class TestRows:
    def test_simulation_row(self):
        row = result().as_row()
        assert row["scheme"] == "s"
        assert row["ratio"] == 0.5
        assert row["delay_h"] == 1.0

    def test_aggregate_row(self):
        row = aggregate_results([result()]).as_row()
        assert row["runs"] == 1
        assert row["delay_h"] == 1.0
