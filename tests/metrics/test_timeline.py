"""Unit tests for time-series metric collection."""

import pytest

from repro.metrics.timeline import TimelineRecorder


def record_demo(recorder, t, issued=10, satisfied=5):
    recorder.record(
        time=t,
        live_items=4,
        cached_copies=8,
        queries_issued=issued,
        queries_satisfied=satisfied,
        mean_buffer_occupancy=0.25,
    )


class TestRecorder:
    def test_point_properties(self):
        recorder = TimelineRecorder()
        record_demo(recorder, 10.0)
        point = recorder.points[0]
        assert point.copies_per_item == 2.0
        assert point.running_ratio == 0.5

    def test_zero_denominators(self):
        recorder = TimelineRecorder()
        recorder.record(
            time=0.0,
            live_items=0,
            cached_copies=0,
            queries_issued=0,
            queries_satisfied=0,
            mean_buffer_occupancy=0.0,
        )
        point = recorder.points[0]
        assert point.copies_per_item == 0.0
        assert point.running_ratio == 0.0

    def test_time_ordering_enforced(self):
        recorder = TimelineRecorder()
        record_demo(recorder, 10.0)
        with pytest.raises(ValueError):
            record_demo(recorder, 5.0)

    def test_columns(self):
        recorder = TimelineRecorder()
        record_demo(recorder, 1.0, issued=10, satisfied=2)
        record_demo(recorder, 2.0, issued=20, satisfied=10)
        assert recorder.column("time") == [1.0, 2.0]
        assert recorder.column("running_ratio") == [0.2, 0.5]
        with pytest.raises(AttributeError):
            recorder.column("bogus")

    def test_empty_columns(self):
        assert TimelineRecorder().column("time") == []

    def test_as_dict_shapes(self):
        recorder = TimelineRecorder()
        record_demo(recorder, 1.0)
        table = recorder.as_dict()
        assert set(table) >= {"time", "copies_per_item", "running_ratio"}
        assert all(len(col) == 1 for col in table.values())


class TestSimulatorIntegration:
    def test_simulator_populates_timeline(self):
        from repro.caching.nocache import NoCache
        from repro.sim.simulator import Simulator, SimulatorConfig
        from repro.traces.synthetic import SyntheticTraceConfig, generate_synthetic_trace
        from repro.units import DAY, HOUR, MEGABIT
        from repro.workload.config import WorkloadConfig

        trace = generate_synthetic_trace(
            SyntheticTraceConfig(
                name="tl", num_nodes=8, duration=3 * DAY,
                total_contacts=800, granularity=60.0, seed=1,
            )
        )
        workload = WorkloadConfig(mean_data_lifetime=8 * HOUR, mean_data_size=10 * MEGABIT)
        sim = Simulator(trace, NoCache(), workload, SimulatorConfig(seed=2))
        sim.run()
        assert len(sim.timeline) > 0
        times = sim.timeline.column("time")
        assert times == sorted(times)
        assert all(0.0 <= v <= 1.0 for v in sim.timeline.column("mean_buffer_occupancy"))
