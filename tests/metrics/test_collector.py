"""Unit tests for metric collection."""

import math

import pytest

from repro.metrics.collector import MetricsCollector
from tests.conftest import make_item, make_query


class TestQueryMetrics:
    def test_first_delivery_counts(self):
        collector = MetricsCollector()
        query = make_query(query_id=1, created_at=0.0, time_constraint=100.0)
        collector.on_query_created(query)
        assert collector.on_query_satisfied(query, now=30.0)
        assert not collector.on_query_satisfied(query, now=40.0)  # duplicate
        assert collector.queries_satisfied == 1

    def test_late_delivery_does_not_count(self):
        collector = MetricsCollector()
        query = make_query(query_id=1, created_at=0.0, time_constraint=100.0)
        collector.on_query_created(query)
        assert not collector.on_query_satisfied(query, now=150.0)
        assert collector.queries_satisfied == 0

    def test_unknown_query_ignored(self):
        collector = MetricsCollector()
        query = make_query(query_id=1)
        assert not collector.on_query_satisfied(query, now=1.0)

    def test_is_satisfied(self):
        collector = MetricsCollector()
        query = make_query(query_id=1, created_at=0.0, time_constraint=100.0)
        collector.on_query_created(query)
        assert not collector.is_satisfied(1)
        collector.on_query_satisfied(query, now=5.0)
        assert collector.is_satisfied(1)


class TestDuplicateDeliveries:
    def test_duplicate_responses_count_one_distinct_query(self):
        """Regression: the successful ratio counts distinct satisfied
        query ids, never delivery events.  Two NCLs answering the same
        query (the common multi-copy case) must not double-count."""
        collector = MetricsCollector()
        query = make_query(query_id=1, created_at=0.0, time_constraint=100.0)
        collector.on_query_created(query)
        collector.on_query_satisfied(query, now=10.0)
        collector.on_query_satisfied(query, now=20.0)  # second NCL's copy
        collector.on_query_satisfied(query, now=30.0)  # and a third
        result = collector.finalize("test", seed=0)
        assert result.queries_satisfied == 1
        assert result.successful_ratio == 1.0
        assert result.mean_access_delay == pytest.approx(10.0)  # first only
        assert collector.duplicate_deliveries == 2

    def test_duplicate_counter_ignores_late_arrivals(self):
        # A copy past the constraint is a miss, not a duplicate delivery.
        collector = MetricsCollector()
        query = make_query(query_id=1, created_at=0.0, time_constraint=100.0)
        collector.on_query_created(query)
        collector.on_query_satisfied(query, now=150.0)
        assert collector.duplicate_deliveries == 0

    def test_responses_delivered_property(self):
        collector = MetricsCollector()
        collector.on_response_delivered()
        collector.on_response_delivered()
        assert collector.responses_delivered == 2


class TestLateDeliveries:
    def test_late_delivery_is_counted_explicitly(self):
        collector = MetricsCollector()
        query = make_query(query_id=1, created_at=0.0, time_constraint=100.0)
        collector.on_query_created(query)
        assert collector.record_delivery(query, now=150.0) == "late"
        assert collector.late_deliveries == 1
        assert collector.queries_satisfied == 0
        result = collector.finalize("test", seed=0)
        assert result.late_deliveries == 1
        assert result.duplicate_deliveries == 0

    def test_boundary_delivery_is_in_constraint(self):
        collector = MetricsCollector()
        query = make_query(query_id=1, created_at=0.0, time_constraint=100.0)
        collector.on_query_created(query)
        assert collector.record_delivery(query, now=100.0) == "first"
        assert collector.late_deliveries == 0

    def test_classification_precedence(self):
        # duplicate beats late: a second copy after expiry still counts
        # as a duplicate because the query was already satisfied.
        collector = MetricsCollector()
        query = make_query(query_id=1, created_at=0.0, time_constraint=100.0)
        collector.on_query_created(query)
        assert collector.record_delivery(query, now=50.0) == "first"
        assert collector.record_delivery(query, now=150.0) == "duplicate"
        unknown = make_query(query_id=2, created_at=0.0, time_constraint=100.0)
        assert collector.record_delivery(unknown, now=50.0) == "unknown"


class TestPendingQueries:
    def _issue(self, collector, query_id, created_at, constraint=100.0):
        query = make_query(
            query_id=query_id, created_at=created_at, time_constraint=constraint
        )
        collector.on_query_created(query)
        return query

    @pytest.mark.parametrize("streaming", [False, True])
    def test_open_set_retires_on_expiry_and_delivery(self, streaming):
        collector = MetricsCollector(streaming=streaming)
        early = self._issue(collector, 1, created_at=0.0)
        kept = self._issue(collector, 2, created_at=50.0)
        self._issue(collector, 3, created_at=50.0)
        assert collector.pending_queries(60.0) == 3
        collector.on_query_satisfied(kept, now=70.0)
        assert collector.pending_queries(80.0) == 2
        # early expires at 100; strictly-after retires it
        assert collector.pending_queries(100.0) == 2
        assert collector.pending_queries(101.0) == 1
        assert collector.pending_queries(200.0) == 0
        assert early.expires_at == 100.0

    def test_exact_mode_answers_out_of_order_via_full_scan(self):
        collector = MetricsCollector()
        self._issue(collector, 1, created_at=0.0)
        self._issue(collector, 2, created_at=500.0)
        assert collector.pending_queries(600.0) == 1
        # Out-of-order query: the historical full scan answers (it
        # checks expiry only, exactly as the pre-heap implementation
        # did), instead of raising like the streaming mode.
        assert collector.pending_queries(50.0) == 2

    def test_streaming_mode_requires_monotone_times(self):
        collector = MetricsCollector(streaming=True)
        self._issue(collector, 1, created_at=0.0)
        collector.pending_queries(600.0)
        with pytest.raises(ValueError):
            collector.pending_queries(50.0)


class TestStreamingMode:
    def test_no_full_records_exist(self):
        collector = MetricsCollector(streaming=True)
        assert collector.streaming
        assert collector._queries is None
        assert collector._satisfied_at is None
        assert collector._copy_samples is None

    def test_counters_match_exact_mode(self):
        exact = MetricsCollector()
        streaming = MetricsCollector(streaming=True)
        for collector in (exact, streaming):
            queries = [
                make_query(query_id=i, created_at=0.0, time_constraint=100.0)
                for i in range(5)
            ]
            for q in queries:
                collector.on_query_created(q)
            collector.on_query_satisfied(queries[0], now=10.0)
            collector.on_query_satisfied(queries[1], now=30.0)
            collector.on_query_satisfied(queries[1], now=40.0)  # duplicate
            collector.on_query_satisfied(queries[2], now=150.0)  # late
            collector.sample_copies_per_item(10, 5)
        a = exact.finalize("pair", seed=1)
        b = streaming.finalize("pair", seed=1)
        assert a == b  # every field, including the bitwise mean delay

    def test_memory_is_bounded_by_open_not_issued(self):
        """10k sequential queries, each expiring before the next wave:
        per-query state must track the open window, never the history."""
        collector = MetricsCollector(streaming=True, reservoir_size=32)
        for index in range(10_000):
            t = float(index)
            query = make_query(query_id=index, created_at=t, time_constraint=5.0)
            collector.on_query_created(query)
            if index % 2 == 0:
                collector.on_query_satisfied(query, now=t + 1.0)
            collector.pending_queries(t)
        assert collector.queries_issued == 10_000
        assert collector.open_queries <= 8          # ~constraint-width window
        assert len(collector._satisfied) <= 8
        assert len(collector.delay_reservoir) == 32

    def test_reservoir_and_quantiles_observe_delays(self):
        collector = MetricsCollector(streaming=True, reservoir_size=4)
        for index in range(6):
            query = make_query(query_id=index, created_at=0.0, time_constraint=100.0)
            collector.on_query_created(query)
            collector.on_query_satisfied(query, now=10.0 + index)
        assert len(collector.delay_reservoir) == 4
        assert 10.0 <= collector.delay_p50 <= 15.0

    def test_exact_mode_has_no_reservoir(self):
        collector = MetricsCollector()
        query = make_query(query_id=1, created_at=0.0, time_constraint=100.0)
        collector.on_query_created(query)
        collector.on_query_satisfied(query, now=10.0)
        assert collector.delay_reservoir == ()
        assert collector.delay_p50 == 10.0


class TestFinalize:
    def test_ratio_and_delay(self):
        collector = MetricsCollector()
        fast = make_query(query_id=1, created_at=0.0, time_constraint=100.0)
        slow = make_query(query_id=2, created_at=0.0, time_constraint=100.0)
        missed = make_query(query_id=3, created_at=0.0, time_constraint=100.0)
        for q in (fast, slow, missed):
            collector.on_query_created(q)
        collector.on_query_satisfied(fast, now=10.0)
        collector.on_query_satisfied(slow, now=50.0)
        result = collector.finalize("test", seed=0)
        assert result.queries_issued == 3
        assert result.successful_ratio == pytest.approx(2 / 3)
        assert result.mean_access_delay == pytest.approx(30.0)

    def test_no_queries(self):
        result = MetricsCollector().finalize("idle", seed=0)
        assert result.successful_ratio == 0.0
        assert math.isnan(result.mean_access_delay)

    def test_caching_overhead_average(self):
        collector = MetricsCollector()
        collector.sample_copies_per_item(10, 5)
        collector.sample_copies_per_item(20, 5)
        collector.sample_copies_per_item(0, 0)  # ignored: nothing live
        result = collector.finalize("test", seed=0)
        assert result.caching_overhead == pytest.approx(3.0)

    def test_replacement_overhead(self):
        collector = MetricsCollector()
        for _ in range(4):
            collector.on_data_generated(make_item())
        collector.on_exchange(moved_items=6, bits=600)
        result = collector.finalize("test", seed=0)
        assert result.replacement_overhead == pytest.approx(1.5)
        assert result.exchanges == 1
        assert result.bits_transferred == 600

    def test_response_counters(self):
        collector = MetricsCollector()
        collector.on_response_emitted()
        collector.on_response_emitted()
        collector.on_response_delivered()
        result = collector.finalize("test", seed=0)
        assert result.responses_emitted == 2
        assert result.responses_delivered == 1
