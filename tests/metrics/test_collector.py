"""Unit tests for metric collection."""

import math

import pytest

from repro.metrics.collector import MetricsCollector
from tests.conftest import make_item, make_query


class TestQueryMetrics:
    def test_first_delivery_counts(self):
        collector = MetricsCollector()
        query = make_query(query_id=1, created_at=0.0, time_constraint=100.0)
        collector.on_query_created(query)
        assert collector.on_query_satisfied(query, now=30.0)
        assert not collector.on_query_satisfied(query, now=40.0)  # duplicate
        assert collector.queries_satisfied == 1

    def test_late_delivery_does_not_count(self):
        collector = MetricsCollector()
        query = make_query(query_id=1, created_at=0.0, time_constraint=100.0)
        collector.on_query_created(query)
        assert not collector.on_query_satisfied(query, now=150.0)
        assert collector.queries_satisfied == 0

    def test_unknown_query_ignored(self):
        collector = MetricsCollector()
        query = make_query(query_id=1)
        assert not collector.on_query_satisfied(query, now=1.0)

    def test_is_satisfied(self):
        collector = MetricsCollector()
        query = make_query(query_id=1, created_at=0.0, time_constraint=100.0)
        collector.on_query_created(query)
        assert not collector.is_satisfied(1)
        collector.on_query_satisfied(query, now=5.0)
        assert collector.is_satisfied(1)


class TestDuplicateDeliveries:
    def test_duplicate_responses_count_one_distinct_query(self):
        """Regression: the successful ratio counts distinct satisfied
        query ids, never delivery events.  Two NCLs answering the same
        query (the common multi-copy case) must not double-count."""
        collector = MetricsCollector()
        query = make_query(query_id=1, created_at=0.0, time_constraint=100.0)
        collector.on_query_created(query)
        collector.on_query_satisfied(query, now=10.0)
        collector.on_query_satisfied(query, now=20.0)  # second NCL's copy
        collector.on_query_satisfied(query, now=30.0)  # and a third
        result = collector.finalize("test", seed=0)
        assert result.queries_satisfied == 1
        assert result.successful_ratio == 1.0
        assert result.mean_access_delay == pytest.approx(10.0)  # first only
        assert collector.duplicate_deliveries == 2

    def test_duplicate_counter_ignores_late_arrivals(self):
        # A copy past the constraint is a miss, not a duplicate delivery.
        collector = MetricsCollector()
        query = make_query(query_id=1, created_at=0.0, time_constraint=100.0)
        collector.on_query_created(query)
        collector.on_query_satisfied(query, now=150.0)
        assert collector.duplicate_deliveries == 0

    def test_responses_delivered_property(self):
        collector = MetricsCollector()
        collector.on_response_delivered()
        collector.on_response_delivered()
        assert collector.responses_delivered == 2


class TestFinalize:
    def test_ratio_and_delay(self):
        collector = MetricsCollector()
        fast = make_query(query_id=1, created_at=0.0, time_constraint=100.0)
        slow = make_query(query_id=2, created_at=0.0, time_constraint=100.0)
        missed = make_query(query_id=3, created_at=0.0, time_constraint=100.0)
        for q in (fast, slow, missed):
            collector.on_query_created(q)
        collector.on_query_satisfied(fast, now=10.0)
        collector.on_query_satisfied(slow, now=50.0)
        result = collector.finalize("test", seed=0)
        assert result.queries_issued == 3
        assert result.successful_ratio == pytest.approx(2 / 3)
        assert result.mean_access_delay == pytest.approx(30.0)

    def test_no_queries(self):
        result = MetricsCollector().finalize("idle", seed=0)
        assert result.successful_ratio == 0.0
        assert math.isnan(result.mean_access_delay)

    def test_caching_overhead_average(self):
        collector = MetricsCollector()
        collector.sample_copies_per_item(10, 5)
        collector.sample_copies_per_item(20, 5)
        collector.sample_copies_per_item(0, 0)  # ignored: nothing live
        result = collector.finalize("test", seed=0)
        assert result.caching_overhead == pytest.approx(3.0)

    def test_replacement_overhead(self):
        collector = MetricsCollector()
        for _ in range(4):
            collector.on_data_generated(make_item())
        collector.on_exchange(moved_items=6, bits=600)
        result = collector.finalize("test", seed=0)
        assert result.replacement_overhead == pytest.approx(1.5)
        assert result.exchanges == 1
        assert result.bits_transferred == 600

    def test_response_counters(self):
        collector = MetricsCollector()
        collector.on_response_emitted()
        collector.on_response_emitted()
        collector.on_response_delivered()
        result = collector.finalize("test", seed=0)
        assert result.responses_emitted == 2
        assert result.responses_delivered == 1
