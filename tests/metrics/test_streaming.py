"""Unit tests for the bounded-memory sketches (reservoir + P²)."""

import math

import numpy as np
import pytest

from repro.metrics.streaming import P2Quantile, ReservoirSampler


class TestReservoirSampler:
    def test_keeps_everything_below_capacity(self):
        sampler = ReservoirSampler(10, np.random.default_rng(1))
        for value in range(7):
            sampler.observe(float(value))
        assert sampler.samples == tuple(float(v) for v in range(7))
        assert sampler.count == 7

    def test_capacity_is_bounded(self):
        sampler = ReservoirSampler(16, np.random.default_rng(1))
        for value in range(10_000):
            sampler.observe(float(value))
        assert len(sampler.samples) == 16
        assert sampler.count == 10_000

    def test_uniformity(self):
        """Each stream element survives with probability capacity/n:
        averaged over many independent reservoirs, the retained values
        should have mean near the stream mean."""
        means = []
        for seed in range(200):
            sampler = ReservoirSampler(8, np.random.default_rng(seed))
            for value in range(100):
                sampler.observe(float(value))
            means.append(sum(sampler.samples) / len(sampler.samples))
        assert sum(means) / len(means) == pytest.approx(49.5, abs=3.0)

    def test_deterministic_given_rng(self):
        streams = []
        for _ in range(2):
            sampler = ReservoirSampler(8, np.random.default_rng(42))
            for value in range(1000):
                sampler.observe(float(value))
            streams.append(sampler.samples)
        assert streams[0] == streams[1]

    def test_quantile(self):
        sampler = ReservoirSampler(100, np.random.default_rng(1))
        for value in range(100):
            sampler.observe(float(value))
        assert sampler.quantile(0.0) == 0.0
        assert sampler.quantile(0.5) == 50.0
        assert sampler.quantile(1.0) == 99.0

    def test_empty_quantile_is_nan(self):
        sampler = ReservoirSampler(4, np.random.default_rng(1))
        assert math.isnan(sampler.quantile(0.5))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ReservoirSampler(0, np.random.default_rng(1))
        sampler = ReservoirSampler(4, np.random.default_rng(1))
        with pytest.raises(ValueError):
            sampler.quantile(1.5)


class TestP2Quantile:
    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value)

    def test_small_sample_exact(self):
        sketch = P2Quantile(0.5)
        for value in (5.0, 1.0, 3.0):
            sketch.observe(value)
        assert sketch.value == 3.0  # exact small-sample median

    @pytest.mark.parametrize("q", [0.5, 0.95])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_tracks_numpy_percentile(self, q, seed):
        rng = np.random.default_rng(seed)
        values = rng.exponential(scale=100.0, size=5000)
        sketch = P2Quantile(q)
        for value in values:
            sketch.observe(float(value))
        exact = float(np.percentile(values, q * 100.0))
        # P² is an estimate; 10% relative tolerance on a smooth heavy-ish
        # tailed distribution is the documented accuracy envelope.
        assert sketch.value == pytest.approx(exact, rel=0.10)

    def test_monotone_input(self):
        sketch = P2Quantile(0.5)
        for value in range(1, 1001):
            sketch.observe(float(value))
        assert sketch.value == pytest.approx(500.0, rel=0.05)

    def test_state_is_constant_size(self):
        sketch = P2Quantile(0.95)
        for value in range(10_000):
            sketch.observe(float(value))
        assert len(sketch._heights) == 5
        assert len(sketch._positions) == 5
        assert sketch.count == 10_000

    def test_invalid_q_rejected(self):
        for q in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError):
                P2Quantile(q)

    def test_deterministic(self):
        values = list(np.random.default_rng(7).normal(size=2000))
        results = []
        for _ in range(2):
            sketch = P2Quantile(0.5)
            for value in values:
                sketch.observe(float(value))
            results.append(sketch.value)
        assert results[0] == results[1]
