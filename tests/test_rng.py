"""Unit tests for deterministic random-stream management."""

from repro.rng import SeedSequenceFactory, derive_seed


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_differs_by_name(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_differs_by_root(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_path_structure_matters(self):
        assert derive_seed(42, "ab", "c") != derive_seed(42, "a", "bc")

    def test_fits_in_63_bits(self):
        assert 0 <= derive_seed(42, "x") < 2**63


class TestFactory:
    def test_same_name_same_stream(self):
        factory = SeedSequenceFactory(7)
        a = factory.generator("workload")
        b = factory.generator("workload")
        assert a.random() == b.random()

    def test_different_names_independent(self):
        factory = SeedSequenceFactory(7)
        a = factory.generator("workload")
        b = factory.generator("scheme")
        assert a.random() != b.random()

    def test_spawn_is_hierarchical(self):
        parent = SeedSequenceFactory(7)
        child = parent.spawn("sub")
        assert child.root_seed == parent.seed("sub")
        assert child.generator("x").random() != parent.generator("x").random()

    def test_root_seed_property(self):
        assert SeedSequenceFactory(99).root_seed == 99
