"""Pytest wrapper + unit tests for ``scripts/check_memory_accountants.py``.

The lint's pure core (:func:`check_accountants`) is exercised on
synthetic inputs; ``test_source_tree_is_clean`` runs the real
collection so the tier-1 suite fails the moment a subsystem loses its
accountant or its oracle test.
"""

import importlib.util
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "check_memory_accountants.py"


@pytest.fixture(scope="module")
def lint():
    spec = importlib.util.spec_from_file_location("check_memory_accountants", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


SUBSYSTEMS = {"nodes": "per-node state", "events": "event queue"}
CORPUS = "def oracle_nbytes_nodes(): ...\ndef oracle_nbytes_events(): ..."


def test_source_tree_is_clean(lint):
    assert lint.collect_violations() == []


def test_clean_synthetic_input(lint):
    assert lint.check_accountants(SUBSYSTEMS, ["nodes", "events"], CORPUS) == []


def test_missing_oracle_flagged(lint):
    violations = lint.check_accountants(
        SUBSYSTEMS, ["nodes", "events"], "def oracle_nbytes_nodes(): ..."
    )
    assert [v.subsystem for v in violations] == ["events"]
    assert "oracle_nbytes_events" in violations[0].message


def test_empty_description_flagged(lint):
    violations = lint.check_accountants(
        {"nodes": "   "}, ["nodes"], "oracle_nbytes_nodes"
    )
    assert any("description" in v.message for v in violations)


def test_unregistered_subsystem_flagged(lint):
    violations = lint.check_accountants(SUBSYSTEMS, ["nodes"], CORPUS)
    assert [(v.subsystem, v.where) for v in violations] == [("events", "simulator")]
    assert "invisible" in violations[0].message


def test_orphan_accountant_flagged(lint):
    violations = lint.check_accountants(
        SUBSYSTEMS, ["nodes", "events", "warp_drive"], CORPUS
    )
    assert [v.subsystem for v in violations] == ["warp_drive"]
    assert "missing from" in violations[0].message


def test_duplicate_registration_flagged(lint):
    violations = lint.check_accountants(
        SUBSYSTEMS, ["nodes", "events", "nodes"], CORPUS
    )
    assert [v.subsystem for v in violations] == ["nodes"]
    assert "more than once" in violations[0].message


def test_unparseable_accountant_dict_flagged(lint):
    violations = lint.check_accountants(SUBSYSTEMS, None, CORPUS)
    assert any("dict literal" in v.message for v in violations)


def test_violation_renders_location(lint):
    violation = lint.Violation("simulator", "nodes", "boom")
    assert "simulator" in str(violation) and "'nodes'" in str(violation)
