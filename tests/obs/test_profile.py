"""The span profiler: nesting, attribution, merge, rendering."""

import time

import pytest

from repro.obs.profile import (
    NULL_PROFILER,
    Profiler,
    activated,
    active_profiler,
    check_profile_tree,
    merge_profiles,
    render_profile_table,
    set_active_profiler,
)


class TestSpans:
    def test_nested_paths_and_counts(self):
        prof = Profiler()
        with prof.span("outer"):
            with prof.span("inner"):
                pass
            with prof.span("inner"):
                pass
        profile = prof.as_dict()
        assert set(profile) == {"outer", "outer/inner"}
        assert profile["outer"]["calls"] == 1
        assert profile["outer/inner"]["calls"] == 2
        assert prof.open_spans == 0

    def test_own_time_excludes_children(self):
        prof = Profiler()
        with prof.span("outer"):
            with prof.span("inner"):
                time.sleep(0.02)
        profile = prof.as_dict()
        outer, inner = profile["outer"], profile["outer/inner"]
        assert inner["cum"] >= 0.02
        assert outer["cum"] >= inner["cum"]
        # Outer did nothing itself: own time is a small residue, far
        # below the child's cumulative time.
        assert outer["own"] < inner["cum"]
        assert outer["own"] == pytest.approx(outer["cum"] - inner["cum"])

    def test_add_records_leaf_under_current_path(self):
        prof = Profiler()
        with prof.span("cache"):
            prof.add("hit", 0.5, calls=3)
        profile = prof.as_dict()
        assert profile["cache/hit"] == {"calls": 3.0, "own": 0.5, "cum": 0.5}
        # The pre-measured leaf reduces the parent's own time like a
        # nested span would — but 0.5s of pretend time exceeds the
        # parent's real elapsed, so own clamps at zero.
        assert profile["cache"]["own"] == 0.0

    def test_same_name_different_parents_stay_separate(self):
        prof = Profiler()
        with prof.span("a"):
            with prof.span("leaf"):
                pass
        with prof.span("b"):
            with prof.span("leaf"):
                pass
        assert {"a/leaf", "b/leaf"} <= set(prof.as_dict())

    def test_null_profiler_is_disabled(self):
        assert NULL_PROFILER.enabled is False
        assert Profiler.enabled is True


class TestActiveProfiler:
    def test_default_is_null(self):
        assert active_profiler() is NULL_PROFILER

    def test_set_returns_previous(self):
        prof = Profiler()
        previous = set_active_profiler(prof)
        try:
            assert active_profiler() is prof
        finally:
            set_active_profiler(previous)
        assert active_profiler() is previous

    def test_activated_restores_on_exit(self):
        prof = Profiler()
        with activated(prof) as active:
            assert active is prof
            assert active_profiler() is prof
        assert active_profiler() is NULL_PROFILER

    def test_activated_restores_on_exception(self):
        prof = Profiler()
        with pytest.raises(RuntimeError):
            with activated(prof):
                raise RuntimeError("boom")
        assert active_profiler() is NULL_PROFILER


class TestMergeAndChecks:
    def test_merge_is_additive(self):
        a = Profiler()
        with a.span("x"):
            pass
        b = Profiler()
        with b.span("x"):
            pass
        with b.span("y"):
            pass
        merged = merge_profiles([a.as_dict(), b.as_dict()])
        assert merged["x"]["calls"] == 2
        assert merged["y"]["calls"] == 1
        assert list(merged) == sorted(merged)

    def test_merge_empty(self):
        assert merge_profiles([]) == {}

    def test_check_profile_tree_accepts_real_profiles(self):
        prof = Profiler()
        with prof.span("outer"):
            with prof.span("inner"):
                time.sleep(0.001)
        check_profile_tree(prof.as_dict())

    def test_check_profile_tree_rejects_overflowing_children(self):
        bad = {
            "outer": {"calls": 1.0, "own": 0.0, "cum": 1.0},
            "outer/a": {"calls": 1.0, "own": 0.6, "cum": 0.6},
            "outer/b": {"calls": 1.0, "own": 0.6, "cum": 0.6},
        }
        with pytest.raises(ValueError, match="outer"):
            check_profile_tree(bad)

    def test_check_profile_tree_ignores_orphan_parents(self):
        # A child whose parent path was never recorded cannot be checked.
        check_profile_tree({"a/b": {"calls": 1.0, "own": 0.1, "cum": 0.1}})


class TestRendering:
    def test_empty_profile(self):
        assert render_profile_table({}) == "(no spans recorded)"

    def test_children_indent_under_parents_sorted_by_cum(self):
        profile = {
            "outer": {"calls": 1.0, "own": 0.1, "cum": 1.0},
            "outer/fast": {"calls": 2.0, "own": 0.3, "cum": 0.3},
            "outer/slow": {"calls": 1.0, "own": 0.6, "cum": 0.6},
        }
        table = render_profile_table(profile)
        lines = table.splitlines()
        assert lines[2].startswith("| outer ")
        assert lines[3].startswith("| &nbsp;&nbsp;slow ")
        assert lines[4].startswith("| &nbsp;&nbsp;fast ")
