"""Provenance manifests: canonical hashing and manifest assembly."""

import json

import pytest

from repro.obs.provenance import (
    build_manifest,
    canonical_json,
    config_hash,
    read_manifest,
    write_manifest,
)


class TestConfigHash:
    def test_key_order_does_not_matter(self):
        a = {"x": 1, "y": {"b": 2, "a": 3}}
        b = {"y": {"a": 3, "b": 2}, "x": 1}
        assert config_hash(a) == config_hash(b)

    def test_any_value_change_changes_the_hash(self):
        base = {"trace": "mit_reality", "k": 8}
        assert config_hash(base) != config_hash({"trace": "mit_reality", "k": 9})
        assert config_hash(base) != config_hash({"trace": "infocom", "k": 8})

    def test_stable_across_calls(self):
        config = {"trace": "mit_reality", "workload": {"lifetime": 3600.0}}
        assert config_hash(config) == config_hash(json.loads(canonical_json(config)))

    def test_nan_is_rejected(self):
        with pytest.raises(ValueError):
            config_hash({"bad": float("nan")})


class TestManifest:
    def test_fields_present(self):
        manifest = build_manifest({"k": 8}, seeds=[3, 1, 2])
        assert manifest["config"] == {"k": 8}
        assert manifest["config_hash"] == config_hash({"k": 8})
        assert manifest["seeds"] == [1, 2, 3]
        assert set(manifest["platform"]) == {
            "python", "implementation", "system", "machine",
        }
        # This test suite runs inside the repo checkout, so git info and
        # the scientific stack must both resolve.
        assert manifest["git"] is None or "revision" in manifest["git"]
        assert "numpy" in manifest["packages"]

    def test_round_trip(self, tmp_path):
        manifest = build_manifest({"k": 8}, seeds=[1])
        path = tmp_path / "manifest.json"
        write_manifest(manifest, str(path))
        assert read_manifest(str(path)) == manifest

    def test_identical_configs_hash_identically(self):
        first = build_manifest({"k": 8, "scheme": "intentional"}, seeds=[1, 2])
        second = build_manifest({"scheme": "intentional", "k": 8}, seeds=[5])
        assert first["config_hash"] == second["config_hash"]
