"""Time-series sampler: recording, export, merge, summary."""

import csv
import json

import pytest

from repro.obs.timeseries import (
    NULL_SAMPLER,
    SCALAR_COLUMNS,
    TimeSeriesSample,
    TimeSeriesSampler,
    merge_timeseries,
    summarize_timeseries,
    write_csv,
    write_jsonl,
)


def _sample(time, lookups=10, hits=4):
    return TimeSeriesSample(
        time=time,
        live_items=5,
        cached_copies=8,
        queries_issued=20,
        queries_satisfied=6,
        pending_queries=3,
        cache_lookups=lookups,
        cache_hits=hits,
        node_occupancy=(0.2, 0.8),
        ncl_load={3: 4, 1: 2},
    )


class TestSample:
    def test_derived_properties(self):
        sample = _sample(10.0)
        assert sample.copies_per_item == pytest.approx(1.6)
        assert sample.running_ratio == pytest.approx(0.3)
        assert sample.cache_hit_ratio == pytest.approx(0.4)
        assert sample.mean_buffer_occupancy == pytest.approx(0.5)
        assert sample.max_buffer_occupancy == pytest.approx(0.8)

    def test_zero_denominators(self):
        empty = TimeSeriesSample(
            time=0.0,
            live_items=0,
            cached_copies=0,
            queries_issued=0,
            queries_satisfied=0,
            pending_queries=0,
            cache_lookups=0,
            cache_hits=0,
        )
        assert empty.copies_per_item == 0.0
        assert empty.running_ratio == 0.0
        assert empty.cache_hit_ratio == 0.0
        assert empty.mean_buffer_occupancy == 0.0
        assert empty.max_buffer_occupancy == 0.0

    def test_as_row_has_every_scalar_column_plus_vectors(self):
        row = _sample(10.0).as_row()
        assert set(SCALAR_COLUMNS) <= set(row)
        assert row["node_occupancy"] == [0.2, 0.8]
        assert row["ncl_load"] == {"1": 2, "3": 4}


class TestSampler:
    def test_records_in_time_order(self):
        sampler = TimeSeriesSampler()
        sampler.record(_sample(1.0))
        sampler.record(_sample(2.0))
        assert len(sampler) == 2
        with pytest.raises(ValueError):
            sampler.record(_sample(0.5))

    def test_null_sampler_is_disabled(self):
        assert NULL_SAMPLER.enabled is False
        assert TimeSeriesSampler.enabled is True


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        rows = TimeSeriesSampler()
        rows.record(_sample(1.0))
        rows.record(_sample(2.0))
        path = tmp_path / "ts.jsonl"
        write_jsonl(rows.rows(), str(path))
        loaded = [json.loads(line) for line in path.read_text().splitlines()]
        assert loaded == rows.rows()

    def test_csv_has_scalar_columns_only(self, tmp_path):
        path = tmp_path / "ts.csv"
        write_csv([_sample(1.0).as_row()], str(path))
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert list(rows[0]) == list(SCALAR_COLUMNS)
        assert "node_occupancy" not in rows[0]

    def test_csv_gains_seed_column_for_merged_rows(self, tmp_path):
        merged = merge_timeseries([(7, [_sample(1.0).as_row()])])
        path = tmp_path / "ts.csv"
        write_csv(merged, str(path))
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert list(rows[0])[0] == "seed"
        assert rows[0]["seed"] == "7"


class TestMergeAndSummary:
    def test_merge_orders_by_seed_and_tags_rows(self):
        run_a = [_sample(1.0).as_row(), _sample(2.0).as_row()]
        run_b = [_sample(1.0).as_row()]
        merged = merge_timeseries([(9, run_b), (2, run_a)])
        assert [row["seed"] for row in merged] == [2, 2, 9]
        assert [row["time"] for row in merged] == [1.0, 2.0, 1.0]

    def test_summary_min_mean_max_last(self):
        rows = [_sample(t, lookups=10, hits=h).as_row() for t, h in ((1.0, 2), (2.0, 6))]
        summary = summarize_timeseries(rows)
        assert summary["time"] == {"min": 1.0, "mean": 1.5, "max": 2.0, "last": 2.0}
        assert summary["cache_hit_ratio"]["last"] == pytest.approx(0.6)

    def test_summary_of_empty(self):
        assert summarize_timeseries([]) == {}
