"""Tests for memory-footprint observability (``repro.obs.memory``).

Two layers of guarantees live here:

* unit behaviour — ``peak_rss_bytes`` units, ``deep_sizeof`` walk
  semantics, sample round-trips (NaN ↔ JSON null), monitor registry
  rules, the consistency invariant;
* accountant honesty — every subsystem accountant registered by
  :meth:`Simulator._build_memory_accountants` is cross-checked against
  an *independent* sizeof oracle (``oracle_nbytes_<name>``, a
  ``gc.get_referents`` walk that shares no code with ``deep_sizeof``).
  ``scripts/check_memory_accountants.py`` lints that every subsystem
  keeps such an oracle in the corpus.

The strict ≥90% heap-attribution floor is the large-scale acceptance
test at the bottom (``REPRO_BIG_TESTS=1``); the tier-1 consistency test
uses looser bounds because at toy scale the fixed-size containers'
overhead is a bigger share of the heap.
"""

import gc
import json
import math
import os
import sys
import tracemalloc
import types

import pytest

from repro.errors import ConfigurationError, TraceConsistencyError
from repro.graph.weight_cache import shared_weight_cache
from repro.obs.events import TraceEventKind
from repro.obs.memory import (
    NULL_MEMORY_MONITOR,
    SUBSYSTEMS,
    MemoryMonitor,
    MemorySample,
    NullMemoryMonitor,
    check_memory_consistency,
    deep_sizeof,
    peak_rss_bytes,
    read_memory_log,
    render_memory_breakdown,
    render_memory_gauges,
    render_memory_table,
    write_memory_log,
)
from repro.obs.recorder import MemoryRecorder
from repro.scenario import (
    RunSpec,
    ScenarioSpec,
    TraceSpec,
    build_trace,
    scheme_factory,
    simulator_config,
)
from repro.sim.simulator import Simulator


def _small_spec(mem_profile=True, **run_overrides):
    return ScenarioSpec(
        trace=TraceSpec(node_factor=0.3, time_factor=0.06),
        run=RunSpec(mem_profile=mem_profile, **run_overrides),
    )


def _build(spec, recorder=None):
    trace = build_trace(spec.trace)
    return Simulator(
        trace,
        scheme_factory(spec)(),
        spec.workload,
        simulator_config(spec),
        recorder=recorder,
    )


@pytest.fixture(scope="module")
def profiled_sim():
    """One completed small run with memory profiling on."""
    sim = _build(_small_spec())
    sim.run()
    return sim


# --- independent sizeof oracle ----------------------------------------------

#: fenced object kinds — code, not state (mirrors the accountant fence,
#: but via an entirely different mechanism: gc referents, not __dict__)
_ORACLE_SKIP = (
    type,
    types.ModuleType,
    types.FunctionType,
    types.BuiltinFunctionType,
    types.MethodType,
)


def _gc_sizeof(roots, exclude=()):
    """Independent deep-sizeof: ``gc.get_referents`` graph walk.

    Deliberately shares no code with :func:`deep_sizeof` — the oracle
    must be able to catch a bug in the accountants' walk, so it uses the
    garbage collector's own referent graph instead of ``__dict__`` /
    ``__slots__`` introspection.
    """
    seen = {id(obj) for obj in exclude}
    total, stack = 0, list(roots)
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        if isinstance(obj, _ORACLE_SKIP) or callable(obj):
            continue
        total += sys.getsizeof(obj)
        stack.extend(gc.get_referents(obj))
    return total


# One oracle per subsystem, named oracle_nbytes_<name> — the memory
# lint requires exactly these identifiers in the test corpus.  Each
# mirrors its accountant's *ownership boundary* (what to exclude), but
# never its walk.


def oracle_nbytes_contact_graph(sim):
    return _gc_sizeof([sim.estimator])


def oracle_nbytes_nodes(sim):
    # node.trace is the shared recorder (observability-owned).
    return sum(_gc_sizeof([node], exclude=[node.trace]) for node in sim.nodes)


def oracle_nbytes_scheme(sim):
    # The scheme's services reference simulator-owned state; exclude it
    # the same way Simulator._scheme_nbytes pre-seeds its walk.
    exclude = [
        sim,
        sim.nodes,
        sim.metrics,
        sim.estimator,
        sim.workload_process,
        sim.engine,
        sim.recorder,
        sim.timeline,
        sim.registry,
        sim.timeseries,
        sim.profiler,
        sim.workload,
        sim.trace,
        *sim.nodes,
    ]
    return _gc_sizeof([sim.scheme], exclude=exclude)


def oracle_nbytes_weight_cache(sim):
    return _gc_sizeof([shared_weight_cache()])


def oracle_nbytes_metrics(sim):
    return _gc_sizeof([sim.metrics])


def oracle_nbytes_workload(sim):
    return _gc_sizeof([sim.workload_process])


def oracle_nbytes_events(sim):
    return _gc_sizeof([sim.engine])


def oracle_nbytes_observability(sim):
    return _gc_sizeof(
        [sim.recorder, sim.timeline, sim.registry, sim.timeseries, sim.memory.samples]
    )


#: accountant/oracle agreement bounds.  The two walks fence different
#: things (the oracle's gc graph reaches cross-references the
#: accountant deliberately excludes, and vice versa for __dict__-only
#: state), so agreement is a ratio band, not equality.  Measured ratios
#: on the reference box sit in 0.40–1.25; the band is deliberately
#: loose so the test only fails for an accountant that is *wrong*
#: (zero, double-counting a big array, walking another subsystem).
_ORACLE_BOUNDS = {
    "contact_graph": (0.5, 2.0, oracle_nbytes_contact_graph),
    "nodes": (0.5, 2.5, oracle_nbytes_nodes),
    "scheme": (0.5, 2.5, oracle_nbytes_scheme),
    "metrics": (0.5, 2.0, oracle_nbytes_metrics),
    "workload": (0.5, 2.5, oracle_nbytes_workload),
    # the engine's events reference payloads owned elsewhere, which the
    # gc walk reaches but the accountant correctly excludes
    "events": (0.2, 2.0, oracle_nbytes_events),
    "observability": (0.5, 2.5, oracle_nbytes_observability),
}


@pytest.mark.parametrize("name", sorted(_ORACLE_BOUNDS))
def test_accountant_against_oracle(profiled_sim, name):
    low, high, oracle = _ORACLE_BOUNDS[name]
    accountant = profiled_sim.memory_breakdown()[name]
    independent = oracle(profiled_sim)
    assert independent > 0, f"oracle for {name} saw no state"
    ratio = accountant / independent
    assert low <= ratio <= high, (
        f"{name}: accountant={accountant} oracle={independent} "
        f"ratio={ratio:.3f} outside [{low}, {high}]"
    )


def test_weight_cache_accountant_is_payload_lower_bound(profiled_sim):
    """The weight-cache accountant tracks array payloads only, so it
    must be a positive lower bound on the full-structure oracle."""
    accountant = profiled_sim.memory_breakdown()["weight_cache"]
    independent = oracle_nbytes_weight_cache(profiled_sim)
    assert 0 < accountant <= independent


def test_oracles_cover_every_subsystem():
    oracles = {name for name in SUBSYSTEMS}
    covered = set(_ORACLE_BOUNDS) | {"weight_cache"}
    assert covered == oracles


# --- peak_rss_bytes ----------------------------------------------------------


def test_peak_rss_is_plausible_and_monotone():
    first = peak_rss_bytes()
    assert isinstance(first, int)
    # Any live CPython process with numpy imported exceeds 10 MB.
    assert first > 10 * 2**20
    ballast = bytearray(8 * 2**20)
    second = peak_rss_bytes()
    assert second >= first  # high-water mark never goes down
    del ballast
    assert peak_rss_bytes() >= second


# --- deep_sizeof -------------------------------------------------------------


def test_deep_sizeof_counts_nested_state():
    payload = {"rows": [list(range(100)) for _ in range(10)]}
    assert deep_sizeof(payload) > sys.getsizeof(payload)


def test_deep_sizeof_dedups_shared_references():
    shared = list(range(1000))
    once = deep_sizeof([shared])
    twice = deep_sizeof([shared, shared])
    # the second reference adds nothing but the outer list slot
    assert twice - once < sys.getsizeof(shared)


def test_deep_sizeof_seen_preseed_excludes_owned_state():
    owned = list(range(1000))
    holder = {"owned": owned, "mine": [1, 2, 3]}
    full = deep_sizeof(holder)
    without = deep_sizeof(holder, seen={id(owned)})
    assert without < full


def test_deep_sizeof_fences_callables_and_modules():
    holder = {"fn": deep_sizeof, "mod": json, "cls": MemorySample, "n": 1}
    # fenced entries contribute nothing, so the walk stays tiny
    assert deep_sizeof(holder) < 10_000


def test_deep_sizeof_walks_slots():
    class Slotted:
        __slots__ = ("payload",)

        def __init__(self):
            self.payload = list(range(1000))

    obj = Slotted()
    assert deep_sizeof(obj) > sys.getsizeof(obj.payload)


# --- MemorySample serialisation ---------------------------------------------


def test_memory_sample_round_trip_is_float_exact():
    sample = MemorySample(
        time=12.5,
        rss_mb=0.1 + 0.2,  # not exactly representable in decimal
        py_heap_mb=123.456789012345,
        accounted_mb=7.0,
        top_subsystem="nodes",
        subsystems={"nodes": 1024, "events": 12},
    )
    back = MemorySample.from_dict(json.loads(json.dumps(sample.to_dict())))
    assert back == sample  # dataclass equality: bitwise on floats here


def test_memory_sample_nan_round_trips_as_json_null():
    sample = MemorySample(
        time=1.0,
        rss_mb=float("nan"),
        py_heap_mb=float("nan"),
        accounted_mb=2.0,
    )
    text = json.dumps(sample.to_dict())
    assert "NaN" not in text  # bare NaN is not valid JSON
    assert "null" in text
    back = MemorySample.from_dict(json.loads(text))
    assert math.isnan(back.rss_mb) and math.isnan(back.py_heap_mb)
    assert back.accounted_mb == 2.0


def test_memory_log_round_trip(tmp_path):
    samples = [
        MemorySample(1.0, 100.5, 42.25, 40.0, "nodes", {"nodes": 41943040}),
        MemorySample(2.0, 101.5, float("nan"), 41.0, "events", {"events": 64}),
    ]
    path = tmp_path / "memory.jsonl"
    write_memory_log(path, samples)
    lines = path.read_text().splitlines()
    assert json.loads(lines[0]) == {"kind": "memory.meta", "samples": 2}
    back = read_memory_log(path)
    assert back[0] == samples[0]
    assert back[1].time == 2.0 and math.isnan(back[1].py_heap_mb)


# --- MemoryMonitor registry --------------------------------------------------


def test_monitor_rejects_unknown_subsystem():
    with pytest.raises(ConfigurationError, match="unknown memory subsystem"):
        MemoryMonitor({"warp_drive": lambda: 0})


def test_monitor_rejects_duplicate_registration():
    monitor = MemoryMonitor({"nodes": lambda: 1})
    with pytest.raises(ConfigurationError, match="already registered"):
        monitor.register("nodes", lambda: 2)


def test_monitor_breakdown_and_sample():
    monitor = MemoryMonitor({"nodes": lambda: 3 * 2**20, "events": lambda: 2**20})
    assert monitor.subsystems == ("events", "nodes")
    assert monitor.breakdown() == {"events": 2**20, "nodes": 3 * 2**20}
    sample = monitor.sample(5.0)
    assert sample.time == 5.0
    assert sample.top_subsystem == "nodes"
    assert sample.accounted_mb == pytest.approx(4.0)
    assert sample.rss_mb > 0
    assert monitor.samples == [sample]


def test_monitor_duty_cycles_the_breakdown_walk():
    """Samples inside the duty-cycle window reuse the last breakdown
    (bounded overhead); after the window a fresh walk runs."""
    calls = []
    monitor = MemoryMonitor({"nodes": lambda: calls.append(1) or 2**20})
    first = monitor.sample(1.0)
    second = monitor.sample(2.0)  # within cost/budget of the first walk
    assert len(calls) == 1
    assert second.subsystems == first.subsystems
    assert second.time == 2.0  # cheap fields still stamped per sample
    monitor._next_breakdown_wall = 0.0  # force the window shut
    monitor.sample(3.0)
    assert len(calls) == 2


def test_monitor_validates_breakdown_budget():
    with pytest.raises(ConfigurationError, match="breakdown_budget"):
        MemoryMonitor(breakdown_budget=0.0)


def test_null_monitor_is_inert():
    assert NULL_MEMORY_MONITOR.enabled is False
    assert isinstance(NULL_MEMORY_MONITOR, NullMemoryMonitor)
    NULL_MEMORY_MONITOR.register("nodes", lambda: 1)  # tolerated, stateless
    assert NULL_MEMORY_MONITOR.subsystems == ()
    sample = NULL_MEMORY_MONITOR.sample(1.0)
    assert math.isnan(sample.rss_mb) and math.isnan(sample.accounted_mb)
    assert NULL_MEMORY_MONITOR.samples == []


# --- consistency invariant ---------------------------------------------------


def test_consistency_accepts_reconciled_breakdown():
    check_memory_consistency({"nodes": 95 * 2**20}, 100 * 2**20)


def test_consistency_rejects_low_coverage():
    with pytest.raises(TraceConsistencyError, match="cover only"):
        check_memory_consistency({"nodes": 10 * 2**20}, 100 * 2**20)


def test_consistency_rejects_overcount():
    with pytest.raises(TraceConsistencyError, match="claim"):
        check_memory_consistency({"nodes": 200 * 2**20}, 100 * 2**20)


def test_consistency_rejects_untraced_heap():
    with pytest.raises(TraceConsistencyError, match="tracemalloc"):
        check_memory_consistency({"nodes": 1}, float("nan"))


def test_consistency_validates_tolerances():
    with pytest.raises(ConfigurationError):
        check_memory_consistency({"nodes": 1}, 1.0, min_coverage=0.0)
    with pytest.raises(ConfigurationError):
        check_memory_consistency({"nodes": 1}, 1.0, max_overcount=0.5)


# --- rendering ---------------------------------------------------------------


def test_render_memory_table_limits_and_formats():
    samples = [
        MemorySample(float(i), 100.0 + i, float("nan"), 50.0, "nodes", {})
        for i in range(5)
    ]
    text = render_memory_table(samples, limit=2)
    assert "2 memory sample(s)" in text
    assert "rss_mb" in text and "nodes" in text
    assert text.count("\n") == 3  # header + 2 rows + footer


def test_render_memory_breakdown_orders_largest_first():
    text = render_memory_breakdown({"nodes": 3 * 2**20, "events": 2**20})
    assert text.index("nodes") < text.index("events")
    assert "total" in text and "4.0 MB" in text


def test_render_memory_gauges_exports_prometheus_text():
    sample = MemorySample(1.0, 100.0, 40.0, 39.0, "nodes", {"nodes": 1024})
    text = render_memory_gauges(sample)
    assert f"repro_health_rss_bytes {100 * 2**20}" in text
    assert 'repro_memory_subsystem_bytes{subsystem="nodes"} 1024' in text
    assert text.endswith("\n")


# --- simulator integration ---------------------------------------------------


def test_disabled_path_allocates_nothing():
    """Without ``mem_profile`` the simulator holds the shared null
    monitor — zero per-run allocation, zero samples."""
    sim = _build(_small_spec(mem_profile=False))
    assert sim.memory is NULL_MEMORY_MONITOR
    sim.run()
    assert sim.memory.samples == []
    # the always-built accountants still answer on demand
    assert set(sim.memory_breakdown()) == set(SUBSYSTEMS)


def test_disabled_path_timeseries_has_nan_memory_columns():
    sim = _build(_small_spec(mem_profile=False, timeseries=True))
    sim.run()
    rows = sim.timeseries.samples
    assert rows
    assert all(math.isnan(row.rss_mb) for row in rows)
    assert all(row.mem_top == "" for row in rows)


def test_profiled_run_collects_samples(profiled_sim):
    samples = profiled_sim.memory.samples
    assert samples
    times = [s.time for s in samples]
    assert times == sorted(times)
    for sample in samples:
        assert sample.rss_mb > 0
        assert sample.accounted_mb > 0
        assert sample.top_subsystem in SUBSYSTEMS
        assert set(sample.subsystems) == set(SUBSYSTEMS)


def test_profiled_run_emits_memory_sampled_events():
    recorder = MemoryRecorder()
    sim = _build(_small_spec(), recorder=recorder)
    sim.run()
    sampled = [
        e for e in recorder.events if e.kind is TraceEventKind.MEMORY_SAMPLED
    ]
    assert len(sampled) == len(sim.memory.samples)
    assert sampled[0].attrs["top_subsystem"] in SUBSYSTEMS


def test_breakdown_is_stable_under_churn(profiled_sim):
    """Repeated breakdowns attribute the same universe (no leaked or
    dropped keys) and each sample's total equals its subsystem sum."""
    first = profiled_sim.memory_breakdown()
    second = profiled_sim.memory_breakdown()
    assert sorted(first) == sorted(SUBSYSTEMS) == sorted(second)
    for sample in profiled_sim.memory.samples:
        assert sample.accounted_mb * 2**20 == pytest.approx(
            sum(sample.subsystems.values()), abs=1.0
        )


def test_small_scale_heap_reconciliation():
    """Tier-1 edition of the scale-out acceptance check: tracing from
    before the build, the accountants must land in a band around the
    traced heap delta.  (The strict 0.9 floor is the big-tier test —
    at toy scale fixed container overhead loosens the band.)"""
    shared_weight_cache().clear()  # process-wide singleton: drop bytes
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    try:
        base = tracemalloc.get_traced_memory()[0]
        sim = _build(_small_spec())
        sim.run()
        heap_delta = tracemalloc.get_traced_memory()[0] - base
        check_memory_consistency(
            sim.memory_breakdown(),
            heap_delta,
            min_coverage=0.4,
            max_overcount=3.0,
        )
    finally:
        if not was_tracing:
            tracemalloc.stop()


# --- large-scale acceptance (opt-in) ----------------------------------------


@pytest.mark.skipif(
    os.environ.get("REPRO_BIG_TESTS") != "1",
    reason="large-scale tier is opt-in: set REPRO_BIG_TESTS=1",
)
def test_sparse1e5_attribution_covers_ninety_percent():
    """Acceptance criterion: on the sparse 10⁵-node scenario the
    accountants attribute ≥90% of the tracemalloc-reported heap."""
    from repro.core.ncl import select_ncls  # noqa: F401  (import parity)

    shared_weight_cache().clear()
    tracemalloc.start()
    try:
        base = tracemalloc.get_traced_memory()[0]
        spec = ScenarioSpec(
            trace=TraceSpec(
                name="sparse1e5", seed=1, node_factor=0.2, time_factor=0.1
            ),
            run=RunSpec(mem_profile=True),
        )
        sim = _build(spec)
        sim.run()
        heap_delta = tracemalloc.get_traced_memory()[0] - base
        check_memory_consistency(sim.memory_breakdown(), heap_delta)
    finally:
        tracemalloc.stop()
