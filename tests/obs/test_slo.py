"""Tests for the declarative SLO rule engine (``repro.obs.slo``)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs.events import TraceEventKind
from repro.obs.recorder import MemoryRecorder
from repro.obs.slo import (
    SLO_PRESETS,
    SLOEngine,
    SLORule,
    parse_slo_rule,
    rules_from_config,
    rules_to_config,
)


class FakeSnapshot:
    """Minimal snapshot: any keyword becomes an attribute; ``end`` is
    the evaluation timestamp."""

    def __init__(self, end=0.0, **fields):
        self.end = end
        for key, value in fields.items():
            setattr(self, key, value)


class TestSLORule:
    def test_floor_and_ceiling_semantics(self):
        floor = SLORule("floor", "success_ratio", ">=", 0.5)
        assert floor.healthy(0.5) and floor.healthy(0.9)
        assert not floor.healthy(0.49)
        ceiling = SLORule("ceil", "backlog", "<=", 100.0)
        assert ceiling.healthy(100.0) and not ceiling.healthy(100.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SLORule("", "f", ">=", 1.0)
        with pytest.raises(ConfigurationError):
            SLORule("r", "", ">=", 1.0)
        with pytest.raises(ConfigurationError):
            SLORule("r", "f", ">", 1.0)
        with pytest.raises(ConfigurationError):
            SLORule("r", "f", ">=", 1.0, sustain=0)
        with pytest.raises(ConfigurationError):
            SLORule("r", "f", ">=", float("nan"))

    def test_dict_round_trip(self):
        rule = SLORule("r", "delay_p95", "<=", 3600.0, sustain=4)
        assert SLORule.from_dict(rule.to_dict()) == rule
        assert rules_from_config(rules_to_config([rule])) == (rule,)

    def test_spec_round_trips_through_parser(self):
        for rule in SLO_PRESETS.values():
            parsed = parse_slo_rule(rule.spec)
            assert (parsed.field, parsed.op, parsed.target, parsed.sustain) == (
                rule.field,
                rule.op,
                rule.target,
                rule.sustain,
            )


class TestParseSLORule:
    def test_parses_floor_spec(self):
        rule = parse_slo_rule("success_ratio>=0.25")
        assert rule.field == "success_ratio"
        assert rule.op == ">="
        assert rule.target == 0.25
        assert rule.sustain == 1

    def test_parses_ceiling_with_sustain(self):
        rule = parse_slo_rule("delay_p95<=86400:3")
        assert (rule.field, rule.op, rule.target, rule.sustain) == (
            "delay_p95",
            "<=",
            86400.0,
            3,
        )

    def test_preset_names_resolve(self):
        assert parse_slo_rule("availability") is SLO_PRESETS["availability"]

    def test_garbage_rejected(self):
        for bad in ("nonsense", "field>=abc", "field>=1:x", "field=1"):
            with pytest.raises(ConfigurationError):
                parse_slo_rule(bad)


class TestSLOEngine:
    def test_sustain_counts_consecutive_breaches(self):
        engine = SLOEngine([SLORule("r", "x", ">=", 1.0, sustain=3)])
        times = iter(range(1, 10))
        # two breaches, a healthy window resetting the streak, then three
        breaches = [0.0, 0.0, 5.0, 0.0, 0.0, 0.0]
        fired = []
        for value in breaches:
            fired += engine.evaluate(FakeSnapshot(end=float(next(times)), x=value))
        assert [t.kind for t in fired] == ["slo.violated"]
        assert fired[0].time == 6.0
        assert engine.violated_rules() == ("r",)

    def test_recovery_is_edge_triggered(self):
        engine = SLOEngine([SLORule("r", "x", ">=", 1.0, sustain=1)])
        stream = [0.0, 0.0, 2.0, 2.0]
        fired = []
        for i, value in enumerate(stream):
            fired += engine.evaluate(FakeSnapshot(end=float(i), x=value))
        assert [t.kind for t in fired] == ["slo.violated", "slo.recovered"]
        assert engine.violated_rules() == ()

    def test_nan_windows_carry_no_evidence(self):
        engine = SLOEngine([SLORule("r", "x", ">=", 1.0, sustain=2)])
        nan = float("nan")
        engine.evaluate(FakeSnapshot(end=0.0, x=0.0))
        engine.evaluate(FakeSnapshot(end=1.0, x=nan))
        assert engine.transitions == ()
        # the NaN neither broke nor extended the streak
        fired = engine.evaluate(FakeSnapshot(end=2.0, x=0.0))
        assert [t.kind for t in fired] == ["slo.violated"]

    def test_duplicate_rule_names_rejected(self):
        rules = [SLORule("r", "x", ">=", 1.0), SLORule("r", "y", "<=", 2.0)]
        with pytest.raises(ConfigurationError):
            SLOEngine(rules)

    def test_emits_trace_events_through_recorder(self):
        recorder = MemoryRecorder()
        engine = SLOEngine([SLORule("r", "x", ">=", 1.0, sustain=1)])
        engine.evaluate(FakeSnapshot(end=10.0, x=0.0), recorder)
        engine.evaluate(FakeSnapshot(end=20.0, x=5.0), recorder)
        kinds = [event.kind for event in recorder.events]
        assert kinds == [TraceEventKind.SLO_VIOLATED, TraceEventKind.SLO_RECOVERED]
        violated = recorder.events[0]
        assert violated.time == 10.0
        assert violated.attrs["rule"] == "r"
        assert violated.attrs["value"] == 0.0
        assert violated.attrs["target"] == 1.0

    def test_transition_payload(self):
        engine = SLOEngine([SLORule("r", "x", "<=", 2.0, sustain=1)])
        (transition,) = engine.evaluate(FakeSnapshot(end=3.0, x=9.0))
        assert transition.rule == "r"
        assert transition.kind == "slo.violated"
        assert transition.field == "x"
        assert transition.value == 9.0
        assert transition.target == 2.0
        payload = transition.to_dict()
        assert payload["kind"] == "slo.violated"
        assert payload["t"] == 3.0

    def test_deterministic_replay(self):
        """Same snapshot stream → identical transitions (pure function)."""
        stream = [0.3, 0.1, math.inf, 0.9, 0.2, 0.2, 1.5]
        runs = []
        for _ in range(2):
            engine = SLOEngine([SLORule("r", "x", ">=", 1.0, sustain=2)])
            for i, value in enumerate(stream):
                engine.evaluate(FakeSnapshot(end=float(i), x=value))
            runs.append(engine.transitions)
        assert runs[0] == runs[1]
