"""Unit tests for trace events, recorders, and metric primitives."""

import json
import math

import pytest

from repro.obs import (
    NULL_RECORDER,
    Counter,
    Histogram,
    JsonlRecorder,
    MemoryRecorder,
    MetricsRegistry,
    NullRecorder,
    TraceEvent,
    TraceEventKind,
    read_events,
)
from repro.obs.recorder import ensure_events


class TestTraceEvent:
    def test_json_round_trip_is_lossless(self):
        event = TraceEvent(
            time=12.5,
            kind=TraceEventKind.QUERY_SATISFIED,
            node=3,
            data_id=7,
            query_id=11,
            attrs={"created_at": 1.25},
        )
        assert TraceEvent.from_json(event.to_json()) == event

    def test_json_round_trips_floats_exactly(self):
        # The bit-exact metric cross-check depends on this property.
        time = 1.0 / 3.0 + 1e-16
        event = TraceEvent(time=time, kind=TraceEventKind.SAMPLE)
        assert TraceEvent.from_json(event.to_json()).time == time

    def test_omits_absent_ids(self):
        record = json.loads(TraceEvent(time=0.0, kind=TraceEventKind.SAMPLE).to_json())
        assert set(record) == {"t", "kind"}

    def test_kind_is_a_string_enum(self):
        assert TraceEventKind.DATA_GENERATED.value == "data_generated"
        assert TraceEventKind("query_created") is TraceEventKind.QUERY_CREATED

    def test_events_are_immutable(self):
        event = TraceEvent(time=0.0, kind=TraceEventKind.SAMPLE)
        with pytest.raises(AttributeError):
            event.time = 1.0


class TestRecorders:
    def test_null_recorder_is_disabled_and_tolerant(self):
        assert NULL_RECORDER.enabled is False
        assert isinstance(NULL_RECORDER, NullRecorder)
        NULL_RECORDER.emit(TraceEvent(time=0.0, kind=TraceEventKind.SAMPLE))
        NULL_RECORDER.close()

    def test_memory_recorder_collects_in_order(self):
        recorder = MemoryRecorder()
        assert recorder.enabled
        for t in (0.0, 1.0, 2.0):
            recorder.emit(TraceEvent(time=t, kind=TraceEventKind.SAMPLE))
        assert len(recorder) == 3
        assert [e.time for e in recorder.events] == [0.0, 1.0, 2.0]

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "nested" / "run.jsonl"
        events = [
            TraceEvent(time=0.5, kind=TraceEventKind.DATA_GENERATED, node=1, data_id=2),
            TraceEvent(time=1.5, kind=TraceEventKind.QUERY_CREATED, node=3, query_id=4,
                       attrs={"time_constraint": 100.0}),
        ]
        with JsonlRecorder(path) as recorder:
            for event in events:
                recorder.emit(event)
            assert recorder.emitted == 2
        assert read_events(path) == events

    def test_jsonl_recorder_opens_lazily(self, tmp_path):
        path = tmp_path / "never.jsonl"
        JsonlRecorder(path).close()  # no emit — no file
        assert not path.exists()

    def test_ensure_events_accepts_path_or_iterable(self, tmp_path):
        events = [TraceEvent(time=0.0, kind=TraceEventKind.SAMPLE)]
        assert ensure_events(iter(events)) == events
        path = tmp_path / "run.jsonl"
        with JsonlRecorder(path) as recorder:
            recorder.emit(events[0])
        assert ensure_events(path) == events


class TestCounter:
    def test_increments(self):
        counter = Counter("pushes")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("pushes").inc(-1)


class TestHistogram:
    def test_exact_count_sum_min_max(self):
        hist = Histogram("delay")
        for value in (5.0, 50.0, 5000.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 5055.0
        assert hist.min == 5.0 and hist.max == 5000.0
        assert hist.mean == pytest.approx(1685.0)

    def test_quantiles_at_bucket_resolution(self):
        hist = Histogram("delay", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.observe(value)
        assert hist.quantile(0.25) == 1.0
        assert hist.quantile(0.5) == 10.0
        # Past the finite edges the observed max bounds the answer —
        # never the +inf overflow edge.
        assert hist.quantile(1.0) == 500.0

    def test_quantile_boundaries(self):
        hist = Histogram("delay", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.observe(value)
        # q=0 is the observed minimum, not the first bucket edge.
        assert hist.quantile(0.0) == 0.5
        # Bucket edges below the observed min clamp up to it.
        solo = Histogram("delay", bounds=(1.0, 10.0))
        solo.observe(5.0)
        assert solo.quantile(0.0) == 5.0
        assert solo.quantile(0.5) == 5.0
        assert solo.quantile(1.0) == 5.0

    def test_quantile_empty_all_qs(self):
        hist = Histogram("delay")
        for q in (0.0, 0.5, 1.0):
            assert math.isnan(hist.quantile(q))

    def test_empty_histogram(self):
        hist = Histogram("delay")
        assert math.isnan(hist.mean)
        assert math.isnan(hist.quantile(0.5))

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(10.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(1.0, 1.0))

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            Histogram("delay").quantile(1.5)


class TestMetricsRegistry:
    def test_get_or_create_semantics(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_reports_everything(self):
        registry = MetricsRegistry()
        registry.counter("pushes").inc(3)
        registry.histogram("delay").observe(42.0)
        snapshot = registry.snapshot()
        assert snapshot["pushes"] == 3
        assert snapshot["delay"]["count"] == 1.0


class TestMerge:
    def test_counter_merge_adds(self):
        a, b = Counter("pushes"), Counter("pushes")
        a.inc(2)
        b.inc(5)
        a.merge(b)
        assert a.value == 7

    def test_histogram_merge_folds_everything(self):
        a = Histogram("delay", bounds=(1.0, 10.0))
        b = Histogram("delay", bounds=(1.0, 10.0))
        for value in (0.5, 5.0):
            a.observe(value)
        for value in (50.0, 2.0):
            b.observe(value)
        a.merge(b)
        assert a.count == 4
        assert a.total == pytest.approx(57.5)
        assert a.min == 0.5 and a.max == 50.0
        assert a.bucket_counts == [1, 2, 1]

    def test_histogram_merge_rejects_different_bounds(self):
        a = Histogram("delay", bounds=(1.0, 10.0))
        b = Histogram("delay", bounds=(1.0, 100.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_registry_merge_matches_single_registry(self):
        # Two workers each observing half the events must merge to the
        # same snapshot as one registry seeing all of them.
        merged, reference = MetricsRegistry(), MetricsRegistry()
        workers = [MetricsRegistry(), MetricsRegistry()]
        for i, value in enumerate((5.0, 50.0, 5000.0, 12.0)):
            workers[i % 2].counter("events").inc()
            workers[i % 2].histogram("delay").observe(value)
            reference.counter("events").inc()
            reference.histogram("delay").observe(value)
        for worker in workers:
            merged.merge(worker)
        assert merged.snapshot() == reference.snapshot()
