"""The obs-guard AST lint: clean tree, plus synthetic violations.

``scripts/check_obs_guards.py`` enforces the zero-overhead contract —
every trace/profile/sampler hook site reads ``.enabled`` first.  Running
it under pytest keeps the contract in tier-1 instead of relying on a
manual script invocation.
"""

import importlib.util
import os
import sys

import pytest

_SCRIPT = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "scripts", "check_obs_guards.py"
)


@pytest.fixture(scope="module")
def lint():
    spec = importlib.util.spec_from_file_location("check_obs_guards", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_source_tree_is_clean(lint):
    violations = lint.collect_violations()
    assert violations == [], "\n".join(str(v) for v in violations)


def test_flags_unguarded_emit(lint):
    source = (
        "def hot_path(services, event):\n"
        "    services.recorder.emit(event)\n"
    )
    violations = lint._check_module("fake.py", source)
    assert len(violations) == 1
    assert "emit" in violations[0].hook


def test_flags_unguarded_trace_event_and_span(lint):
    source = (
        "def hot_path(prof, recorder, now):\n"
        "    with prof.span('x'):\n"
        "        recorder.emit(TraceEvent(time=now))\n"
    )
    violations = lint._check_module("fake.py", source)
    assert {v.hook for v in violations} == {
        "prof.span(...)",
        "recorder.emit(...)",
        "TraceEvent(...)",
    }


def test_accepts_inline_guard(lint):
    source = (
        "def hot_path(prof, recorder, now):\n"
        "    if prof.enabled and recorder.enabled:\n"
        "        with prof.span('x'):\n"
        "            recorder.emit(TraceEvent(time=now))\n"
    )
    assert lint._check_module("fake.py", source) == []


def test_guard_family_must_match_hook_family(lint):
    # A profiler guard does not cover trace hooks: the guard's receiver
    # must belong to the same instrument family as the hook it protects.
    source = (
        "def hot_path(prof, recorder, now):\n"
        "    if prof.enabled:\n"
        "        with prof.span('x'):\n"
        "            recorder.emit(TraceEvent(time=now))\n"
    )
    violations = lint._check_module("fake.py", source)
    assert {v.hook for v in violations} == {
        "recorder.emit(...)",
        "TraceEvent(...)",
    }


def test_accepts_creation_time_guard(lint):
    # The route_observer pattern: the guard runs once at closure
    # creation; the closure itself emits unconditionally.
    source = (
        "def make_observer(services):\n"
        "    if services is None or not services.recorder.enabled:\n"
        "        return None\n"
        "    recorder = services.recorder\n"
        "    def observe(event):\n"
        "        recorder.emit(event)\n"
        "    return observe\n"
    )
    assert lint._check_module("fake.py", source) == []


def test_guard_after_hook_does_not_count(lint):
    source = (
        "def hot_path(prof, x):\n"
        "    prof.add('k', x)\n"
        "    if prof.enabled:\n"
        "        pass\n"
    )
    violations = lint._check_module("fake.py", source)
    assert len(violations) == 1


def test_ignores_unrelated_receivers(lint):
    # set.add, subprocess start, timeline record: not obs hooks.
    source = (
        "def busy(seen, timeline, item):\n"
        "    seen.add(item)\n"
        "    timeline.record(1.0, 2, 3, 4, 5, 0.5)\n"
    )
    assert lint._check_module("fake.py", source) == []


def test_script_main_exits_zero(lint, capsys):
    assert lint.main() == 0
    assert "all obs hook sites" in capsys.readouterr().out
