"""The SLO rule lint: presets name real snapshot fields.

``scripts/check_slo_rules.py`` proves every rule in ``SLO_PRESETS``
targets a numeric :class:`HealthSnapshot` field with a well-formed
op/target/sustain and a spec string the CLI parser can re-read.
Running it under pytest keeps the contract in tier-1 instead of
relying on a manual script invocation.
"""

import dataclasses
import os
import importlib.util

import pytest

from repro.obs.health import HealthSnapshot
from repro.obs.slo import SLO_PRESETS

_SCRIPT = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "scripts", "check_slo_rules.py"
)


@pytest.fixture(scope="module")
def lint():
    spec = importlib.util.spec_from_file_location("check_slo_rules", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_presets_are_clean(lint):
    violations = lint.collect_violations()
    assert violations == [], "\n".join(str(v) for v in violations)


def test_monitorable_fields_track_the_snapshot(lint):
    names = {field.name for field in dataclasses.fields(HealthSnapshot)}
    assert lint.MONITORABLE_FIELDS <= names
    # Identity and flag fields stay excluded.
    assert not lint.MONITORABLE_FIELDS & {"index", "start", "end", "flash_crowd"}
    # The signals the presets rely on are monitorable.
    assert {"success_ratio", "delay_p95", "backlog", "cache_hit_ratio"} <= (
        lint.MONITORABLE_FIELDS
    )


def test_lint_catches_bogus_field(lint, monkeypatch):
    # Sanity: a rule naming a nonexistent field would actually be flagged.
    from repro.obs.slo import SLORule

    bogus = SLORule("bogus", "no_such_field", ">=", 1.0)
    monkeypatch.setitem(lint.SLO_PRESETS, "bogus", bogus)
    problems = [v for v in lint.check_fields() if v.rule == "bogus"]
    assert problems and "no_such_field" in problems[0].problem


def test_script_main_exits_zero(lint, capsys):
    assert lint.main() == 0
    out = capsys.readouterr().out
    assert "registered SLO rules" in out


def test_every_preset_key_matches_rule_name():
    assert all(name == rule.name for name, rule in SLO_PRESETS.items())
