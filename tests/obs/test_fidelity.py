"""Model-fidelity diagnostics: calibration machinery and warning gates.

The discrimination contract: a run on the default synthetic scenario
(whose pair processes are exact homogeneous Poisson) stays inside every
default threshold, while a genuinely heavy-tailed (Pareto) inter-contact
process trips the exponentiality gate — same gates, opposite verdicts.
"""

import math

import numpy as np
import pytest

from repro.caching import IntentionalCaching, IntentionalConfig
from repro.obs import MemoryRecorder, build_causality
from repro.obs.events import TraceEvent, TraceEventKind
from repro.obs.fidelity import (
    FidelityThresholds,
    assess_fidelity,
    calibrate,
    ncl_load_balance,
    override_thresholds,
    popularity_calibration,
    response_calibration,
)
from repro.sim.simulator import Simulator, SimulatorConfig
from repro.traces.analysis import exponential_fit_report
from repro.traces.contact import Contact, ContactTrace
from repro.traces.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.units import DAY, HOUR, MEGABIT
from repro.workload.config import WorkloadConfig


def _ev(time, kind, node=None, data_id=None, query_id=None, **attrs):
    return TraceEvent(
        time=time, kind=kind, node=node, data_id=data_id, query_id=query_id,
        attrs=attrs,
    )


class TestCalibrate:
    def test_empty_sample_is_none(self):
        assert calibrate([]) is None

    def test_perfect_predictions_score_zero(self):
        pairs = [(1.0, True)] * 10 + [(0.0, False)] * 10
        calibration = calibrate(pairs)
        assert calibration.samples == 20
        assert calibration.brier == 0.0
        assert calibration.max_gap == 0.0

    def test_brier_matches_definition(self):
        pairs = [(0.8, True), (0.8, False), (0.3, False), (0.3, True)]
        calibration = calibrate(pairs)
        expected = np.mean(
            [(0.8 - 1) ** 2, (0.8 - 0) ** 2, (0.3 - 0) ** 2, (0.3 - 1) ** 2]
        )
        assert calibration.brier == pytest.approx(expected)

    def test_bins_partition_predictions(self):
        pairs = [(0.05, False)] * 6 + [(0.95, True)] * 6
        calibration = calibrate(pairs)
        assert len(calibration.bins) == 2
        low, high = calibration.bins
        assert (low.lo, low.hi) == (0.0, 0.1) and low.count == 6
        assert low.observed_rate == 0.0
        assert (high.lo, high.hi) == (0.9, 1.0) and high.count == 6
        assert high.observed_rate == 1.0

    def test_max_gap_ignores_underfilled_bins(self):
        # 2 wildly miscalibrated samples in one bin, below min_bin_count
        pairs = [(0.95, False)] * 2 + [(0.05, False)] * 10
        calibration = calibrate(pairs, min_bin_count=5)
        assert calibration.max_gap == pytest.approx(0.05)
        # ... but counted once the bin has enough mass
        calibration = calibrate(pairs, min_bin_count=2)
        assert calibration.max_gap == pytest.approx(0.95)

    def test_boundary_prediction_lands_in_last_bin(self):
        calibration = calibrate([(1.0, True)] * 5)
        assert len(calibration.bins) == 1
        assert calibration.bins[0].hi == 1.0


class TestSectionBuilders:
    def test_response_calibration_reads_decisions(self):
        K = TraceEventKind
        events = [
            _ev(0.0, K.QUERY_CREATED, node=0, data_id=1, query_id=1,
                time_constraint=100.0),
            _ev(1.0, K.RESPONSE_DECIDED, node=2, query_id=1, respond=True,
                probability=0.9),
            _ev(2.0, K.RESPONSE_DECIDED, node=3, query_id=1, respond=False,
                probability=0.1),
            # NaN probability rows (legacy traces) are skipped, not scored
            _ev(3.0, K.RESPONSE_DECIDED, node=4, query_id=1, respond=False,
                probability=float("nan")),
        ]
        calibration = response_calibration(build_causality(events))
        assert calibration.samples == 2

    def test_popularity_counts_co_batch_arrivals_as_later_demand(self):
        """Two requests at the same epoch: after the first, the model
        must see the second as realized future demand (stream order)."""
        K = TraceEventKind
        events = [
            _ev(0.0, K.DATA_GENERATED, node=1, data_id=4, expires_at=100.0),
            _ev(10.0, K.QUERY_CREATED, node=0, data_id=4, query_id=1,
                time_constraint=10.0),
            _ev(20.0, K.QUERY_CREATED, node=2, data_id=4, query_id=2,
                time_constraint=10.0),
            _ev(20.0, K.QUERY_CREATED, node=3, data_id=4, query_id=3,
                time_constraint=10.0),
            # push the trace end past the item's expiry (not censored)
            _ev(150.0, K.SAMPLE, node=0),
        ]
        calibration = popularity_calibration(events, build_causality(events))
        # rate needs >= 2 distinct times: scored after the 2nd and 3rd
        # requests; the co-batch request at t=20 realizes the 2nd's
        # prediction, nothing follows the 3rd
        assert calibration.samples == 2
        realized_total = sum(
            bin_.count * bin_.observed_rate for bin_ in calibration.bins
        )
        assert realized_total == pytest.approx(1.0)

    def test_popularity_skips_censored_items(self):
        K = TraceEventKind
        events = [
            _ev(0.0, K.DATA_GENERATED, node=1, data_id=4, expires_at=1000.0),
            _ev(10.0, K.QUERY_CREATED, node=0, data_id=4, query_id=1,
                time_constraint=10.0),
            _ev(20.0, K.QUERY_CREATED, node=2, data_id=4, query_id=2,
                time_constraint=10.0),
        ]
        # trace ends at t=20 < expires_at=1000: outcome unknowable
        assert popularity_calibration(events, build_causality(events)) is None

    def test_ncl_load_balance_counts_completed_chains(self):
        K = TraceEventKind
        events = [
            _ev(0.0, K.DATA_GENERATED, node=1, data_id=1, expires_at=500.0),
            _ev(1.0, K.PUSH_COMPLETED, node=8, data_id=1, target_central=8),
            _ev(0.0, K.DATA_GENERATED, node=1, data_id=2, expires_at=500.0),
            _ev(2.0, K.PUSH_COMPLETED, node=8, data_id=2, target_central=8),
            _ev(0.0, K.DATA_GENERATED, node=1, data_id=3, expires_at=500.0),
            _ev(3.0, K.PUSH_COMPLETED, node=9, data_id=3, target_central=9),
        ]
        load = ncl_load_balance(build_causality(events))
        assert load.counts == {8: 2, 9: 1}
        assert load.max_share == pytest.approx(2 / 3)
        values = np.array([2.0, 1.0])
        assert load.coefficient_of_variation == pytest.approx(
            values.std() / values.mean()
        )

    def test_load_balance_none_without_completions(self):
        assert ncl_load_balance(build_causality([])) is None


class TestThresholds:
    def test_override_replaces_only_given_gates(self):
        base = FidelityThresholds()
        overridden = override_thresholds(base, max_median_ks=0.1, min_samples=None)
        assert overridden.max_median_ks == 0.1
        assert overridden.min_samples == base.min_samples
        assert override_thresholds(base) is base


def _pareto_trace(seed=42, num_nodes=6, contacts_per_pair=60, scale=600.0):
    """Inter-contact gaps drawn Pareto(α=1.2) — heavy-tailed, decisively
    non-exponential, yet with finite per-pair samples a KS fit still
    converges (median KS ≈ 0.33 vs ≈ 0.10 for the matched exponential)."""
    rng = np.random.default_rng(seed)
    contacts = []
    for a in range(num_nodes):
        for b in range(a + 1, num_nodes):
            t = float(rng.uniform(0.0, scale))
            for _ in range(contacts_per_pair):
                gap = scale * (rng.pareto(1.2) + 0.05)
                t += gap
                contacts.append(Contact(start=t, end=t + 30.0, node_a=a, node_b=b))
    return ContactTrace(contacts, num_nodes=num_nodes, name="pareto")


def _exponential_trace(seed=42, num_nodes=6, contacts_per_pair=60, scale=600.0):
    rng = np.random.default_rng(seed)
    contacts = []
    for a in range(num_nodes):
        for b in range(a + 1, num_nodes):
            t = float(rng.uniform(0.0, scale))
            for _ in range(contacts_per_pair):
                t += float(rng.exponential(scale))
                contacts.append(Contact(start=t, end=t + 30.0, node_a=a, node_b=b))
    return ContactTrace(contacts, num_nodes=num_nodes, name="exponential")


class TestExponentialityGate:
    def test_heavy_tailed_trace_trips_the_gate(self):
        report = exponential_fit_report(_pareto_trace())
        assert report.pairs_fitted >= 3
        assert report.median_ks > FidelityThresholds().max_median_ks

    def test_matched_exponential_trace_passes(self):
        report = exponential_fit_report(_exponential_trace())
        assert report.pairs_fitted >= 3
        assert report.median_ks < FidelityThresholds().max_median_ks


@pytest.fixture(scope="module")
def synthetic_run():
    trace = generate_synthetic_trace(
        SyntheticTraceConfig(
            name="fidelity-acceptance",
            num_nodes=12,
            duration=4 * DAY,
            total_contacts=2500,
            granularity=60.0,
            seed=6,
        )
    )
    workload = WorkloadConfig(
        mean_data_lifetime=12 * HOUR, mean_data_size=30 * MEGABIT
    )
    recorder = MemoryRecorder()
    Simulator(
        trace,
        IntentionalCaching(IntentionalConfig(num_ncls=2, ncl_time_budget=2 * HOUR)),
        workload,
        SimulatorConfig(seed=3),
        recorder=recorder,
    ).run()
    return trace, recorder.events


class TestAcceptance:
    def test_poisson_synthetic_run_within_default_tolerances(self, synthetic_run):
        """The acceptance criterion: a model-faithful run (homogeneous
        Poisson contacts, Bernoulli response draws) produces no fidelity
        warnings at the documented default thresholds."""
        trace, events = synthetic_run
        causality = build_causality(events)
        report = assess_fidelity(events, causality, contact_trace=trace)
        assert report.warnings == []
        assert report.intercontact is not None
        assert report.intercontact.median_ks < 0.25
        assert report.delivery is not None and report.delivery.samples > 0
        assert report.response is not None and report.response.samples > 0
        assert report.load is not None

    def test_tight_thresholds_flag_the_same_run(self, synthetic_run):
        """--strict-style overrides must bite: impossible gates turn the
        healthy run into warnings (the gates are live, not decorative)."""
        trace, events = synthetic_run
        causality = build_causality(events)
        tight = override_thresholds(
            FidelityThresholds(),
            max_median_ks=0.001,
            max_delivery_brier=0.001,
            max_calibration_gap=0.0,
            min_samples=1,
        )
        report = assess_fidelity(
            events, causality, contact_trace=trace, thresholds=tight
        )
        assert any("inter-contact" in w for w in report.warnings)
        assert any("delivery" in w for w in report.warnings)

    def test_sections_degrade_without_contact_trace(self, synthetic_run):
        _, events = synthetic_run
        causality = build_causality(events)
        report = assess_fidelity(events, causality, contact_trace=None)
        assert report.intercontact is None
        assert report.delivery is None
        assert report.response is not None
