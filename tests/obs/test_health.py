"""Tests for the live health telemetry layer (``repro.obs.health``)."""

import dataclasses
import math
import struct

import pytest

from repro.errors import TraceConsistencyError
from repro.metrics.collector import CollectorTotals
from repro.obs.events import TraceEventKind
from repro.obs.health import (
    ANOMALY_SIGNALS,
    CUSUMChangePoint,
    EWMADrift,
    HealthAnomaly,
    HealthMonitor,
    HealthReport,
    HealthSnapshot,
    check_health_consistency,
    read_health_log,
    render_health_table,
    render_prometheus,
    write_health_log,
)
from repro.obs.recorder import MemoryRecorder
from repro.obs.slo import SLOEngine, SLORule, SLOTransition


def make_snapshot(index=0, start=0.0, end=10.0, **overrides):
    fields = dict(
        index=index,
        start=start,
        end=end,
        queries_issued=10,
        queries_satisfied=4,
        duplicate_deliveries=1,
        late_deliveries=0,
        cache_lookups=8,
        cache_hits=2,
        data_generated=3,
        responses_delivered=5,
        backlog=6,
        backlog_delta=2,
        success_ratio=0.4,
        cache_hit_ratio=0.25,
        queries_per_sim_second=1.0,
        delay_p50=5.0,
        delay_p95=9.0,
        delay_p99=9.9,
        ncl_load_cv=0.1,
        flash_crowd=False,
    )
    fields.update(overrides)
    return HealthSnapshot(**fields)


def bitwise_equal(a, b):
    if isinstance(a, float) and isinstance(b, float):
        return struct.pack("<d", a) == struct.pack("<d", b)
    if dataclasses.is_dataclass(a) and dataclasses.is_dataclass(b):
        return type(a) is type(b) and all(
            bitwise_equal(getattr(a, f.name), getattr(b, f.name))
            for f in dataclasses.fields(a)
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(bitwise_equal(x, y) for x, y in zip(a, b))
    return a == b


class TestHealthSnapshot:
    def test_dict_round_trip(self):
        snap = make_snapshot(success_ratio=float("nan"), flash_crowd=True)
        back = HealthSnapshot.from_dict(snap.to_dict())
        assert bitwise_equal(snap, back)

    def test_delta_totals_mirror_collector_order(self):
        snap = make_snapshot()
        totals = snap.delta_totals()
        assert isinstance(totals, CollectorTotals)
        assert totals.queries_issued == snap.queries_issued
        assert totals.responses_delivered == snap.responses_delivered

    def test_anomaly_signals_are_real_fields(self):
        snap = make_snapshot()
        for signal in ANOMALY_SIGNALS:
            assert isinstance(float(getattr(snap, signal)), float)


class TestEWMADrift:
    def test_flags_large_deviation_after_warmup(self):
        detector = EWMADrift(alpha=0.3, k=3.0, warmup=5)
        assert all(detector.update(1.0 + 0.01 * i) is None for i in range(10))
        score = detector.update(100.0)
        assert score is not None and score > 3.0

    def test_quiet_stream_never_fires(self):
        detector = EWMADrift(alpha=0.3, k=4.0, warmup=5)
        assert all(detector.update(2.0) is None for _ in range(50))

    def test_nan_skipped(self):
        detector = EWMADrift(warmup=2)
        for value in (1.0, float("nan"), 1.0, float("nan"), 1.0):
            assert detector.update(value) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            EWMADrift(alpha=0.0)
        with pytest.raises(ValueError):
            EWMADrift(k=0.0)
        with pytest.raises(ValueError):
            EWMADrift(warmup=0)


class TestCUSUMChangePoint:
    def test_detects_level_shift(self):
        detector = CUSUMChangePoint(drift=0.5, threshold=4.0, warmup=5)
        fired = []
        for value in [1.0, 1.1, 0.9, 1.0, 1.05, 0.95] + [5.0] * 20:
            score = detector.update(value)
            if score is not None:
                fired.append(score)
        assert fired and fired[0] > 0  # upward shift → positive statistic

    def test_resets_after_firing(self):
        detector = CUSUMChangePoint(drift=0.0, threshold=2.0, warmup=2)
        stream = [0.0, 1.0, 0.5] + [10.0] * 30
        scores = [detector.update(v) for v in stream]
        firings = [s for s in scores if s is not None]
        assert firings, "level shift must fire"
        first = scores.index(firings[0])
        # the window right after a firing starts from zero accumulators
        assert scores[first + 1] is None or scores[first + 1] != firings[0]

    def test_constant_stream_never_fires(self):
        detector = CUSUMChangePoint(warmup=3)
        assert all(detector.update(7.0) is None for _ in range(40))

    def test_validation(self):
        with pytest.raises(ValueError):
            CUSUMChangePoint(drift=-0.1)
        with pytest.raises(ValueError):
            CUSUMChangePoint(threshold=0.0)
        with pytest.raises(ValueError):
            CUSUMChangePoint(warmup=1)


class TestCheckHealthConsistency:
    def _report(self, snapshots):
        return HealthReport(
            snapshots=tuple(snapshots), transitions=(), anomalies=(), flash_window=None
        )

    def test_consistent_stream_passes(self):
        snaps = [
            make_snapshot(index=0, start=0.0, end=10.0, queries_issued=4),
            make_snapshot(index=1, start=10.0, end=20.0, queries_issued=6),
        ]
        totals = CollectorTotals(10, 8, 2, 0, 16, 4, 6, 10)
        check_health_consistency(self._report(snaps), totals)

    def test_counter_mismatch_raises(self):
        snaps = [make_snapshot(index=0, queries_issued=4)]
        totals = CollectorTotals(5, 4, 1, 0, 8, 2, 3, 5)
        with pytest.raises(TraceConsistencyError, match="queries_issued"):
            check_health_consistency(self._report(snaps), totals)

    def test_gap_between_windows_raises(self):
        snaps = [
            make_snapshot(index=0, start=0.0, end=10.0),
            make_snapshot(index=1, start=11.0, end=20.0),
        ]
        totals = CollectorTotals(20, 8, 2, 0, 16, 4, 6, 10)
        with pytest.raises(TraceConsistencyError, match="starts at"):
            check_health_consistency(self._report(snaps), totals)

    def test_out_of_order_indices_raise(self):
        snaps = [make_snapshot(index=1)]
        totals = CollectorTotals(10, 4, 1, 0, 8, 2, 3, 5)
        with pytest.raises(TraceConsistencyError, match="out of order"):
            check_health_consistency(self._report(snaps), totals)

    def test_baseline_subtracted(self):
        snaps = [make_snapshot(index=0, queries_issued=4)]
        baseline = CollectorTotals(100, 0, 0, 0, 0, 0, 0, 0)
        totals = CollectorTotals(104, 4, 1, 0, 8, 2, 3, 5)
        check_health_consistency(self._report(snaps), totals, baseline=baseline)


class TestHealthMonitorUnit:
    """Monitor behaviour against a scripted fake simulator — the
    deterministic flash-crowd scenario from the acceptance criteria."""

    class FakeMetrics:
        def __init__(self):
            self.totals_value = CollectorTotals(0, 0, 0, 0, 0, 0, 0, 0)
            self.open = 0
            self.delay_p50 = float("nan")
            self.delay_p95 = float("nan")
            self.delay_p99 = float("nan")

        def totals(self):
            return self.totals_value

        @property
        def open_queries(self):
            return self.open

        def pending_queries(self, now):
            return self.open

    class FakeSimulator:
        def __init__(self):
            self.metrics = TestHealthMonitorUnit.FakeMetrics()
            self.workload_process = type("WP", (), {"arrivals": None})()

        def ncl_load(self, now):
            return {1: 4, 2: 4}

    def advance(self, sim, issued, satisfied):
        t = sim.metrics.totals_value
        sim.metrics.totals_value = CollectorTotals(
            t.queries_issued + issued,
            t.queries_satisfied + satisfied,
            t.duplicate_deliveries,
            t.late_deliveries,
            t.cache_lookups + issued,
            t.cache_hits + satisfied,
            t.data_generated,
            t.responses_delivered + satisfied,
        )
        sim.metrics.open += issued - satisfied

    def test_scripted_flash_crowd_slo_sequence(self):
        """baseline → surge (ratio collapses) → calm: the availability
        rule must fire exactly once and recover exactly once, at
        deterministic window ends."""
        sim = self.FakeSimulator()
        rule = SLORule("availability", "success_ratio", ">=", 0.5, sustain=2)
        recorder = MemoryRecorder()
        monitor = HealthMonitor([rule], recorder)
        monitor.attach(sim)
        # (issued, satisfied) per window: 3 healthy, 3 surging, 3 calm
        script = [(10, 8), (10, 9), (10, 8), (50, 5), (60, 4), (50, 5), (10, 8), (10, 9), (10, 8)]
        for i, (issued, satisfied) in enumerate(script):
            self.advance(sim, issued, satisfied)
            monitor.observe_window(i, i * 10.0, (i + 1) * 10.0)
        report = monitor.report()
        kinds = [(t.kind, t.time) for t in report.transitions]
        # violated after the 2nd surge window (sustain=2) at t=50, recovered
        # on the first calm window at t=70
        assert kinds == [("slo.violated", 50.0), ("slo.recovered", 70.0)]
        trace_kinds = [e.kind for e in recorder.events]
        assert trace_kinds == [
            TraceEventKind.SLO_VIOLATED,
            TraceEventKind.SLO_RECOVERED,
        ]
        check_health_consistency(
            report, sim.metrics.totals(), baseline=monitor.baseline
        )

    def test_replaying_script_is_deterministic(self):
        reports = []
        for _ in range(2):
            sim = self.FakeSimulator()
            monitor = HealthMonitor([SLORule("r", "backlog", "<=", 3.0)])
            monitor.attach(sim)
            for i in range(6):
                self.advance(sim, 5, 3)
                monitor.observe_window(i, i * 10.0, (i + 1) * 10.0)
            reports.append(monitor.report())
        assert bitwise_equal(reports[0], reports[1])

    def test_ncl_load_cv_balanced_is_zero(self):
        sim = self.FakeSimulator()
        monitor = HealthMonitor()
        monitor.attach(sim)
        self.advance(sim, 4, 2)
        snap = monitor.observe_window(0, 0.0, 10.0)
        assert snap.ncl_load_cv == 0.0  # loads {1: 4, 2: 4} are balanced

    def test_observe_before_attach_rejected(self):
        with pytest.raises(RuntimeError):
            HealthMonitor().observe_window(0, 0.0, 1.0)

    def test_anomaly_events_emitted_through_recorder(self):
        sim = self.FakeSimulator()
        recorder = MemoryRecorder()
        monitor = HealthMonitor(recorder=recorder, detector_warmup=3)
        monitor.attach(sim)
        # quiet backlog_delta stream, then a massive spike
        for i in range(12):
            self.advance(sim, 5, 5)
            monitor.observe_window(i, i * 10.0, (i + 1) * 10.0)
        self.advance(sim, 500, 0)
        monitor.observe_window(12, 120.0, 130.0)
        report = monitor.report()
        assert report.anomalies, "spike must trip a detector"
        assert any(a.signal == "backlog_delta" for a in report.anomalies)
        assert any(
            e.kind == TraceEventKind.HEALTH_ANOMALY for e in recorder.events
        )


class TestHealthLogAndRendering:
    def _report(self):
        snaps = (
            make_snapshot(index=0, start=0.0, end=10.0, flash_crowd=True),
            make_snapshot(
                index=1, start=10.0, end=20.0, success_ratio=float("nan")
            ),
        )
        transitions = (
            SLOTransition(10.0, "avail", "slo.violated", "success_ratio", 0.1, 0.5),
            SLOTransition(20.0, "avail", "slo.recovered", "success_ratio", 0.9, 0.5),
        )
        anomalies = (HealthAnomaly(20.0, "backlog_delta", "cusum", 9.0, 5.5),)
        return HealthReport(snaps, transitions, anomalies, (2.0, 8.0))

    def test_jsonl_round_trip_bitwise(self, tmp_path):
        report = self._report()
        path = tmp_path / "health.jsonl"
        write_health_log(path, report)
        assert bitwise_equal(read_health_log(path), report)

    def test_log_records_are_time_ordered(self, tmp_path):
        import json

        path = tmp_path / "health.jsonl"
        write_health_log(path, self._report())
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["kind"] == "health.meta"
        times = [record["t"] for record in lines[1:] if "t" in record]
        assert times == sorted(times)

    def test_render_table_marks_edges(self):
        text = render_health_table(self._report())
        assert "!avail" in text
        assert "+avail" in text
        assert "~backlog_delta[cusum]" in text
        assert "flash crowd [2, 8)" in text
        assert "2 windows" in text

    def test_render_table_limit(self):
        text = render_health_table(self._report(), limit=1)
        lines = [l for l in text.splitlines() if l and l[0] in "0123456789 "]
        # only the last window row survives the limit
        assert "   0 " not in text.splitlines()[2]

    def test_prometheus_exposition(self):
        engine = SLOEngine([SLORule("avail", "success_ratio", ">=", 0.5)])
        engine.evaluate(make_snapshot(success_ratio=0.1))
        text = render_prometheus(self._report(), engine)
        assert "# TYPE repro_health_success_ratio gauge" in text
        assert "repro_health_success_ratio NaN" in text  # last window had NaN
        assert "repro_health_windows_total 2" in text
        assert 'repro_slo_violated{rule="avail"} 1' in text
        assert text.endswith("\n")

    def test_prometheus_empty_report(self):
        empty = HealthReport((), (), (), None)
        text = render_prometheus(empty)
        assert "repro_health_windows_total 0" in text
