"""The trace-kind lint: clean enum, plus the frozen-grammar invariants.

``scripts/check_trace_kinds.py`` pins the two-era naming scheme of
:class:`TraceEventKind` (closed legacy snake_case set, dotted grammar
for everything newer) and proves the ``repro diagnose`` parser covers
every kind.  Running it under pytest keeps the contract in tier-1
instead of relying on a manual script invocation.
"""

import importlib.util
import os

import pytest

from repro.obs.causality import HANDLED_KINDS, IGNORED_KINDS
from repro.obs.events import TraceEventKind

_SCRIPT = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "scripts", "check_trace_kinds.py"
)


@pytest.fixture(scope="module")
def lint():
    spec = importlib.util.spec_from_file_location("check_trace_kinds", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_enum_is_clean(lint):
    violations = lint.collect_violations()
    assert violations == [], "\n".join(str(v) for v in violations)


def test_legacy_set_matches_the_enum(lint):
    # The frozen list stays in sync with the enum: every legacy value is
    # a real kind, and no dotted kind snuck into the legacy set.
    values = {member.value for member in TraceEventKind}
    assert lint.LEGACY_SNAKE_KINDS <= values
    assert all("." not in value for value in lint.LEGACY_SNAKE_KINDS)


def test_dotted_grammar_accepts_and_rejects(lint):
    grammar = lint.DOTTED_GRAMMAR
    assert grammar.match("node.failed")
    assert grammar.match("cache.migrated")
    assert grammar.match("push.forwarded_again")
    assert not grammar.match("bare_snake")
    assert not grammar.match("Upper.case")
    assert not grammar.match("trailing.")
    assert not grammar.match("double..dot")


def test_every_dotted_kind_uses_a_registered_namespace(lint):
    for member in TraceEventKind:
        if "." not in member.value:
            continue
        namespace = member.value.split(".", 1)[0]
        assert namespace in lint.KNOWN_NAMESPACES, member.value


def test_namespace_check_catches_unregistered_prefix(lint):
    # Sanity: the checker would actually flag a typo'd namespace.
    assert "slos" not in lint.KNOWN_NAMESPACES
    assert {"slo", "health", "workload"} <= lint.KNOWN_NAMESPACES


def test_parser_coverage_is_exhaustive_and_disjoint():
    assert HANDLED_KINDS | IGNORED_KINDS == set(TraceEventKind)
    assert not HANDLED_KINDS & IGNORED_KINDS


def test_script_main_exits_zero(lint, capsys):
    assert lint.main() == 0
    out = capsys.readouterr().out
    assert "naming grammar" in out
