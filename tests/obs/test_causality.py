"""Causal reconstruction: push trees, response DAGs, bit-exact cross-check.

Unit tests drive :func:`build_causality` on hand-built event streams
where the expected chains are obvious; the acceptance tests prove the
headline contract on real runs — every satisfied query maps to exactly
one delivered chain and the chain arithmetic reproduces the derived
metrics bit for bit — including across the churn scenario, where chains
crossing ``node.failed``/``node.left``/``cache.migrated`` must terminate
cleanly with a break reason instead of dangling.
"""

import json
import math
import os

import pytest

from repro.caching import IntentionalCaching, IntentionalConfig
from repro.errors import TraceConsistencyError
from repro.obs import (
    MemoryRecorder,
    assert_causal_consistency,
    build_causality,
    check_causal_consistency,
    delivery_in_constraint,
    derive_metrics,
    read_events,
    render_push_timeline,
    render_query_timeline,
    summarize_causality,
)
from repro.obs.events import TraceEvent, TraceEventKind
from repro.sim.simulator import Simulator, SimulatorConfig
from repro.traces.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.units import DAY, HOUR, MEGABIT
from repro.workload.config import WorkloadConfig

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def _ev(time, kind, node=None, data_id=None, query_id=None, **attrs):
    return TraceEvent(
        time=time, kind=kind, node=node, data_id=data_id, query_id=query_id,
        attrs=attrs,
    )


def _query_stream():
    """One query, two response copies: a 2-hop delivered chain (seq 1)
    and a 1-hop duplicate delivered later (seq 2)."""
    K = TraceEventKind
    return [
        _ev(0.0, K.QUERY_CREATED, node=0, data_id=5, query_id=7,
            time_constraint=100.0),
        _ev(1.0, K.QUERY_OBSERVED, node=3, query_id=7),
        _ev(1.0, K.RESPONSE_DECIDED, node=3, query_id=7, respond=True,
            probability=0.8),
        _ev(1.0, K.RESPONSE_EMITTED, node=3, query_id=7, sequence=1),
        _ev(4.0, K.RESPONSE_FORWARDED, node=4, query_id=7, carrier=3,
            responder=3, sequence=1, action="handover"),
        _ev(9.0, K.RESPONSE_DELIVERED, node=0, query_id=7, carrier=4,
            responder=3, sequence=1),
        _ev(9.0, K.QUERY_SATISFIED, node=0, query_id=7, created_at=0.0),
        _ev(2.0, K.RESPONSE_EMITTED, node=6, query_id=7, sequence=2),
        _ev(12.0, K.RESPONSE_DELIVERED, node=0, query_id=7, carrier=6,
            responder=6, sequence=2),
    ]


class TestResponseReconstruction:
    def test_copies_hops_and_custody(self):
        causality = build_causality(_query_stream())
        query = causality.queries[7]
        assert query.requester == 0 and query.data_id == 5
        assert query.expires_at == 100.0
        assert len(query.copies) == 2

        first = next(c for c in query.copies if c.sequence == 1)
        assert first.responder == 3
        assert [h.node for h in first.hops] == [4]
        assert first.hops[0].carrier == 3
        # delivery is the final hop of the chain
        assert first.hop_count == 2
        assert first.hop_delays() == [3.0, 5.0]
        assert first.delivered_at == 9.0 and first.delivered_by == 4
        # custody drained as the copy moved: 3 handed over, 4 delivered
        assert first.custody == []

        second = next(c for c in query.copies if c.sequence == 2)
        assert second.hop_count == 1
        assert second.delivered_at == 12.0

    def test_first_inconstraint_delivery_wins(self):
        causality = build_causality(_query_stream())
        query = causality.queries[7]
        assert query.first_delivery == (9.0, query.copies.index(
            query.satisfying_copy
        ))
        assert query.satisfying_copy.sequence == 1
        assert query.delay == 9.0
        assert causality.satisfied_order == [(7, 9.0, 9.0)]
        assert causality.delivery_events == 2
        summary = summarize_causality(causality)
        assert summary["duplicate_deliveries"] == 1
        assert summary["max_copies_per_query"] == 2

    def test_out_of_constraint_delivery_does_not_satisfy(self):
        K = TraceEventKind
        events = [
            _ev(0.0, K.QUERY_CREATED, node=0, data_id=1, query_id=1,
                time_constraint=10.0),
            _ev(1.0, K.RESPONSE_EMITTED, node=2, query_id=1, sequence=1),
            _ev(50.0, K.RESPONSE_DELIVERED, node=0, query_id=1, carrier=2,
                responder=2, sequence=1),
        ]
        causality = build_causality(events)
        query = causality.queries[1]
        assert query.first_delivery is None
        assert query.copies[0].delivered_at == 50.0
        assert query.outcome(causality.trace_end) == "expired"
        assert not delivery_in_constraint(50.0, query.expires_at)

    def test_boundary_delivery_exactly_at_expiry_satisfies(self):
        K = TraceEventKind
        events = [
            _ev(0.0, K.QUERY_CREATED, node=0, data_id=1, query_id=1,
                time_constraint=10.0),
            _ev(1.0, K.RESPONSE_EMITTED, node=2, query_id=1, sequence=1),
            _ev(10.0, K.RESPONSE_DELIVERED, node=0, query_id=1, carrier=2,
                responder=2, sequence=1),
            _ev(10.0, K.QUERY_SATISFIED, node=0, query_id=1, created_at=0.0),
        ]
        causality = build_causality(events)
        assert causality.queries[1].first_delivery == (10.0, 0)
        assert check_causal_consistency(events, causality) == []

    def test_self_service_synthesizes_zero_hop_copy(self):
        K = TraceEventKind
        events = [
            _ev(0.0, K.QUERY_CREATED, node=4, data_id=1, query_id=3,
                time_constraint=50.0),
            _ev(0.0, K.RESPONSE_DECIDED, node=4, query_id=3, respond=True,
                probability=1.0),
            _ev(0.0, K.QUERY_SATISFIED, node=4, query_id=3, created_at=0.0),
        ]
        causality = build_causality(events)
        query = causality.queries[3]
        assert len(query.copies) == 1
        copy = query.copies[0]
        assert copy.self_service and copy.responder == 4
        assert copy.delivered_at == 0.0 and copy.hop_count == 0
        assert query.delay == 0.0
        # self-service is not a RESPONSE_EMITTED/DELIVERED event
        assert causality.responses_emitted == 0
        assert causality.delivery_events == 0
        assert check_causal_consistency(events, causality) == []
        assert summarize_causality(causality)["self_service_deliveries"] == 1

    def test_sequence_less_trace_degrades_to_custody_matching(self):
        """Legacy traces without ``sequence`` attrs: a single candidate
        matches exactly; several candidates flag the query ambiguous."""
        K = TraceEventKind
        events = [
            _ev(0.0, K.QUERY_CREATED, node=0, data_id=1, query_id=1,
                time_constraint=100.0),
            _ev(1.0, K.RESPONSE_EMITTED, node=2, query_id=1),
            _ev(5.0, K.RESPONSE_DELIVERED, node=0, query_id=1, carrier=2,
                responder=2),
        ]
        causality = build_causality(events)
        query = causality.queries[1]
        assert len(query.copies) == 1 and not query.ambiguous
        assert query.copies[0].delivered_at == 5.0

        # two copies from the same responder: matching is ambiguous
        events = [
            _ev(0.0, K.QUERY_CREATED, node=0, data_id=1, query_id=1,
                time_constraint=100.0),
            _ev(1.0, K.RESPONSE_EMITTED, node=2, query_id=1),
            _ev(2.0, K.RESPONSE_EMITTED, node=2, query_id=1),
            _ev(5.0, K.RESPONSE_DELIVERED, node=0, query_id=1, carrier=2,
                responder=2),
        ]
        query = build_causality(events).queries[1]
        assert query.ambiguous

    def test_truncated_trace_creates_orphan_copy(self):
        """A delivery whose emission predates the trace start still
        attaches — as an orphan copy, not a crash or silent drop."""
        K = TraceEventKind
        events = [
            _ev(0.0, K.QUERY_CREATED, node=0, data_id=1, query_id=1,
                time_constraint=100.0),
            _ev(5.0, K.RESPONSE_DELIVERED, node=0, query_id=1, carrier=9,
                responder=9, sequence=44),
        ]
        query = build_causality(events).queries[1]
        assert len(query.copies) == 1
        assert query.copies[0].orphan
        assert query.copies[0].delivered_at == 5.0


class TestPushReconstruction:
    def test_chain_custody_and_completion(self):
        K = TraceEventKind
        events = [
            _ev(0.0, K.DATA_GENERATED, node=1, data_id=4, expires_at=500.0,
                size=1000),
            _ev(2.0, K.PUSH_FORWARDED, node=5, data_id=4, carrier=1,
                target_central=8),
            _ev(6.0, K.PUSH_FORWARDED, node=8, data_id=4, carrier=5,
                target_central=8),
            _ev(6.0, K.PUSH_COMPLETED, node=8, data_id=4, target_central=8),
            # a second chain toward another central, still in flight
            _ev(3.0, K.PUSH_FORWARDED, node=2, data_id=4, carrier=1,
                target_central=9),
        ]
        causality = build_causality(events)
        tree = causality.pushes[4]
        assert tree.source == 1 and tree.expires_at == 500.0
        assert len(tree.chains) == 2
        done = next(c for c in tree.chains if c.target_central == 8)
        assert done.origin == "source"
        assert [h.node for h in done.hops] == [5, 8]
        assert done.hop_delays() == [2.0, 4.0]
        assert done.completed_at == 6.0 and done.completed_node == 8
        assert done.state(causality.trace_end, tree.expires_at) == "completed"
        open_chain = next(c for c in tree.chains if c.target_central == 9)
        assert open_chain.custody == 2
        assert open_chain.state(causality.trace_end, tree.expires_at) == "in_flight"
        assert open_chain.state(1000.0, tree.expires_at) == "expired"

    def test_node_failure_breaks_custody_chain(self):
        K = TraceEventKind
        events = [
            _ev(0.0, K.DATA_GENERATED, node=1, data_id=4, expires_at=500.0),
            _ev(2.0, K.PUSH_FORWARDED, node=5, data_id=4, carrier=1,
                target_central=8),
            _ev(3.0, K.NODE_FAILED, node=5),
        ]
        causality = build_causality(events)
        chain = causality.pushes[4].chains[0]
        assert chain.break_reason == "node.failed"
        assert chain.custody is None
        assert chain.state(causality.trace_end, 500.0) == "broken:node.failed"

    def test_node_failure_breaks_response_custody(self):
        K = TraceEventKind
        events = [
            _ev(0.0, K.QUERY_CREATED, node=0, data_id=1, query_id=1,
                time_constraint=100.0),
            _ev(1.0, K.RESPONSE_EMITTED, node=2, query_id=1, sequence=1),
            _ev(3.0, K.NODE_LEFT, node=2),
        ]
        copy = build_causality(events).queries[1].copies[0]
        assert copy.break_reason == "node.left"
        assert copy.delivered_at is None

    def test_cache_migration_opens_new_chain(self):
        K = TraceEventKind
        events = [
            _ev(0.0, K.DATA_GENERATED, node=1, data_id=4, expires_at=500.0),
            _ev(10.0, K.CACHE_MIGRATED, node=6, data_id=4, to_central=9),
        ]
        tree = build_causality(events).pushes[4]
        chain = tree.chains[0]
        assert chain.origin == "migration"
        assert chain.started_at == 10.0 and chain.start_node == 6
        assert chain.target_central == 9


class TestConsistencyCheck:
    def test_detects_forged_satisfaction(self):
        """A query_satisfied with no matching delivered chain must fail
        the cross-check, not pass silently."""
        K = TraceEventKind
        events = [
            _ev(0.0, K.QUERY_CREATED, node=0, data_id=1, query_id=1,
                time_constraint=100.0),
            _ev(5.0, K.QUERY_SATISFIED, node=0, query_id=1, created_at=0.0),
        ]
        mismatches = check_causal_consistency(events)
        assert mismatches
        assert any("satisfied" in m for m in mismatches)
        with pytest.raises(TraceConsistencyError):
            assert_causal_consistency(events)

    def test_clean_stream_has_no_mismatches(self):
        events = _query_stream()
        assert check_causal_consistency(events) == []
        assert_causal_consistency(events)


@pytest.fixture(scope="module")
def synthetic_run():
    trace = generate_synthetic_trace(
        SyntheticTraceConfig(
            name="causality-acceptance",
            num_nodes=12,
            duration=4 * DAY,
            total_contacts=2500,
            granularity=60.0,
            seed=6,
        )
    )
    workload = WorkloadConfig(
        mean_data_lifetime=12 * HOUR, mean_data_size=30 * MEGABIT
    )
    recorder = MemoryRecorder()
    result = Simulator(
        trace,
        IntentionalCaching(IntentionalConfig(num_ncls=2, ncl_time_budget=2 * HOUR)),
        workload,
        SimulatorConfig(seed=3),
        recorder=recorder,
    ).run()
    return recorder.events, result


class TestAcceptance:
    def test_chains_reproduce_collector_metrics_bit_exactly(self, synthetic_run):
        """The acceptance criterion: on a real traced run the causal
        chains reproduce the collector metrics bit-exactly, and every
        satisfied query maps to exactly one satisfying delivered chain."""
        events, result = synthetic_run
        causality = build_causality(events)
        assert check_causal_consistency(events, causality) == []

        satisfied = causality.satisfied_ids()
        assert len(satisfied) == result.queries_satisfied
        assert len(set(satisfied)) == len(satisfied)
        for query_id in satisfied:
            query = causality.queries[query_id]
            assert query.satisfying_copy is not None
            in_constraint_first = [
                c for c in query.copies
                if c.delivered_at is not None
                and delivery_in_constraint(c.delivered_at, query.expires_at)
                and c.delivered_at == query.first_delivery[0]
            ]
            assert query.satisfying_copy in in_constraint_first

        issued = sum(1 for q in causality.queries.values() if q.created_seen)
        assert issued == result.queries_issued
        ratio = len(satisfied) / issued
        assert ratio == result.successful_ratio
        delays = [d for _, _, d in causality.satisfied_order]
        mean_delay = sum(delays) / len(delays) if delays else float("nan")
        if math.isnan(result.mean_access_delay):
            assert math.isnan(mean_delay)
        else:
            assert mean_delay == result.mean_access_delay

    def test_consistency_matches_derive_metrics_tallies(self, synthetic_run):
        events, _ = synthetic_run
        causality = build_causality(events)
        derived = derive_metrics(events)
        assert causality.delivery_events == derived.delivery_events
        assert causality.responses_emitted == derived.responses_emitted
        assert causality.data_generated == derived.data_generated

    def test_timeline_renderers_cover_every_query_and_data_item(
        self, synthetic_run
    ):
        events, _ = synthetic_run
        causality = build_causality(events)
        for query_id, query in causality.queries.items():
            text = render_query_timeline(causality, query_id)
            assert text.startswith(f"query {query_id} ")
            if query.first_delivery is not None:
                assert "<- satisfied" in text
        for data_id in causality.pushes:
            text = render_push_timeline(causality, data_id)
            assert text.startswith(f"data {data_id} ")
        with pytest.raises(KeyError):
            render_query_timeline(causality, 10**9)
        with pytest.raises(KeyError):
            render_push_timeline(causality, 10**9)


class TestChurnScenario:
    """Satellite 3: chains crossing churn events terminate cleanly."""

    @pytest.fixture(scope="class")
    def churn_events(self, tmp_path_factory):
        from repro.scenario import ScenarioSpec, run_scenario

        with open(os.path.join(EXAMPLES, "churn.json")) as handle:
            spec = ScenarioSpec.from_dict(json.load(handle))
        path = str(tmp_path_factory.mktemp("churn") / "trace.jsonl")
        run_scenario(spec, trace_path=path)
        return list(read_events(path))

    def test_churn_chains_break_cleanly_and_stay_consistent(self, churn_events):
        causality = build_causality(churn_events)
        # the cross-check holds even across failures/departures/migration
        assert check_causal_consistency(churn_events, causality) == []

        chains = [
            chain
            for tree in causality.pushes.values()
            for chain in tree.chains
        ]
        broken = [c for c in chains if c.break_reason is not None]
        assert broken, "churn scenario produced no broken push chains"
        for chain in broken:
            assert chain.break_reason in ("node.failed", "node.left")
            assert chain.custody is None
            assert chain.completed_at is None
            state = chain.state(causality.trace_end, None)
            assert state == f"broken:{chain.break_reason}"

        migrations = [c for c in chains if c.origin == "migration"]
        assert migrations, "cache.migrated produced no migration chain"

        broken_copies = [
            copy
            for query in causality.queries.values()
            for copy in query.copies
            if copy.break_reason is not None
        ]
        assert broken_copies
        for copy in broken_copies:
            assert copy.delivered_at is None
            assert copy.custody == []

    def test_churn_summary_reports_break_reasons(self, churn_events):
        summary = summarize_causality(build_causality(churn_events))
        assert "node.failed" in summary["response_breaks"]
        assert any(
            state.startswith("broken:")
            for state in summary["push_chain_states"]
        )
