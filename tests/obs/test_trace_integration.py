"""End-to-end acceptance tests for the observability layer.

The contract under test: on a seeded ``run_comparison``-style scenario
(every scheme × every seed on one trace), the successful ratio, access
delay, and caching overhead derived purely from the lifecycle trace
match the live counter metrics **exactly** — bit for bit, not
approximately — and recording the trace does not perturb the run.
"""

import dataclasses
import math

import pytest

from repro.caching import (
    BundleCache,
    CacheData,
    IntentionalCaching,
    IntentionalConfig,
    NoCache,
    RandomCache,
)
from repro.experiments.runner import run_comparison
from repro.metrics.results import aggregate_results
from repro.obs import MemoryRecorder, derive_metrics, read_events
from repro.sim.simulator import Simulator, SimulatorConfig
from repro.traces.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.units import DAY, HOUR, MEGABIT
from repro.workload.config import WorkloadConfig

SEEDS = (3, 4)


def _factories():
    return {
        "intentional": lambda: IntentionalCaching(
            IntentionalConfig(num_ncls=2, ncl_time_budget=2 * HOUR)
        ),
        "nocache": NoCache,
        "randomcache": RandomCache,
        "cachedata": CacheData,
        "bundlecache": BundleCache,
    }


@pytest.fixture(scope="module")
def trace():
    return generate_synthetic_trace(
        SyntheticTraceConfig(
            name="obs-acceptance",
            num_nodes=12,
            duration=4 * DAY,
            total_contacts=2500,
            granularity=60.0,
            seed=6,
        )
    )


@pytest.fixture(scope="module")
def workload():
    return WorkloadConfig(mean_data_lifetime=12 * HOUR, mean_data_size=30 * MEGABIT)


def _assert_results_identical(a, b):
    for field in dataclasses.fields(a):
        x, y = getattr(a, field.name), getattr(b, field.name)
        if isinstance(x, float) and math.isnan(x):
            assert isinstance(y, float) and math.isnan(y), field.name
        else:
            assert x == y, field.name


def _float_eq(a, b):
    return (math.isnan(a) and math.isnan(b)) or a == b


class TestTraceCounterConsistency:
    def test_derived_metrics_match_counters_exactly_across_comparison(
        self, trace, workload
    ):
        """The acceptance criterion: run the full scheme × seed grid with
        tracing on; the trace-derived ratio/delay/overhead must equal the
        counter metrics exactly, per run, and the traced runs must
        aggregate to exactly what the untraced ``run_comparison`` gives
        (tracing is observation, not perturbation)."""
        factories = _factories()
        untraced = run_comparison(trace, factories, workload, seeds=SEEDS)
        for name, factory in factories.items():
            per_seed = []
            for seed in SEEDS:
                recorder = MemoryRecorder()
                result = Simulator(
                    trace, factory(), workload, SimulatorConfig(seed=seed),
                    recorder=recorder,
                ).run()  # run() itself cross-checks via check_trace_consistency
                per_seed.append(result)
                derived = derive_metrics(recorder.events)
                assert derived.queries_issued == result.queries_issued, name
                assert derived.queries_satisfied == result.queries_satisfied, name
                assert derived.successful_ratio == result.successful_ratio, name
                assert _float_eq(derived.mean_access_delay, result.mean_access_delay), name
                assert derived.caching_overhead == result.caching_overhead, name
                assert derived.data_generated == result.data_generated, name
                assert derived.delivery_events == result.responses_delivered, name
            _assert_results_identical(aggregate_results(per_seed), untraced[name])

    def test_jsonl_round_trip_preserves_derivation(self, trace, workload, tmp_path):
        """Writing the trace to disk and reading it back must not change
        the derived metrics — JSON round-trips every float exactly."""
        path = tmp_path / "run.jsonl"
        recorder = MemoryRecorder()
        result = Simulator(
            trace,
            IntentionalCaching(IntentionalConfig(num_ncls=2, ncl_time_budget=2 * HOUR)),
            workload,
            SimulatorConfig(seed=5, trace_path=str(path)),
        ).run()
        # trace_path and an explicit recorder are mutually exclusive paths;
        # run again in memory on the same seed for the reference stream.
        Simulator(
            trace,
            IntentionalCaching(IntentionalConfig(num_ncls=2, ncl_time_budget=2 * HOUR)),
            workload,
            SimulatorConfig(seed=5),
            recorder=recorder,
        ).run()
        from_disk = derive_metrics(read_events(path))
        from_memory = derive_metrics(recorder.events)
        assert from_disk == from_memory
        assert from_disk.successful_ratio == result.successful_ratio
        assert _float_eq(from_disk.mean_access_delay, result.mean_access_delay)
        assert from_disk.caching_overhead == result.caching_overhead

    def test_tracing_does_not_perturb_the_run(self, trace, workload):
        baseline = Simulator(
            trace, NoCache(), workload, SimulatorConfig(seed=9)
        ).run()
        traced = Simulator(
            trace, NoCache(), workload, SimulatorConfig(seed=9),
            recorder=MemoryRecorder(),
        ).run()
        _assert_results_identical(baseline, traced)

    def test_trace_hooks_compose_with_invariant_validation(self, trace, workload):
        """Satellite 5: the occupancy invariant and the trace hooks run
        together on a full simulation without tripping."""
        recorder = MemoryRecorder()
        result = Simulator(
            trace,
            IntentionalCaching(IntentionalConfig(num_ncls=2, ncl_time_budget=2 * HOUR)),
            workload,
            SimulatorConfig(seed=7, validate_invariants=True),
            recorder=recorder,
        ).run()
        assert 0.0 <= result.successful_ratio <= 1.0
        kinds = {event.kind for event in recorder.events}
        from repro.obs import TraceEventKind

        assert TraceEventKind.DATA_GENERATED in kinds
        assert TraceEventKind.QUERY_CREATED in kinds
        assert TraceEventKind.SAMPLE in kinds
