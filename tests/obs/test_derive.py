"""Unit tests for trace-derived metrics and per-query audits."""

import math

from repro.obs import (
    TraceEvent,
    TraceEventKind,
    audit_queries,
    derive_metrics,
    render_audit_report,
)


def _ev(time, kind, node=None, data_id=None, query_id=None, **attrs):
    return TraceEvent(
        time=time, kind=kind, node=node, data_id=data_id, query_id=query_id, attrs=attrs
    )


class TestDeriveMetrics:
    def test_empty_trace(self):
        derived = derive_metrics([])
        assert derived.queries_issued == 0
        assert derived.successful_ratio == 0.0
        assert math.isnan(derived.mean_access_delay)
        assert derived.caching_overhead == 0.0

    def test_counts_distinct_query_ids_not_delivery_events(self):
        """Two NCLs answering the same query add two delivery events but
        at most one satisfied query — the satellite-1 regression."""
        events = [
            _ev(0.0, TraceEventKind.QUERY_CREATED, node=1, query_id=7, time_constraint=100.0),
            _ev(10.0, TraceEventKind.RESPONSE_DELIVERED, node=1, query_id=7),
            _ev(10.0, TraceEventKind.QUERY_SATISFIED, node=1, query_id=7, created_at=0.0),
            # the second NCL's copy arrives later
            _ev(20.0, TraceEventKind.RESPONSE_DELIVERED, node=1, query_id=7),
            _ev(20.0, TraceEventKind.QUERY_SATISFIED, node=1, query_id=7, created_at=0.0),
        ]
        derived = derive_metrics(events)
        assert derived.queries_issued == 1
        assert derived.queries_satisfied == 1
        assert derived.delivery_events == 2
        assert derived.successful_ratio == 1.0
        assert derived.mean_access_delay == 10.0  # first delivery only

    def test_delay_uses_created_at_attr(self):
        events = [
            _ev(5.0, TraceEventKind.QUERY_CREATED, query_id=1, time_constraint=100.0),
            _ev(5.0, TraceEventKind.QUERY_CREATED, query_id=2, time_constraint=100.0),
            _ev(15.0, TraceEventKind.QUERY_SATISFIED, query_id=1, created_at=5.0),
            _ev(45.0, TraceEventKind.QUERY_SATISFIED, query_id=2, created_at=5.0),
        ]
        derived = derive_metrics(events)
        assert derived.mean_access_delay == 25.0
        assert derived.successful_ratio == 1.0

    def test_overhead_skips_samples_with_no_live_items(self):
        events = [
            _ev(0.0, TraceEventKind.SAMPLE, cached_copies=10, live_items=5),
            _ev(1.0, TraceEventKind.SAMPLE, cached_copies=0, live_items=0),
            _ev(2.0, TraceEventKind.SAMPLE, cached_copies=20, live_items=5),
        ]
        assert derive_metrics(events).caching_overhead == 3.0

    def test_data_and_response_counters(self):
        events = [
            _ev(0.0, TraceEventKind.DATA_GENERATED, node=0, data_id=1),
            _ev(0.0, TraceEventKind.DATA_GENERATED, node=2, data_id=2),
            _ev(1.0, TraceEventKind.RESPONSE_EMITTED, node=3, query_id=1),
        ]
        derived = derive_metrics(events)
        assert derived.data_generated == 2
        assert derived.responses_emitted == 1


class TestAuditQueries:
    def _lifecycle(self):
        return [
            _ev(0.0, TraceEventKind.QUERY_CREATED, node=1, data_id=9, query_id=7,
                time_constraint=50.0),
            _ev(1.0, TraceEventKind.QUERY_OBSERVED, node=2, query_id=7),
            _ev(1.0, TraceEventKind.QUERY_OBSERVED, node=3, query_id=7),
            _ev(2.0, TraceEventKind.RESPONSE_DECIDED, node=2, query_id=7,
                respond=True, probability=0.6, strategy="sigmoid"),
            _ev(2.0, TraceEventKind.RESPONSE_EMITTED, node=2, query_id=7),
            _ev(3.0, TraceEventKind.RESPONSE_FORWARDED, node=4, query_id=7),
            _ev(5.0, TraceEventKind.RESPONSE_DELIVERED, node=1, query_id=7),
            _ev(5.0, TraceEventKind.QUERY_SATISFIED, node=1, query_id=7, created_at=0.0),
        ]

    def test_full_lifecycle_audit(self):
        audit = audit_queries(self._lifecycle())[7]
        assert audit.requester == 1
        assert audit.data_id == 9
        assert audit.created_at == 0.0
        assert audit.expires_at == 50.0
        assert audit.observed_by == [2, 3]
        assert audit.decisions == 1
        assert audit.responses_emitted == 1
        assert audit.forwards == 1
        assert audit.deliveries == 1
        assert audit.satisfied_at == 5.0
        assert audit.delay == 5.0
        assert audit.outcome(trace_end=5.0) == "satisfied"

    def test_outcomes(self):
        events = [
            _ev(0.0, TraceEventKind.QUERY_CREATED, node=1, query_id=1, time_constraint=10.0),
            _ev(0.0, TraceEventKind.QUERY_CREATED, node=2, query_id=2, time_constraint=999.0),
        ]
        audits = audit_queries(events)
        assert audits[1].outcome(trace_end=100.0) == "expired"
        assert audits[2].outcome(trace_end=100.0) == "pending"

    def test_events_without_query_id_are_skipped(self):
        events = [_ev(0.0, TraceEventKind.DATA_GENERATED, node=0, data_id=1)]
        assert audit_queries(events) == {}


class TestRenderAuditReport:
    def _events(self):
        return [
            _ev(0.0, TraceEventKind.QUERY_CREATED, node=1, data_id=9, query_id=1,
                time_constraint=50.0),
            _ev(5.0, TraceEventKind.QUERY_SATISFIED, node=1, query_id=1, created_at=0.0),
            _ev(0.0, TraceEventKind.QUERY_CREATED, node=2, data_id=9, query_id=2,
                time_constraint=3.0),
            _ev(0.0, TraceEventKind.QUERY_CREATED, node=3, data_id=9, query_id=3,
                time_constraint=3.0),
        ]

    def test_report_headline_and_queries(self):
        report = render_audit_report(self._events())
        assert "3 queries" in report
        assert "query 1 [satisfied]" in report
        assert "query 2 [expired]" in report

    def test_only_filters_outcomes(self):
        report = render_audit_report(self._events(), only="satisfied")
        assert "query 1 [satisfied]" in report
        assert "query 2" not in report

    def test_limit_counts_only_matching_queries(self):
        report = render_audit_report(self._events(), limit=1, only="expired")
        assert "query 2 [expired]" in report
        assert "(1 more queries)" in report  # query 3, not the satisfied one


class TestTruncatedTraces:
    """A trace cut off mid-run (crash, disk-full, partial download) must
    still derive and render without arithmetic errors."""

    def test_empty_trace_renders(self):
        report = render_audit_report([])
        assert "0 events" in report
        assert "ratio=0.0000" in report
        assert "delay=n/a" in report

    def test_satisfied_without_created(self):
        # The QUERY_CREATED event fell before the truncation point:
        # satisfaction still counts, delay falls back to zero (the
        # created_at attr travels on the satisfaction event itself).
        events = [_ev(9.0, TraceEventKind.QUERY_SATISFIED, node=1, query_id=4)]
        derived = derive_metrics(events)
        assert derived.queries_issued == 0
        assert derived.queries_satisfied == 1
        assert derived.successful_ratio == 0.0  # no issued count to divide by
        assert derived.mean_access_delay == 0.0

    def test_audit_of_satisfied_without_created_has_no_delay(self):
        events = [_ev(9.0, TraceEventKind.QUERY_SATISFIED, node=1, query_id=4)]
        audit = audit_queries(events)[4]
        assert audit.satisfied_at == 9.0
        assert audit.created_at is None
        assert audit.delay is None
        assert audit.outcome(trace_end=100.0) == "satisfied"

    def test_created_without_resolution_stays_pending(self):
        events = [
            _ev(0.0, TraceEventKind.QUERY_CREATED, node=1, data_id=2, query_id=1,
                time_constraint=500.0),
            _ev(1.0, TraceEventKind.QUERY_OBSERVED, node=3, query_id=1),
        ]
        derived = derive_metrics(events)
        assert derived.queries_issued == 1
        assert derived.queries_satisfied == 0
        assert math.isnan(derived.mean_access_delay)
        report = render_audit_report(events)
        assert "query 1 [pending]" in report

    def test_orphan_response_events_only(self):
        events = [
            _ev(3.0, TraceEventKind.RESPONSE_FORWARDED, node=5, query_id=7),
            _ev(4.0, TraceEventKind.RESPONSE_DELIVERED, node=1, query_id=7),
        ]
        derived = derive_metrics(events)
        assert derived.delivery_events == 1
        assert derived.queries_satisfied == 0
        audit = audit_queries(events)[7]
        assert audit.forwards == 1 and audit.deliveries == 1
        assert "query 7 [pending]" in render_audit_report(events)
