"""``repro diagnose``: orchestration, rendering, JSON, CLI exit codes.

The CLI contract: exit 0 on a healthy run, 1 under ``--strict`` when any
consistency or fidelity warning fired, 2 on unusable inputs (missing
files, unknown drill-down ids).  A heavy-tailed (Pareto inter-contact)
run must trip the strict gate at default thresholds; the default
synthetic run must not.
"""

import json

import numpy as np
import pytest

from repro.__main__ import main
from repro.caching import IntentionalCaching, IntentionalConfig
from repro.obs import MemoryRecorder, run_diagnosis
from repro.obs.diagnose import diagnosis_to_dict, render_diagnosis
from repro.sim.simulator import Simulator, SimulatorConfig
from repro.traces.contact import Contact, ContactTrace
from repro.traces.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.units import DAY, HOUR, MEGABIT
from repro.workload.config import WorkloadConfig

FAST_TRACE = ["--node-factor", "0.3", "--time-factor", "0.08"]


@pytest.fixture(scope="module")
def synthetic_run():
    trace = generate_synthetic_trace(
        SyntheticTraceConfig(
            name="diagnose-acceptance",
            num_nodes=12,
            duration=4 * DAY,
            total_contacts=2500,
            granularity=60.0,
            seed=6,
        )
    )
    workload = WorkloadConfig(
        mean_data_lifetime=12 * HOUR, mean_data_size=30 * MEGABIT
    )
    recorder = MemoryRecorder()
    Simulator(
        trace,
        IntentionalCaching(IntentionalConfig(num_ncls=2, ncl_time_budget=2 * HOUR)),
        workload,
        SimulatorConfig(seed=3),
        recorder=recorder,
    ).run()
    return trace, recorder.events


def _pareto_trace(seed=42, num_nodes=8, contacts_per_pair=60, scale=600.0):
    rng = np.random.default_rng(seed)
    contacts = []
    for a in range(num_nodes):
        for b in range(a + 1, num_nodes):
            t = float(rng.uniform(0.0, scale))
            for _ in range(contacts_per_pair):
                t += scale * (rng.pareto(1.2) + 0.05)
                contacts.append(Contact(start=t, end=t + 30.0, node_a=a, node_b=b))
    return ContactTrace(contacts, num_nodes=num_nodes, name="pareto")


class TestRunDiagnosis:
    def test_healthy_run_has_no_warnings(self, synthetic_run):
        trace, events = synthetic_run
        diagnosis = run_diagnosis(events, contact_trace=trace)
        assert diagnosis.consistency == []
        assert diagnosis.warnings == []
        assert diagnosis.num_events == len(events)
        assert diagnosis.summary["queries"] > 0

    def test_heavy_tailed_run_warns_at_default_thresholds(self):
        """Acceptance: a run over Pareto inter-contact gaps — decisively
        non-exponential mobility — trips the fidelity gate that the
        Poisson synthetic run clears, with identical thresholds."""
        trace = _pareto_trace()
        workload = WorkloadConfig(
            mean_data_lifetime=trace.duration * 0.2,
            mean_data_size=30 * MEGABIT,
        )
        recorder = MemoryRecorder()
        Simulator(
            trace,
            IntentionalCaching(
                IntentionalConfig(num_ncls=2, ncl_time_budget=2 * HOUR)
            ),
            workload,
            SimulatorConfig(seed=3),
            recorder=recorder,
        ).run()
        diagnosis = run_diagnosis(recorder.events, contact_trace=trace)
        assert diagnosis.consistency == []  # chains still reconcile
        assert any("inter-contact" in w for w in diagnosis.warnings)

    def test_render_covers_every_section(self, synthetic_run):
        trace, events = synthetic_run
        diagnosis = run_diagnosis(
            events, contact_trace=trace, provenance={"config_hash": "cafe" * 8}
        )
        text = render_diagnosis(diagnosis)
        assert text.startswith("# Run diagnosis")
        assert "_config `cafecafecafe`_" in text
        assert "## Causal chains" in text
        assert "- OK: causal chains reproduce the derived metrics" in text
        assert "inter-contact:" in text
        assert "delivery calibration" in text
        assert "response calibration" in text
        assert "NCL load" in text
        assert "## Warnings" in text and "- none" in text
        embedded = render_diagnosis(diagnosis, level=2)
        assert embedded.startswith("## Run diagnosis")
        assert "### Warnings" in embedded

    def test_to_dict_round_trips_through_json(self, synthetic_run):
        trace, events = synthetic_run
        diagnosis = run_diagnosis(events, contact_trace=trace)
        record = json.loads(json.dumps(diagnosis_to_dict(diagnosis)))
        assert record["consistency"]["ok"] is True
        assert record["num_events"] == len(events)
        assert record["fidelity"]["delivery"]["samples"] > 0
        assert record["fidelity"]["thresholds"]["max_median_ks"] == 0.25
        assert record["warnings"] == []


class TestDiagnoseCLI:
    def _simulate(self, out_dir):
        return main(
            [
                "simulate",
                "--trace",
                "infocom05",
                *FAST_TRACE,
                "--lifetime-hours",
                "4",
                "--out",
                str(out_dir),
            ]
        )

    @pytest.fixture(scope="class")
    def run_dir(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("diagnose") / "run"
        assert self._simulate(path) == 0
        return path

    def test_diagnose_run_directory(self, capsys, run_dir):
        assert main(["diagnose", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "# Run diagnosis" in out
        assert "_config `" in out  # provenance stamp from the manifest
        assert "- OK: causal chains reproduce the derived metrics" in out
        # the manifest rebuilt the contact trace: mobility sections live
        assert "inter-contact:" in out and "pairs fitted" in out

    def test_diagnose_bare_trace_degrades(self, capsys, run_dir):
        assert main(["diagnose", str(run_dir / "trace.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "skipped (no contact trace available)" in out

    def test_strict_passes_on_healthy_run(self, capsys, run_dir):
        assert main(["diagnose", str(run_dir), "--strict"]) == 0

    def test_strict_fails_when_gates_bite(self, capsys, run_dir):
        code = main(
            [
                "diagnose",
                str(run_dir),
                "--strict",
                "--max-median-ks",
                "0.001",
                "--min-samples",
                "1",
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "strict mode:" in captured.err
        assert "WARN:" in captured.out

    def test_json_output(self, capsys, run_dir, tmp_path):
        path = tmp_path / "diag.json"
        assert main(["diagnose", str(run_dir), "--json", str(path)]) == 0
        record = json.load(open(path))
        assert record["consistency"]["ok"] is True
        assert record["provenance"]["config_hash"]

    @staticmethod
    def _first_ids(run_dir):
        from repro.obs import read_events

        query_id = data_id = None
        for event in read_events(str(run_dir / "trace.jsonl")):
            if query_id is None and event.query_id is not None:
                query_id = event.query_id
            if data_id is None and event.data_id is not None:
                data_id = event.data_id
            if query_id is not None and data_id is not None:
                break
        assert query_id is not None and data_id is not None
        return query_id, data_id

    def test_query_drilldown(self, capsys, run_dir):
        query_id, _ = self._first_ids(run_dir)
        assert main(["diagnose", str(run_dir), "--query-id", str(query_id)]) == 0
        out = capsys.readouterr().out
        assert out.startswith(f"query {query_id} ")

    def test_data_drilldown_via_trace_command(self, capsys, run_dir):
        """Satellite 1: `repro trace --data-id` shares the renderer."""
        query_id, data_id = self._first_ids(run_dir)
        trace_path = str(run_dir / "trace.jsonl")
        assert main(["trace", trace_path, "--data-id", str(data_id)]) == 0
        out = capsys.readouterr().out
        assert out.startswith(f"data {data_id} ")
        assert main(["trace", trace_path, "--query-id", str(query_id)]) == 0
        assert capsys.readouterr().out.startswith(f"query {query_id} ")

    def test_unknown_drilldown_id_exits_2(self, capsys, run_dir):
        assert main(["diagnose", str(run_dir), "--query-id", "999999"]) == 2
        assert "not in trace" in capsys.readouterr().err

    def test_missing_path_exits_2(self, capsys, tmp_path):
        assert main(["diagnose", str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_directory_without_trace_exits_2(self, capsys, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["diagnose", str(empty)]) == 2
        assert "no trace.jsonl" in capsys.readouterr().err

    def test_report_embeds_diagnosis(self, capsys, run_dir):
        assert main(["report", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "## Run diagnosis" in out
        assert "### Model fidelity" in out
