"""The kernel-backend AST lint: clean tree, plus synthetic violations.

``scripts/check_kernel_backends.py`` enforces the backend contract —
every registered kernel keeps a ``_reference_*`` oracle in its module,
an equivalence test naming that oracle, and (unless derived via another
kernel) a numba override.  Running it under pytest keeps the contract
in tier-1 instead of relying on a manual script invocation.
"""

import importlib.util
import os

import pytest

_SCRIPT = os.path.join(
    os.path.dirname(__file__),
    os.pardir,
    os.pardir,
    "scripts",
    "check_kernel_backends.py",
)


@pytest.fixture(scope="module")
def lint():
    spec = importlib.util.spec_from_file_location("check_kernel_backends", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_source_tree_is_clean(lint):
    violations = lint.collect_violations()
    assert violations == [], "\n".join(str(v) for v in violations)


def _specs(lint, kernels, overrides, defined, corpus):
    return lint.check_specs(kernels, overrides, defined, corpus)


def test_flags_misnamed_reference(lint):
    kernels = {"k": {"module": "m", "reference": "reference_k"}}
    violations = _specs(lint, kernels, {"k": "f"}, {"m": {"reference_k"}}, "reference_k")
    assert any("_reference_*" in v.message for v in violations)


def test_flags_oracle_missing_from_module(lint):
    kernels = {"k": {"module": "m", "reference": "_reference_k"}}
    violations = _specs(lint, kernels, {"k": "f"}, {"m": set()}, "_reference_k")
    assert any("not defined" in v.message for v in violations)


def test_flags_oracle_unnamed_by_tests(lint):
    kernels = {"k": {"module": "m", "reference": "_reference_k"}}
    violations = _specs(lint, kernels, {"k": "f"}, {"m": {"_reference_k"}}, "")
    assert any("no test names the oracle" in v.message for v in violations)


def test_flags_override_for_unknown_kernel(lint):
    kernels = {"k": {"module": "m", "reference": "_reference_k"}}
    violations = _specs(
        lint, kernels, {"k": "f", "ghost": "g"}, {"m": {"_reference_k"}}, "_reference_k"
    )
    assert any(v.kernel == "ghost" for v in violations)


def test_flags_uncovered_kernel(lint):
    kernels = {"k": {"module": "m", "reference": "_reference_k"}}
    violations = _specs(lint, kernels, {}, {"m": {"_reference_k"}}, "_reference_k")
    assert any("no numba override" in v.message for v in violations)


def test_derived_kernels_need_no_override(lint):
    kernels = {
        "base": {"module": "m", "reference": "_reference_base"},
        "derived": {"module": "m", "reference": "_reference_derived", "via": "base"},
    }
    defined = {"m": {"_reference_base", "_reference_derived"}}
    corpus = "_reference_base _reference_derived"
    violations = _specs(lint, kernels, {"base": "f"}, defined, corpus)
    assert violations == []


def test_flags_dangling_via_target(lint):
    kernels = {
        "derived": {"module": "m", "reference": "_reference_d", "via": "ghost"},
    }
    violations = _specs(lint, kernels, {}, {"m": {"_reference_d"}}, "_reference_d")
    assert any("via target" in v.message for v in violations)


def test_flags_unreadable_overrides(lint):
    kernels = {"k": {"module": "m", "reference": "_reference_k"}}
    violations = _specs(lint, kernels, None, {"m": {"_reference_k"}}, "_reference_k")
    assert any("literal dict" in v.message for v in violations)


def test_flags_sparse_kernel_without_dense_oracle_doc(lint):
    kernels = {
        "k": {"module": "m", "reference": "_reference_k", "sparse": True},
    }
    docs = {"_reference_k": "Sparse-vs-sparse check of the k kernel."}
    violations = lint.check_specs(
        kernels, {"k": "f"}, {"m": {"_reference_k"}}, "_reference_k", docs
    )
    assert any("dense reference" in v.message for v in violations)


def test_sparse_kernel_with_dense_oracle_doc_is_clean(lint):
    kernels = {
        "k": {"module": "m", "reference": "_reference_k", "sparse": True},
    }
    docs = {"_reference_k": "Dense pure-python oracle for the k kernel."}
    violations = lint.check_specs(
        kernels, {"k": "f"}, {"m": {"_reference_k"}}, "_reference_k", docs
    )
    assert violations == []


def test_sparse_rule_skipped_without_docstrings(lint):
    # oracle_docs=None (the synthetic default) must not fire the rule —
    # filesystem-free callers opt in by passing the docstring map.
    kernels = {
        "k": {"module": "m", "reference": "_reference_k", "sparse": True},
    }
    violations = _specs(lint, kernels, {"k": "f"}, {"m": {"_reference_k"}}, "_reference_k")
    assert violations == []


def test_script_main_exits_zero(lint, capsys):
    assert lint.main() == 0
    out = capsys.readouterr().out
    assert "all registered kernels" in out
