"""Unit tests of the kernel-backend registry (selection, degradation)."""

import pytest

from repro import kernels
from repro.kernels import registry


@pytest.fixture(autouse=True)
def _clean_backend_state(monkeypatch):
    """Isolate each test from ambient backend selection."""
    monkeypatch.delenv(registry.ENV_VAR, raising=False)
    kernels.set_backend(None)
    yield
    kernels.set_backend(None)


def test_default_backend_is_python():
    assert kernels.current_backend_name() == "python"
    # The python backend is the absence of overrides: dispatch sites
    # fall through to the existing numpy/scipy implementations.
    for name in kernels.KERNELS:
        assert kernels.kernel_override(name) is None


def test_python_always_available():
    names = kernels.available_backend_names()
    assert names[0] == "python"
    assert set(names) <= {"python", "numba"}


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv(registry.ENV_VAR, "numba")
    kernels.set_backend(None)  # re-resolve against the new environment
    status = kernels.backend_status()
    assert status["requested"] == "numba"
    if "numba" in kernels.available_backend_names():
        assert status["active"] == "numba"
    else:
        # Optional extra missing: silent degradation to the oracle.
        assert status["active"] == "python"


def test_explicit_request_beats_env(monkeypatch):
    monkeypatch.setenv(registry.ENV_VAR, "numba")
    active = kernels.set_backend("python")
    assert active == "python"
    assert kernels.current_backend_name() == "python"


def test_unknown_backend_falls_back_to_python():
    assert kernels.set_backend("fortran") == "python"


def test_use_backend_restores_previous():
    kernels.set_backend("python")
    with kernels.use_backend("numba"):
        assert kernels.current_backend_name() in ("numba", "python")
    assert kernels.backend_status()["requested"] == "python"


def test_backend_status_shape():
    status = kernels.backend_status()
    assert set(status) == {"requested", "active", "available"}
    assert status["active"] in status["available"]


def test_warmup_is_noop_on_python():
    kernels.set_backend("python")
    kernels.warmup()  # must not raise (and must not import numba)


def test_kernels_table_is_well_formed():
    for name, spec in kernels.KERNELS.items():
        assert spec["module"].startswith("repro.")
        assert spec["reference"].startswith("_reference_")
        assert spec["doc"]
        if "via" in spec:
            assert spec["via"] in kernels.KERNELS
