"""Unit tests for the intentional NCL caching scheme (paper Sec. V)."""

import pytest

from repro.caching.intentional import IntentionalCaching, IntentionalConfig
from repro.errors import ConfigurationError
from repro.sim.bundles import PushBundle, QueryBundle, ResponseBundle
from repro.units import HOUR, MEGABIT
from tests.caching.conftest import SchemeHarness
from tests.conftest import make_item, make_query


def make_scheme(k=1, response="always", **kwargs):
    return IntentionalCaching(
        IntentionalConfig(
            num_ncls=k,
            ncl_time_budget=2 * HOUR,
            response_strategy=response,
            **kwargs,
        )
    )


class TestConfig:
    def test_defaults_valid(self):
        IntentionalConfig()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"num_ncls": 0},
            {"ncl_time_budget": 0.0},
            {"response_strategy": "bogus"},
            {"fresh_exemption_fraction": 1.5},
        ],
    )
    def test_invalid_configs(self, overrides):
        with pytest.raises(ConfigurationError):
            IntentionalConfig(**overrides)


class TestNCLSelection:
    def test_hub_selected_as_central(self, hub_spoke_graph):
        harness = SchemeHarness(make_scheme(k=1), hub_spoke_graph)
        assert harness.scheme.selection.central_nodes == (0,)

    def test_scheme_unusable_before_warmup(self, hub_spoke_graph):
        scheme = make_scheme()
        with pytest.raises(RuntimeError):
            scheme._require_selection()


class TestPush:
    def test_data_generation_emits_one_push_per_ncl(self, hub_spoke_graph):
        harness = SchemeHarness(make_scheme(k=2), hub_spoke_graph)
        item = make_item(data_id=1, source=1, size=10 * MEGABIT)
        harness.add_data(item)
        pushes = [b for b in harness.nodes[1].bundles if isinstance(b, PushBundle)]
        assert len(pushes) == 2
        assert {b.target_central for b in pushes} == set(
            harness.scheme.selection.central_nodes
        )

    def test_push_completes_on_direct_contact_with_central(self, hub_spoke_graph):
        harness = SchemeHarness(make_scheme(k=1), hub_spoke_graph)
        item = make_item(data_id=1, source=1, size=10 * MEGABIT)
        harness.add_data(item)
        harness.contact(1, 0, now=10.0)
        assert item.data_id in harness.nodes[0].buffer
        # source keeps its origin copy
        assert harness.nodes[1].find_data(1, now=10.0) is item

    def test_push_consumes_budget(self, hub_spoke_graph):
        harness = SchemeHarness(make_scheme(k=1), hub_spoke_graph)
        item = make_item(data_id=1, source=1, size=10 * MEGABIT)
        harness.add_data(item)
        budget = harness.contact(1, 0, now=10.0)
        assert budget.consumed >= 10 * MEGABIT

    def test_push_waits_when_budget_too_small(self, hub_spoke_graph):
        harness = SchemeHarness(make_scheme(k=1), hub_spoke_graph)
        item = make_item(data_id=1, source=1, size=10 * MEGABIT)
        harness.add_data(item)
        harness.contact(1, 0, now=10.0, budget_bits=100)  # can't afford
        assert item.data_id not in harness.nodes[0].buffer
        # bundle still carried; a later richer contact completes the push
        harness.contact(1, 0, now=20.0)
        assert item.data_id in harness.nodes[0].buffer

    def test_source_waits_when_central_full(self, hub_spoke_graph):
        harness = SchemeHarness(
            make_scheme(k=1), hub_spoke_graph, buffer_capacity=15 * MEGABIT
        )
        filler = make_item(data_id=99, source=0, size=12 * MEGABIT)
        harness.nodes[0].buffer.put(filler)
        item = make_item(data_id=1, source=1, size=10 * MEGABIT)
        harness.add_data(item)
        harness.contact(1, 0, now=10.0)
        # push could not place the copy, but the bundle survives at the source
        pushes = [b for b in harness.nodes[1].bundles if isinstance(b, PushBundle)]
        assert len(pushes) == 1

    def test_spill_to_ncl_member_when_central_full(self, hub_spoke_graph):
        harness = SchemeHarness(
            make_scheme(k=1), hub_spoke_graph, buffer_capacity=15 * MEGABIT
        )
        # central (node 0) is full
        harness.nodes[0].buffer.put(make_item(data_id=99, source=0, size=12 * MEGABIT))
        item = make_item(data_id=1, source=1, size=10 * MEGABIT)
        harness.add_data(item)
        harness.contact(1, 0, now=10.0)  # central full -> bundle spills
        pushes = [b for b in harness.nodes[1].bundles if isinstance(b, PushBundle)]
        assert pushes and pushes[0].spilling
        # meeting another NCL member with room places the copy there
        harness.contact(1, 2, now=20.0)
        assert item.data_id in harness.nodes[2].buffer

    def test_relay_handover_removes_temporal_copy(self, hub_spoke_graph):
        harness = SchemeHarness(make_scheme(k=1), hub_spoke_graph)
        # craft: leaf 4 generates; gradient goes 4 -> 5 -> 0
        item = make_item(data_id=1, source=4, size=10 * MEGABIT)
        harness.add_data(item)
        harness.contact(4, 5, now=10.0)
        assert item.data_id in harness.nodes[5].buffer
        harness.contact(5, 0, now=20.0)
        assert item.data_id in harness.nodes[0].buffer
        assert item.data_id not in harness.nodes[5].buffer  # temporal copy moved

    def test_shared_copy_not_stolen_by_other_push(self, hub_spoke_graph):
        harness = SchemeHarness(make_scheme(k=2), hub_spoke_graph)
        # centrals are 0 (hub) and 5 (second-tier)
        centrals = harness.scheme.selection.central_nodes
        assert set(centrals) == {0, 5}
        item = make_item(data_id=1, source=4, size=10 * MEGABIT)
        harness.add_data(item)
        harness.contact(4, 5, now=10.0)  # push to 5 completes; 0-push relays via 5
        assert item.data_id in harness.nodes[5].buffer
        harness.contact(5, 0, now=20.0)  # 0-push hands a NEW copy to 0
        assert item.data_id in harness.nodes[0].buffer
        assert item.data_id in harness.nodes[5].buffer  # 5's own copy stays


class TestPull:
    def test_query_multicast_one_bundle_per_ncl(self, hub_spoke_graph):
        harness = SchemeHarness(make_scheme(k=2), hub_spoke_graph)
        query = make_query(query_id=1, requester=3, data_id=9)
        harness.add_query(query)
        bundles = [b for b in harness.nodes[3].bundles if isinstance(b, QueryBundle)]
        assert len(bundles) == 2

    def test_central_answers_from_cache(self, hub_spoke_graph):
        harness = SchemeHarness(make_scheme(k=1), hub_spoke_graph)
        item = make_item(data_id=1, source=1, size=10 * MEGABIT)
        harness.add_data(item)
        harness.contact(1, 0, now=10.0)  # cache at central
        query = make_query(query_id=1, requester=2, data_id=1, created_at=20.0)
        harness.add_query(query)
        harness.contact(2, 0, now=30.0)  # query reaches central, response emitted
        responses = [
            b for b in harness.nodes[0].bundles if isinstance(b, ResponseBundle)
        ]
        assert len(responses) == 1
        harness.contact(0, 2, now=40.0)  # response delivered on next meeting
        assert harness.metrics.is_satisfied(1)

    def test_query_history_recorded_along_path(self, hub_spoke_graph):
        harness = SchemeHarness(make_scheme(k=1), hub_spoke_graph)
        query = make_query(query_id=1, requester=2, data_id=7, created_at=0.0)
        harness.add_query(query)
        harness.contact(2, 0, now=5.0)
        assert harness.nodes[0].popularity.request_count(7) == 1

    def test_push_pull_conjunction(self, hub_spoke_graph):
        """Data arriving after the query still answers it (Sec. V)."""
        harness = SchemeHarness(make_scheme(k=1), hub_spoke_graph)
        query = make_query(
            query_id=1, requester=2, data_id=1, created_at=0.0, time_constraint=12 * HOUR
        )
        harness.add_query(query)
        harness.contact(2, 0, now=5.0)  # query waits at central
        item = make_item(data_id=1, source=1, size=10 * MEGABIT)
        harness.add_data(item, now=10.0)
        harness.contact(1, 0, now=20.0)  # push arrives -> response emitted
        responses = [
            b for b in harness.nodes[0].bundles if isinstance(b, ResponseBundle)
        ]
        assert len(responses) == 1

    def test_requester_with_data_satisfied_immediately(self, hub_spoke_graph):
        harness = SchemeHarness(make_scheme(k=1), hub_spoke_graph)
        item = make_item(data_id=1, source=2, size=10 * MEGABIT)
        harness.add_data(item)
        query = make_query(query_id=1, requester=2, data_id=1, created_at=1.0)
        harness.add_query(query)
        assert harness.metrics.is_satisfied(1)


class TestReplacement:
    def test_exchange_runs_between_caching_nodes(self, hub_spoke_graph):
        harness = SchemeHarness(make_scheme(k=1), hub_spoke_graph)
        a, b = harness.nodes[1], harness.nodes[2]
        old = make_item(data_id=1, source=1, size=10 * MEGABIT)
        hot = make_item(data_id=2, source=2, size=10 * MEGABIT)
        a.buffer.put(old)
        b.buffer.put(hot)
        # make both items non-fresh and known to the nodes
        for node in (a, b):
            node.popularity.record_request(1, 0.0)
            node.popularity.record_request(2, 0.0)
        harness.contact(1, 2, now=10.0)
        assert harness.metrics.finalize("x", 0).exchanges == 1

    def test_no_exchange_when_one_side_empty(self, hub_spoke_graph):
        harness = SchemeHarness(make_scheme(k=1), hub_spoke_graph)
        harness.nodes[1].buffer.put(make_item(data_id=1, source=1, size=10 * MEGABIT))
        harness.contact(1, 2, now=10.0)
        assert harness.metrics.finalize("x", 0).exchanges == 0

    def test_exchange_rolled_back_when_budget_too_small(self, hub_spoke_graph):
        harness = SchemeHarness(make_scheme(k=1), hub_spoke_graph)
        a, b = harness.nodes[1], harness.nodes[2]
        items = [
            make_item(data_id=1, source=1, size=10 * MEGABIT),
            make_item(data_id=2, source=2, size=10 * MEGABIT),
        ]
        a.buffer.put(items[0])
        b.buffer.put(items[1])
        ids_before = (set(a.buffer.data_ids()), set(b.buffer.data_ids()))
        harness.contact(1, 2, now=10.0, budget_bits=100)
        assert (set(a.buffer.data_ids()), set(b.buffer.data_ids())) == ids_before


class TestAdaptiveTimeBudget:
    def test_none_budget_triggers_calibration(self, hub_spoke_graph):
        scheme = IntentionalCaching(
            IntentionalConfig(num_ncls=1, ncl_time_budget=None, response_strategy="always")
        )
        harness = SchemeHarness(scheme, hub_spoke_graph)
        assert scheme.ncl_time_budget is not None
        assert scheme.ncl_time_budget > 0
        assert scheme.selection is not None

    def test_explicit_budget_is_used_verbatim(self, hub_spoke_graph):
        scheme = make_scheme(k=1)
        SchemeHarness(scheme, hub_spoke_graph)
        assert scheme.ncl_time_budget == 2 * HOUR
