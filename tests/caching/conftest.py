"""Harness for scheme-level unit tests.

Builds a scheme attached to hand-crafted nodes and a fixed contact graph
so individual protocol steps (push hops, query forwarding, responses,
exchanges) can be driven one contact at a time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
import pytest

from repro.caching.base import CachingScheme, SchemeServices
from repro.core.data import DataItem, Query
from repro.graph.contact_graph import ContactGraph
from repro.metrics.collector import MetricsCollector
from repro.sim.network import TransferBudget
from repro.sim.node import Node
from repro.units import HOUR, MEGABIT


class SchemeHarness:
    """Attach a scheme to N nodes over a fixed contact graph."""

    def __init__(
        self,
        scheme: CachingScheme,
        graph: ContactGraph,
        buffer_capacity: int = 400 * MEGABIT,
        response_horizon: float = 12 * HOUR,
        seed: int = 0,
    ):
        self.scheme = scheme
        self.graph = graph
        self.nodes = [Node(i, buffer_capacity) for i in range(graph.num_nodes)]
        self.metrics = MetricsCollector()
        self.delivered: List[Tuple[Query, DataItem, float]] = []
        self.catalog: Dict[int, DataItem] = {}

        def deliver(query: Query, data: DataItem, now: float) -> None:
            first = self.metrics.on_query_satisfied(query, now)
            self.delivered.append((query, data, now))
            if first:
                scheme.on_data_delivered(self.nodes[query.requester], data, query, now)

        services = SchemeServices(
            nodes=self.nodes,
            rng=np.random.default_rng(seed),
            metrics=self.metrics,
            deliver=deliver,
            lookup_data=lambda data_id: self.catalog.get(data_id),
            response_horizon=response_horizon,
        )
        scheme.attach(services)
        scheme.on_graph_updated(graph, now=0.0)
        scheme.on_warmup_complete(now=0.0)

    def add_data(self, item: DataItem, now: float = 0.0) -> None:
        self.catalog[item.data_id] = item
        node = self.nodes[item.source]
        node.generate_data(item)
        self.metrics.on_data_generated(item)
        self.scheme.on_data_generated(node, item, now)

    def add_query(self, query: Query, now: Optional[float] = None) -> None:
        self.metrics.on_query_created(query)
        self.scheme.on_query_generated(
            self.nodes[query.requester], query, now if now is not None else query.created_at
        )

    def contact(self, a: int, b: int, now: float, budget_bits: int = 10**12) -> TransferBudget:
        budget = TransferBudget(budget_bits)
        self.scheme.on_contact(self.nodes[a], self.nodes[b], now, budget)
        return budget


@pytest.fixture
def hub_spoke_graph() -> ContactGraph:
    """Node 0 is a strong hub; 1-4 are leaves; node 5 is a second-tier
    relay between leaf 4 and the hub."""
    graph = ContactGraph(6)
    for leaf in (1, 2, 3):
        graph.set_rate(0, leaf, 2.0 / HOUR)
    graph.set_rate(0, 5, 4.0 / HOUR)
    graph.set_rate(5, 4, 2.0 / HOUR)
    return graph
