"""Unit tests for the four incidental-caching baselines (Sec. VI)."""

import pytest

from repro.caching.bundlecache import BundleCache
from repro.caching.cachedata import CacheData
from repro.caching.nocache import NoCache
from repro.caching.randomcache import RandomCache
from repro.errors import ConfigurationError
from repro.sim.bundles import QueryBundle, ResponseBundle
from repro.units import HOUR, MEGABIT
from tests.caching.conftest import SchemeHarness
from tests.conftest import make_item, make_query


class TestNoCache:
    def test_source_answers_query(self, hub_spoke_graph):
        harness = SchemeHarness(NoCache(), hub_spoke_graph)
        item = make_item(data_id=1, source=0, size=10 * MEGABIT)
        harness.add_data(item)
        query = make_query(query_id=1, requester=2, data_id=1, created_at=0.0)
        harness.add_query(query)
        harness.contact(2, 0, now=5.0)  # query reaches the source
        responses = [
            b for b in harness.nodes[0].bundles if isinstance(b, ResponseBundle)
        ]
        assert len(responses) == 1
        harness.contact(0, 2, now=10.0)
        assert harness.metrics.is_satisfied(1)

    def test_nothing_is_ever_cached(self, hub_spoke_graph):
        harness = SchemeHarness(NoCache(), hub_spoke_graph)
        item = make_item(data_id=1, source=0, size=10 * MEGABIT)
        harness.add_data(item)
        query = make_query(query_id=1, requester=2, data_id=1, created_at=0.0)
        harness.add_query(query)
        harness.contact(2, 0, now=5.0)
        harness.contact(0, 2, now=10.0)
        assert all(len(node.buffer) == 0 for node in harness.nodes)

    def test_query_for_unknown_data_is_dropped(self, hub_spoke_graph):
        harness = SchemeHarness(NoCache(), hub_spoke_graph)
        query = make_query(query_id=1, requester=2, data_id=42, created_at=0.0)
        harness.add_query(query)
        assert not harness.nodes[2].bundles  # no catalogue entry -> no bundle


class TestRandomCache:
    def test_requester_caches_received_data(self, hub_spoke_graph):
        harness = SchemeHarness(RandomCache(), hub_spoke_graph)
        item = make_item(data_id=1, source=0, size=10 * MEGABIT)
        harness.add_data(item)
        query = make_query(query_id=1, requester=2, data_id=1, created_at=0.0)
        harness.add_query(query)
        harness.contact(2, 0, now=5.0)
        harness.contact(0, 2, now=10.0)
        assert harness.metrics.is_satisfied(1)
        assert item.data_id in harness.nodes[2].buffer

    def test_cached_copy_answers_later_queries(self, hub_spoke_graph):
        harness = SchemeHarness(RandomCache(), hub_spoke_graph)
        item = make_item(data_id=1, source=0, size=10 * MEGABIT)
        harness.add_data(item)
        first = make_query(query_id=1, requester=2, data_id=1, created_at=0.0)
        harness.add_query(first)
        harness.contact(2, 0, now=5.0)
        harness.contact(0, 2, now=10.0)
        # a later query routed through node 2 is intercepted from cache
        second = make_query(query_id=2, requester=2, data_id=1, created_at=20.0)
        harness.add_query(second)
        assert harness.metrics.is_satisfied(2)  # requester holds it now


class TestCacheData:
    def test_relay_caches_popular_passby_data(self, hub_spoke_graph):
        harness = SchemeHarness(CacheData(popularity_threshold=2), hub_spoke_graph)
        relay = harness.nodes[0]
        item = make_item(data_id=1, source=4, size=10 * MEGABIT)
        harness.catalog[1] = item
        # the relay has observed two queries for the item
        relay.popularity.record_request(1, 0.0)
        relay.popularity.record_request(1, 1.0)
        bundle = ResponseBundle(
            created_at=0.0,
            expires_at=12 * HOUR,
            data=item,
            query=make_query(query_id=9, requester=2, data_id=1),
            responder=4,
        )
        harness.scheme.on_response_relayed(relay, bundle, now=2.0)
        assert item.data_id in relay.buffer

    def test_unpopular_passby_data_not_cached(self, hub_spoke_graph):
        harness = SchemeHarness(CacheData(popularity_threshold=2), hub_spoke_graph)
        relay = harness.nodes[0]
        item = make_item(data_id=1, source=4, size=10 * MEGABIT)
        relay.popularity.record_request(1, 0.0)  # only one sighting
        bundle = ResponseBundle(
            created_at=0.0,
            expires_at=12 * HOUR,
            data=item,
            query=make_query(query_id=9, requester=2, data_id=1),
            responder=4,
        )
        harness.scheme.on_response_relayed(relay, bundle, now=2.0)
        assert item.data_id not in relay.buffer

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            CacheData(popularity_threshold=0)


class TestBundleCache:
    def test_hub_relay_caches_passby_data(self, hub_spoke_graph):
        harness = SchemeHarness(BundleCache(), hub_spoke_graph)
        hub = harness.nodes[0]
        item = make_item(data_id=1, source=4, size=10 * MEGABIT)
        bundle = ResponseBundle(
            created_at=0.0,
            expires_at=12 * HOUR,
            data=item,
            query=make_query(query_id=9, requester=2, data_id=1),
            responder=4,
        )
        harness.scheme.on_response_relayed(hub, bundle, now=2.0)
        assert item.data_id in hub.buffer

    def test_peripheral_relay_does_not_cache(self, hub_spoke_graph):
        harness = SchemeHarness(BundleCache(connectivity_quantile=0.9), hub_spoke_graph)
        leaf = harness.nodes[1]
        item = make_item(data_id=1, source=4, size=10 * MEGABIT)
        bundle = ResponseBundle(
            created_at=0.0,
            expires_at=12 * HOUR,
            data=item,
            query=make_query(query_id=9, requester=2, data_id=1),
            responder=4,
        )
        harness.scheme.on_response_relayed(leaf, bundle, now=2.0)
        assert item.data_id not in leaf.buffer

    def test_quantile_validation(self):
        with pytest.raises(ConfigurationError):
            BundleCache(connectivity_quantile=0.0)


class TestSharedForwarding:
    def test_query_routes_toward_source_via_hub(self, hub_spoke_graph):
        """Query from leaf 1 to a source at leaf 4 climbs: 1 -> 0 -> 5 -> 4."""
        harness = SchemeHarness(NoCache(), hub_spoke_graph)
        item = make_item(data_id=1, source=4, size=10 * MEGABIT)
        harness.add_data(item)
        query = make_query(
            query_id=1, requester=1, data_id=1, created_at=0.0, time_constraint=12 * HOUR
        )
        harness.add_query(query)
        harness.contact(1, 0, now=1.0)
        assert any(isinstance(b, QueryBundle) for b in harness.nodes[0].bundles)
        harness.contact(0, 5, now=2.0)
        assert any(isinstance(b, QueryBundle) for b in harness.nodes[5].bundles)
        harness.contact(5, 4, now=3.0)
        # the source answered; response heads back
        assert any(isinstance(b, ResponseBundle) for b in harness.nodes[4].bundles)
        harness.contact(4, 5, now=4.0)
        harness.contact(5, 0, now=5.0)
        harness.contact(0, 1, now=6.0)
        assert harness.metrics.is_satisfied(1)


class TestRandomCacheEviction:
    def test_lru_cycling_under_small_buffer(self, hub_spoke_graph):
        """A requester with a tiny buffer keeps only its most recent data."""
        harness = SchemeHarness(
            RandomCache(), hub_spoke_graph, buffer_capacity=25 * MEGABIT
        )
        for i, (data_id, t0) in enumerate([(1, 0.0), (2, 100.0), (3, 200.0)]):
            item = make_item(data_id=data_id, source=0, size=10 * MEGABIT)
            harness.add_data(item)
            query = make_query(
                query_id=i, requester=2, data_id=data_id, created_at=t0
            )
            harness.add_query(query)
            harness.contact(2, 0, now=t0 + 1.0)
            harness.contact(0, 2, now=t0 + 2.0)
        buffer_ids = set(harness.nodes[2].buffer.data_ids())
        assert 3 in buffer_ids            # newest survives
        assert len(buffer_ids) <= 2       # capacity bound (25 Mb / 10 Mb)


class TestCacheDataThresholds:
    @pytest.mark.parametrize("threshold,cached", [(1, True), (3, False)])
    def test_threshold_gates_caching(self, hub_spoke_graph, threshold, cached):
        harness = SchemeHarness(
            CacheData(popularity_threshold=threshold), hub_spoke_graph
        )
        relay = harness.nodes[0]
        item = make_item(data_id=1, source=4, size=10 * MEGABIT)
        relay.popularity.record_request(1, 0.0)
        relay.popularity.record_request(1, 1.0)  # two observed requests
        bundle = ResponseBundle(
            created_at=0.0,
            expires_at=12 * HOUR,
            data=item,
            query=make_query(query_id=9, requester=2, data_id=1),
            responder=4,
        )
        harness.scheme.on_response_relayed(relay, bundle, now=2.0)
        assert (item.data_id in relay.buffer) is cached
