"""Edge-case tests for the intentional scheme's protocol machinery."""

import pytest

from repro.caching.intentional import IntentionalCaching, IntentionalConfig
from repro.sim.bundles import PushBundle, QueryBundle, ResponseBundle
from repro.units import HOUR, MEGABIT
from tests.caching.conftest import SchemeHarness
from tests.conftest import make_item, make_query


def make_scheme(k=1, response="always", **kwargs):
    return IntentionalCaching(
        IntentionalConfig(
            num_ncls=k,
            ncl_time_budget=2 * HOUR,
            response_strategy=response,
            **kwargs,
        )
    )


class TestOrphanedPushes:
    def test_push_dies_when_carrier_loses_data(self, hub_spoke_graph):
        harness = SchemeHarness(make_scheme(k=1), hub_spoke_graph)
        item = make_item(data_id=1, source=4, size=10 * MEGABIT)
        harness.add_data(item)
        harness.contact(4, 5, now=10.0)  # copy + bundle now at relay 5
        assert item.data_id in harness.nodes[5].buffer
        # replacement (simulated externally) moves the data away
        harness.nodes[5].buffer.remove(item.data_id)
        harness.contact(5, 0, now=20.0)
        # the push could not proceed and was dropped
        assert not any(
            isinstance(b, PushBundle) for b in harness.nodes[5].bundles
        )
        assert item.data_id not in harness.nodes[0].buffer

    def test_expired_push_dropped(self, hub_spoke_graph):
        harness = SchemeHarness(make_scheme(k=1), hub_spoke_graph)
        item = make_item(data_id=1, source=1, size=10 * MEGABIT, lifetime=100.0)
        harness.add_data(item)
        harness.contact(1, 0, now=200.0)  # item long expired
        assert item.data_id not in harness.nodes[0].buffer
        assert not any(isinstance(b, PushBundle) for b in harness.nodes[1].bundles)


class TestQueryBroadcast:
    def test_broadcast_replicates_to_ncl_members(self, hub_spoke_graph):
        harness = SchemeHarness(make_scheme(k=1), hub_spoke_graph)
        # all nodes belong to NCL 0 (single NCL)
        query = make_query(query_id=1, requester=3, data_id=9, created_at=0.0)
        harness.add_query(query)
        harness.contact(3, 0, now=5.0)   # reaches central -> broadcasting
        central_bundles = [
            b for b in harness.nodes[0].bundles if isinstance(b, QueryBundle)
        ]
        assert central_bundles and central_bundles[0].broadcasting
        harness.contact(0, 2, now=10.0)  # broadcast replica to member 2
        assert any(isinstance(b, QueryBundle) for b in harness.nodes[2].bundles)
        assert harness.nodes[2].popularity.request_count(9) == 1

    def test_broadcast_does_not_leave_the_ncl(self, hub_spoke_graph):
        harness = SchemeHarness(make_scheme(k=2), hub_spoke_graph)
        selection = harness.scheme.selection
        assert set(selection.central_nodes) == {0, 5}
        # node 4 belongs to NCL 5; query targets NCL 0's broadcast
        query = make_query(query_id=1, requester=2, data_id=9, created_at=0.0)
        harness.add_query(query)
        harness.contact(2, 0, now=5.0)  # NCL-0 copy starts broadcasting
        # central 0 meets node 4 (member of NCL 5): the NCL-0 broadcast
        # replica must not propagate there
        harness.contact(0, 4, now=10.0)
        bundles_at_4 = [
            b
            for b in harness.nodes[4].bundles
            if isinstance(b, QueryBundle) and b.target_central == 0 and b.broadcasting
        ]
        assert not bundles_at_4

    def test_requester_inside_ncl_starts_broadcasting_immediately(
        self, hub_spoke_graph
    ):
        harness = SchemeHarness(make_scheme(k=1), hub_spoke_graph)
        query = make_query(query_id=1, requester=0, data_id=9, created_at=0.0)
        harness.add_query(query)  # requester IS the central node
        bundles = [b for b in harness.nodes[0].bundles if isinstance(b, QueryBundle)]
        assert bundles and bundles[0].broadcasting


class TestResponseHandling:
    def test_node_responds_at_most_once_per_query(self, hub_spoke_graph):
        harness = SchemeHarness(make_scheme(k=1), hub_spoke_graph)
        item = make_item(data_id=1, source=0, size=10 * MEGABIT)
        harness.add_data(item)
        query = make_query(query_id=1, requester=2, data_id=1, created_at=0.0)
        harness.add_query(query)
        harness.contact(2, 0, now=5.0)
        responses = [
            b for b in harness.nodes[0].bundles if isinstance(b, ResponseBundle)
        ]
        assert len(responses) == 1
        # the next meeting delivers that copy and must not mint another
        harness.contact(2, 0, now=6.0)
        assert harness.metrics.is_satisfied(1)
        assert len(harness.delivered) == 1
        assert not any(
            isinstance(b, ResponseBundle) for b in harness.nodes[0].bundles
        )

    def test_response_dropped_once_query_satisfied(self, hub_spoke_graph):
        harness = SchemeHarness(make_scheme(k=2), hub_spoke_graph)
        item = make_item(data_id=1, source=0, size=10 * MEGABIT)
        harness.add_data(item)
        # two holders: origin at 0 and cached at 5
        harness.nodes[5].buffer.put(item)
        query = make_query(query_id=1, requester=2, data_id=1, created_at=0.0)
        harness.add_query(query)
        harness.contact(2, 0, now=5.0)   # 0 responds
        harness.contact(2, 5, now=6.0)   # wait: query copy to 5 too
        harness.contact(0, 2, now=10.0)  # first copy delivered
        assert harness.metrics.is_satisfied(1)
        # the second holder's stale response evaporates on its next contact
        harness.contact(5, 2, now=20.0)
        stale = [
            b for b in harness.nodes[5].bundles if isinstance(b, ResponseBundle)
        ]
        assert not stale

    def test_sigmoid_strategy_emits_probabilistically(self, hub_spoke_graph):
        harness = SchemeHarness(make_scheme(k=1, response="sigmoid"), hub_spoke_graph)
        item = make_item(data_id=1, source=0, size=10 * MEGABIT)
        harness.add_data(item)
        emitted = 0
        for qid in range(60):
            query = make_query(query_id=qid, requester=2, data_id=1, created_at=0.0)
            harness.nodes[0].observe_query(query, 0.0)
            if harness.scheme.try_respond(harness.nodes[0], query, now=0.0):
                emitted += 1
        # p_min = 0.45 at t0 = 0: roughly half the responses fire
        assert 10 < emitted < 50


class TestExchangeAcrossNCLs:
    def test_cross_ncl_duplicates_survive_contact(self, hub_spoke_graph):
        harness = SchemeHarness(make_scheme(k=2), hub_spoke_graph)
        assert set(harness.scheme.selection.central_nodes) == {0, 5}
        item = make_item(data_id=1, source=1, size=10 * MEGABIT)
        other = make_item(data_id=2, source=2, size=10 * MEGABIT)
        # both centrals hold a copy of item 1 (their NCLs' copies)
        harness.nodes[0].buffer.put(item)
        harness.nodes[5].buffer.put(item)
        harness.nodes[0].buffer.put(other)
        harness.nodes[5].buffer.put(other)
        # age the items out of footnote-4 freshness via observed requests
        for node in (harness.nodes[0], harness.nodes[5]):
            node.popularity.record_request(1, 0.0)
            node.popularity.record_request(2, 0.0)
        harness.contact(0, 5, now=10.0)
        assert 1 in harness.nodes[0].buffer and 1 in harness.nodes[5].buffer
        assert 2 in harness.nodes[0].buffer and 2 in harness.nodes[5].buffer
