"""Unit tests for the shared scheme machinery in ``caching.base``."""

import pytest

from repro.caching.nocache import NoCache
from repro.sim.bundles import ResponseBundle
from repro.units import HOUR, MEGABIT
from tests.caching.conftest import SchemeHarness
from tests.conftest import make_item, make_query


class TestTryRespond:
    def test_requester_holding_data_is_delivered_directly(self, hub_spoke_graph):
        harness = SchemeHarness(NoCache(), hub_spoke_graph)
        item = make_item(data_id=1, source=2, size=10 * MEGABIT)
        harness.nodes[2].generate_data(item)
        query = make_query(query_id=1, requester=2, data_id=1, created_at=0.0)
        harness.metrics.on_query_created(query)
        assert harness.scheme.try_respond(harness.nodes[2], query, now=1.0)
        assert harness.metrics.is_satisfied(1)
        assert not harness.nodes[2].bundles  # no bundle for self-delivery

    def test_no_data_no_response(self, hub_spoke_graph):
        harness = SchemeHarness(NoCache(), hub_spoke_graph)
        query = make_query(query_id=1, requester=2, data_id=1, created_at=0.0)
        assert not harness.scheme.try_respond(harness.nodes[0], query, now=1.0)

    def test_expired_query_refused(self, hub_spoke_graph):
        harness = SchemeHarness(NoCache(), hub_spoke_graph)
        item = make_item(data_id=1, source=0, size=10 * MEGABIT)
        harness.nodes[0].generate_data(item)
        query = make_query(
            query_id=1, requester=2, data_id=1, created_at=0.0, time_constraint=10.0
        )
        assert not harness.scheme.try_respond(harness.nodes[0], query, now=99.0)

    def test_decision_is_final_per_node(self, hub_spoke_graph):
        harness = SchemeHarness(NoCache(), hub_spoke_graph)
        item = make_item(data_id=1, source=0, size=10 * MEGABIT)
        harness.nodes[0].generate_data(item)
        query = make_query(query_id=1, requester=2, data_id=1, created_at=0.0)
        harness.metrics.on_query_created(query)
        assert harness.scheme.try_respond(harness.nodes[0], query, now=1.0)
        # second attempt refused (already responded)
        assert not harness.scheme.try_respond(harness.nodes[0], query, now=2.0)
        assert len(harness.nodes[0].bundles) == 1


class TestProcessResponses:
    def _responding_setup(self, hub_spoke_graph):
        harness = SchemeHarness(NoCache(), hub_spoke_graph)
        item = make_item(data_id=1, source=0, size=10 * MEGABIT)
        harness.nodes[0].generate_data(item)
        query = make_query(
            query_id=1, requester=4, data_id=1, created_at=0.0, time_constraint=12 * HOUR
        )
        harness.metrics.on_query_created(query)
        harness.nodes[0].observe_query(query, 0.0)
        harness.scheme.try_respond(harness.nodes[0], query, now=1.0)
        return harness, query, item

    def test_delivery_charges_budget(self, hub_spoke_graph):
        harness, query, item = self._responding_setup(hub_spoke_graph)
        budget = harness.contact(0, 4, now=5.0)
        assert harness.metrics.is_satisfied(1)
        assert budget.consumed >= item.size

    def test_delivery_blocked_by_budget(self, hub_spoke_graph):
        harness, query, item = self._responding_setup(hub_spoke_graph)
        harness.contact(0, 4, now=5.0, budget_bits=100)
        assert not harness.metrics.is_satisfied(1)
        # bundle survives for a later, longer contact
        assert any(isinstance(b, ResponseBundle) for b in harness.nodes[0].bundles)
        harness.contact(0, 4, now=6.0)
        assert harness.metrics.is_satisfied(1)

    def test_relay_forwarding_toward_requester(self, hub_spoke_graph):
        """Responder 4's reply reaches requester 1 via 5 and the hub."""
        harness = SchemeHarness(NoCache(), hub_spoke_graph)
        item = make_item(data_id=1, source=4, size=10 * MEGABIT)
        harness.nodes[4].generate_data(item)
        query = make_query(
            query_id=1, requester=1, data_id=1, created_at=0.0, time_constraint=12 * HOUR
        )
        harness.metrics.on_query_created(query)
        harness.nodes[4].observe_query(query, 0.0)
        harness.scheme.try_respond(harness.nodes[4], query, now=1.0)
        harness.contact(4, 5, now=2.0)
        assert any(isinstance(b, ResponseBundle) for b in harness.nodes[5].bundles)
        harness.contact(5, 0, now=3.0)
        harness.contact(0, 1, now=4.0)
        assert harness.metrics.is_satisfied(1)

    def test_satisfied_queries_prune_in_flight_responses(self, hub_spoke_graph):
        harness, query, item = self._responding_setup(hub_spoke_graph)
        harness.contact(0, 4, now=5.0)  # delivered
        # forge a second response still in flight at node 5
        stale = ResponseBundle(
            created_at=2.0, expires_at=query.expires_at, data=item, query=query, responder=0
        )
        harness.nodes[5].store_bundle(stale)
        harness.contact(5, 0, now=8.0)
        assert not any(
            isinstance(b, ResponseBundle) for b in harness.nodes[5].bundles
        )


class TestHelpers:
    def test_cached_copy_count(self, hub_spoke_graph):
        harness = SchemeHarness(NoCache(), hub_spoke_graph)
        harness.nodes[0].buffer.put(make_item(data_id=1, size=10 * MEGABIT))
        harness.nodes[1].buffer.put(make_item(data_id=2, size=10 * MEGABIT))
        harness.nodes[2].buffer.put(
            make_item(data_id=3, size=10 * MEGABIT, lifetime=5.0)
        )
        assert harness.scheme.cached_copy_count(now=100.0) == 2  # expired excluded

    def test_scheme_unusable_before_attach(self, hub_spoke_graph):
        scheme = NoCache()
        with pytest.raises(RuntimeError):
            scheme._require_services()
