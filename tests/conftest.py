"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.data import DataItem, Query
from repro.graph.contact_graph import ContactGraph
from repro.traces.contact import Contact, ContactTrace
from repro.units import DAY, HOUR, MEGABIT


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def line_graph() -> ContactGraph:
    """0 - 1 - 2 - 3 chain with decreasing rates."""
    graph = ContactGraph(4)
    graph.set_rate(0, 1, 1.0 / HOUR)
    graph.set_rate(1, 2, 1.0 / (2 * HOUR))
    graph.set_rate(2, 3, 1.0 / (4 * HOUR))
    return graph


@pytest.fixture
def star_graph() -> ContactGraph:
    """Hub node 0 connected to five leaves; leaves are not connected."""
    graph = ContactGraph(6)
    for leaf in range(1, 6):
        graph.set_rate(0, leaf, 1.0 / HOUR)
    return graph


@pytest.fixture
def small_trace() -> ContactTrace:
    """A deterministic 4-node trace with a hub structure.

    Node 0 is the hub: it meets everyone repeatedly; the leaves never
    meet each other.
    """
    contacts = []
    t = 0.0
    for round_index in range(30):
        base = round_index * HOUR
        for leaf in (1, 2, 3):
            contacts.append(Contact(base + leaf * 60.0, base + leaf * 60.0 + 300.0, 0, leaf))
    return ContactTrace(contacts, num_nodes=4, granularity=60.0, name="unit-hub")


def make_item(
    data_id: int = 0,
    source: int = 0,
    size: int = 10 * MEGABIT,
    created_at: float = 0.0,
    lifetime: float = 1 * DAY,
) -> DataItem:
    return DataItem(
        data_id=data_id,
        source=source,
        size=size,
        created_at=created_at,
        expires_at=created_at + lifetime,
    )


def make_query(
    query_id: int = 0,
    requester: int = 1,
    data_id: int = 0,
    created_at: float = 0.0,
    time_constraint: float = 12 * HOUR,
) -> Query:
    return Query(
        query_id=query_id,
        requester=requester,
        data_id=data_id,
        created_at=created_at,
        time_constraint=time_constraint,
    )


@pytest.fixture
def item_factory():
    return make_item


@pytest.fixture
def query_factory():
    return make_query
