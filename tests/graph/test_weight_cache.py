"""Unit tests for the graph-versioned path-weight cache."""

import numpy as np
import pytest

from repro.graph.contact_graph import ContactGraph
from repro.graph.paths import PathMode, shortest_path_weights_from
from repro.graph.weight_cache import (
    PathWeightCache,
    cached_path_weights,
    shared_weight_cache,
)


@pytest.fixture
def graph():
    g = ContactGraph(4)
    g.set_rate(0, 1, 1.0)
    g.set_rate(1, 2, 0.5)
    g.set_rate(2, 3, 0.25)
    return g


class TestPathWeightCache:
    def test_hit_returns_same_array(self, graph):
        cache = PathWeightCache()
        first = cache.weights(graph, 0, 10.0)
        second = cache.weights(graph, 0, 10.0)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_values_match_direct_computation(self, graph):
        cache = PathWeightCache()
        np.testing.assert_array_equal(
            cache.weights(graph, 0, 10.0), shortest_path_weights_from(graph, 0, 10.0)
        )

    def test_cached_arrays_are_read_only(self, graph):
        cache = PathWeightCache()
        weights = cache.weights(graph, 0, 10.0)
        with pytest.raises(ValueError):
            weights[0] = 99.0

    def test_mutation_invalidates(self, graph):
        cache = PathWeightCache()
        before = cache.weights(graph, 0, 10.0)
        graph.set_rate(0, 3, 2.0)
        after = cache.weights(graph, 0, 10.0)
        assert cache.misses == 2
        assert after[3] > before[3]

    def test_identical_content_shares_entries_across_instances(self):
        # The GRAPH_REFRESH scenario: distinct snapshot objects, same rates.
        a = ContactGraph(3)
        b = ContactGraph(3)
        for g in (a, b):
            g.set_rate(0, 1, 1.0)
            g.set_rate(1, 2, 0.5)
        cache = PathWeightCache()
        cache.weights(a, 0, 5.0)
        cache.weights(b, 0, 5.0)
        assert cache.hits == 1 and cache.misses == 1

    def test_distinct_budgets_and_sources_miss(self, graph):
        cache = PathWeightCache()
        cache.weights(graph, 0, 10.0)
        cache.weights(graph, 0, 20.0)
        cache.weights(graph, 1, 10.0)
        assert cache.misses == 3 and cache.hits == 0

    def test_lru_eviction_bounds_size(self, graph):
        cache = PathWeightCache(maxsize=2)
        for budget in (1.0, 2.0, 3.0, 4.0):
            cache.weights(graph, 0, budget)
        assert len(cache) == 2
        cache.weights(graph, 0, 4.0)  # newest entry survived
        assert cache.hits == 1

    def test_weight_matrix_seeds_single_source_rows(self, graph):
        cache = PathWeightCache()
        matrix = cache.weight_matrix(graph, 10.0)
        row = cache.weights(graph, 2, 10.0)
        assert cache.hits == 1  # served from the matrix row, not recomputed
        np.testing.assert_array_equal(row, matrix[2])

    def test_rate_tuples_budget_independent_in_expected_delay_mode(self, graph):
        cache = PathWeightCache()
        first = cache.rate_tuples(graph, 0, 10.0)
        second = cache.rate_tuples(graph, 0, 999.0)
        assert first is second
        assert first[3] == (1.0, 0.5, 0.25)
        assert first[0] == ()

    def test_rate_tuples_budget_keyed_in_max_probability_mode(self, graph):
        cache = PathWeightCache()
        cache.rate_tuples(graph, 0, 10.0, PathMode.MAX_PROBABILITY)
        cache.rate_tuples(graph, 0, 999.0, PathMode.MAX_PROBABILITY)
        assert cache.misses == 2

    def test_clear_resets_counters(self, graph):
        cache = PathWeightCache()
        cache.weights(graph, 0, 10.0)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ValueError):
            PathWeightCache(maxsize=0)


class TestStaleCacheProtection:
    """Regression: the shared cache is content-keyed, so any rate-matrix
    mutation that skips the version bump would silently serve stale
    paths.  The graph closes that hole by keeping the matrix non-writable
    at rest — all mutation must flow through the version-bumping setters.
    """

    def test_in_place_write_on_rates_view_raises(self, graph):
        with pytest.raises(ValueError):
            graph.rates[0, 3] = 99.0

    def test_rates_view_cannot_be_made_writable(self, graph):
        view = graph.rates
        with pytest.raises(ValueError):
            view.flags.writeable = True  # base array is non-writable

    def test_internal_matrix_is_locked_between_mutations(self, graph):
        graph.set_rate(0, 3, 2.0)  # the setter re-locks on the way out
        with pytest.raises(ValueError):
            graph.rates[0, 3] = 0.0

    def test_set_rates_bumps_version_and_fingerprint(self, graph):
        version = graph.version
        fingerprint = graph.fingerprint()
        rates = graph.rate_matrix()
        rates[0, 3] = rates[3, 0] = 2.0
        graph.set_rates(rates)
        assert graph.version > version
        assert graph.fingerprint() != fingerprint

    def test_set_rates_invalidates_cached_weights(self, graph):
        """The stale-cache scenario end to end: bulk mutation through the
        setter must make the cache recompute, and the fresh weights must
        reflect the new rates."""
        cache = PathWeightCache()
        before = cache.weights(graph, 0, 10.0)
        rates = graph.rate_matrix()
        rates[0, 3] = rates[3, 0] = 5.0  # direct shortcut 0-3
        graph.set_rates(rates)
        after = cache.weights(graph, 0, 10.0)
        assert cache.misses == 2  # no stale hit
        assert after[3] > before[3]

    def test_set_rates_copies_the_input(self, graph):
        rates = graph.rate_matrix()
        graph.set_rates(rates)
        fingerprint = graph.fingerprint()
        rates[0, 3] = rates[3, 0] = 7.0  # caller's array stays theirs
        assert graph.fingerprint() == fingerprint
        assert graph.rate(0, 3) == 0.0

    def test_set_rates_validates(self, graph):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            graph.set_rates(np.zeros((2, 2)))  # wrong shape
        bad = np.zeros((4, 4))
        bad[0, 1] = -1.0
        with pytest.raises(ConfigurationError):
            graph.set_rates(bad)  # negative rate
        asym = np.zeros((4, 4))
        asym[0, 1] = 1.0
        with pytest.raises(ConfigurationError):
            graph.set_rates(asym)  # asymmetric


class TestSharedCache:
    def test_shared_singleton(self):
        assert shared_weight_cache() is shared_weight_cache()

    def test_convenience_wrapper_uses_shared_cache(self, graph):
        direct = shortest_path_weights_from(graph, 0, 7.0)
        np.testing.assert_array_equal(cached_path_weights(graph, 0, 7.0), direct)
