"""Unit tests for online contact-rate estimation."""

import pytest

from repro.errors import ConfigurationError
from repro.graph.estimator import OnlineContactGraphEstimator


class TestRecording:
    def test_rate_is_time_average(self):
        est = OnlineContactGraphEstimator(num_nodes=3, origin=0.0)
        est.record_contact(0, 1, 10.0)
        est.record_contact(1, 0, 30.0)  # order-insensitive pair
        assert est.rate(0, 1, now=100.0) == pytest.approx(2 / 100.0)
        assert est.contact_count(0, 1) == 2

    def test_unobserved_pair_has_zero_rate(self):
        est = OnlineContactGraphEstimator(num_nodes=3)
        assert est.rate(0, 2, now=50.0) == 0.0

    def test_min_contacts_threshold(self):
        est = OnlineContactGraphEstimator(num_nodes=2, min_contacts=2)
        est.record_contact(0, 1, 5.0)
        assert est.rate(0, 1, now=10.0) == 0.0
        est.record_contact(0, 1, 8.0)
        assert est.rate(0, 1, now=10.0) > 0.0

    def test_rejects_bad_node_ids(self):
        est = OnlineContactGraphEstimator(num_nodes=2)
        with pytest.raises(ConfigurationError):
            est.record_contact(0, 5, 1.0)
        with pytest.raises(ConfigurationError):
            est.record_contact(1, 1, 1.0)

    def test_total_contacts(self):
        est = OnlineContactGraphEstimator(num_nodes=4)
        est.record_contact(0, 1, 1.0)
        est.record_contact(2, 3, 2.0)
        assert est.total_contacts() == 2


class TestSnapshots:
    def test_snapshot_reflects_rates(self):
        est = OnlineContactGraphEstimator(num_nodes=3, origin=0.0)
        est.record_contact(0, 1, 10.0)
        graph = est.snapshot(now=50.0)
        assert graph.rate(0, 1) == pytest.approx(1 / 50.0)
        assert graph.num_nodes == 3

    def test_snapshot_cache_within_period(self):
        est = OnlineContactGraphEstimator(num_nodes=3, snapshot_period=100.0)
        est.record_contact(0, 1, 10.0)
        first = est.snapshot(now=50.0)
        second = est.snapshot(now=60.0)
        assert second is first  # cached

    def test_force_rebuilds(self):
        est = OnlineContactGraphEstimator(num_nodes=3, snapshot_period=100.0)
        est.record_contact(0, 1, 10.0)
        first = est.snapshot(now=50.0)
        forced = est.snapshot(now=60.0, force=True)
        assert forced is not first

    def test_snapshot_after_period_rebuilds(self):
        est = OnlineContactGraphEstimator(num_nodes=3, snapshot_period=10.0)
        est.record_contact(0, 1, 5.0)
        first = est.snapshot(now=20.0)
        est.record_contact(0, 1, 25.0)
        second = est.snapshot(now=40.0)
        assert second is not first
        assert second.rate(0, 1) == pytest.approx(2 / 40.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OnlineContactGraphEstimator(num_nodes=0)
        with pytest.raises(ConfigurationError):
            OnlineContactGraphEstimator(num_nodes=2, min_contacts=0)
        with pytest.raises(ConfigurationError):
            OnlineContactGraphEstimator(num_nodes=2, snapshot_period=-1.0)
