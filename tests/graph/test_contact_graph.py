"""Unit tests for the contact graph."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph.contact_graph import ContactGraph
from repro.traces.contact import Contact, ContactTrace


class TestConstruction:
    def test_from_rate_matrix(self):
        rates = np.array([[0.0, 0.5], [0.5, 0.0]])
        graph = ContactGraph.from_rate_matrix(rates)
        assert graph.rate(0, 1) == 0.5
        assert graph.num_edges == 1

    def test_from_rate_matrix_clears_diagonal(self):
        rates = np.array([[9.0, 0.5], [0.5, 9.0]])
        graph = ContactGraph.from_rate_matrix(rates)
        assert graph.rate(0, 0) == 0.0

    def test_rejects_asymmetric_matrix(self):
        with pytest.raises(ConfigurationError):
            ContactGraph.from_rate_matrix(np.array([[0.0, 1.0], [0.5, 0.0]]))

    def test_rejects_negative_rates(self):
        with pytest.raises(ConfigurationError):
            ContactGraph.from_rate_matrix(np.array([[0.0, -1.0], [-1.0, 0.0]]))

    def test_rejects_non_square(self):
        with pytest.raises(ConfigurationError):
            ContactGraph.from_rate_matrix(np.zeros((2, 3)))

    def test_needs_at_least_one_node(self):
        with pytest.raises(ConfigurationError):
            ContactGraph(0)


class TestFromTrace:
    def test_time_average_rates(self):
        contacts = [Contact(10.0, 20.0, 0, 1), Contact(50.0, 60.0, 0, 1)]
        trace = ContactTrace(contacts, num_nodes=3)
        graph = ContactGraph.from_trace(trace)
        # 2 contacts over trace span (10 -> 60) elapsed = 50
        assert graph.rate(0, 1) == pytest.approx(2 / 50.0)
        assert graph.rate(1, 2) == 0.0

    def test_until_limits_observations(self):
        contacts = [Contact(10.0, 20.0, 0, 1), Contact(80.0, 90.0, 0, 1)]
        trace = ContactTrace(contacts, num_nodes=2)
        graph = ContactGraph.from_trace(trace, until=50.0)
        assert graph.rate(0, 1) == pytest.approx(1 / 40.0)

    def test_min_contacts_filters_noise(self):
        contacts = [
            Contact(0.0, 1.0, 0, 1),
            Contact(10.0, 11.0, 0, 1),
            Contact(5.0, 6.0, 1, 2),
        ]
        trace = ContactTrace(contacts, num_nodes=3)
        graph = ContactGraph.from_trace(trace, min_contacts=2)
        assert graph.rate(0, 1) > 0.0
        assert graph.rate(1, 2) == 0.0

    def test_rejects_horizon_before_start(self):
        trace = ContactTrace([Contact(10.0, 20.0, 0, 1)], num_nodes=2)
        with pytest.raises(ConfigurationError):
            ContactGraph.from_trace(trace, until=10.0)


class TestAccessors:
    def test_neighbors_and_degree(self, star_graph):
        assert sorted(star_graph.neighbors(0)) == [1, 2, 3, 4, 5]
        assert star_graph.degree(0) == 5
        assert star_graph.degree(1) == 1
        assert star_graph.neighbors(1) == (0,)

    def test_neighbors_cache_invalidated_by_mutation(self, star_graph):
        before = star_graph.neighbors(1)
        star_graph.set_rate(1, 2, 0.25)
        assert star_graph.neighbors(1) == (0, 2)
        assert before == (0,)

    def test_edges_iteration(self, star_graph):
        edges = list(star_graph.edges())
        assert len(edges) == 5
        assert all(i < j for i, j, _ in edges)

    def test_mean_degree(self, star_graph):
        assert star_graph.mean_degree() == pytest.approx(10 / 6)

    def test_expected_intercontact(self, line_graph):
        assert line_graph.expected_intercontact(0, 1) == pytest.approx(3600.0)
        assert line_graph.expected_intercontact(0, 3) == float("inf")

    def test_set_rate_symmetric(self):
        graph = ContactGraph(3)
        graph.set_rate(0, 2, 0.7)
        assert graph.rate(2, 0) == 0.7

    def test_set_rate_rejects_self_loop(self):
        graph = ContactGraph(3)
        with pytest.raises(ConfigurationError):
            graph.set_rate(1, 1, 0.5)

    def test_rate_matrix_is_copy(self, line_graph):
        matrix = line_graph.rate_matrix()
        matrix[0, 1] = 99.0
        assert line_graph.rate(0, 1) != 99.0


class TestVersioning:
    def test_version_bumps_on_mutation(self):
        graph = ContactGraph(3)
        v0 = graph.version
        graph.set_rate(0, 1, 0.5)
        assert graph.version > v0

    def test_versions_unique_across_instances(self):
        a = ContactGraph(2)
        b = ContactGraph(2)
        assert a.version != b.version
        a.set_rate(0, 1, 1.0)
        b.set_rate(0, 1, 1.0)
        assert a.version != b.version

    def test_fingerprint_tracks_content(self):
        a = ContactGraph(3)
        b = ContactGraph(3)
        assert a.fingerprint() == b.fingerprint()
        a.set_rate(0, 1, 0.5)
        assert a.fingerprint() != b.fingerprint()
        b.set_rate(0, 1, 0.5)
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_includes_node_count(self):
        assert ContactGraph(2).fingerprint() != ContactGraph(3).fingerprint()
