"""Unit tests for opportunistic paths and shortest-path computation."""

import pytest

from repro.errors import PathError
from repro.graph.contact_graph import ContactGraph
from repro.graph.paths import (
    OpportunisticPath,
    PathMode,
    shortest_path,
    shortest_path_weights_from,
    shortest_paths_from,
)
from repro.mathutils.hypoexponential import path_delivery_probability
from repro.units import HOUR


class TestOpportunisticPath:
    def test_weight_matches_eq2(self):
        path = OpportunisticPath((0, 1, 2), (1 / HOUR, 1 / (2 * HOUR)))
        assert path.weight(3 * HOUR) == pytest.approx(
            path_delivery_probability([1 / HOUR, 1 / (2 * HOUR)], 3 * HOUR)
        )

    def test_expected_delay(self):
        path = OpportunisticPath((0, 1, 2), (0.5, 0.25))
        assert path.expected_delay == pytest.approx(2.0 + 4.0)

    def test_trivial_path(self):
        path = OpportunisticPath((7,), ())
        assert path.hop_count == 0
        assert path.expected_delay == 0.0
        assert path.weight(100.0) == 1.0

    def test_validation(self):
        with pytest.raises(PathError):
            OpportunisticPath((), ())
        with pytest.raises(PathError):
            OpportunisticPath((0, 1), ())
        with pytest.raises(PathError):
            OpportunisticPath((0, 1), (0.0,))


class TestShortestPaths:
    def test_line_graph_paths(self, line_graph):
        paths = shortest_paths_from(line_graph, 0, time_budget=10 * HOUR)
        assert paths[3].nodes == (0, 1, 2, 3)
        assert paths[0].nodes == (0,)

    def test_direct_vs_two_hop(self):
        # 0-2 direct is slow; 0-1-2 through a fast relay is quicker.
        graph = ContactGraph(3)
        graph.set_rate(0, 2, 1.0 / (10 * HOUR))
        graph.set_rate(0, 1, 1.0 / HOUR)
        graph.set_rate(1, 2, 1.0 / HOUR)
        path = shortest_path(graph, 0, 2, time_budget=5 * HOUR)
        assert path.nodes == (0, 1, 2)

    def test_disconnected_returns_none(self):
        graph = ContactGraph(3)
        graph.set_rate(0, 1, 0.5)
        assert shortest_path(graph, 0, 2, time_budget=10.0) is None

    def test_modes_agree_on_simple_graph(self, line_graph):
        for destination in range(4):
            a = shortest_path(line_graph, 0, destination, 10 * HOUR, PathMode.EXPECTED_DELAY)
            b = shortest_path(line_graph, 0, destination, 10 * HOUR, PathMode.MAX_PROBABILITY)
            assert a.nodes == b.nodes

    def test_max_probability_prefers_higher_weight(self):
        # direct link vs 2-hop: the 2-hop pair is much faster per hop.
        graph = ContactGraph(3)
        graph.set_rate(0, 2, 1.0 / (20 * HOUR))
        graph.set_rate(0, 1, 1.0 / (0.5 * HOUR))
        graph.set_rate(1, 2, 1.0 / (0.5 * HOUR))
        budget = 2 * HOUR
        path = shortest_path(graph, 0, 2, budget, PathMode.MAX_PROBABILITY)
        direct = path_delivery_probability([1.0 / (20 * HOUR)], budget)
        assert path.weight(budget) > direct

    def test_source_validation(self, line_graph):
        with pytest.raises(PathError):
            shortest_paths_from(line_graph, 99, 10.0)
        with pytest.raises(PathError):
            shortest_paths_from(line_graph, 0, 0.0)


class TestWeightVector:
    def test_weights_bounded_and_source_is_one(self, line_graph):
        weights = shortest_path_weights_from(line_graph, 0, 10 * HOUR)
        assert weights[0] == 1.0
        assert all(0.0 <= w <= 1.0 for w in weights)

    def test_unreachable_weight_zero(self):
        graph = ContactGraph(3)
        graph.set_rate(0, 1, 0.5)
        weights = shortest_path_weights_from(graph, 0, 10.0)
        assert weights[2] == 0.0

    def test_weights_decay_along_line(self, line_graph):
        weights = shortest_path_weights_from(line_graph, 0, 10 * HOUR)
        assert weights[1] > weights[2] > weights[3]

    def test_symmetry(self, line_graph):
        from_0 = shortest_path_weights_from(line_graph, 0, 10 * HOUR)
        from_3 = shortest_path_weights_from(line_graph, 3, 10 * HOUR)
        assert from_0[3] == pytest.approx(from_3[0])
