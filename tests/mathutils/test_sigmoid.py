"""Unit tests for the response sigmoid (paper Eq. 4, Fig. 7)."""

import pytest

from repro.mathutils.sigmoid import ResponseSigmoid


class TestBoundaryConditions:
    def test_paper_example(self):
        # Fig. 7: p_min = 0.45, p_max = 0.8, T_q = 10 hours.
        sigmoid = ResponseSigmoid(0.45, 0.8, 10 * 3600.0)
        assert sigmoid(0.0) == pytest.approx(0.45)
        assert sigmoid(10 * 3600.0) == pytest.approx(0.8)

    def test_k1_and_k2_formulas(self):
        import math

        p_min, p_max, tq = 0.45, 0.8, 100.0
        sigmoid = ResponseSigmoid(p_min, p_max, tq)
        assert sigmoid.k1 == pytest.approx(2 * p_min)
        assert sigmoid.k2 == pytest.approx(
            math.log(p_max / (2 * p_min - p_max)) / tq
        )

    def test_monotone_increasing_in_elapsed_time(self):
        sigmoid = ResponseSigmoid(0.45, 0.8, 1000.0)
        values = [sigmoid(t) for t in (0, 100, 500, 900, 1000)]
        assert values == sorted(values)

    def test_values_are_probabilities(self):
        sigmoid = ResponseSigmoid(0.6, 1.0, 500.0)
        for t in range(0, 501, 50):
            assert 0.0 <= sigmoid(t) <= 1.0


class TestClamping:
    def test_negative_elapsed_clamps_to_pmin(self):
        sigmoid = ResponseSigmoid(0.45, 0.8, 100.0)
        assert sigmoid(-50.0) == pytest.approx(0.45)

    def test_overrun_clamps_to_pmax(self):
        sigmoid = ResponseSigmoid(0.45, 0.8, 100.0)
        assert sigmoid(1e9) == pytest.approx(0.8)


class TestValidation:
    def test_p_max_bounds(self):
        with pytest.raises(ValueError):
            ResponseSigmoid(0.45, 0.0, 100.0)
        with pytest.raises(ValueError):
            ResponseSigmoid(0.45, 1.1, 100.0)

    def test_p_min_must_exceed_half_p_max(self):
        with pytest.raises(ValueError):
            ResponseSigmoid(0.4, 0.8, 100.0)  # exactly p_max/2 is invalid

    def test_p_min_must_be_below_p_max(self):
        with pytest.raises(ValueError):
            ResponseSigmoid(0.8, 0.8, 100.0)

    def test_time_constraint_positive(self):
        with pytest.raises(ValueError):
            ResponseSigmoid(0.45, 0.8, 0.0)

    def test_p_max_one_is_allowed(self):
        sigmoid = ResponseSigmoid(0.8, 1.0, 100.0)
        assert sigmoid(100.0) == pytest.approx(1.0)
