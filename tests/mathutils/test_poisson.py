"""Unit tests for Poisson rate estimation (paper Sec. III-B, Eq. 5)."""

import pytest

from repro.mathutils.poisson import RateEstimator, poisson_probability_at_least_one


class TestProbabilityAtLeastOne:
    def test_matches_formula(self):
        import math

        assert poisson_probability_at_least_one(0.5, 2.0) == pytest.approx(
            1.0 - math.exp(-1.0)
        )

    def test_zero_rate_is_zero(self):
        assert poisson_probability_at_least_one(0.0, 100.0) == 0.0

    def test_nonpositive_horizon_is_zero(self):
        assert poisson_probability_at_least_one(1.0, 0.0) == 0.0
        assert poisson_probability_at_least_one(1.0, -5.0) == 0.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            poisson_probability_at_least_one(-0.1, 1.0)

    def test_increases_with_horizon(self):
        values = [poisson_probability_at_least_one(0.1, h) for h in (1, 5, 20, 100)]
        assert values == sorted(values)


class TestOriginAnchor:
    """Contact-rate convention: count / elapsed since network start."""

    def test_rate_is_count_over_elapsed(self):
        est = RateEstimator(origin=0.0, anchor="origin")
        for t in (10.0, 20.0, 30.0):
            est.record(t)
        assert est.rate(now=60.0) == pytest.approx(3 / 60.0)

    def test_no_events_means_zero(self):
        est = RateEstimator(origin=0.0)
        assert est.rate(now=100.0) == 0.0

    def test_zero_elapsed_means_zero(self):
        est = RateEstimator(origin=50.0)
        assert est.rate(now=50.0) == 0.0

    def test_rate_decays_as_time_passes_without_events(self):
        est = RateEstimator(origin=0.0)
        est.record(1.0)
        assert est.rate(now=10.0) > est.rate(now=100.0)


class TestFirstEventAnchor:
    """Data-popularity convention (Eq. 5): k / (t_k - t_1)."""

    def test_rate_matches_eq5(self):
        est = RateEstimator(anchor="first_event")
        for t in (100.0, 150.0, 300.0):
            est.record(t)
        assert est.rate(now=9999.0) == pytest.approx(3 / 200.0)

    def test_single_event_has_no_rate(self):
        est = RateEstimator(anchor="first_event")
        est.record(5.0)
        assert est.rate(now=100.0) == 0.0

    def test_identical_timestamps_have_no_rate(self):
        est = RateEstimator(anchor="first_event")
        est.record(5.0)
        est.record(5.0)
        assert est.rate(now=100.0) == 0.0


class TestRecording:
    def test_rejects_decreasing_timestamps(self):
        est = RateEstimator()
        est.record(10.0)
        with pytest.raises(ValueError):
            est.record(5.0)

    def test_rejects_unknown_anchor(self):
        with pytest.raises(ValueError):
            RateEstimator(anchor="bogus")

    def test_counts_and_boundaries(self):
        est = RateEstimator()
        est.record(1.0)
        est.record(4.0)
        assert est.count == 2
        assert est.first_event_time == 1.0
        assert est.last_event_time == 4.0


class TestMerge:
    def test_merge_combines_counts_and_bounds(self):
        a = RateEstimator(anchor="first_event")
        b = RateEstimator(anchor="first_event")
        for t in (10.0, 20.0):
            a.record(t)
        for t in (5.0, 40.0):
            b.record(t)
        a.merge_counts(b)
        assert a.count == 4
        assert a.first_event_time == 5.0
        assert a.last_event_time == 40.0

    def test_merge_into_empty(self):
        a = RateEstimator(anchor="first_event")
        b = RateEstimator(anchor="first_event")
        b.record(7.0)
        a.merge_counts(b)
        assert a.count == 1
        assert a.first_event_time == 7.0

    def test_merge_from_empty_is_noop(self):
        a = RateEstimator()
        a.record(3.0)
        a.merge_counts(RateEstimator())
        assert a.count == 1
