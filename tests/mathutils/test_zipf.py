"""Unit tests for the Zipf query distribution (paper Eq. 8)."""

import numpy as np
import pytest

from repro.mathutils.zipf import ZipfDistribution


class TestPmf:
    def test_pmf_sums_to_one(self):
        for s in (0.0, 0.5, 1.0, 1.5):
            zipf = ZipfDistribution(37, s)
            assert zipf.pmf_vector().sum() == pytest.approx(1.0)

    def test_pmf_matches_eq8(self):
        m, s = 10, 1.0
        zipf = ZipfDistribution(m, s)
        normalizer = sum(1.0 / i**s for i in range(1, m + 1))
        for j in range(1, m + 1):
            assert zipf.pmf(j) == pytest.approx((1.0 / j**s) / normalizer)

    def test_pmf_is_decreasing_in_rank(self):
        pmf = ZipfDistribution(20, 1.2).pmf_vector()
        assert all(a >= b for a, b in zip(pmf, pmf[1:]))

    def test_zero_exponent_is_uniform(self):
        pmf = ZipfDistribution(8, 0.0).pmf_vector()
        assert np.allclose(pmf, 1.0 / 8)

    def test_higher_exponent_is_more_skewed(self):
        flat = ZipfDistribution(30, 0.5)
        steep = ZipfDistribution(30, 1.5)
        assert steep.pmf(1) > flat.pmf(1)
        assert steep.pmf(30) < flat.pmf(30)


class TestValidation:
    def test_rejects_empty_catalogue(self):
        with pytest.raises(ValueError):
            ZipfDistribution(0)

    def test_rejects_negative_exponent(self):
        with pytest.raises(ValueError):
            ZipfDistribution(5, -0.1)

    def test_rank_bounds_checked(self):
        zipf = ZipfDistribution(5)
        with pytest.raises(ValueError):
            zipf.pmf(0)
        with pytest.raises(ValueError):
            zipf.pmf(6)


class TestResize:
    def test_resize_renormalises(self):
        zipf = ZipfDistribution(5, 1.0)
        zipf.resize(50)
        assert zipf.num_items == 50
        assert zipf.pmf_vector().sum() == pytest.approx(1.0)

    def test_resize_same_size_is_noop(self):
        zipf = ZipfDistribution(5, 1.0)
        before = zipf.pmf_vector()
        zipf.resize(5)
        assert np.allclose(zipf.pmf_vector(), before)

    def test_resize_rejects_zero(self):
        with pytest.raises(ValueError):
            ZipfDistribution(5).resize(0)


class TestSampling:
    def test_sample_ranks_in_range(self, rng):
        zipf = ZipfDistribution(12, 1.0)
        ranks = zipf.sample_ranks(rng, 500)
        assert all(1 <= r <= 12 for r in ranks)

    def test_rank_one_is_most_common(self, rng):
        zipf = ZipfDistribution(10, 1.5)
        ranks = zipf.sample_ranks(rng, 4000)
        counts = np.bincount(ranks, minlength=11)
        assert counts[1] == counts[1:].max()

    def test_empirical_matches_pmf(self, rng):
        zipf = ZipfDistribution(5, 1.0)
        ranks = zipf.sample_ranks(rng, 20000)
        for j in range(1, 6):
            empirical = sum(1 for r in ranks if r == j) / len(ranks)
            assert empirical == pytest.approx(zipf.pmf(j), abs=0.02)


class TestSeries:
    def test_pmf_series_covers_paper_exponents(self):
        series = ZipfDistribution.pmf_series(20, (0.5, 1.0, 1.5))
        assert set(series) == {0.5, 1.0, 1.5}
        for pmf in series.values():
            assert pmf.sum() == pytest.approx(1.0)
