"""Unit tests for the hypoexponential distribution (paper Eq. 1-2)."""

import math

import numpy as np
import pytest

from repro.mathutils.hypoexponential import (
    Hypoexponential,
    _closed_form_cdf,
    _matrix_cdf,
    hypoexponential_cdf,
    path_delivery_probability,
)


class TestSingleHop:
    def test_matches_exponential_cdf(self):
        lam = 1.0 / 3600.0
        for t in (0.0, 100.0, 3600.0, 86400.0):
            expected = 1.0 - math.exp(-lam * t) if t > 0 else 0.0
            assert hypoexponential_cdf([lam], t) == pytest.approx(expected)

    def test_zero_time_is_zero(self):
        assert hypoexponential_cdf([0.5], 0.0) == 0.0

    def test_negative_time_is_zero(self):
        assert hypoexponential_cdf([0.5], -10.0) == 0.0


class TestClosedFormVsMatrix:
    def test_distinct_rates_agree(self):
        rates = [1.0, 0.5, 0.25]
        for t in (0.1, 1.0, 5.0, 20.0):
            assert _closed_form_cdf(rates, t) == pytest.approx(
                _matrix_cdf(rates, t), abs=1e-9
            )

    def test_repeated_rates_use_matrix_path(self):
        # Erlang(3, 1): CDF(t) = 1 - e^-t (1 + t + t^2/2)
        rates = [1.0, 1.0, 1.0]
        t = 2.0
        erlang = 1.0 - math.exp(-t) * (1 + t + t * t / 2)
        assert hypoexponential_cdf(rates, t) == pytest.approx(erlang, abs=1e-9)

    def test_nearly_equal_rates_stay_in_unit_interval(self):
        rates = [1.0, 1.0 + 1e-9, 1.0 + 2e-9]
        value = hypoexponential_cdf(rates, 3.0)
        assert 0.0 <= value <= 1.0


class TestValidation:
    @pytest.mark.parametrize("bad", [[], [0.0], [-1.0], [float("nan")], [float("inf")]])
    def test_invalid_rates_rejected(self, bad):
        with pytest.raises(ValueError):
            hypoexponential_cdf(bad, 1.0)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            path_delivery_probability([1.0], -1.0)


class TestPathDeliveryProbability:
    def test_empty_path_is_certain(self):
        assert path_delivery_probability([], 0.0) == 1.0
        assert path_delivery_probability([], 100.0) == 1.0

    def test_extra_hop_decreases_probability(self):
        base = [1.0 / 3600, 1.0 / 7200]
        extended = base + [1.0 / 3600]
        t = 4 * 3600.0
        assert path_delivery_probability(extended, t) < path_delivery_probability(
            base, t
        )

    def test_monotone_in_time(self):
        rates = [0.001, 0.002, 0.0005]
        values = [path_delivery_probability(rates, t) for t in (10, 100, 1000, 10000)]
        assert values == sorted(values)


class TestDistributionObject:
    def test_mean_and_variance(self):
        dist = Hypoexponential([0.5, 0.25])
        assert dist.mean == pytest.approx(2.0 + 4.0)
        assert dist.variance == pytest.approx(4.0 + 16.0)

    def test_sf_complements_cdf(self):
        dist = Hypoexponential([0.1, 0.3])
        assert dist.sf(5.0) == pytest.approx(1.0 - dist.cdf(5.0))

    def test_pdf_integrates_roughly_to_cdf(self):
        dist = Hypoexponential([0.2, 0.4])
        grid = np.linspace(0.0, 30.0, 3001)
        integral = np.trapezoid([dist.pdf(t) for t in grid], grid)
        assert integral == pytest.approx(dist.cdf(30.0), abs=5e-3)

    def test_sampling_mean_close_to_analytic(self, rng):
        dist = Hypoexponential([1.0, 0.5])
        samples = dist.sample(rng, size=20000)
        assert samples.mean() == pytest.approx(dist.mean, rel=0.05)

    def test_sampling_cdf_close_to_analytic(self, rng):
        dist = Hypoexponential([1.0, 0.5])
        samples = dist.sample(rng, size=20000)
        t = 3.0
        assert (samples <= t).mean() == pytest.approx(dist.cdf(t), abs=0.02)

    def test_rates_copy_is_defensive(self):
        dist = Hypoexponential([1.0])
        dist.rates.append(5.0)
        assert dist.rates == [1.0]
