"""The two-sided one-sample KS statistic behind the fidelity gates."""

import numpy as np
import pytest

from repro.mathutils import exponential_ks, ks_statistic


class TestKSStatistic:
    def test_empty_sample_raises(self):
        with pytest.raises(ValueError):
            ks_statistic([], lambda x: x)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            ks_statistic([1.0, 2.0], np.array([0.5]))

    def test_single_sample_at_model_median(self):
        # F(x) = 0.5 at the sample: sup over {|1 − 0.5|, |0.5 − 0|} = 0.5
        assert ks_statistic([0.0], lambda x: np.full_like(x, 0.5)) == 0.5

    def test_two_sided_supremum_checks_both_jump_sides(self):
        # Model CDF 0.9 at a single sample: pre-jump side |0.9 − 0| wins
        # over the post-jump side |1 − 0.9| — a one-sided (post-jump
        # only) implementation would report 0.1.
        assert ks_statistic([0.0], lambda x: np.full_like(x, 0.9)) == pytest.approx(0.9)

    def test_matches_brute_force(self):
        rng = np.random.default_rng(7)
        samples = rng.exponential(2.0, size=200)
        cdf = lambda x: 1.0 - np.exp(-x / 2.0)
        ordered = np.sort(samples)
        model = cdf(ordered)
        n = len(ordered)
        brute = max(
            max(abs((i + 1) / n - model[i]), abs(model[i] - i / n))
            for i in range(n)
        )
        assert ks_statistic(samples, cdf) == pytest.approx(brute)

    def test_accepts_precomputed_model_values(self):
        samples = [1.0, 2.0, 3.0]
        cdf = lambda x: x / 4.0
        precomputed = cdf(np.sort(np.asarray(samples)))
        assert ks_statistic(samples, precomputed) == ks_statistic(samples, cdf)

    def test_order_invariant(self):
        cdf = lambda x: 1.0 - np.exp(-x)
        assert ks_statistic([3.0, 1.0, 2.0], cdf) == ks_statistic(
            [1.0, 2.0, 3.0], cdf
        )


class TestExponentialKS:
    def test_invalid_rate_raises(self):
        for rate in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(ValueError):
                exponential_ks([1.0], rate)

    def test_well_matched_sample_scores_low(self):
        rng = np.random.default_rng(11)
        samples = rng.exponential(scale=10.0, size=5000)
        assert exponential_ks(samples, 1 / 10.0) < 0.03

    def test_heavy_tailed_sample_scores_high(self):
        rng = np.random.default_rng(11)
        samples = rng.pareto(1.2, size=5000) + 0.05
        rate = 1.0 / samples.mean()  # the analysis layer's fitted rate
        assert exponential_ks(samples, rate) > 0.25

    def test_distance_is_bounded(self):
        rng = np.random.default_rng(3)
        samples = rng.uniform(0.0, 5.0, size=100)
        d = exponential_ks(samples, 1.0)
        assert 0.0 <= d <= 1.0
