"""Unit tests for unit helpers and constants."""

import pytest

from repro import units


class TestTime:
    def test_constants(self):
        assert units.MINUTE == 60
        assert units.HOUR == 3600
        assert units.DAY == 86400
        assert units.WEEK == 7 * 86400
        assert units.MONTH == 30 * 86400

    def test_converters(self):
        assert units.hours(2) == 7200
        assert units.days(1.5) == 129600
        assert units.weeks(1) == units.WEEK
        assert units.months(2) == 2 * units.MONTH


class TestSizes:
    def test_megabits(self):
        assert units.megabits(100) == 100_000_000
        assert units.megabits(0.5) == 500_000

    def test_bluetooth_capacity(self):
        assert units.BLUETOOTH_EDR_BITS_PER_SECOND == pytest.approx(2.1e6)


class TestTransferBudget:
    def test_budget_formula(self):
        assert units.transfer_budget_bits(1000.0, 10.0) == 10_000

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            units.transfer_budget_bits(-1.0, 10.0)
        with pytest.raises(ValueError):
            units.transfer_budget_bits(1.0, -10.0)


class TestFormatting:
    @pytest.mark.parametrize(
        "seconds,expected",
        [(30, "30s"), (90, "1.5m"), (7200, "2.0h"), (172800, "2.0d"), (864000, "10d")],
    )
    def test_format_duration(self, seconds, expected):
        assert units.format_duration(seconds) == expected

    @pytest.mark.parametrize(
        "bits,expected",
        [(500, "500b"), (2000, "2.0Kb"), (2_000_000, "2.0Mb"), (3_000_000_000, "3.00Gb")],
    )
    def test_format_size(self, bits, expected):
        assert units.format_size(bits) == expected
