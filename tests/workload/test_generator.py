"""Unit tests for the workload process (paper Sec. VI-A)."""

import numpy as np
import pytest

from repro.rng import SeedSequenceFactory
from repro.workload.config import WorkloadConfig
from repro.workload.generator import WorkloadProcess


def process(num_nodes=20, seed=5, **config_overrides):
    config = WorkloadConfig(
        mean_data_lifetime=1000.0, mean_data_size=100, **config_overrides
    )
    rng = SeedSequenceFactory(seed).generator("workload")
    return WorkloadProcess(config, num_nodes, rng), config


class TestDataRound:
    def test_generation_probability_respected(self):
        proc, _ = process(num_nodes=2000)
        items = proc.data_round(0.0, [False] * 2000)
        # Binomial(2000, 0.2): 5 sigma ~ 90
        assert len(items) == pytest.approx(400, abs=100)

    def test_nodes_with_live_data_skip(self):
        proc, _ = process(num_nodes=10)
        items = proc.data_round(0.0, [True] * 10)
        assert items == []

    def test_lifetime_and_size_bounds(self):
        proc, config = process(num_nodes=3000)
        items = proc.data_round(0.0, [False] * 3000)
        lo_l, hi_l = config.lifetime_bounds
        lo_s, hi_s = config.size_bounds
        for item in items:
            assert lo_l <= item.lifetime <= hi_l
            assert lo_s - 1 <= item.size <= hi_s + 1

    def test_unique_increasing_data_ids(self):
        proc, _ = process(num_nodes=100)
        a = proc.data_round(0.0, [False] * 100)
        b = proc.data_round(1000.0, [False] * 100)
        ids = [d.data_id for d in a + b]
        assert len(set(ids)) == len(ids)

    def test_wrong_flag_vector_length_rejected(self):
        proc, _ = process(num_nodes=10)
        with pytest.raises(ValueError):
            proc.data_round(0.0, [False] * 5)


class TestLiveItems:
    def test_live_items_excludes_expired(self):
        proc, _ = process(num_nodes=500)
        proc.data_round(0.0, [False] * 500)
        live_soon = proc.live_items(100.0)
        live_late = proc.live_items(10_000.0)
        assert len(live_soon) > 0
        assert len(live_late) == 0

    def test_live_items_in_popularity_order(self):
        proc, _ = process(num_nodes=500)
        proc.data_round(0.0, [False] * 500)
        live = proc.live_items(100.0)
        keys = [proc._popularity_key[d.data_id] for d in live]
        assert keys == sorted(keys)

    def test_popularity_rank(self):
        proc, _ = process(num_nodes=500)
        proc.data_round(0.0, [False] * 500)
        live = proc.live_items(100.0)
        assert proc.popularity_rank(live[0].data_id, 100.0) == 1
        assert proc.popularity_rank(999_999, 100.0) is None

    def test_item_by_id(self):
        proc, _ = process(num_nodes=500)
        items = proc.data_round(0.0, [False] * 500)
        assert proc.item_by_id(items[0].data_id) is items[0]
        assert proc.item_by_id(10**9) is None


class TestQueryRound:
    def _seeded_with_data(self, num_nodes=300):
        proc, config = process(num_nodes=num_nodes)
        proc.data_round(0.0, [False] * num_nodes)
        return proc, config

    def test_queries_reference_live_data(self):
        proc, _ = self._seeded_with_data()
        live_ids = {d.data_id for d in proc.live_items(10.0)}
        queries = proc.query_round(10.0, holdings={})
        assert all(q.data_id in live_ids for q in queries)

    def test_queries_carry_constraint(self):
        proc, config = self._seeded_with_data()
        queries = proc.query_round(10.0, holdings={})
        assert all(q.time_constraint == config.query_time_constraint for q in queries)

    def test_no_self_requests(self):
        proc, _ = self._seeded_with_data()
        queries = proc.query_round(10.0, holdings={})
        by_id = {d.data_id: d for d in proc.generated_items}
        assert all(by_id[q.data_id].source != q.requester for q in queries)

    def test_holdings_suppress_requests(self):
        proc, _ = self._seeded_with_data()
        live_ids = {d.data_id for d in proc.live_items(10.0)}
        holdings = {node: set(live_ids) for node in range(300)}
        assert proc.query_round(10.0, holdings) == []

    def test_empty_catalogue_no_queries(self):
        proc, _ = process(num_nodes=10)
        assert proc.query_round(0.0, holdings={}) == []

    def test_expected_query_volume(self):
        # With every item live, sum_j P_j = 1 per node per round (minus
        # self/holdings filtering), so ~num_nodes queries per round.
        proc, _ = self._seeded_with_data(num_nodes=300)
        queries = proc.query_round(10.0, holdings={})
        assert len(queries) == pytest.approx(300, rel=0.35)

    def test_popular_ranks_requested_more(self):
        proc, _ = self._seeded_with_data(num_nodes=500)
        queries = []
        for t in (10.0, 20.0, 30.0):
            queries.extend(proc.query_round(t, holdings={}))
        live = proc.live_items(10.0)
        top = live[0].data_id
        bottom = live[-1].data_id
        count_top = sum(1 for q in queries if q.data_id == top)
        count_bottom = sum(1 for q in queries if q.data_id == bottom)
        assert count_top > count_bottom


class TestDeterminism:
    def test_same_seed_same_workload(self):
        a, _ = process(seed=9, num_nodes=100)
        b, _ = process(seed=9, num_nodes=100)
        items_a = a.data_round(0.0, [False] * 100)
        items_b = b.data_round(0.0, [False] * 100)
        assert [(d.data_id, d.source, d.size) for d in items_a] == [
            (d.data_id, d.source, d.size) for d in items_b
        ]


class TestPruning:
    def test_expired_items_prune_after_grace(self):
        proc, config = process(num_nodes=200)
        items = proc.data_round(0.0, [False] * 200)
        total = len(items)
        assert proc.data_items_generated == total
        far = max(d.expires_at for d in items) + config.query_time_constraint + 1.0
        proc.query_round(far, {})
        assert proc.generated_items == ()
        assert proc.item_by_id(items[0].data_id) is None
        # The cumulative counter is prune-proof.
        assert proc.data_items_generated == total

    def test_items_within_grace_survive(self):
        """An expired item stays resolvable for one query constraint —
        a response for it may still be in flight — and drops only once
        past the grace."""
        proc, config = process(num_nodes=300)
        items = proc.data_round(0.0, [False] * 300)
        first = min(items, key=lambda d: d.expires_at)
        last = max(items, key=lambda d: d.expires_at)
        now = first.expires_at + config.query_time_constraint + 1.0
        proc.query_round(now, {})
        assert proc.item_by_id(first.data_id) is None
        assert proc.item_by_id(last.data_id) is last

    def test_creation_order_contract_preserved(self):
        proc, _ = process(num_nodes=200)
        a = proc.data_round(0.0, [False] * 200)
        b = proc.data_round(2500.0, [False] * 200)
        # Round-1 items (expiry <= 1500, grace 500) prune when round 2 runs.
        retained = proc.generated_items
        assert list(retained) == b
        ids = [d.data_id for d in retained]
        assert ids == sorted(ids)
        assert proc.data_items_generated == len(a) + len(b)

    def test_live_views_consistent_after_prune(self):
        proc, _ = process(num_nodes=300)
        proc.data_round(0.0, [False] * 300)
        proc.data_round(2500.0, [False] * 300)
        live = proc.live_items(2501.0)
        assert live  # only round-2 items
        keys = [proc._popularity_key[d.data_id] for d in live]
        assert keys == sorted(keys)
        assert proc.popularity_rank(live[0].data_id, 2501.0) == 1


class TestZipfReuse:
    def test_distribution_reused_across_rounds(self):
        proc, _ = process(num_nodes=100)
        proc.data_round(0.0, [False] * 100)
        proc.query_round(10.0, {})
        shared = proc._zipf
        assert shared is not None
        proc.data_round(1200.0, [False] * 100)
        proc.query_round(1210.0, {})
        assert proc._zipf is shared  # resized in place, never rebuilt

    def test_reuse_pins_probabilities_and_rng_stream(self):
        """The shared, resized distribution must reproduce the former
        construct-fresh-every-round behaviour bitwise: identical pmf
        over a changing catalogue and an identically consumed RNG
        stream, hence identical queries."""
        from repro.mathutils.zipf import ZipfDistribution

        proc, config = process(seed=17, num_nodes=80)
        ref, _ = process(seed=17, num_nodes=80)
        for data_t, query_t in ((0.0, 10.0), (1200.0, 1210.0), (2400.0, 2410.0)):
            proc.data_round(data_t, [False] * 80)
            ref.data_round(data_t, [False] * 80)
            live = ref.live_items(query_t)
            fresh = ZipfDistribution(len(live), config.zipf_exponent).pmf_vector()
            draws = ref._rng.random((80, len(live)))
            expected = []
            hit_nodes, hit_ranks = np.nonzero(draws < fresh)
            for node, rank in zip(hit_nodes.tolist(), hit_ranks.tolist()):
                item = live[rank]
                if item.source != node:
                    expected.append((node, item.data_id))
            got = [(q.requester, q.data_id) for q in proc.query_round(query_t, {})]
            assert got == expected
            np.testing.assert_array_equal(proc._zipf.pmf_vector(), fresh)


class TestVectorizedQueryRound:
    def test_batched_draws_match_sequential_reference(self):
        """The one-call (nodes × ranks) RNG fill must reproduce the
        per-node sequential draws of the scalar loop bitwise: PCG64
        fills a 2-D request row-major, so stream consumption — and
        hence every query decision — is unchanged."""
        proc, config = process(seed=13, num_nodes=60)
        proc.data_round(0.0, [False] * 60)
        holdings = {0: frozenset({0}), 3: frozenset({1, 2})}

        # Reference replica of the pre-vectorisation loop, on an
        # identically-seeded independent process.
        ref, _ = process(seed=13, num_nodes=60)
        ref.data_round(0.0, [False] * 60)
        now = 10.0
        live = ref.live_items(now)
        from repro.mathutils.zipf import ZipfDistribution

        probabilities = ZipfDistribution(
            len(live), config.zipf_exponent
        ).pmf_vector()
        expected = []
        for node in range(ref.num_nodes):
            held = holdings.get(node, frozenset())
            draws = ref._rng.random(len(live))
            for rank_index, item in enumerate(live):
                if draws[rank_index] >= probabilities[rank_index]:
                    continue
                if item.source == node or item.data_id in held:
                    continue
                expected.append((node, item.data_id))

        queries = proc.query_round(now, holdings)
        assert [(q.requester, q.data_id) for q in queries] == expected
