"""Unit and paired-determinism tests for the arrival processes.

``DETERMINISM_PROCESSES`` is the contract enforced by
``scripts/check_workload_registry.py``: every name registered in
:data:`repro.workload.arrivals.ARRIVALS` must appear in this list, and
this module runs the same-seed ⇒ same-query-stream test for each entry.
"""

import math

import pytest

from repro.errors import ConfigurationError
from repro.rng import SeedSequenceFactory
from repro.workload.arrivals import (
    ARRIVALS,
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    FlashCrowdArrivals,
    PeriodicArrivals,
    build_arrivals,
)
from repro.workload.config import WorkloadConfig
from repro.workload.generator import WorkloadProcess

#: every registered arrival process MUST be listed here (registry lint).
DETERMINISM_PROCESSES = ["periodic", "bursty", "diurnal", "flash_crowd"]


def make_process(arrival, seed=11, num_nodes=80, params=None):
    config = WorkloadConfig(
        mean_data_lifetime=1000.0,
        mean_data_size=100,
        arrival_process=arrival,
        arrival_params=params,
    )
    factory = SeedSequenceFactory(seed)
    proc = WorkloadProcess(
        config,
        num_nodes,
        factory.generator("workload"),
        arrival_rng=factory.generator("workload.arrivals"),
    )
    proc.set_window(0.0, 4000.0)
    return proc


def query_stream(proc, rounds=6):
    """Data round then several query rounds; the comparable query tuple
    stream (ids come from a global counter, so they are excluded)."""
    proc.data_round(0.0, [False] * proc.num_nodes)
    stream = []
    for index in range(rounds):
        now = 10.0 + index * 500.0
        stream.append(
            [(q.requester, q.data_id, q.created_at) for q in proc.query_round(now, {})]
        )
    return stream


class TestRegistry:
    def test_all_processes_registered(self):
        assert set(DETERMINISM_PROCESSES) == set(ARRIVALS.names())

    def test_unknown_process_rejected(self):
        with pytest.raises(ConfigurationError):
            build_arrivals("avalanche", None)

    def test_unknown_param_rejected(self):
        with pytest.raises(ConfigurationError):
            build_arrivals("bursty", {"bogus": 1.0})

    def test_periodic_takes_no_params(self):
        with pytest.raises(ConfigurationError):
            build_arrivals("periodic", {"rate": 2.0})

    def test_config_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(arrival_process="")

    def test_config_rejects_non_numeric_params(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(arrival_params={"at": "noon"})


class TestDeterminism:
    @pytest.mark.parametrize("name", DETERMINISM_PROCESSES)
    def test_same_seed_same_query_stream(self, name):
        a = make_process(name, seed=21)
        b = make_process(name, seed=21)
        assert query_stream(a) == query_stream(b)

    @pytest.mark.parametrize("name", ["bursty", "diurnal", "flash_crowd"])
    def test_arrival_stream_never_perturbs_catalogue(self, name):
        """Switching arrival processes must leave the data catalogue —
        drawn from the independent ``workload`` stream — untouched."""
        base = make_process("periodic", seed=33)
        other = make_process(name, seed=33)
        items_a = base.data_round(0.0, [False] * base.num_nodes)
        items_b = other.data_round(0.0, [False] * other.num_nodes)
        assert [(d.source, d.size, d.expires_at) for d in items_a] == [
            (d.source, d.size, d.expires_at) for d in items_b
        ]


class TestPeriodic:
    def test_is_pure_baseline(self):
        proc = PeriodicArrivals()
        assert not proc.uses_rng
        assert proc.round_intensity(123.0) == 1.0
        assert proc.flash_fraction(123.0) == 0.0

    def test_matches_pre_arrival_engine_bitwise(self):
        """A periodic process given an arrival stream must issue the
        same queries as one that never received a stream at all."""
        config = WorkloadConfig(mean_data_lifetime=1000.0, mean_data_size=100)
        legacy = WorkloadProcess(
            config, 80, SeedSequenceFactory(11).generator("workload")
        )
        modern = make_process("periodic", seed=11)
        legacy.data_round(0.0, [False] * 80)
        modern_stream = []
        modern.data_round(0.0, [False] * 80)
        for now in (10.0, 510.0, 1010.0):
            expected = [(q.requester, q.data_id) for q in legacy.query_round(now, {})]
            got = [(q.requester, q.data_id) for q in modern.query_round(now, {})]
            modern_stream.append((expected, got))
        for expected, got in modern_stream:
            assert expected == got


class TestBursty:
    def test_intensities_are_two_state(self):
        import numpy as np

        proc = BurstyArrivals({"base": 0.25, "burst": 4.0})
        proc.bind(np.random.default_rng(3))
        seen = {proc.round_intensity(float(t)) for t in range(200)}
        assert seen == {0.25, 4.0}

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ConfigurationError):
            BurstyArrivals({"p_enter": 1.5})
        with pytest.raises(ConfigurationError):
            BurstyArrivals({"base": -0.1})


class TestDiurnal:
    def test_sinusoid_from_window_start(self):
        proc = DiurnalArrivals({"amplitude": 0.5, "period": 100.0})
        proc.set_window(1000.0, 2000.0)
        assert proc.round_intensity(1000.0) == pytest.approx(1.0)
        assert proc.round_intensity(1025.0) == pytest.approx(1.5)
        assert proc.round_intensity(1075.0) == pytest.approx(0.5)

    def test_floored_at_zero(self):
        proc = DiurnalArrivals({"amplitude": 2.0, "period": 100.0})
        proc.set_window(0.0, 200.0)
        assert proc.round_intensity(75.0) == 0.0

    def test_phase_offset(self):
        proc = DiurnalArrivals({"amplitude": 1.0, "period": 100.0, "phase": math.pi / 2})
        proc.set_window(0.0, 200.0)
        assert proc.round_intensity(0.0) == pytest.approx(2.0)

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            DiurnalArrivals({"period": 0.0})
        with pytest.raises(ConfigurationError):
            DiurnalArrivals({"amplitude": -1.0})


class TestFlashCrowd:
    def test_window_boundaries(self):
        proc = FlashCrowdArrivals({"at": 0.5, "duration": 0.1, "probability": 0.8})
        proc.set_window(0.0, 1000.0)
        assert proc.flash_fraction(499.0) == 0.0
        assert proc.flash_fraction(500.0) == 0.8
        assert proc.flash_fraction(599.0) == 0.8
        assert proc.flash_fraction(600.0) == 0.0

    def test_no_surge_before_window_announced(self):
        proc = FlashCrowdArrivals()
        assert proc.flash_fraction(500.0) == 0.0

    def test_surge_targets_top_ranked_item(self):
        proc = make_process(
            "flash_crowd",
            seed=5,
            params={"at": 0.0, "duration": 1.0, "probability": 1.0, "rank": 1},
        )
        proc.data_round(0.0, [False] * proc.num_nodes)
        top = proc.live_items(10.0)[0]
        queries = proc.query_round(10.0, {})
        surge = [q for q in queries if q.data_id == top.data_id]
        # probability=1.0: every node except the source queries the target.
        assert len(surge) >= proc.num_nodes - 1
        assert all(q.requester != top.source for q in surge)

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            FlashCrowdArrivals({"at": 1.5})
        with pytest.raises(ConfigurationError):
            FlashCrowdArrivals({"rank": 0})
        with pytest.raises(ConfigurationError):
            FlashCrowdArrivals({"probability": 2.0})


class TestBaseClass:
    def test_window_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ArrivalProcess().set_window(10.0, 10.0)
