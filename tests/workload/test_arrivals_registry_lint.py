"""The arrival-registry lint: clean tree, plus synthetic violations.

``scripts/check_workload_registry.py`` asserts every registered arrival
process appears in ``DETERMINISM_PROCESSES`` (the paired-determinism
parametrization in ``test_arrivals.py``) and is smoke tested somewhere
under ``tests/``.  Running it under pytest keeps the contract in tier-1
instead of relying on a manual script invocation.
"""

import importlib.util
import os

import pytest

from repro.workload.arrivals import ARRIVALS

_SCRIPT = os.path.join(
    os.path.dirname(__file__),
    os.pardir,
    os.pardir,
    "scripts",
    "check_workload_registry.py",
)


@pytest.fixture(scope="module")
def lint():
    spec = importlib.util.spec_from_file_location("check_workload_registry", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_every_arrival_process_is_determinism_tested(lint):
    violations = lint.collect_violations()
    assert violations == [], "\n".join(str(v) for v in violations)


def test_registry_is_nonempty(lint):
    assert ARRIVALS.names(), "arrival registry is empty"


def test_missing_coverage_is_flagged(lint, tmp_path):
    # An empty tests tree covers nothing: every name must be flagged as
    # missing its smoke mention (the determinism list still parses from
    # the real test file, so only the smoke violations appear per name).
    (tmp_path / "test_nothing.py").write_text("def test_nothing():\n    pass\n")
    violations = lint.collect_violations(str(tmp_path))
    flagged = {v.name for v in violations}
    for name in ARRIVALS.names():
        assert name in flagged


def test_parsed_list_matches_registry(lint):
    assert set(lint.determinism_tested_names()) == set(ARRIVALS.names())


def test_script_main_exits_zero(lint, capsys):
    assert lint.main() == 0
    assert "determinism-tested" in capsys.readouterr().out
