"""Unit tests for workload configuration (paper Sec. VI-A)."""

import pytest

from repro.errors import ConfigurationError
from repro.units import MEGABIT, WEEK
from repro.workload.config import WorkloadConfig


class TestDefaults:
    def test_paper_defaults(self):
        config = WorkloadConfig()
        assert config.mean_data_lifetime == 1 * WEEK
        assert config.mean_data_size == 100 * MEGABIT
        assert config.generation_probability == 0.2
        assert config.zipf_exponent == 1.0
        assert config.buffer_min == 200 * MEGABIT
        assert config.buffer_max == 600 * MEGABIT

    def test_derived_periods(self):
        config = WorkloadConfig(mean_data_lifetime=1000.0)
        assert config.data_generation_period == 1000.0
        assert config.query_generation_period == 500.0
        assert config.query_time_constraint == 500.0

    def test_uniform_bounds(self):
        config = WorkloadConfig(mean_data_lifetime=100.0, mean_data_size=10)
        assert config.lifetime_bounds == (50.0, 150.0)
        assert config.size_bounds == (5.0, 15.0)


class TestValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"mean_data_lifetime": 0.0},
            {"mean_data_size": 0},
            {"generation_probability": -0.1},
            {"generation_probability": 1.1},
            {"zipf_exponent": -1.0},
            {"buffer_min": 0},
            {"buffer_min": 700 * MEGABIT},  # min > max
        ],
    )
    def test_invalid_configs_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(**overrides)
