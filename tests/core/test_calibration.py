"""Unit tests for adaptive metric time-budget calibration (Sec. IV-B)."""

import numpy as np
import pytest

from repro.core.ncl import calibrate_time_budget, ncl_metrics
from repro.errors import ConfigurationError
from repro.graph.contact_graph import ContactGraph
from repro.traces.catalog import load_preset_trace
from repro.units import HOUR


class TestCalibration:
    def test_hits_the_target_median(self, line_graph):
        budget = calibrate_time_budget(line_graph, target_median=0.5)
        median = float(np.median(ncl_metrics(line_graph, budget)))
        assert median == pytest.approx(0.5, abs=0.08)

    def test_higher_target_needs_larger_budget(self, line_graph):
        low = calibrate_time_budget(line_graph, target_median=0.3)
        high = calibrate_time_budget(line_graph, target_median=0.7)
        assert high > low

    def test_differentiates_saturated_trace(self):
        """On a dense synthetic trace the published T saturates the metric;
        the calibrated T restores the Fig. 4 skew."""
        trace = load_preset_trace("infocom06", seed=1, node_factor=0.5, time_factor=0.3)
        graph = ContactGraph.from_trace(trace)
        budget = calibrate_time_budget(graph, sample_sources=20)
        metrics = ncl_metrics(graph, budget)
        assert 0.2 < float(np.median(metrics)) < 0.8

    def test_sampling_approximates_full_calibration(self):
        trace = load_preset_trace("infocom05", seed=1, node_factor=0.6, time_factor=0.4)
        graph = ContactGraph.from_trace(trace)
        full = calibrate_time_budget(graph)
        sampled = calibrate_time_budget(graph, sample_sources=10, seed=3)
        assert sampled == pytest.approx(full, rel=1.0)  # same order of magnitude

    def test_disconnected_graph_returns_finite_budget(self):
        graph = ContactGraph(4)
        graph.set_rate(0, 1, 1.0 / HOUR)
        # nodes 2, 3 unreachable: median metric can never reach 0.5
        budget = calibrate_time_budget(graph, target_median=0.9)
        assert np.isfinite(budget) and budget > 0

    def test_validation(self, line_graph):
        with pytest.raises(ConfigurationError):
            calibrate_time_budget(line_graph, target_median=0.0)
        with pytest.raises(ConfigurationError):
            calibrate_time_budget(ContactGraph(1))
