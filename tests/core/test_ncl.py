"""Unit tests for NCL metric and selection (paper Eq. 3, Sec. IV)."""

import numpy as np
import pytest

from repro.core.ncl import ncl_metric, ncl_metrics, select_ncls
from repro.errors import ConfigurationError
from repro.graph.contact_graph import ContactGraph
from repro.graph.paths import shortest_path_weights_from
from repro.units import HOUR


class TestMetric:
    def test_hub_has_highest_metric(self, star_graph):
        metrics = ncl_metrics(star_graph, time_budget=2 * HOUR)
        assert metrics[0] == metrics.max()

    def test_metric_matches_definition(self, star_graph):
        # C_i = mean of path weights from all other nodes (Eq. 3).
        budget = 2 * HOUR
        weights = shortest_path_weights_from(star_graph, 0, budget)
        expected = (weights.sum() - 1.0) / 5
        assert ncl_metric(star_graph, 0, budget) == pytest.approx(expected)

    def test_metric_bounded(self, line_graph):
        metrics = ncl_metrics(line_graph, time_budget=5 * HOUR)
        assert all(0.0 <= m <= 1.0 for m in metrics)

    def test_metric_grows_with_budget(self, line_graph):
        short = ncl_metric(line_graph, 1, time_budget=1 * HOUR)
        long = ncl_metric(line_graph, 1, time_budget=20 * HOUR)
        assert long > short

    def test_isolated_node_has_zero_metric(self):
        graph = ContactGraph(3)
        graph.set_rate(0, 1, 0.5)
        metrics = ncl_metrics(graph, time_budget=100.0)
        assert metrics[2] == 0.0

    def test_single_node_graph_rejected(self):
        with pytest.raises(ConfigurationError):
            ncl_metrics(ContactGraph(1), time_budget=10.0)


class TestSelection:
    def test_top_k_by_metric(self, star_graph):
        selection = select_ncls(star_graph, k=2, time_budget=2 * HOUR)
        assert selection.central_nodes[0] == 0  # hub first
        assert selection.k == 2

    def test_deterministic_tie_break_by_node_id(self, star_graph):
        # all leaves have identical metrics; ties break toward lower ids
        selection = select_ncls(star_graph, k=3, time_budget=2 * HOUR)
        assert selection.central_nodes == (0, 1, 2)

    def test_nearest_central_assignment(self, star_graph):
        selection = select_ncls(star_graph, k=1, time_budget=2 * HOUR)
        assert all(selection.nearest_central == 0)

    def test_central_node_weight_to_itself_is_one(self, star_graph):
        selection = select_ncls(star_graph, k=2, time_budget=2 * HOUR)
        for central in selection.central_nodes:
            assert selection.weight_to(central, central) == 1.0
            assert selection.best_weight(central) == 1.0

    def test_disconnected_node_has_no_central(self):
        graph = ContactGraph(4)
        graph.set_rate(0, 1, 0.5)
        graph.set_rate(0, 2, 0.5)
        selection = select_ncls(graph, k=1, time_budget=100.0)
        assert selection.nearest_central[3] == -1
        assert selection.best_weight(3) == 0.0

    def test_rank_of(self, star_graph):
        selection = select_ncls(star_graph, k=2, time_budget=2 * HOUR)
        assert selection.rank_of(selection.central_nodes[0]) == 0
        assert selection.rank_of(99 % 6) is None or isinstance(
            selection.rank_of(3), (int, type(None))
        )

    def test_is_central(self, star_graph):
        selection = select_ncls(star_graph, k=1, time_budget=2 * HOUR)
        assert selection.is_central(0)
        assert not selection.is_central(1)

    def test_k_validation(self, star_graph):
        with pytest.raises(ConfigurationError):
            select_ncls(star_graph, k=0, time_budget=10.0)
        with pytest.raises(ConfigurationError):
            select_ncls(star_graph, k=7, time_budget=10.0)

    def test_skewed_graph_selects_hubs(self):
        # two-community graph: nodes 0 and 5 are community hubs.
        graph = ContactGraph(10)
        for leaf in range(1, 5):
            graph.set_rate(0, leaf, 1.0 / HOUR)
        for leaf in range(6, 10):
            graph.set_rate(5, leaf, 1.0 / HOUR)
        graph.set_rate(0, 5, 1.0 / (2 * HOUR))
        selection = select_ncls(graph, k=2, time_budget=3 * HOUR)
        assert set(selection.central_nodes) == {0, 5}
