"""Unit tests for probabilistic response strategies (paper Sec. V-C)."""

import numpy as np
import pytest

from repro.core.response import AlwaysRespond, PathAwareResponse, SigmoidResponse
from repro.graph.contact_graph import ContactGraph
from repro.units import HOUR


class TestAlwaysRespond:
    def test_always_true(self, query_factory, rng):
        strategy = AlwaysRespond()
        decision = strategy.decide(query_factory(), now=0.0, caching_node=3, rng=rng)
        assert decision.respond
        assert decision.probability == 1.0


class TestSigmoidResponse:
    def test_probability_boundaries(self, query_factory):
        strategy = SigmoidResponse(p_min=0.45, p_max=0.8)
        query = query_factory(created_at=0.0, time_constraint=10 * HOUR)
        assert strategy.probability(query, now=0.0) == pytest.approx(0.45)
        assert strategy.probability(query, now=10 * HOUR) == pytest.approx(0.8)

    def test_probability_rises_with_elapsed_time(self, query_factory):
        strategy = SigmoidResponse()
        query = query_factory(created_at=0.0, time_constraint=1000.0)
        probs = [strategy.probability(query, now=t) for t in (0, 250, 500, 1000)]
        assert probs == sorted(probs)

    def test_decision_frequency_tracks_probability(self, query_factory, rng):
        strategy = SigmoidResponse(p_min=0.45, p_max=0.8)
        query = query_factory(created_at=0.0, time_constraint=100.0)
        decisions = [
            strategy.decide(query, now=0.0, caching_node=1, rng=rng).respond
            for _ in range(4000)
        ]
        assert np.mean(decisions) == pytest.approx(0.45, abs=0.03)

    def test_invalid_parameters_rejected_eagerly(self):
        with pytest.raises(ValueError):
            SigmoidResponse(p_min=0.3, p_max=0.8)  # p_min <= p_max/2

    def test_elapsed_clamped_below_at_zero(self, query_factory):
        """Clock skew handing t₀ < 0 must pin the probability at p_min —
        the sigmoid would otherwise dip below its floor."""
        strategy = SigmoidResponse(p_min=0.45, p_max=0.8)
        query = query_factory(created_at=100.0, time_constraint=1000.0)
        assert strategy.probability(query, now=0.0) == pytest.approx(0.45)
        assert strategy.probability(query, now=-500.0) == pytest.approx(0.45)

    def test_elapsed_clamped_above_at_constraint(self, query_factory):
        """A late-forwarded query with t₀ > T_q must pin at p_max: the
        unclamped Eq. (4) supremum is k₁ = 2·p_min > p_max, so without
        the clamp stale queries would be answered with probability > p_max
        (and eventually > 1)."""
        strategy = SigmoidResponse(p_min=0.45, p_max=0.8)
        query = query_factory(created_at=0.0, time_constraint=1000.0)
        assert strategy.probability(query, now=1500.0) == pytest.approx(0.8)
        assert strategy.probability(query, now=1e9) == pytest.approx(0.8)

    def test_probability_never_exceeds_bounds(self, query_factory):
        strategy = SigmoidResponse(p_min=0.45, p_max=0.8)
        query = query_factory(created_at=0.0, time_constraint=500.0)
        for now in (-100.0, 0.0, 250.0, 500.0, 501.0, 1e6):
            prob = strategy.probability(query, now=now)
            assert 0.45 <= prob <= 0.8

    def test_sigmoids_memoised_per_time_constraint(self, query_factory):
        strategy = SigmoidResponse()
        a = query_factory(query_id=1, time_constraint=100.0)
        b = query_factory(query_id=2, time_constraint=100.0)
        c = query_factory(query_id=3, time_constraint=200.0)
        for query in (a, b, c):
            strategy.probability(query, now=0.0)
        assert len(strategy._sigmoids) == 2


class TestPathAwareResponse:
    def test_uses_path_weight_to_requester(self, line_graph, query_factory):
        strategy = PathAwareResponse(line_graph, floor=0.0)
        query = query_factory(requester=3, created_at=0.0, time_constraint=20 * HOUR)
        # caching node 2 is one hop (rate 1/4h) from requester 3
        prob = strategy.probability(query, now=0.0, caching_node=2)
        from repro.mathutils.hypoexponential import path_delivery_probability

        assert prob == pytest.approx(
            path_delivery_probability([1.0 / (4 * HOUR)], 20 * HOUR)
        )

    def test_expired_query_never_answered(self, line_graph, query_factory):
        strategy = PathAwareResponse(line_graph)
        query = query_factory(requester=3, created_at=0.0, time_constraint=10.0)
        assert strategy.probability(query, now=999.0, caching_node=0) == 0.0

    def test_unreachable_requester_gets_floor(self, query_factory):
        graph = ContactGraph(3)
        graph.set_rate(0, 1, 0.5)
        strategy = PathAwareResponse(graph, floor=0.07)
        query = query_factory(requester=2, created_at=0.0, time_constraint=100.0)
        assert strategy.probability(query, now=0.0, caching_node=0) == 0.07

    def test_no_graph_gives_floor(self, query_factory):
        strategy = PathAwareResponse(None, floor=0.05)
        query = query_factory(created_at=0.0, time_constraint=100.0)
        assert strategy.probability(query, now=0.0, caching_node=0) == 0.05

    def test_update_graph(self, line_graph, query_factory):
        strategy = PathAwareResponse(None, floor=0.0)
        strategy.update_graph(line_graph)
        query = query_factory(requester=1, created_at=0.0, time_constraint=10 * HOUR)
        assert strategy.probability(query, now=0.0, caching_node=0) > 0.0

    def test_floor_validation(self):
        with pytest.raises(ValueError):
            PathAwareResponse(None, floor=1.5)
