"""Unit tests for data-popularity estimation (paper Eq. 5-6)."""

import math

import pytest

from repro.core.popularity import PopularityEstimator, PopularityTable


class TestEstimator:
    def test_popularity_matches_eq6(self):
        est = PopularityEstimator()
        # k = 3 requests over [100, 300]: lambda_d = 3/200
        for t in (100.0, 200.0, 300.0):
            est.record_request(t)
        expires = 700.0  # horizon t_e - t_k = 400
        expected = 1.0 - math.exp(-(3 / 200.0) * 400.0)
        assert est.popularity(expires) == pytest.approx(expected)

    def test_never_requested_is_zero(self):
        assert PopularityEstimator().popularity(1000.0) == 0.0

    def test_single_request_is_zero(self):
        est = PopularityEstimator()
        est.record_request(10.0)
        assert est.popularity(1000.0) == 0.0

    def test_expired_horizon_is_zero(self):
        est = PopularityEstimator()
        est.record_request(10.0)
        est.record_request(20.0)
        assert est.popularity(expires_at=20.0) == 0.0

    def test_popularity_in_unit_interval(self):
        est = PopularityEstimator()
        for t in range(0, 100, 10):
            est.record_request(float(t))
        assert 0.0 <= est.popularity(500.0) <= 1.0

    def test_more_requests_higher_popularity(self):
        sparse = PopularityEstimator()
        dense = PopularityEstimator()
        for t in (0.0, 100.0):
            sparse.record_request(t)
        for t in (0.0, 25.0, 50.0, 75.0, 100.0):
            dense.record_request(t)
        assert dense.popularity(200.0) > sparse.popularity(200.0)

    def test_merge_unions_history(self):
        a = PopularityEstimator()
        b = PopularityEstimator()
        a.record_request(0.0)
        a.record_request(100.0)
        b.record_request(50.0)
        b.record_request(150.0)
        a.merge(b)
        assert a.request_count == 4
        # lambda = 4 / (150 - 0)
        assert a.request_rate() == pytest.approx(4 / 150.0)


class TestTable:
    def test_records_per_data_id(self, item_factory):
        table = PopularityTable()
        table.record_request(1, 10.0)
        table.record_request(1, 20.0)
        table.record_request(2, 15.0)
        assert table.request_count(1) == 2
        assert table.request_count(2) == 1
        assert table.request_count(99) == 0

    def test_popularity_for_unknown_is_zero(self):
        assert PopularityTable().popularity(5, 100.0) == 0.0

    def test_contains_and_len(self):
        table = PopularityTable()
        table.record_request(3, 1.0)
        assert 3 in table
        assert 4 not in table
        assert len(table) == 1

    def test_forget_drops_history(self):
        table = PopularityTable()
        table.record_request(3, 1.0)
        table.forget(3)
        assert 3 not in table
        table.forget(3)  # idempotent

    def test_merge_from(self):
        a = PopularityTable()
        b = PopularityTable()
        a.record_request(1, 10.0)
        b.record_request(1, 20.0)
        b.record_request(2, 5.0)
        a.merge_from(b)
        assert a.request_count(1) == 2
        assert a.request_count(2) == 1
