"""Unit tests for cache-replacement policies (paper Sec. V-D, Fig. 12)."""

import numpy as np
import pytest

from repro.core.buffer import CacheBuffer
from repro.core.replacement import (
    ExchangeContext,
    FIFOPolicy,
    GreedyDualSizePolicy,
    LRUPolicy,
    UtilityKnapsackPolicy,
)
from tests.conftest import make_item


def context(now=0.0, utility_a=None, utility_b=None, seed=0, **kwargs):
    return ExchangeContext(
        now=now,
        utility_a=utility_a or (lambda d: 0.5),
        utility_b=utility_b or (lambda d: 0.5),
        rng=np.random.default_rng(seed),
        **kwargs,
    )


class TestFIFOAdmit:
    def test_evicts_oldest_insertion(self):
        policy = FIFOPolicy()
        buffer = CacheBuffer(30)
        first = make_item(data_id=1, size=15)
        second = make_item(data_id=2, size=15)
        policy.admit(buffer, first, now=0.0)
        policy.admit(buffer, second, now=0.0)
        newcomer = make_item(data_id=3, size=15)
        assert policy.admit(buffer, newcomer, now=0.0)
        assert 1 not in buffer and 2 in buffer and 3 in buffer

    def test_oversized_item_refused(self):
        policy = FIFOPolicy()
        buffer = CacheBuffer(10)
        assert not policy.admit(buffer, make_item(size=20), now=0.0)

    def test_expired_evicted_first(self):
        policy = FIFOPolicy()
        buffer = CacheBuffer(20)
        policy.admit(buffer, make_item(data_id=1, size=20, lifetime=5.0), now=0.0)
        assert policy.admit(buffer, make_item(data_id=2, size=20), now=10.0)
        assert 1 not in buffer


class TestLRUAdmit:
    def test_evicts_least_recently_used(self):
        policy = LRUPolicy()
        buffer = CacheBuffer(30)
        policy.admit(buffer, make_item(data_id=1, size=15), now=0.0)
        policy.admit(buffer, make_item(data_id=2, size=15), now=0.0)
        buffer.get(1)  # touch 1; 2 becomes LRU
        assert policy.admit(buffer, make_item(data_id=3, size=15), now=0.0)
        assert 2 not in buffer and 1 in buffer


class TestGDSAdmit:
    def test_evicts_lowest_h(self):
        # value 1 for all: H = L + 1/size, bigger items evicted first.
        policy = GreedyDualSizePolicy()
        buffer = CacheBuffer(30)
        policy.admit(buffer, make_item(data_id=1, size=20), now=0.0)
        policy.admit(buffer, make_item(data_id=2, size=10), now=0.0)
        assert policy.admit(buffer, make_item(data_id=3, size=20), now=0.0)
        assert 1 not in buffer and 2 in buffer

    def test_inflation_rises_on_eviction(self):
        policy = GreedyDualSizePolicy()
        buffer = CacheBuffer(20)
        policy.admit(buffer, make_item(data_id=1, size=20), now=0.0)
        before = policy.inflation
        policy.admit(buffer, make_item(data_id=2, size=20), now=0.0)
        assert policy.inflation > before

    def test_custom_value_fn(self):
        policy = GreedyDualSizePolicy(value_fn=lambda d: float(d.data_id))
        buffer = CacheBuffer(20)
        policy.admit(buffer, make_item(data_id=1, size=10), now=0.0)
        policy.admit(buffer, make_item(data_id=9, size=10), now=0.0)
        policy.admit(buffer, make_item(data_id=5, size=10), now=0.0)
        assert 1 not in buffer  # lowest value/size evicted
        assert 9 in buffer


class TestOrderedExchange:
    def test_exchange_conserves_items_when_space_allows(self):
        policy = FIFOPolicy()
        a, b = CacheBuffer(100), CacheBuffer(100)
        items = [make_item(data_id=i, size=20) for i in range(4)]
        for item in items[:2]:
            a.put(item)
        for item in items[2:]:
            b.put(item)
        result = policy.exchange(a, b, context())
        assert not result.dropped
        kept_ids = {d.data_id for d in result.kept_a} | {d.data_id for d in result.kept_b}
        assert kept_ids == {0, 1, 2, 3}

    def test_exchange_drops_only_under_pressure(self):
        policy = FIFOPolicy()
        a, b = CacheBuffer(20), CacheBuffer(20)
        for i in range(2):
            a.put(make_item(data_id=i, size=20))
            # only one fits in a
        b.put(make_item(data_id=5, size=20))
        a_items = a.items()
        result = policy.exchange(a, b, context())
        total_kept = len(result.kept_a) + len(result.kept_b)
        assert total_kept == 2  # 40 bits capacity, 20 each


class TestUtilityKnapsackExchange:
    def test_high_utility_lands_at_node_a(self):
        policy = UtilityKnapsackPolicy(probabilistic=False)
        a, b = CacheBuffer(40), CacheBuffer(40)
        hot = make_item(data_id=1, size=40)
        cold = make_item(data_id=2, size=40)
        b.put(hot)
        a.put(cold)
        utilities = {1: 0.9, 2: 0.1}
        ctx = context(
            utility_a=lambda d: utilities[d.data_id],
            utility_b=lambda d: utilities[d.data_id],
        )
        result = policy.exchange(a, b, ctx)
        assert [d.data_id for d in result.kept_a] == [1]
        assert 1 in a and 2 in b

    def test_no_data_lost_without_pressure(self):
        policy = UtilityKnapsackPolicy(probabilistic=True)
        a, b = CacheBuffer(100), CacheBuffer(100)
        for i in range(3):
            a.put(make_item(data_id=i, size=20))
        for i in range(3, 5):
            b.put(make_item(data_id=i, size=20))
        result = policy.exchange(a, b, context(seed=3))
        assert not result.dropped

    def test_zero_utility_items_survive(self):
        policy = UtilityKnapsackPolicy(probabilistic=True)
        a, b = CacheBuffer(60), CacheBuffer(60)
        for i in range(2):
            a.put(make_item(data_id=i, size=20))
        b.put(make_item(data_id=7, size=20))
        ctx = context(utility_a=lambda d: 0.0, utility_b=lambda d: 0.0, seed=5)
        result = policy.exchange(a, b, ctx)
        assert not result.dropped

    def test_drop_under_real_pressure_removes_lowest_utility(self):
        policy = UtilityKnapsackPolicy(probabilistic=False)
        a, b = CacheBuffer(40), CacheBuffer(40)
        utilities = {1: 0.9, 2: 0.8, 3: 0.05}
        a.put(make_item(data_id=1, size=40))
        b.put(make_item(data_id=2, size=40))
        # a second item on b overflows the combined capacity
        # (can't physically: buffer b full) -> craft via bigger buffers
        a2, b2 = CacheBuffer(40), CacheBuffer(80)
        a2.put(make_item(data_id=1, size=40))
        b2.put(make_item(data_id=2, size=40))
        b2.put(make_item(data_id=3, size=40))
        # shrink b's effective capacity by filling with an exempt item?
        # simpler: exchange with a smaller destination pool
        ctx = context(
            utility_a=lambda d: utilities[d.data_id],
            utility_b=lambda d: utilities[d.data_id],
        )
        result = policy.exchange(a2, b2, ctx)
        kept = {d.data_id for d in result.kept_a} | {d.data_id for d in result.kept_b}
        assert {1, 2}.issubset(kept)

    def test_exempt_items_stay_in_place(self):
        policy = UtilityKnapsackPolicy(probabilistic=False)
        a, b = CacheBuffer(40), CacheBuffer(40)
        pinned = make_item(data_id=1, size=20)
        floater = make_item(data_id=2, size=20)
        a.put(pinned)
        b.put(floater)
        ctx = context(
            utility_a=lambda d: 0.9,
            utility_b=lambda d: 0.9,
            exempt_a=lambda d: d.data_id == 1,
        )
        result = policy.exchange(a, b, ctx)
        assert 1 in a  # pinned never moved
        moved_ids = {d.data_id for d in result.kept_a} | {
            d.data_id for d in result.kept_b
        }
        assert 1 not in moved_ids

    def test_dedup_false_keeps_both_copies(self):
        policy = UtilityKnapsackPolicy(probabilistic=False)
        a, b = CacheBuffer(40), CacheBuffer(40)
        copy_a = make_item(data_id=1, size=20)
        copy_b = make_item(data_id=1, size=20)
        a.put(copy_a)
        b.put(copy_b)
        result = policy.exchange(a, b, context(dedup=False))
        assert 1 in a and 1 in b
        assert result.moved == 0

    def test_dedup_true_merges_duplicates(self):
        policy = UtilityKnapsackPolicy(probabilistic=False)
        a, b = CacheBuffer(40), CacheBuffer(40)
        a.put(make_item(data_id=1, size=20))
        b.put(make_item(data_id=1, size=20))
        policy.exchange(a, b, context(dedup=True))
        assert (1 in a) != (1 in b)  # exactly one copy survives

    def test_expired_items_dropped(self):
        policy = UtilityKnapsackPolicy()
        a, b = CacheBuffer(40), CacheBuffer(40)
        a.put(make_item(data_id=1, size=20, lifetime=5.0))
        b.put(make_item(data_id=2, size=20, lifetime=100.0))
        result = policy.exchange(a, b, context(now=50.0))
        assert 1 not in a and 1 not in b

    def test_moved_count_and_bits(self):
        policy = UtilityKnapsackPolicy(probabilistic=False)
        a, b = CacheBuffer(40), CacheBuffer(40)
        hot = make_item(data_id=1, size=40)
        b.put(hot)
        a.put(make_item(data_id=2, size=40))
        utilities = {1: 0.9, 2: 0.1}
        ctx = context(
            utility_a=lambda d: utilities[d.data_id],
            utility_b=lambda d: utilities[d.data_id],
        )
        result = policy.exchange(a, b, ctx)
        assert result.moved == 2  # both items swapped holders
        assert result.bits_transferred == 80


class TestUtilityKnapsackAdmit:
    def test_admit_with_free_space(self):
        policy = UtilityKnapsackPolicy()
        buffer = CacheBuffer(100)
        assert policy.admit(buffer, make_item(data_id=1, size=50), now=0.0)

    def test_admit_displaces_lower_utility(self):
        policy = UtilityKnapsackPolicy()
        buffer = CacheBuffer(50)
        old = make_item(data_id=1, size=50)
        buffer.put(old)
        utilities = {1: 0.1, 2: 0.9}
        new = make_item(data_id=2, size=50)
        assert policy.admit(buffer, new, now=0.0, utility=lambda d: utilities[d.data_id])
        assert 2 in buffer and 1 not in buffer

    def test_admit_keeps_higher_utility_incumbent(self):
        policy = UtilityKnapsackPolicy()
        buffer = CacheBuffer(50)
        buffer.put(make_item(data_id=1, size=50))
        utilities = {1: 0.9, 2: 0.1}
        assert not policy.admit(
            buffer, make_item(data_id=2, size=50), now=0.0, utility=lambda d: utilities[d.data_id]
        )
        assert 1 in buffer

    def test_max_rounds_validation(self):
        with pytest.raises(ValueError):
            UtilityKnapsackPolicy(max_rounds=0)
