"""Unit tests for the cache buffer."""

import pytest

from repro.core.buffer import CacheBuffer
from repro.errors import BufferError_


class TestCapacityAccounting:
    def test_put_and_accounting(self, item_factory):
        buffer = CacheBuffer(100)
        item = item_factory(data_id=1, size=40)
        assert buffer.put(item)
        assert buffer.used == 40
        assert buffer.free == 60
        assert len(buffer) == 1
        assert 1 in buffer

    def test_put_refuses_when_full(self, item_factory):
        buffer = CacheBuffer(50)
        assert buffer.put(item_factory(data_id=1, size=40))
        assert not buffer.put(item_factory(data_id=2, size=20))
        assert len(buffer) == 1

    def test_duplicate_put_is_noop_success(self, item_factory):
        buffer = CacheBuffer(100)
        item = item_factory(data_id=1, size=40)
        assert buffer.put(item)
        assert buffer.put(item)
        assert buffer.used == 40

    def test_fits(self, item_factory):
        buffer = CacheBuffer(50)
        assert buffer.fits(item_factory(size=50))
        assert not buffer.fits(item_factory(size=51))

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(BufferError_):
            CacheBuffer(0)


class TestRemoval:
    def test_remove_returns_item(self, item_factory):
        buffer = CacheBuffer(100)
        item = item_factory(data_id=5, size=10)
        buffer.put(item)
        assert buffer.remove(5) is item
        assert buffer.used == 0
        assert buffer.remove(5) is None

    def test_clear_returns_all(self, item_factory):
        buffer = CacheBuffer(100)
        for i in range(3):
            buffer.put(item_factory(data_id=i, size=10))
        items = buffer.clear()
        assert len(items) == 3
        assert buffer.used == 0

    def test_evict_expired(self, item_factory):
        buffer = CacheBuffer(100)
        buffer.put(item_factory(data_id=1, size=10, created_at=0.0, lifetime=10.0))
        buffer.put(item_factory(data_id=2, size=10, created_at=0.0, lifetime=100.0))
        dropped = buffer.evict_expired(now=50.0)
        assert [d.data_id for d in dropped] == [1]
        assert 2 in buffer


class TestOrdering:
    def test_insertion_order(self, item_factory):
        buffer = CacheBuffer(100)
        for i in (3, 1, 2):
            buffer.put(item_factory(data_id=i, size=10))
        assert [d.data_id for d in buffer.insertion_order()] == [3, 1, 2]

    def test_access_order_updates_on_get(self, item_factory):
        buffer = CacheBuffer(100)
        for i in (1, 2, 3):
            buffer.put(item_factory(data_id=i, size=10))
        buffer.get(1)  # 1 becomes most recently used
        assert [d.data_id for d in buffer.access_order()] == [2, 3, 1]

    def test_peek_does_not_touch_access_order(self, item_factory):
        buffer = CacheBuffer(100)
        for i in (1, 2):
            buffer.put(item_factory(data_id=i, size=10))
        buffer.peek(1)
        assert [d.data_id for d in buffer.access_order()] == [1, 2]

    def test_get_missing_returns_none(self):
        assert CacheBuffer(10).get(1) is None
