"""Unit tests for data items and queries."""

import pytest

from repro.core.data import DataItem, Query
from repro.errors import ConfigurationError


class TestDataItem:
    def test_lifetime_and_expiry(self, item_factory):
        item = item_factory(created_at=100.0, lifetime=50.0)
        assert item.lifetime == 50.0
        assert not item.is_expired(149.0)
        assert item.is_expired(150.0)

    def test_remaining_lifetime_clamps(self, item_factory):
        item = item_factory(created_at=0.0, lifetime=10.0)
        assert item.remaining_lifetime(4.0) == 6.0
        assert item.remaining_lifetime(100.0) == 0.0

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ConfigurationError):
            DataItem(data_id=0, source=0, size=0, created_at=0.0, expires_at=1.0)

    def test_rejects_inverted_lifetime(self):
        with pytest.raises(ConfigurationError):
            DataItem(data_id=0, source=0, size=1, created_at=5.0, expires_at=5.0)

    def test_immutability(self, item_factory):
        item = item_factory()
        with pytest.raises(AttributeError):
            item.size = 123


class TestQuery:
    def test_expiry_window(self, query_factory):
        query = query_factory(created_at=100.0, time_constraint=50.0)
        assert query.expires_at == 150.0
        assert not query.is_expired(149.0)
        assert query.is_expired(150.0)

    def test_elapsed_and_remaining(self, query_factory):
        query = query_factory(created_at=100.0, time_constraint=50.0)
        assert query.elapsed(120.0) == 20.0
        assert query.remaining(120.0) == 30.0

    def test_elapsed_clamped_to_constraint(self, query_factory):
        query = query_factory(created_at=0.0, time_constraint=10.0)
        assert query.elapsed(-5.0) == 0.0
        assert query.elapsed(999.0) == 10.0
        assert query.remaining(999.0) == 0.0

    def test_rejects_nonpositive_constraint(self):
        with pytest.raises(ConfigurationError):
            Query(query_id=0, requester=0, data_id=0, created_at=0.0, time_constraint=0.0)

    def test_create_assigns_unique_ids(self):
        a = Query.create(requester=0, data_id=1, created_at=0.0, time_constraint=10.0)
        b = Query.create(requester=0, data_id=1, created_at=0.0, time_constraint=10.0)
        assert a.query_id != b.query_id
