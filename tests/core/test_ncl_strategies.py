"""Unit tests for alternative NCL selection strategies (ablations)."""

import pytest

from repro.core.ncl import SELECTION_STRATEGIES, select_ncls, select_ncls_by
from repro.errors import ConfigurationError
from repro.graph.contact_graph import ContactGraph
from repro.units import HOUR


@pytest.fixture
def weighted_star():
    """Hub 0; node 5 has high degree but weak links."""
    graph = ContactGraph(8)
    for leaf in (1, 2, 3):
        graph.set_rate(0, leaf, 2.0 / HOUR)
    for leaf in (4, 6, 7, 1, 2):
        graph.set_rate(5, leaf, 0.01 / HOUR)
    return graph


class TestStrategies:
    def test_metric_equals_select_ncls(self, weighted_star):
        by_strategy = select_ncls_by(weighted_star, 2, 3 * HOUR, strategy="metric")
        direct = select_ncls(weighted_star, 2, 3 * HOUR)
        assert by_strategy.central_nodes == direct.central_nodes

    def test_degree_picks_highest_degree(self, weighted_star):
        selection = select_ncls_by(weighted_star, 1, 3 * HOUR, strategy="degree")
        assert selection.central_nodes == (5,)  # degree 5 beats hub's 3

    def test_aggregate_rate_picks_strongest_links(self, weighted_star):
        selection = select_ncls_by(
            weighted_star, 1, 3 * HOUR, strategy="aggregate_rate"
        )
        assert selection.central_nodes == (0,)  # 6/h total beats 0.05/h

    def test_random_is_seeded(self, weighted_star):
        a = select_ncls_by(weighted_star, 3, 3 * HOUR, strategy="random", seed=1)
        b = select_ncls_by(weighted_star, 3, 3 * HOUR, strategy="random", seed=1)
        c = select_ncls_by(weighted_star, 3, 3 * HOUR, strategy="random", seed=2)
        assert a.central_nodes == b.central_nodes
        assert len(set(a.central_nodes)) == 3
        assert a.central_nodes != c.central_nodes or True  # may collide rarely

    def test_metrics_vector_always_attached(self, weighted_star):
        selection = select_ncls_by(weighted_star, 2, 3 * HOUR, strategy="random")
        assert len(selection.metrics) == 8

    def test_unknown_strategy_rejected(self, weighted_star):
        with pytest.raises(ConfigurationError):
            select_ncls_by(weighted_star, 1, 3 * HOUR, strategy="psychic")

    def test_k_validated_for_all_strategies(self, weighted_star):
        for strategy in SELECTION_STRATEGIES:
            with pytest.raises(ConfigurationError):
                select_ncls_by(weighted_star, 0, 3 * HOUR, strategy=strategy)
            with pytest.raises(ConfigurationError):
                select_ncls_by(weighted_star, 99, 3 * HOUR, strategy=strategy)

    def test_nearest_central_consistent(self, weighted_star):
        selection = select_ncls_by(weighted_star, 2, 3 * HOUR, strategy="degree")
        for node in range(8):
            central = selection.nearest_central[node]
            if central >= 0:
                assert central in selection.central_nodes
