"""Unit tests for the 0/1 knapsack solver (paper Eq. 7)."""

import itertools

import pytest

from repro.core.knapsack import KnapsackItem, solve_knapsack
from repro.errors import KnapsackError


def brute_force(items, capacity):
    best_value, best_set = 0.0, ()
    for r in range(len(items) + 1):
        for combo in itertools.combinations(items, r):
            size = sum(i.size for i in combo)
            value = sum(i.value for i in combo)
            if size <= capacity and value > best_value:
                best_value, best_set = value, combo
    return best_value


class TestExactness:
    def test_classic_instance(self):
        items = [
            KnapsackItem("a", 60.0, 10),
            KnapsackItem("b", 100.0, 20),
            KnapsackItem("c", 120.0, 30),
        ]
        solution = solve_knapsack(items, 50)
        assert solution.total_value == pytest.approx(220.0)
        assert set(solution.keys) == {"b", "c"}

    def test_matches_brute_force_on_small_instances(self):
        items = [
            KnapsackItem(i, value, size)
            for i, (value, size) in enumerate(
                [(4.0, 3), (2.0, 2), (7.0, 5), (1.0, 1), (5.0, 4), (3.0, 3)]
            )
        ]
        for capacity in (0, 1, 5, 8, 12, 20):
            solution = solve_knapsack(items, capacity)
            assert solution.total_value == pytest.approx(brute_force(items, capacity))
            assert solution.total_size <= capacity

    def test_single_item_too_big(self):
        solution = solve_knapsack([KnapsackItem("x", 10.0, 100)], 50)
        assert solution.selected == ()

    def test_empty_inputs(self):
        assert solve_knapsack([], 100).selected == ()
        assert solve_knapsack([KnapsackItem("x", 1.0, 1)], 0).selected == ()

    def test_zero_values_select_nothing(self):
        items = [KnapsackItem(i, 0.0, 5) for i in range(3)]
        assert solve_knapsack(items, 100).selected == ()


class TestQuantisation:
    def test_large_capacities_never_overfill(self):
        # capacities in bits (hundreds of Mb) exercise the quantised path
        items = [KnapsackItem(i, float(i + 1), 97_000_001 + i * 13) for i in range(8)]
        capacity = 400_000_000
        solution = solve_knapsack(items, capacity)
        assert solution.total_size <= capacity
        assert len(solution.selected) >= 1

    def test_quantised_solution_close_to_optimal(self):
        items = [
            KnapsackItem(0, 10.0, 100_000_000),
            KnapsackItem(1, 9.0, 100_000_000),
            KnapsackItem(2, 8.0, 100_000_000),
            KnapsackItem(3, 30.0, 299_000_000),
        ]
        solution = solve_knapsack(items, 300_000_000)
        assert solution.total_value >= 27.0  # optimal is 30 or 27

    def test_resolution_one_for_small_capacity(self):
        items = [KnapsackItem(0, 1.0, 3)]
        solution = solve_knapsack(items, 10, max_capacity_units=4096)
        assert solution.total_size == 3

    def test_oversize_singleton_that_truly_fits_is_kept(self):
        # Regression: capacity 4097 quantises to resolution 2 and
        # cap_units 2048; an item of size 4097 rounds up to 2049 units
        # (> cap_units) yet truly fits.  Naive rounding excluded it
        # unconditionally and returned an empty solution.
        item = KnapsackItem("only", 1.0, 4097)
        solution = solve_knapsack([item], 4097)
        assert solution.keys == ("only",)
        assert solution.total_size == 4097

    def test_oversize_singleton_never_beats_better_dp_solution(self):
        # Same rounding window, but the DP over the regularly-sized
        # items is worth strictly more — the repair must not displace it.
        items = [
            KnapsackItem("oversize", 0.5, 4097),
            KnapsackItem("a", 0.4, 2048),
            KnapsackItem("b", 0.3, 2048),
        ]
        solution = solve_knapsack(items, 4097)
        assert set(solution.keys) == {"a", "b"}

    def test_oversize_singleton_loses_value_ties_to_dp(self):
        items = [
            KnapsackItem("oversize", 0.7, 4097),
            KnapsackItem("a", 0.4, 2048),
            KnapsackItem("b", 0.3, 2048),
        ]
        solution = solve_knapsack(items, 4097)
        assert set(solution.keys) == {"a", "b"}

    def test_zero_value_oversize_singleton_not_selected(self):
        item = KnapsackItem("only", 0.0, 4097)
        assert solve_knapsack([item], 4097).selected == ()


class TestDeterminism:
    def test_ties_prefer_earlier_items(self):
        items = [KnapsackItem("first", 5.0, 5), KnapsackItem("second", 5.0, 5)]
        solution = solve_knapsack(items, 5)
        assert solution.keys == ("first",)

    def test_repeatable(self):
        items = [KnapsackItem(i, float(i % 3 + 1), i + 1) for i in range(10)]
        a = solve_knapsack(items, 17)
        b = solve_knapsack(items, 17)
        assert a.keys == b.keys


class TestValidation:
    def test_negative_capacity(self):
        with pytest.raises(KnapsackError):
            solve_knapsack([], -1)

    def test_bad_item_size(self):
        with pytest.raises(KnapsackError):
            KnapsackItem("x", 1.0, 0)

    def test_bad_item_value(self):
        with pytest.raises(KnapsackError):
            KnapsackItem("x", -1.0, 1)
        with pytest.raises(KnapsackError):
            KnapsackItem("x", float("nan"), 1)

    def test_bad_units(self):
        with pytest.raises(KnapsackError):
            solve_knapsack([], 10, max_capacity_units=0)
