"""Unit tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import build_parser, main

FAST_TRACE = ["--node-factor", "0.3", "--time-factor", "0.08"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.scheme == "intentional"
        assert args.trace == "mit_reality"


class TestCommands:
    def test_traces(self, capsys):
        assert main(["traces", *FAST_TRACE]) == 0
        out = capsys.readouterr().out
        assert "infocom05" in out and "devices" in out

    def test_ncl(self, capsys):
        assert main(["ncl", "--trace", "infocom05", *FAST_TRACE, "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "#1:" in out and "#2:" in out

    def test_simulate(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--trace",
                    "infocom05",
                    *FAST_TRACE,
                    "--scheme",
                    "nocache",
                    "--lifetime-hours",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "nocache" in out and "ratio=" in out

    def test_fit(self, capsys):
        assert main(["fit", "--trace", "infocom05", *FAST_TRACE]) == 0
        out = capsys.readouterr().out
        assert "pairs_fitted" in out

    def test_figure_analytic(self, capsys):
        assert main(["figure", "fig7"]) == 0
        out = capsys.readouterr().out
        assert "p_R" in out

    def test_figure_table(self, capsys):
        assert main(["figure", "table1", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "devices" in out

    def test_figure_unknown(self, capsys):
        assert main(["figure", "nope"]) == 2
        err = capsys.readouterr().err
        assert "nope" in err


class TestTraceCommand:
    def test_simulate_records_and_trace_replays(self, capsys, tmp_path):
        """End-to-end: --trace-out writes a JSONL lifecycle trace and
        `repro trace` replays it into a per-query audit report whose
        derived ratio matches the simulate output."""
        path = tmp_path / "run.jsonl"
        assert (
            main(
                [
                    "simulate",
                    "--trace",
                    "infocom05",
                    *FAST_TRACE,
                    "--scheme",
                    "nocache",
                    "--lifetime-hours",
                    "4",
                    "--trace-out",
                    str(path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert path.exists()
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "derived: ratio=" in out
        assert "query " in out

    def test_trace_limit_and_only(self, capsys, tmp_path):
        path = tmp_path / "run.jsonl"
        main(
            [
                "simulate",
                "--trace",
                "infocom05",
                *FAST_TRACE,
                "--lifetime-hours",
                "4",
                "--trace-out",
                str(path),
            ]
        )
        capsys.readouterr()
        assert main(["trace", str(path), "--limit", "2", "--only", "expired"]) == 0
        out = capsys.readouterr().out
        assert "[satisfied]" not in out

    def test_trace_missing_file(self, capsys, tmp_path):
        assert main(["trace", str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err
