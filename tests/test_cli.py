"""Unit tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import build_parser, main

FAST_TRACE = ["--node-factor", "0.3", "--time-factor", "0.08"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.scheme == "intentional"
        assert args.trace == "mit_reality"


class TestCommands:
    def test_traces(self, capsys):
        assert main(["traces", *FAST_TRACE]) == 0
        out = capsys.readouterr().out
        assert "infocom05" in out and "devices" in out

    def test_ncl(self, capsys):
        assert main(["ncl", "--trace", "infocom05", *FAST_TRACE, "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "#1:" in out and "#2:" in out

    def test_simulate(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--trace",
                    "infocom05",
                    *FAST_TRACE,
                    "--scheme",
                    "nocache",
                    "--lifetime-hours",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "nocache" in out and "ratio=" in out

    def test_fit(self, capsys):
        assert main(["fit", "--trace", "infocom05", *FAST_TRACE]) == 0
        out = capsys.readouterr().out
        assert "pairs_fitted" in out

    def test_figure_analytic(self, capsys):
        assert main(["figure", "fig7"]) == 0
        out = capsys.readouterr().out
        assert "p_R" in out

    def test_figure_table(self, capsys):
        assert main(["figure", "table1", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "devices" in out

    def test_figure_unknown(self, capsys):
        assert main(["figure", "nope"]) == 2
        err = capsys.readouterr().err
        assert "nope" in err


class TestTraceCommand:
    def test_simulate_records_and_trace_replays(self, capsys, tmp_path):
        """End-to-end: --trace-out writes a JSONL lifecycle trace and
        `repro trace` replays it into a per-query audit report whose
        derived ratio matches the simulate output."""
        path = tmp_path / "run.jsonl"
        assert (
            main(
                [
                    "simulate",
                    "--trace",
                    "infocom05",
                    *FAST_TRACE,
                    "--scheme",
                    "nocache",
                    "--lifetime-hours",
                    "4",
                    "--trace-out",
                    str(path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert path.exists()
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "derived: ratio=" in out
        assert "query " in out

    def test_trace_limit_and_only(self, capsys, tmp_path):
        path = tmp_path / "run.jsonl"
        main(
            [
                "simulate",
                "--trace",
                "infocom05",
                *FAST_TRACE,
                "--lifetime-hours",
                "4",
                "--trace-out",
                str(path),
            ]
        )
        capsys.readouterr()
        assert main(["trace", str(path), "--limit", "2", "--only", "expired"]) == 0
        out = capsys.readouterr().out
        assert "[satisfied]" not in out

    def test_trace_missing_file(self, capsys, tmp_path):
        assert main(["trace", str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err


class TestRunDirectoryAndReport:
    def _simulate(self, out_dir, extra=()):
        return main(
            [
                "simulate",
                "--trace",
                "infocom05",
                *FAST_TRACE,
                "--scheme",
                "nocache",
                "--lifetime-hours",
                "4",
                "--out",
                str(out_dir),
                *extra,
            ]
        )

    def test_out_writes_run_directory_and_report_renders(self, capsys, tmp_path):
        run_dir = tmp_path / "run"
        assert self._simulate(run_dir) == 0
        capsys.readouterr()
        for name in ("result.json", "manifest.json", "metrics.json",
                     "profile.json", "timeseries.jsonl", "timeseries.csv"):
            assert (run_dir / name).exists(), name
        assert main(["report", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "## Provenance" in out
        assert "## Metrics" in out
        assert "## Profile" in out
        assert "## Time series" in out
        assert "config hash" in out

    def test_config_hash_stable_across_identical_runs(self, capsys, tmp_path):
        import json

        assert self._simulate(tmp_path / "a") == 0
        assert self._simulate(tmp_path / "b") == 0
        capsys.readouterr()
        hashes = [
            json.load(open(tmp_path / name / "manifest.json"))["config_hash"]
            for name in ("a", "b")
        ]
        assert hashes[0] == hashes[1]

    def test_report_includes_trace_audit_when_trace_present(self, capsys, tmp_path):
        run_dir = tmp_path / "run"
        assert self._simulate(
            run_dir, extra=["--trace-out", str(run_dir / "trace.jsonl")]
        ) == 0
        capsys.readouterr()
        assert main(["report", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "## Trace audit" in out
        assert "derived: ratio=" in out

    def test_report_on_missing_directory(self, capsys, tmp_path):
        assert main(["report", str(tmp_path / "absent")]) == 2
        assert "cannot render run" in capsys.readouterr().err

    def test_timeline_out_writes_csv(self, capsys, tmp_path):
        import csv

        path = tmp_path / "timeline.csv"
        assert (
            main(
                [
                    "simulate",
                    "--trace",
                    "infocom05",
                    *FAST_TRACE,
                    "--scheme",
                    "nocache",
                    "--lifetime-hours",
                    "4",
                    "--timeline-out",
                    str(path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert rows, "timeline CSV has no samples"
        assert "running_ratio" in rows[0]
        assert "mean_buffer_occupancy" in rows[0]

    def test_single_run_outputs_rejected_with_repeat(self, capsys, tmp_path):
        assert (
            main(
                [
                    "simulate",
                    "--trace",
                    "infocom05",
                    *FAST_TRACE,
                    "--scheme",
                    "nocache",
                    "--repeat",
                    "2",
                    "--timeline-out",
                    str(tmp_path / "t.csv"),
                ]
            )
            == 2
        )
        assert "--repeat 1" in capsys.readouterr().err

    def test_serve_slo_out_prom_and_watch(self, capsys, tmp_path):
        """End-to-end: serve with an always-breaching SLO writes the
        health log + manifest + Prometheus exposition, and `repro
        watch` renders the run directory's table."""
        import json

        run_dir = tmp_path / "run"
        prom = tmp_path / "health.prom"
        assert (
            main(
                [
                    "serve",
                    "--trace",
                    "infocom05",
                    *FAST_TRACE,
                    "--scheme",
                    "nocache",
                    "--lifetime-hours",
                    "4",
                    "--batches",
                    "3",
                    "--slo",
                    "success_ratio>=2.0",
                    "--out",
                    str(run_dir),
                    "--prom-out",
                    str(prom),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "slo.violated rule=success_ratio>=2.0" in out
        assert "health log" in out
        assert (run_dir / "health.jsonl").exists()
        manifest = json.load(open(run_dir / "manifest.json"))
        assert manifest["slo_rules"][0]["field"] == "success_ratio"
        exposition = prom.read_text()
        assert "repro_health_windows_total 3" in exposition
        assert 'repro_slo_violated{rule="success_ratio>=2.0"} 1' in exposition
        assert main(["watch", str(run_dir)]) == 0
        table = capsys.readouterr().out
        assert "backlog" in table  # table header
        assert "!success_ratio>=2.0" in table  # violation edge flag
        assert "windows" in table  # summary footer

    def test_serve_bad_slo_spec_rejected(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--trace",
                    "infocom05",
                    *FAST_TRACE,
                    "--slo",
                    "not_a_rule",
                ]
            )
            == 2
        )
        assert "not_a_rule" in capsys.readouterr().err

    def test_watch_missing_log(self, capsys, tmp_path):
        assert main(["watch", str(tmp_path / "absent")]) == 2
        assert "no health log" in capsys.readouterr().err

    def test_repeat_merges_seeds_into_run_directory(self, capsys, tmp_path):
        import json

        run_dir = tmp_path / "run"
        assert self._simulate(run_dir, extra=["--repeat", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("ratio=") >= 2
        manifest = json.load(open(run_dir / "manifest.json"))
        assert len(manifest["seeds"]) == 2
        rows = [
            json.loads(line)
            for line in open(run_dir / "timeseries.jsonl").read().splitlines()
        ]
        assert {row["seed"] for row in rows} == set(manifest["seeds"])
