"""Unit tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ConfigurationError,
            errors.TraceFormatError,
            errors.TraceConsistencyError,
            errors.BufferError_,
            errors.RoutingError,
            errors.SimulationError,
            errors.PathError,
            errors.KnapsackError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)
        with pytest.raises(errors.ReproError):
            raise exc("boom")

    def test_buffer_error_does_not_shadow_builtin(self):
        assert errors.BufferError_ is not BufferError
        assert not issubclass(errors.BufferError_, BufferError)

    def test_catching_base_at_api_boundary(self):
        """The single-except pattern the hierarchy exists for."""
        from repro.core.buffer import CacheBuffer

        try:
            CacheBuffer(0)
        except errors.ReproError as exc:
            assert isinstance(exc, errors.BufferError_)
        else:  # pragma: no cover
            pytest.fail("expected a ReproError")
