"""The registry lint: clean tree, plus synthetic violations.

``scripts/check_registry.py`` asserts every registered scheme, router,
response strategy, and trace source is smoke tested somewhere under
``tests/`` and round-trips through ``ScenarioSpec`` JSON.  Running it
under pytest keeps the contract in tier-1 instead of relying on a
manual script invocation.
"""

import importlib.util
import os

import pytest

_SCRIPT = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "scripts", "check_registry.py"
)


@pytest.fixture(scope="module")
def lint():
    spec = importlib.util.spec_from_file_location("check_registry", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_every_registered_name_is_covered_and_round_trips(lint):
    violations = lint.collect_violations()
    assert violations == [], "\n".join(str(v) for v in violations)


def test_registries_are_nonempty(lint):
    names = lint.registered_names()
    assert names["scheme"], "scheme registry is empty"
    assert names["router"], "router registry is empty"
    assert names["response strategy"], "response-strategy registry is empty"
    assert names["trace source"], "trace-source registry is empty"


def test_missing_smoke_test_is_flagged(lint, tmp_path):
    # An empty tests tree covers nothing: every name must be flagged.
    (tmp_path / "test_nothing.py").write_text("def test_nothing():\n    pass\n")
    violations = lint.check_smoke_coverage(str(tmp_path))
    flagged = {(v.kind, v.name) for v in violations}
    for kind, names in lint.registered_names().items():
        for name in names:
            assert (kind, name) in flagged


def test_round_trips_are_clean(lint):
    assert lint.check_round_trips() == []


def test_script_main_exits_zero(lint, capsys):
    assert lint.main() == 0
    assert "registered names" in capsys.readouterr().out
