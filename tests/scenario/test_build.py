"""Builders: spec → trace/scheme/config, picklability, end-to-end run."""

import pickle

import pytest

from repro.caching import (
    BundleCache,
    CacheData,
    IntentionalCaching,
    NoCache,
    RandomCache,
)
from repro.core.replacement import FIFOPolicy
from repro.core.response import AlwaysRespond, PathAwareResponse, SigmoidResponse
from repro.experiments.runner import run_single
from repro.scenario import (
    SCHEMES,
    RunSpec,
    ScenarioSpec,
    SchemeSpec,
    TraceSpec,
    build_scheme,
    build_trace,
    resolve_ncl_time_budget,
    scheme_factory,
    simulator_config,
)
from repro.sim.dynamics import DynamicsConfig, DynamicsEvent
from repro.traces.catalog import TRACE_PRESETS
from repro.workload.config import WorkloadConfig

EXPECTED_CLASSES = {
    "intentional": IntentionalCaching,
    "nocache": NoCache,
    "randomcache": RandomCache,
    "cachedata": CacheData,
    "bundlecache": BundleCache,
}


class TestBuildScheme:
    @pytest.mark.parametrize("name", sorted(EXPECTED_CLASSES))
    def test_every_registered_scheme_builds(self, name):
        scheme = build_scheme(SchemeSpec(name=name))
        assert isinstance(scheme, EXPECTED_CLASSES[name])

    def test_intentional_carries_spec_knobs(self):
        scheme = build_scheme(
            SchemeSpec(num_ncls=3, response_strategy="path_aware", reelect=True),
            ncl_time_budget=1800.0,
        )
        assert scheme.config.num_ncls == 3
        assert scheme.config.ncl_time_budget == 1800.0
        assert scheme.config.response_strategy == "path_aware"
        assert scheme.config.reelect is True

    def test_replacement_factory_is_invoked_per_build(self):
        scheme = build_scheme(SchemeSpec(), replacement=FIFOPolicy)
        assert isinstance(scheme.replacement, FIFOPolicy)

    @pytest.mark.parametrize(
        "name, cls",
        [("sigmoid", SigmoidResponse), ("path_aware", PathAwareResponse), ("always", AlwaysRespond)],
    )
    def test_response_strategies_run_end_to_end(self, small_trace, name, cls):
        """Each registered response strategy drives a real (tiny) run."""
        scheme = build_scheme(SchemeSpec(response_strategy=name, num_ncls=2))
        workload = WorkloadConfig(
            mean_data_lifetime=small_trace.duration * 0.5,
            mean_data_size=1_000_000,
        )
        result = run_single(small_trace, scheme, workload, seed=7)
        assert isinstance(scheme._response_strategy, cls)
        assert result.queries_issued >= 0


class TestFactoriesAndConfig:
    def test_scheme_factory_is_picklable(self):
        factory = scheme_factory(ScenarioSpec())
        rebuilt = pickle.loads(pickle.dumps(factory))
        assert isinstance(rebuilt(), IntentionalCaching)

    def test_factory_builds_fresh_instances(self):
        factory = scheme_factory(ScenarioSpec(scheme=SchemeSpec(name="nocache")))
        assert factory() is not factory()

    def test_explicit_budget_wins(self):
        spec = ScenarioSpec(scheme=SchemeSpec(ncl_time_budget=42.0))
        assert resolve_ncl_time_budget(spec) == 42.0

    def test_preset_trace_supplies_published_budget(self):
        spec = ScenarioSpec(trace=TraceSpec(name="infocom05"))
        assert (
            resolve_ncl_time_budget(spec)
            == TRACE_PRESETS["infocom05"].ncl_time_budget
        )

    def test_simulator_config_maps_run_knobs(self):
        spec = ScenarioSpec(
            run=RunSpec(seed=13, snapshot_period=300.0, profile=True),
            dynamics=DynamicsConfig(
                events=(DynamicsEvent(action="join", at_fraction=0.5, node=1),)
            ),
        )
        config = simulator_config(spec, trace_path="/tmp/t.jsonl")
        assert config.seed == 13
        assert config.snapshot_period == 300.0
        assert config.profile is True
        assert config.trace_path == "/tmp/t.jsonl"
        assert config.dynamics is spec.dynamics

    def test_static_scenario_has_no_dynamics(self):
        assert simulator_config(ScenarioSpec()).dynamics is None


class TestBuildTrace:
    def test_preset_trace_resolves_with_scaling(self):
        trace = build_trace(TraceSpec(name="ucsd", node_factor=0.1, time_factor=0.02))
        assert trace.num_nodes > 0
        assert trace.num_contacts > 0
