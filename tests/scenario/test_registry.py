"""Registry behavior and the stock registrations."""

import pytest

from repro.errors import ConfigurationError
from repro.scenario import RESPONSE_STRATEGIES, ROUTERS, SCHEMES, TRACE_SOURCES
from repro.scenario.registry import Registry


class TestRegistry:
    def test_direct_registration_and_lookup(self):
        registry = Registry("widget")
        registry.register("a", 1)
        assert registry.get("a") == 1
        assert "a" in registry
        assert len(registry) == 1

    def test_decorator_registration(self):
        registry = Registry("widget")

        @registry.register("build")
        def build():
            return "built"

        assert registry.get("build") is build

    def test_duplicate_name_rejected(self):
        registry = Registry("widget")
        registry.register("a", 1)
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("a", 2)

    def test_unknown_name_lists_available(self):
        registry = Registry("widget")
        registry.register("a", 1)
        with pytest.raises(ConfigurationError, match=r"unknown widget 'b'.*'a'"):
            registry.get("b")

    def test_registration_order_preserved(self):
        registry = Registry("widget")
        for name in ("zebra", "apple", "mango"):
            registry.register(name, name)
        assert registry.names() == ("zebra", "apple", "mango")
        assert list(registry) == ["zebra", "apple", "mango"]


class TestStockRegistrations:
    def test_the_five_schemes_of_sec_vi(self):
        assert SCHEMES.names() == (
            "intentional",
            "nocache",
            "randomcache",
            "cachedata",
            "bundlecache",
        )

    def test_routers(self):
        assert set(ROUTERS.names()) == {
            "gradient",
            "rate_gradient",
            "epidemic",
            "direct",
            "prophet",
            "spray",
        }

    def test_response_strategies(self):
        assert RESPONSE_STRATEGIES.names() == ("sigmoid", "path_aware", "always")

    def test_trace_sources_cover_the_table_i_presets(self):
        assert set(TRACE_SOURCES.names()) == {
            "mit_reality",
            "infocom05",
            "infocom06",
            "ucsd",
            "sparse1e5",
        }
