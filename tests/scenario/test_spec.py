"""ScenarioSpec: JSON round-trip identity, validation, provenance."""

import pytest

from repro.errors import ConfigurationError
from repro.scenario import RunSpec, ScenarioSpec, SchemeSpec, TraceSpec
from repro.sim.dynamics import DynamicsConfig, DynamicsEvent
from repro.workload.config import WorkloadConfig


def _full_spec() -> ScenarioSpec:
    return ScenarioSpec(
        trace=TraceSpec(name="infocom06", seed=3, node_factor=0.5, time_factor=0.25),
        scheme=SchemeSpec(
            name="intentional",
            num_ncls=3,
            ncl_time_budget=3600.0,
            response_strategy="path_aware",
            reelect=True,
        ),
        workload=WorkloadConfig(mean_data_lifetime=7200.0, mean_data_size=1_000_000),
        run=RunSpec(seed=11, repeat=3, snapshot_period=600.0, profile=True),
        dynamics=DynamicsConfig(
            events=(
                DynamicsEvent(action="fail_central", at_fraction=0.4, central_rank=1),
                DynamicsEvent(action="leave", at_fraction=0.6, node=2),
            )
        ),
        name="round-trip",
    )


class TestRoundTrip:
    def test_json_round_trip_is_identity_on_defaults(self):
        spec = ScenarioSpec()
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_json_round_trip_is_identity_on_full_spec(self):
        spec = _full_spec()
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_save_load_round_trip(self, tmp_path):
        spec = _full_spec()
        path = str(tmp_path / "scenario.json")
        spec.save(path)
        assert ScenarioSpec.load(path) == spec

    def test_partial_record_fills_defaults(self):
        spec = ScenarioSpec.from_dict({"scheme": {"name": "nocache"}})
        assert spec.scheme.name == "nocache"
        assert spec.trace == TraceSpec()
        assert spec.run == RunSpec()
        assert not spec.dynamics

    def test_empty_dynamics_omitted_from_dict(self):
        record = ScenarioSpec().to_dict()
        assert "dynamics" not in record
        assert "name" not in record


class TestValidation:
    def test_rejects_invalid_json(self):
        with pytest.raises(ConfigurationError, match="invalid scenario JSON"):
            ScenarioSpec.from_json("{not json")

    def test_rejects_non_object_json(self):
        with pytest.raises(ConfigurationError, match="must be an object"):
            ScenarioSpec.from_json("[1, 2]")

    def test_rejects_nonpositive_trace_factors(self):
        with pytest.raises(ConfigurationError):
            TraceSpec(node_factor=0.0)

    def test_rejects_zero_ncls(self):
        with pytest.raises(ConfigurationError):
            SchemeSpec(num_ncls=0)

    def test_rejects_nonpositive_time_budget(self):
        with pytest.raises(ConfigurationError):
            SchemeSpec(ncl_time_budget=-1.0)

    def test_rejects_zero_repeat(self):
        with pytest.raises(ConfigurationError):
            RunSpec(repeat=0)

    def test_rejects_negative_snapshot_period(self):
        with pytest.raises(ConfigurationError):
            RunSpec(snapshot_period=-1.0)


class TestRunSpec:
    def test_seeds_enumerate_repetitions(self):
        assert RunSpec(seed=5, repeat=3).seeds == [5, 6, 7]

    def test_single_repetition_single_seed(self):
        assert RunSpec(seed=9).seeds == [9]


class TestProvenance:
    def test_excludes_seed_and_repeat(self):
        config = _full_spec().provenance_config()
        run = config["scenario"]["run"]
        assert "seed" not in run
        assert "repeat" not in run
        # Run knobs that change the simulation itself stay in the hash.
        assert run["snapshot_period"] == 600.0

    def test_same_experiment_different_seed_hashes_identically(self):
        base = _full_spec()
        reseeded = ScenarioSpec.from_dict(
            {**base.to_dict(), "run": {**base.run.to_dict(), "seed": 99, "repeat": 7}}
        )
        assert base.provenance_config() == reseeded.provenance_config()

    def test_dynamics_schedule_is_part_of_the_identity(self):
        static = ScenarioSpec()
        churn = ScenarioSpec(
            dynamics=DynamicsConfig(
                events=(DynamicsEvent(action="leave", at_fraction=0.5, node=1),)
            )
        )
        assert static.provenance_config() != churn.provenance_config()
