"""Unit tests for bundle types."""

from repro.sim.bundles import (
    QUERY_BUNDLE_SIZE_BITS,
    PushBundle,
    QueryBundle,
    ResponseBundle,
)
from tests.conftest import make_item, make_query


class TestPushBundle:
    def test_key_includes_target(self):
        item = make_item(data_id=5)
        a = PushBundle(created_at=0.0, expires_at=10.0, data=item, target_central=1)
        b = PushBundle(created_at=0.0, expires_at=10.0, data=item, target_central=2)
        assert a.key != b.key

    def test_size_is_data_size(self):
        item = make_item(size=12345)
        bundle = PushBundle(created_at=0.0, expires_at=10.0, data=item, target_central=1)
        assert bundle.size_bits == 12345

    def test_expiry(self):
        item = make_item()
        bundle = PushBundle(created_at=0.0, expires_at=10.0, data=item, target_central=1)
        assert not bundle.is_expired(9.0)
        assert bundle.is_expired(10.0)


class TestQueryBundle:
    def test_key_distinguishes_targets(self):
        query = make_query(query_id=3)
        a = QueryBundle(created_at=0.0, expires_at=10.0, query=query, target_central=1)
        b = QueryBundle(created_at=0.0, expires_at=10.0, query=query, target_central=None)
        assert a.key != b.key

    def test_same_target_same_key(self):
        query = make_query(query_id=3)
        a = QueryBundle(created_at=0.0, expires_at=10.0, query=query, target_central=1)
        b = QueryBundle(created_at=0.0, expires_at=10.0, query=query, target_central=1)
        assert a.key == b.key

    def test_control_size(self):
        query = make_query()
        bundle = QueryBundle(created_at=0.0, expires_at=10.0, query=query, target_central=1)
        assert bundle.size_bits == QUERY_BUNDLE_SIZE_BITS


class TestResponseBundle:
    def test_each_response_is_unique(self):
        item, query = make_item(), make_query()
        a = ResponseBundle(created_at=0.0, expires_at=10.0, data=item, query=query, responder=1)
        b = ResponseBundle(created_at=0.0, expires_at=10.0, data=item, query=query, responder=1)
        assert a.key != b.key

    def test_size_is_data_size(self):
        item = make_item(size=777)
        bundle = ResponseBundle(
            created_at=0.0, expires_at=10.0, data=item, query=make_query(), responder=1
        )
        assert bundle.size_bits == 777
