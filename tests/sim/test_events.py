"""Unit tests for the event value type."""

from repro.sim.events import Event, EventKind


class TestEventOrdering:
    def test_time_dominates(self):
        early = Event(1.0, 9, 5, EventKind.CUSTOM)
        late = Event(2.0, 0, 0, EventKind.CUSTOM)
        assert early < late

    def test_priority_breaks_time_ties(self):
        data = Event(1.0, int(EventKind.DATA_GENERATION), 5, EventKind.DATA_GENERATION)
        query = Event(1.0, int(EventKind.QUERY_GENERATION), 0, EventKind.QUERY_GENERATION)
        assert data < query

    def test_sequence_breaks_full_ties(self):
        first = Event(1.0, 0, 1, EventKind.CUSTOM)
        second = Event(1.0, 0, 2, EventKind.CUSTOM)
        assert first < second

    def test_payload_not_compared(self):
        # payloads that aren't comparable must not break ordering
        a = Event(1.0, 0, 1, EventKind.CUSTOM, payload={"x": 1})
        b = Event(1.0, 0, 2, EventKind.CUSTOM, payload=object())
        assert a < b

    def test_kind_execution_order_matches_paper_protocol(self):
        """Same-instant ordering: graph refresh, then data generation,
        then queries, then contacts, then metric samples."""
        assert (
            EventKind.GRAPH_REFRESH
            < EventKind.DATA_GENERATION
            < EventKind.QUERY_GENERATION
            < EventKind.CONTACT
            < EventKind.SAMPLE_METRICS
        )
