"""Unit tests for per-node simulation state."""

from repro.sim.bundles import QueryBundle
from repro.sim.node import Node
from tests.conftest import make_item, make_query


class TestDataAvailability:
    def test_origin_data_found(self):
        node = Node(0, buffer_capacity=100)
        item = make_item(data_id=1, size=10)
        node.generate_data(item)
        assert node.find_data(1, now=0.0) is item
        assert node.has_live_own_data(0.0)

    def test_cached_data_found(self):
        node = Node(0, buffer_capacity=100)
        item = make_item(data_id=2, size=10)
        node.buffer.put(item)
        assert node.find_data(2, now=0.0) is item

    def test_expired_data_not_served(self):
        node = Node(0, buffer_capacity=100)
        node.generate_data(make_item(data_id=1, size=10, lifetime=5.0))
        assert node.find_data(1, now=10.0) is None

    def test_expire_data_cleans_origin_and_cache(self):
        node = Node(0, buffer_capacity=100)
        node.generate_data(make_item(data_id=1, size=10, lifetime=5.0))
        node.buffer.put(make_item(data_id=2, size=10, lifetime=5.0))
        node.popularity.record_request(1, 0.0)
        dropped = node.expire_data(now=10.0)
        assert {d.data_id for d in dropped} == {1, 2}
        assert not node.origin
        assert 1 not in node.popularity


class TestQueryHistory:
    def test_observe_records_popularity(self):
        node = Node(0, buffer_capacity=100)
        query = make_query(query_id=1, data_id=7)
        node.observe_query(query, now=0.0)
        assert node.popularity.request_count(7) == 1
        assert 1 in node.active_queries

    def test_observe_is_idempotent_per_query(self):
        node = Node(0, buffer_capacity=100)
        query = make_query(query_id=1, data_id=7)
        node.observe_query(query, now=0.0)
        node.observe_query(query, now=1.0)
        assert node.popularity.request_count(7) == 1

    def test_expired_queries_not_observed(self):
        node = Node(0, buffer_capacity=100)
        query = make_query(query_id=1, time_constraint=10.0)
        node.observe_query(query, now=100.0)
        assert not node.active_queries

    def test_expire_queries(self):
        node = Node(0, buffer_capacity=100)
        query = make_query(query_id=1, created_at=0.0, time_constraint=10.0)
        node.observe_query(query, now=0.0)
        node.responded_queries.add(1)
        node.expire_queries(now=20.0)
        assert not node.active_queries
        assert 1 not in node.responded_queries

    def test_pending_queries_for(self):
        node = Node(0, buffer_capacity=100)
        wanted = make_query(query_id=1, data_id=7)
        other = make_query(query_id=2, data_id=8)
        answered = make_query(query_id=3, data_id=7)
        for q in (wanted, other, answered):
            node.observe_query(q, now=0.0)
        node.responded_queries.add(3)
        pending = node.pending_queries_for(7, now=0.0)
        assert [q.query_id for q in pending] == [1]


class TestBundleCarriage:
    def _bundle(self, qid=1):
        return QueryBundle(
            created_at=0.0,
            expires_at=100.0,
            query=make_query(query_id=qid),
            target_central=2,
        )

    def test_store_and_dedup(self):
        node = Node(0, buffer_capacity=100)
        bundle = self._bundle()
        assert node.store_bundle(bundle)
        assert not node.store_bundle(bundle)
        assert node.carries(bundle.key)
        assert node.has_seen(bundle.key)

    def test_drop(self):
        node = Node(0, buffer_capacity=100)
        bundle = self._bundle()
        node.store_bundle(bundle)
        assert node.drop_bundle(bundle.key) is bundle
        assert not node.carries(bundle.key)
        assert node.has_seen(bundle.key)  # memory persists for dedup

    def test_drop_expired_bundles(self):
        node = Node(0, buffer_capacity=100)
        bundle = self._bundle()
        node.store_bundle(bundle)
        dropped = node.drop_expired_bundles(now=200.0)
        assert dropped == [bundle]
        assert not node.bundles
