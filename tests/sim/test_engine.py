"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import EventEngine
from repro.sim.events import EventKind


class TestOrdering:
    def test_time_order(self):
        engine = EventEngine()
        seen = []
        engine.register(EventKind.CUSTOM, lambda e: seen.append(e.payload))
        for t, label in [(5.0, "b"), (1.0, "a"), (9.0, "c")]:
            engine.schedule(t, EventKind.CUSTOM, label)
        engine.run()
        assert seen == ["a", "b", "c"]

    def test_priority_breaks_same_instant_ties(self):
        engine = EventEngine()
        seen = []
        engine.register(EventKind.DATA_GENERATION, lambda e: seen.append("data"))
        engine.register(EventKind.QUERY_GENERATION, lambda e: seen.append("query"))
        engine.schedule(1.0, EventKind.QUERY_GENERATION)
        engine.schedule(1.0, EventKind.DATA_GENERATION)
        engine.run()
        assert seen == ["data", "query"]  # DATA_GENERATION has lower priority value

    def test_sequence_breaks_full_ties(self):
        engine = EventEngine()
        seen = []
        engine.register(EventKind.CUSTOM, lambda e: seen.append(e.payload))
        engine.schedule(1.0, EventKind.CUSTOM, "first")
        engine.schedule(1.0, EventKind.CUSTOM, "second")
        engine.run()
        assert seen == ["first", "second"]


class TestExecution:
    def test_run_until(self):
        engine = EventEngine()
        seen = []
        engine.register(EventKind.CUSTOM, lambda e: seen.append(e.time))
        for t in (1.0, 2.0, 3.0):
            engine.schedule(t, EventKind.CUSTOM)
        processed = engine.run(until=2.0)
        assert processed == 2
        assert engine.pending == 1
        assert engine.now == 2.0

    def test_handler_can_schedule_future_events(self):
        engine = EventEngine()
        seen = []

        def handler(event):
            seen.append(event.time)
            if event.time < 3.0:
                engine.schedule(event.time + 1.0, EventKind.CUSTOM)

        engine.register(EventKind.CUSTOM, handler)
        engine.schedule(1.0, EventKind.CUSTOM)
        engine.run()
        assert seen == [1.0, 2.0, 3.0]

    def test_handler_cannot_schedule_in_the_past(self):
        engine = EventEngine()

        def handler(event):
            engine.schedule(event.time - 1.0, EventKind.CUSTOM)

        engine.register(EventKind.CUSTOM, handler)
        engine.schedule(5.0, EventKind.CUSTOM)
        with pytest.raises(SimulationError):
            engine.run()

    def test_missing_handler_raises(self):
        engine = EventEngine()
        engine.schedule(1.0, EventKind.CUSTOM)
        with pytest.raises(SimulationError):
            engine.run()

    def test_duplicate_handler_rejected(self):
        engine = EventEngine()
        engine.register(EventKind.CUSTOM, lambda e: None)
        with pytest.raises(SimulationError):
            engine.register(EventKind.CUSTOM, lambda e: None)

    def test_processed_counter(self):
        engine = EventEngine()
        engine.register(EventKind.CUSTOM, lambda e: None)
        for t in range(5):
            engine.schedule(float(t), EventKind.CUSTOM)
        engine.run()
        assert engine.processed == 5
