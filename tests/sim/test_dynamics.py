"""Network-dynamics units: event validation, scheduling, node purge,
estimator activity, and the topology-gated re-election trigger."""

import pytest

from repro.caching import IntentionalCaching, IntentionalConfig, NoCache
from repro.errors import ConfigurationError
from repro.graph.estimator import OnlineContactGraphEstimator
from repro.sim.dynamics import (
    DYNAMICS_ACTIONS,
    DynamicsConfig,
    DynamicsEvent,
    NetworkDynamics,
)
from repro.sim.engine import EventEngine
from repro.sim.events import EventKind
from repro.sim.node import Node
from repro.units import MEGABIT
from tests.conftest import make_item


class TestDynamicsEvent:
    def test_rejects_unknown_action(self):
        with pytest.raises(ConfigurationError, match="unknown dynamics action"):
            DynamicsEvent(action="explode", at_fraction=0.5, node=1)

    def test_rejects_out_of_window_fraction(self):
        with pytest.raises(ConfigurationError, match="at_fraction"):
            DynamicsEvent(action="leave", at_fraction=1.5, node=1)

    @pytest.mark.parametrize("action", ["join", "leave", "fail"])
    def test_node_actions_require_a_node(self, action):
        with pytest.raises(ConfigurationError, match="needs a node id"):
            DynamicsEvent(action=action, at_fraction=0.5)

    def test_fail_central_needs_no_node(self):
        event = DynamicsEvent(action="fail_central", at_fraction=0.5, central_rank=2)
        assert event.node is None

    def test_rejects_negative_central_rank(self):
        with pytest.raises(ConfigurationError, match="central_rank"):
            DynamicsEvent(action="fail_central", at_fraction=0.5, central_rank=-1)

    @pytest.mark.parametrize("action", DYNAMICS_ACTIONS)
    def test_dict_round_trip(self, action):
        if action == "fail_central":
            event = DynamicsEvent(action=action, at_fraction=0.25, central_rank=1)
        else:
            event = DynamicsEvent(action=action, at_fraction=0.25, node=3)
        assert DynamicsEvent.from_dict(event.to_dict()) == event


class TestDynamicsConfig:
    def test_empty_config_is_falsy(self):
        assert not DynamicsConfig()
        assert DynamicsConfig(
            events=(DynamicsEvent(action="leave", at_fraction=0.5, node=1),)
        )

    def test_rejects_non_event_entries(self):
        with pytest.raises(ConfigurationError, match="DynamicsEvent"):
            DynamicsConfig(events=({"action": "leave"},))

    def test_dict_round_trip(self):
        config = DynamicsConfig(
            events=(
                DynamicsEvent(action="fail_central", at_fraction=0.3),
                DynamicsEvent(action="join", at_fraction=0.9, node=2),
            )
        )
        assert DynamicsConfig.from_dict(config.to_dict()) == config


class TestNetworkDynamics:
    def _fired(self, config, start, end):
        engine = EventEngine()
        fired = []
        engine.register(
            EventKind.NETWORK_DYNAMICS,
            lambda event: fired.append((event.time, event.payload)),
        )
        dynamics = NetworkDynamics(config, num_nodes=8)
        scheduled = dynamics.schedule(engine, start, end)
        engine.run()
        return scheduled, fired

    def test_fractions_map_onto_evaluation_window(self):
        config = DynamicsConfig(
            events=(
                DynamicsEvent(action="leave", at_fraction=0.0, node=1),
                DynamicsEvent(action="join", at_fraction=0.5, node=1),
            )
        )
        scheduled, fired = self._fired(config, start=100.0, end=300.0)
        assert scheduled == 2
        assert [time for time, _ in fired] == [100.0, 200.0]

    def test_fraction_one_lands_inside_the_window(self):
        config = DynamicsConfig(
            events=(DynamicsEvent(action="fail", at_fraction=1.0, node=1),)
        )
        _, fired = self._fired(config, start=0.0, end=100.0)
        assert len(fired) == 1
        assert fired[0][0] < 100.0

    def test_rejects_node_beyond_network(self):
        config = DynamicsConfig(
            events=(DynamicsEvent(action="leave", at_fraction=0.5, node=99),)
        )
        with pytest.raises(ConfigurationError, match="network has"):
            NetworkDynamics(config, num_nodes=8)

    def test_rejects_empty_window(self):
        dynamics = NetworkDynamics(DynamicsConfig(), num_nodes=4)
        with pytest.raises(ConfigurationError, match="positive length"):
            dynamics.schedule(EventEngine(), 10.0, 10.0)


class TestNodePurge:
    def test_purge_clears_volatile_state_and_reports_counts(self):
        node = Node(0, buffer_capacity=100 * MEGABIT)
        node.buffer.put(make_item(data_id=1))
        node.generate_data(make_item(data_id=2, source=0))
        dropped = node.purge()
        assert dropped["cached"] == 1
        assert dropped["origin"] == 1
        assert node.buffer.items() == []
        assert node.origin == {}
        assert node.active_queries == {}

    def test_purge_keeps_seen_history(self):
        # _seen_bundles guards against re-accepting the same bundle after
        # a rejoin; history survives the purge on purpose.
        node = Node(0, buffer_capacity=100 * MEGABIT)
        node._seen_bundles.add(("push", 1, 2))
        node.purge()
        assert ("push", 1, 2) in node._seen_bundles


class TestEstimatorActivity:
    def test_inactive_node_reports_zero_rate(self):
        est = OnlineContactGraphEstimator(num_nodes=3)
        est.record_contact(0, 1, 10.0)
        est.set_node_active(1, False)
        assert est.rate(0, 1, now=100.0) == 0.0
        assert not est.is_node_active(1)
        est.set_node_active(1, True)
        assert est.rate(0, 1, now=100.0) > 0.0

    def test_inactive_pairs_excluded_from_snapshot(self):
        est = OnlineContactGraphEstimator(num_nodes=3)
        est.record_contact(0, 1, 10.0)
        est.record_contact(0, 2, 10.0)
        est.set_node_active(1, False)
        graph = est.snapshot(now=100.0)
        assert graph.rate(0, 1) == 0.0
        assert graph.rate(0, 2) > 0.0

    def test_activity_change_invalidates_period_cache(self):
        # A topology change must show up immediately, even inside the
        # snapshot_period window — rate drift is benign, a vanished node
        # is not.
        est = OnlineContactGraphEstimator(num_nodes=3, snapshot_period=1000.0)
        est.record_contact(0, 1, 10.0)
        first = est.snapshot(now=50.0)
        est.set_node_active(1, False)
        second = est.snapshot(now=60.0)
        assert second is not first
        assert second.rate(0, 1) == 0.0


class TestTopologyGatedReelection:
    def test_base_scheme_hook_is_a_noop(self):
        NoCache().on_topology_changed(0.0)  # must not raise

    def test_intentional_marks_reelection_due(self):
        scheme = IntentionalCaching(IntentionalConfig(reelect=True))
        assert scheme._topology_dirty is False
        scheme.on_topology_changed(5.0)
        assert scheme._topology_dirty is True
