"""Unit tests for the simulation orchestrator."""

import pytest

from repro.caching.intentional import IntentionalCaching, IntentionalConfig
from repro.caching.nocache import NoCache
from repro.errors import ConfigurationError
from repro.sim.simulator import Simulator, SimulatorConfig
from repro.traces.contact import Contact, ContactTrace
from repro.traces.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.units import DAY, HOUR, MEGABIT
from repro.workload.config import WorkloadConfig


def tiny_trace(seed=4):
    return generate_synthetic_trace(
        SyntheticTraceConfig(
            name="tiny",
            num_nodes=12,
            duration=6 * DAY,
            total_contacts=2500,
            granularity=60.0,
            seed=seed,
        )
    )


def workload():
    return WorkloadConfig(mean_data_lifetime=12 * HOUR, mean_data_size=20 * MEGABIT)


class TestLifecycle:
    def test_run_returns_result(self):
        sim = Simulator(tiny_trace(), NoCache(), workload(), SimulatorConfig(seed=1))
        result = sim.run()
        assert 0.0 <= result.successful_ratio <= 1.0
        assert result.queries_satisfied <= result.queries_issued

    def test_runs_exactly_once(self):
        sim = Simulator(tiny_trace(), NoCache(), workload(), SimulatorConfig(seed=1))
        sim.run()
        with pytest.raises(ConfigurationError):
            sim.run()

    def test_empty_trace_rejected(self):
        trace = ContactTrace([], num_nodes=3)
        with pytest.raises(ConfigurationError):
            Simulator(trace, NoCache(), workload())

    def test_warmup_boundary(self):
        sim = Simulator(tiny_trace(), NoCache(), workload())
        assert sim.warmup_end == pytest.approx(
            sim.trace.start_time + sim.trace.duration / 2
        )


class TestDeterminism:
    def test_same_seed_same_result(self):
        results = [
            Simulator(
                tiny_trace(),
                IntentionalCaching(
                    IntentionalConfig(num_ncls=2, ncl_time_budget=2 * HOUR)
                ),
                workload(),
                SimulatorConfig(seed=9),
            ).run()
            for _ in range(2)
        ]
        assert results[0].successful_ratio == results[1].successful_ratio
        assert results[0].queries_issued == results[1].queries_issued
        assert results[0].caching_overhead == results[1].caching_overhead

    def test_different_seed_different_workload(self):
        a = Simulator(tiny_trace(), NoCache(), workload(), SimulatorConfig(seed=1)).run()
        b = Simulator(tiny_trace(), NoCache(), workload(), SimulatorConfig(seed=2)).run()
        assert (a.queries_issued, a.data_generated) != (b.queries_issued, b.data_generated)


class TestBufferAssignment:
    def test_buffers_within_configured_range(self):
        wl = workload()
        sim = Simulator(tiny_trace(), NoCache(), wl, SimulatorConfig(seed=1))
        for node in sim.nodes:
            assert wl.buffer_min <= node.buffer.capacity <= wl.buffer_max


class TestEventScheduling:
    def test_workload_only_in_second_half(self):
        sim = Simulator(tiny_trace(), NoCache(), workload(), SimulatorConfig(seed=1))
        sim.run()
        for item in sim.workload_process.generated_items:
            assert item.created_at >= sim.warmup_end

    def test_estimator_sees_all_contacts(self):
        trace = tiny_trace()
        sim = Simulator(trace, NoCache(), workload(), SimulatorConfig(seed=1))
        sim.run()
        assert sim.estimator.total_contacts() == trace.num_contacts

    def test_metrics_accounting_consistent(self):
        sim = Simulator(tiny_trace(), NoCache(), workload(), SimulatorConfig(seed=1))
        result = sim.run()
        assert result.queries_satisfied <= result.responses_emitted + result.queries_satisfied
        assert result.data_generated == sim.workload_process.data_items_generated


class TestConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"link_capacity": 0.0},
            {"graph_refresh_period": 0.0},
            {"sample_period": -1.0},
        ],
    )
    def test_invalid_simulator_configs(self, overrides):
        with pytest.raises(ConfigurationError):
            SimulatorConfig(**overrides)


class TestSnapshotPeriod:
    """Graph refreshes must honour the estimator's snapshot cache.

    Regression: refreshes used to call ``snapshot(force=True)``, which
    rebuilt the contact graph on every refresh no matter what
    ``snapshot_period`` said.
    """

    def _spy_snapshots(self, monkeypatch, config):
        from repro.graph.estimator import OnlineContactGraphEstimator

        calls = []
        original = OnlineContactGraphEstimator.snapshot

        def spy(est, now, force=False):
            # Keep the graph object alive: id() values of collected
            # graphs get recycled, which would fake distinctness.
            graph = original(est, now, force)
            calls.append((force, graph))
            return graph

        monkeypatch.setattr(OnlineContactGraphEstimator, "snapshot", spy)
        Simulator(tiny_trace(), NoCache(), workload(), config).run()
        return calls

    def test_refreshes_reuse_cached_snapshot_within_period(self, monkeypatch):
        # Period longer than the trace: only the forced setup snapshot
        # may build a graph; every refresh must serve it from cache.
        calls = self._spy_snapshots(
            monkeypatch, SimulatorConfig(seed=1, snapshot_period=1e12)
        )
        assert [force for force, _ in calls].count(True) == 1
        assert len(calls) > 1  # refreshes did happen
        assert len({id(graph) for _, graph in calls}) == 1

    def test_zero_period_rebuilds_every_refresh(self, monkeypatch):
        # The legacy default: no caching, a fresh graph per refresh.
        calls = self._spy_snapshots(
            monkeypatch, SimulatorConfig(seed=1, snapshot_period=0.0)
        )
        assert len({id(graph) for _, graph in calls}) == len(calls)
