"""Unit tests for the runtime invariant checker."""

import pytest

from repro.errors import SimulationError
from repro.sim.bundles import PushBundle, ResponseBundle
from repro.sim.invariants import check_buffer_occupancy, check_node, check_nodes
from repro.sim.node import Node
from tests.conftest import make_item, make_query


class TestBufferChecks:
    def test_healthy_node_passes(self):
        node = Node(0, buffer_capacity=100)
        node.buffer.put(make_item(data_id=1, size=40))
        check_node(node, now=0.0)  # no raise

    def test_accounting_drift_detected(self):
        node = Node(0, buffer_capacity=100)
        node.buffer.put(make_item(data_id=1, size=40))
        node.buffer._used = 99  # corrupt deliberately
        with pytest.raises(SimulationError, match="accounting drift"):
            check_node(node, now=0.0)

    def test_over_capacity_detected(self):
        node = Node(0, buffer_capacity=100)
        node.buffer.put(make_item(data_id=1, size=40))
        node.buffer._capacity = 10  # shrink under the item
        with pytest.raises(SimulationError, match="over capacity"):
            check_node(node, now=0.0)


class TestBufferOccupancy:
    """The cheap per-exchange invariant: occupancy within [0, capacity]
    after every committed replacement (satellite 5)."""

    def test_within_capacity_passes(self):
        node = Node(0, buffer_capacity=100)
        node.buffer.put(make_item(data_id=1, size=100))  # exactly full is fine
        check_buffer_occupancy([node])  # no raise

    def test_over_capacity_detected(self):
        node = Node(0, buffer_capacity=100)
        node.buffer.put(make_item(data_id=1, size=60))
        node.buffer._capacity = 50  # force over-commit
        with pytest.raises(SimulationError, match="over capacity"):
            check_buffer_occupancy([node])

    def test_negative_occupancy_detected(self):
        node = Node(0, buffer_capacity=100)
        node.buffer._used = -1
        with pytest.raises(SimulationError, match="negative"):
            check_buffer_occupancy([node])

    def test_names_the_offending_node(self):
        healthy = Node(0, buffer_capacity=100)
        broken = Node(5, buffer_capacity=10)
        broken.buffer.put(make_item(data_id=1, size=5))
        broken.buffer._capacity = 1
        with pytest.raises(SimulationError, match="node 5"):
            check_buffer_occupancy([healthy, broken])


class TestBundleChecks:
    def test_push_for_expired_data_detected(self):
        node = Node(0, buffer_capacity=100)
        item = make_item(data_id=1, size=10, lifetime=5.0)
        bundle = PushBundle(created_at=0.0, expires_at=100.0, data=item, target_central=1)
        node.store_bundle(bundle)
        with pytest.raises(SimulationError, match="expired data"):
            check_node(node, now=50.0)

    def test_response_outliving_query_detected(self):
        node = Node(0, buffer_capacity=100)
        query = make_query(query_id=1, created_at=0.0, time_constraint=10.0)
        bundle = ResponseBundle(
            created_at=0.0, expires_at=999.0, data=make_item(), query=query, responder=0
        )
        node.store_bundle(bundle)
        with pytest.raises(SimulationError, match="outlives query"):
            check_node(node, now=1.0)

    def test_check_nodes_covers_all(self):
        healthy = Node(0, buffer_capacity=100)
        broken = Node(1, buffer_capacity=100)
        broken.buffer.put(make_item(data_id=1, size=40))
        broken.buffer._used = 1
        with pytest.raises(SimulationError):
            check_nodes([healthy, broken], now=0.0)


class TestSimulatorIntegration:
    def test_full_run_under_sanitizer(self):
        """Every scheme passes a full simulation with invariant checking
        after every contact — the strongest end-to-end health check."""
        from repro.caching import (
            BundleCache,
            CacheData,
            IntentionalCaching,
            IntentionalConfig,
            NoCache,
            RandomCache,
        )
        from repro.sim.simulator import Simulator, SimulatorConfig
        from repro.traces.synthetic import SyntheticTraceConfig, generate_synthetic_trace
        from repro.units import DAY, HOUR, MEGABIT
        from repro.workload.config import WorkloadConfig

        trace = generate_synthetic_trace(
            SyntheticTraceConfig(
                name="sanitized",
                num_nodes=12,
                duration=4 * DAY,
                total_contacts=2500,
                granularity=60.0,
                seed=6,
            )
        )
        workload = WorkloadConfig(
            mean_data_lifetime=12 * HOUR, mean_data_size=30 * MEGABIT
        )
        factories = [
            lambda: IntentionalCaching(
                IntentionalConfig(num_ncls=2, ncl_time_budget=2 * HOUR)
            ),
            NoCache,
            RandomCache,
            CacheData,
            BundleCache,
        ]
        for factory in factories:
            result = Simulator(
                trace,
                factory(),
                workload,
                SimulatorConfig(seed=7, validate_invariants=True),
            ).run()
            assert 0.0 <= result.successful_ratio <= 1.0
