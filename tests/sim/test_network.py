"""Unit tests for the per-contact link model."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.network import TransferBudget
from repro.units import BLUETOOTH_EDR_BITS_PER_SECOND


class TestTransferBudget:
    def test_for_contact_uses_capacity_times_duration(self):
        budget = TransferBudget.for_contact(duration_seconds=10.0)
        assert budget.initial == int(10 * BLUETOOTH_EDR_BITS_PER_SECOND)

    def test_consume_success_and_failure(self):
        budget = TransferBudget(100)
        assert budget.try_consume(60)
        assert budget.remaining == 40
        assert not budget.try_consume(50)
        assert budget.remaining == 40  # failed consume leaves state intact

    def test_can_afford(self):
        budget = TransferBudget(10)
        assert budget.can_afford(10)
        assert not budget.can_afford(11)

    def test_zero_cost_transfers_free(self):
        budget = TransferBudget(10)
        assert budget.try_consume(0)
        assert budget.remaining == 10
        assert budget.transfer_count == 0

    def test_transfer_count(self):
        budget = TransferBudget(100)
        budget.try_consume(10)
        budget.try_consume(20)
        assert budget.transfer_count == 2
        assert budget.consumed == 30

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TransferBudget(-1)
        with pytest.raises(ConfigurationError):
            TransferBudget(10).try_consume(-5)
