"""repro — Cooperative caching in Disruption Tolerant Networks.

A faithful, trace-driven reproduction of *"Supporting Cooperative Caching
in Disruption Tolerant Networks"* (Gao, Cao, Iyengar, Srivatsa — ICDCS
2011): Network Central Location (NCL) selection, intentional push/pull
caching, probabilistic response, utility-knapsack cache replacement, the
four baselines the paper compares against, and a benchmark harness that
regenerates every table and figure of its evaluation.

Quickstart
----------
>>> from repro import (
...     IntentionalCaching, IntentionalConfig, Simulator, WorkloadConfig,
...     load_preset_trace,
... )
>>> trace = load_preset_trace("mit_reality", node_factor=0.3, time_factor=0.1)
>>> scheme = IntentionalCaching(IntentionalConfig(num_ncls=4))
>>> result = Simulator(trace, scheme, WorkloadConfig()).run()
>>> 0.0 <= result.successful_ratio <= 1.0
True
"""

from repro.caching import (
    BundleCache,
    CacheData,
    CachingScheme,
    IntentionalCaching,
    IntentionalConfig,
    NoCache,
    RandomCache,
    scheme_by_name,
)
from repro.core import (
    CacheBuffer,
    DataItem,
    FIFOPolicy,
    GreedyDualSizePolicy,
    LRUPolicy,
    NCLSelection,
    PopularityEstimator,
    Query,
    UtilityKnapsackPolicy,
    ncl_metrics,
    select_ncls,
)
from repro.graph import ContactGraph, OpportunisticPath, PathMode, shortest_path
from repro.metrics import AggregateResult, SimulationResult, aggregate_results
from repro.sim import Simulator, SimulatorConfig
from repro.traces import (
    ContactTrace,
    SyntheticTraceConfig,
    TRACE_PRESETS,
    generate_synthetic_trace,
    load_preset_trace,
    summarize_trace,
)
from repro.workload import WorkloadConfig

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # schemes
    "CachingScheme",
    "IntentionalCaching",
    "IntentionalConfig",
    "NoCache",
    "RandomCache",
    "CacheData",
    "BundleCache",
    "scheme_by_name",
    # core
    "CacheBuffer",
    "DataItem",
    "Query",
    "NCLSelection",
    "ncl_metrics",
    "select_ncls",
    "PopularityEstimator",
    "UtilityKnapsackPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "GreedyDualSizePolicy",
    # graph
    "ContactGraph",
    "OpportunisticPath",
    "PathMode",
    "shortest_path",
    # simulation
    "Simulator",
    "SimulatorConfig",
    "WorkloadConfig",
    "SimulationResult",
    "AggregateResult",
    "aggregate_results",
    # traces
    "ContactTrace",
    "SyntheticTraceConfig",
    "generate_synthetic_trace",
    "load_preset_trace",
    "summarize_trace",
    "TRACE_PRESETS",
]
