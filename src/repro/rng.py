"""Deterministic random-number management.

Every stochastic component of the simulator (trace synthesis, workload
generation, probabilistic response, probabilistic cache selection) draws
from its own named stream derived from a single root seed.  This gives two
properties the evaluation relies on:

* **Reproducibility** — a simulation is a pure function of
  ``(trace, workload config, scheme config, seed)``.
* **Variance isolation** — changing one component (say, the caching
  scheme) does not perturb the random draws of another (the workload), so
  paired comparisons between schemes see identical workloads, exactly like
  the paper's "repeated with randomly generated data and queries" setup.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["SeedSequenceFactory", "derive_seed"]


def derive_seed(root_seed: int, *names: str) -> int:
    """Derive a 63-bit child seed from a root seed and a name path.

    The derivation hashes the names rather than relying on Python's
    per-process ``hash`` so results are stable across interpreter runs.
    """
    digest = hashlib.sha256()
    digest.update(str(int(root_seed)).encode("ascii"))
    for name in names:
        digest.update(b"/")
        digest.update(name.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") >> 1


class SeedSequenceFactory:
    """Factory handing out independent, named :class:`numpy.random.Generator`s.

    >>> factory = SeedSequenceFactory(42)
    >>> g1 = factory.generator("workload")
    >>> g2 = factory.generator("workload")
    >>> float(g1.random()) == float(g2.random())  # same name -> same stream
    True
    """

    def __init__(self, root_seed: int):
        self._root_seed = int(root_seed)

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def seed(self, *names: str) -> int:
        """Return the derived integer seed for a name path."""
        return derive_seed(self._root_seed, *names)

    def generator(self, *names: str) -> np.random.Generator:
        """Return a fresh generator for the given name path.

        Repeated calls with the same path return independent generator
        objects positioned at the start of the *same* stream.
        """
        return np.random.default_rng(self.seed(*names))

    def spawn(self, *names: str) -> "SeedSequenceFactory":
        """Return a child factory rooted at the derived seed of *names*."""
        return SeedSequenceFactory(self.seed(*names))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SeedSequenceFactory(root_seed={self._root_seed})"
