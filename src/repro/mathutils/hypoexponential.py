"""Hypoexponential distribution of multi-hop opportunistic delays.

Paper context (Sec. IV-A).  The inter-contact time of each hop *k* on an
opportunistic path is exponential with rate λₖ, so the end-to-end delay
``Y = X₁ + … + X_r`` follows a *hypoexponential* distribution.  Eq. (1)
of the paper gives its density as a signed mixture of the per-hop
exponentials,

    p_Y(x) = Σₖ C_k^{(r)} λₖ e^{-λₖ x},
    C_k^{(r)} = Π_{s≠k} λ_s / (λ_s − λₖ),

and Eq. (2) integrates it into the **path weight** — the probability the
data traverses the path within time T:

    p(T) = Σₖ C_k^{(r)} (1 − e^{-λₖ T}).

The closed form requires pairwise-distinct rates and is numerically
catastrophic when rates nearly coincide (the coefficients blow up with
alternating signs).  Real contact traces produce many near-equal rates, so
this module provides a robust evaluation strategy:

* distinct, well-separated rates → the closed form (fast path);
* repeated or clustered rates → the matrix-exponential formulation.  A
  hypoexponential is a phase-type distribution whose generator is the
  bidiagonal matrix with −λₖ on the diagonal and λₖ on the superdiagonal;
  ``CDF(t) = 1 − [exp(Q t) · 1]₀`` evaluated with :func:`scipy.linalg.expm`.

Both agree to ~1e-10 on well-separated inputs (covered by property tests).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

import numpy as np
from scipy.linalg import expm

__all__ = [
    "Hypoexponential",
    "hypoexponential_cdf",
    "path_delivery_probability",
]

#: Minimum relative gap between two rates for the closed form to be trusted.
_DISTINCT_RTOL = 1e-6


def _validate_rates(rates: Sequence[float]) -> List[float]:
    rates = [float(r) for r in rates]
    if not rates:
        raise ValueError("at least one rate is required")
    for rate in rates:
        if not math.isfinite(rate) or rate <= 0.0:
            raise ValueError(f"rates must be positive and finite, got {rate}")
    return rates


def _rates_well_separated(rates: Sequence[float]) -> bool:
    ordered = sorted(rates)
    for a, b in zip(ordered, ordered[1:]):
        if b - a <= _DISTINCT_RTOL * b:
            return False
    return True


def _closed_form_cdf(rates: Sequence[float], t: float) -> float:
    """Eq. (2) of the paper, valid for pairwise-distinct rates."""
    total = 0.0
    for k, lam_k in enumerate(rates):
        coeff = 1.0
        for s, lam_s in enumerate(rates):
            if s == k:
                continue
            coeff *= lam_s / (lam_s - lam_k)
        total += coeff * (1.0 - math.exp(-lam_k * t))
    return total


def _cluster_rates(rates: Sequence[float], rtol: float = 1e-9) -> List[float]:
    """Snap rates that agree to within *rtol* onto their cluster mean.

    A pair of rates differing by less than float precision makes every
    evaluation method ill-conditioned (the analytic term is a difference
    quotient whose numerator underflows), while *exactly* repeated rates
    are numerically benign.  Replacing near-duplicates by their mean
    changes the distribution by O(rtol) and restores stability.
    """
    ordered = sorted(range(len(rates)), key=lambda i: rates[i])
    clustered = list(rates)
    cluster = [ordered[0]]
    for index in ordered[1:]:
        if rates[index] - rates[cluster[-1]] <= rtol * rates[index]:
            cluster.append(index)
        else:
            if len(cluster) > 1:
                mean = sum(rates[i] for i in cluster) / len(cluster)
                for i in cluster:
                    clustered[i] = mean
            cluster = [index]
    if len(cluster) > 1:
        mean = sum(rates[i] for i in cluster) / len(cluster)
        for i in cluster:
            clustered[i] = mean
    return clustered


def _generator_matrix(rates: Sequence[float]) -> np.ndarray:
    """Sub-generator of the phase-type representation (absorbing chain)."""
    r = len(rates)
    q = np.zeros((r, r))
    for k, lam in enumerate(rates):
        q[k, k] = -lam
        if k + 1 < r:
            q[k, k + 1] = lam
    return q


def _matrix_cdf(rates: Sequence[float], t: float) -> float:
    q = _generator_matrix(rates)
    survival = expm(q * t).sum(axis=1)[0]
    return float(1.0 - survival)


def hypoexponential_cdf(rates: Sequence[float], t: float) -> float:
    """P(X₁ + … + X_r ≤ t) for independent exponentials with given rates.

    Automatically selects the closed form (Eq. 2) or the
    matrix-exponential evaluation depending on rate separation, and clamps
    the result into [0, 1] to absorb floating-point round-off.
    """
    rates = _validate_rates(rates)
    if t <= 0.0:
        return 0.0
    if len(rates) == 1:
        return 1.0 - math.exp(-rates[0] * t)
    if _rates_well_separated(rates):
        value = _closed_form_cdf(rates, t)
        # The alternating-sign sum can still lose precision for long paths;
        # fall back whenever the result strays outside the unit interval.
        if -1e-9 <= value <= 1.0 + 1e-9:
            return min(1.0, max(0.0, value))
    return min(1.0, max(0.0, _matrix_cdf(_cluster_rates(rates), t)))


def path_delivery_probability(rates: Iterable[float], time_budget: float) -> float:
    """Paper Eq. (2): the weight of an opportunistic path.

    The probability that a data item is opportunistically relayed across
    all hops (with contact rates *rates*) within *time_budget* seconds.
    An empty rate list denotes the trivial zero-hop path (source is the
    destination) and has probability 1 for any non-negative budget.
    """
    rates = list(rates)
    if time_budget < 0:
        raise ValueError("time budget must be non-negative")
    if not rates:
        return 1.0
    return hypoexponential_cdf(rates, time_budget)


class Hypoexponential:
    """Distribution object for a fixed sequence of hop rates.

    Provides cdf/pdf/mean/variance and sampling; used by the path-weight
    computation, by tests, and by the analytical sanity checks in the
    benchmark harness.
    """

    def __init__(self, rates: Sequence[float]):
        self._rates = _validate_rates(rates)

    @property
    def rates(self) -> List[float]:
        return list(self._rates)

    @property
    def mean(self) -> float:
        """E[Y] = Σ 1/λₖ."""
        return sum(1.0 / lam for lam in self._rates)

    @property
    def variance(self) -> float:
        """Var[Y] = Σ 1/λₖ² (independent exponentials)."""
        return sum(1.0 / lam**2 for lam in self._rates)

    def cdf(self, t: float) -> float:
        return hypoexponential_cdf(self._rates, t)

    def sf(self, t: float) -> float:
        """Survival function P(Y > t)."""
        return 1.0 - self.cdf(t)

    def pdf(self, t: float, eps: float = 1e-6) -> float:
        """Density via a central difference of the robust CDF.

        The closed-form density (Eq. 1) suffers the same degeneracy as the
        CDF; a derivative of the robust CDF is accurate enough for every
        use in this library (plots and tests).
        """
        if t <= 0.0:
            return 0.0
        h = max(eps, eps * t)
        lo = max(0.0, t - h)
        return (self.cdf(t + h) - self.cdf(lo)) / (t + h - lo)

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw *size* end-to-end delays by summing per-hop exponentials."""
        draws = np.zeros(size)
        for lam in self._rates:
            draws = draws + rng.exponential(1.0 / lam, size=size)
        return draws

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Hypoexponential(rates={self._rates!r})"
