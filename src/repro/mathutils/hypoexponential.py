"""Hypoexponential distribution of multi-hop opportunistic delays.

Paper context (Sec. IV-A).  The inter-contact time of each hop *k* on an
opportunistic path is exponential with rate λₖ, so the end-to-end delay
``Y = X₁ + … + X_r`` follows a *hypoexponential* distribution.  Eq. (1)
of the paper gives its density as a signed mixture of the per-hop
exponentials,

    p_Y(x) = Σₖ C_k^{(r)} λₖ e^{-λₖ x},
    C_k^{(r)} = Π_{s≠k} λ_s / (λ_s − λₖ),

and Eq. (2) integrates it into the **path weight** — the probability the
data traverses the path within time T:

    p(T) = Σₖ C_k^{(r)} (1 − e^{-λₖ T}).

The closed form requires pairwise-distinct rates and is numerically
catastrophic when rates nearly coincide (the coefficients blow up with
alternating signs).  Real contact traces produce many near-equal rates, so
this module provides a robust evaluation strategy:

* distinct, well-separated rates → the closed form (fast path);
* repeated or clustered rates → the matrix-exponential formulation.  A
  hypoexponential is a phase-type distribution whose generator is the
  bidiagonal matrix with −λₖ on the diagonal and λₖ on the superdiagonal;
  ``CDF(t) = 1 − [exp(Q t) · 1]₀`` evaluated with :func:`scipy.linalg.expm`.

Both agree to ~1e-10 on well-separated inputs (covered by property tests).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Union

import numpy as np
from scipy.linalg import expm

from repro.kernels.registry import kernel_override

__all__ = [
    "Hypoexponential",
    "hypoexponential_cdf",
    "hypoexponential_cdf_batch",
    "pad_rate_rows",
    "path_delivery_probability",
]

#: Minimum relative gap between two rates for the closed form to be trusted.
_DISTINCT_RTOL = 1e-6

#: Batch size from which duplicate-row collapsing pays for its sort.
_DEDUP_MIN_ROWS = 64


def _validate_rates(rates: Sequence[float]) -> List[float]:
    rates = [float(r) for r in rates]
    if not rates:
        raise ValueError("at least one rate is required")
    for rate in rates:
        if not math.isfinite(rate) or rate <= 0.0:
            raise ValueError(f"rates must be positive and finite, got {rate}")
    return rates


def _rates_well_separated(rates: Sequence[float]) -> bool:
    ordered = sorted(rates)
    for a, b in zip(ordered, ordered[1:]):
        if b - a <= _DISTINCT_RTOL * b:
            return False
    return True


def _closed_form_cdf(rates: Sequence[float], t: float) -> float:
    """Eq. (2) of the paper, valid for pairwise-distinct rates."""
    total = 0.0
    for k, lam_k in enumerate(rates):
        coeff = 1.0
        for s, lam_s in enumerate(rates):
            if s == k:
                continue
            coeff *= lam_s / (lam_s - lam_k)
        total += coeff * (1.0 - math.exp(-lam_k * t))
    return total


def _cluster_rates(rates: Sequence[float], rtol: float = 1e-9) -> List[float]:
    """Snap rates that agree to within *rtol* onto their cluster mean.

    A pair of rates differing by less than float precision makes every
    evaluation method ill-conditioned (the analytic term is a difference
    quotient whose numerator underflows), while *exactly* repeated rates
    are numerically benign.  Replacing near-duplicates by their mean
    changes the distribution by O(rtol) and restores stability.
    """
    ordered = sorted(range(len(rates)), key=lambda i: rates[i])
    clustered = list(rates)
    cluster = [ordered[0]]
    for index in ordered[1:]:
        if rates[index] - rates[cluster[-1]] <= rtol * rates[index]:
            cluster.append(index)
        else:
            if len(cluster) > 1:
                mean = sum(rates[i] for i in cluster) / len(cluster)
                for i in cluster:
                    clustered[i] = mean
            cluster = [index]
    if len(cluster) > 1:
        mean = sum(rates[i] for i in cluster) / len(cluster)
        for i in cluster:
            clustered[i] = mean
    return clustered


def _generator_matrix(rates: Sequence[float]) -> np.ndarray:
    """Sub-generator of the phase-type representation (absorbing chain)."""
    r = len(rates)
    q = np.zeros((r, r))
    for k, lam in enumerate(rates):
        q[k, k] = -lam
        if k + 1 < r:
            q[k, k + 1] = lam
    return q


def _matrix_cdf(rates: Sequence[float], t: float) -> float:
    q = _generator_matrix(rates)
    survival = expm(q * t).sum(axis=1)[0]
    return float(1.0 - survival)


#: Cross-batch memo for the expm fallback.  Trace-quantised rates repeat
#: the same hop tuples across every per-source sweep of a run, and expm
#: costs ~200µs per matrix even stacked (scipy iterates per matrix), so
#: remembering (tuple, t) → CDF turns the steady state into dict hits.
#: Bounded by wholesale reset — the workload is a small recurring
#: vocabulary, so an LRU's bookkeeping would cost more than it saves.
_MATRIX_CDF_CACHE: dict = {}
_MATRIX_CDF_CACHE_MAX = 1 << 18


def _matrix_cdf_batch(rate_lists: Sequence[List[float]], times: np.ndarray) -> np.ndarray:
    """Matrix-exponential CDF for many rate tuples at once.

    Rows are grouped by hop count and each group goes through one stacked
    :func:`scipy.linalg.expm` call (scipy applies the same scaling-and-
    squaring per matrix, so values are identical to the scalar path).
    Rates are pre-clustered exactly like :func:`hypoexponential_cdf`.
    Results are memoised per (rate tuple, t) across calls.
    """
    out = np.zeros(len(rate_lists))
    by_length: dict = {}
    for index, rates in enumerate(rate_lists):
        key = (tuple(rates), float(times[index]))
        cached = _MATRIX_CDF_CACHE.get(key)
        if cached is not None:
            out[index] = cached
        else:
            by_length.setdefault(len(rates), []).append(index)
    if len(_MATRIX_CDF_CACHE) > _MATRIX_CDF_CACHE_MAX:
        _MATRIX_CDF_CACHE.clear()
    for length, indices in by_length.items():
        if length == 1:
            for i in indices:
                out[i] = 1.0 - math.exp(-rate_lists[i][0] * times[i])
                _MATRIX_CDF_CACHE[(tuple(rate_lists[i]), float(times[i]))] = out[i]
            continue
        stacked = np.zeros((len(indices), length, length))
        for row, i in enumerate(indices):
            clustered = _cluster_rates(rate_lists[i])
            stacked[row] = _generator_matrix(clustered) * times[i]
        survival = expm(stacked)[:, 0, :].sum(axis=1)
        out[indices] = np.clip(1.0 - survival, 0.0, 1.0)
        for i in indices:
            _MATRIX_CDF_CACHE[(tuple(rate_lists[i]), float(times[i]))] = out[i]
    return out


def hypoexponential_cdf(rates: Sequence[float], t: float) -> float:
    """P(X₁ + … + X_r ≤ t) for independent exponentials with given rates.

    Automatically selects the closed form (Eq. 2) or the
    matrix-exponential evaluation depending on rate separation, and clamps
    the result into [0, 1] to absorb floating-point round-off.
    """
    rates = _validate_rates(rates)
    if t <= 0.0:
        return 0.0
    if len(rates) == 1:
        return 1.0 - math.exp(-rates[0] * t)
    if _rates_well_separated(rates):
        value = _closed_form_cdf(rates, t)
        # The alternating-sign sum can still lose precision for long paths;
        # fall back whenever the result strays outside the unit interval.
        if -1e-9 <= value <= 1.0 + 1e-9:
            return min(1.0, max(0.0, value))
    return min(1.0, max(0.0, _matrix_cdf(_cluster_rates(rates), t)))


def pad_rate_rows(rate_rows: Sequence[Sequence[float]]) -> np.ndarray:
    """Pack ragged rate tuples into a zero-padded 2D rate matrix.

    Valid rates are strictly positive, so zero is an unambiguous padding
    value; the result is the matrix form accepted by
    :func:`hypoexponential_cdf_batch`.  An all-zero row denotes the
    trivial zero-hop path.
    """
    if isinstance(rate_rows, np.ndarray) and rate_rows.ndim == 2:
        return np.asarray(rate_rows, dtype=float)
    width = max((len(row) for row in rate_rows), default=0)
    padded = np.zeros((len(rate_rows), max(width, 1)))
    for i, row in enumerate(rate_rows):
        if len(row):
            padded[i, : len(row)] = row
    return padded


def _batch_rows_well_separated(rates: np.ndarray, valid: np.ndarray) -> np.ndarray:
    """Row-wise version of :func:`_rates_well_separated` on a padded matrix."""
    # Padding (zeros) sorts to +inf so it never participates in a gap check.
    sortable = np.where(valid, rates, np.inf)
    ordered = np.sort(sortable, axis=1)
    lo, hi = ordered[:, :-1], ordered[:, 1:]
    pair_valid = np.isfinite(hi)
    with np.errstate(invalid="ignore"):
        gap_ok = (hi - lo) > _DISTINCT_RTOL * hi
    return np.where(pair_valid, gap_ok, True).all(axis=1)


def _closed_form_coeff_batch(rates: np.ndarray, mask: np.ndarray):
    """Eq. (2) coefficients C[i, k] = Π_{s≠k} λ_s / (λ_s − λ_k), plus the
    per-row well-separated flag — the registered ``hypoexp_cdf_batch``
    kernel.  Only pure arithmetic lives here (a compiled backend must
    match it bitwise); the transcendentals and the final sum stay with
    the caller in shared numpy code."""
    override = kernel_override("hypoexp_cdf_batch")
    if override is not None:
        return override(rates, mask)
    diff = rates[:, None, :] - rates[:, :, None]  # diff[i, k, s] = λ_s − λ_k
    numer = np.broadcast_to(rates[:, None, :], diff.shape)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = numer / diff
    # Pairs that must not contribute to the product: s == k, padded s, or
    # (for padded k) any s at all — their factor is the identity.
    contributes = mask[:, None, :] & mask[:, :, None]
    eye = np.eye(rates.shape[1], dtype=bool)
    np.copyto(ratio, 1.0, where=~contributes | eye)
    # Rows with exactly-duplicated rates produce inf/nan coefficients
    # here; they are routed to the matrix-exponential fallback by the
    # caller, so the overflow noise is expected and silenced.
    with np.errstate(invalid="ignore", over="ignore"):
        coeff = ratio.prod(axis=2)
    return coeff, _batch_rows_well_separated(rates, mask)


def hypoexponential_cdf_batch(
    rate_rows: Union[np.ndarray, Sequence[Sequence[float]]],
    t: Union[float, np.ndarray],
) -> np.ndarray:
    """Vectorized :func:`hypoexponential_cdf` over a batch of rate tuples.

    Parameters
    ----------
    rate_rows:
        Either a ragged sequence of per-path rate tuples or a 2D
        zero-padded rate matrix (``padded[i, :len(rates_i)] = rates_i``;
        see :func:`pad_rate_rows`).  Entries must be positive and finite;
        zeros mark padding.  An empty row is the trivial zero-hop path
        (probability 1), mirroring :func:`path_delivery_probability`.
    t:
        Scalar time, or an array broadcastable to one value per row.

    Returns
    -------
    np.ndarray
        ``out[i] = hypoexponential_cdf(rate_rows[i], t_i)`` to within
        1e-10 (property-tested).  The closed form (Eq. 2) is evaluated in
        one vectorized sweep; rows with clustered rates — or whose
        alternating-sign sum strays outside the unit interval — fall back
        to the scalar matrix-exponential path row by row.
    """
    padded = pad_rate_rows(rate_rows)
    if padded.ndim != 2:
        raise ValueError("rate_rows must be a sequence of rate tuples or 2D matrix")
    n_rows, width = padded.shape
    if n_rows == 0:
        return np.zeros(0)
    if n_rows >= _DEDUP_MIN_ROWS:
        # Trace estimation quantises rates to count/elapsed, so large
        # batches (one row per destination of a 10⁵-node sweep) repeat
        # the same hop tuples thousands of times.  Every stage below is
        # row-independent — the closed-form coefficients, the gap check,
        # and scipy's per-matrix expm — so collapsing duplicate
        # (row, t) pairs returns bitwise the same values at a fraction
        # of the expm cost.
        times_col = np.broadcast_to(np.asarray(t, dtype=float), (n_rows,))
        keyed = np.column_stack([padded, times_col])
        unique, inverse = np.unique(keyed, axis=0, return_inverse=True)
        if len(unique) < n_rows:
            values = hypoexponential_cdf_batch(
                np.ascontiguousarray(unique[:, :width]), unique[:, width]
            )
            return values[inverse]
    valid = padded > 0.0
    if not np.isfinite(padded).all() or (padded < 0.0).any():
        raise ValueError("rates must be positive and finite (zero = padding)")
    lengths = valid.sum(axis=1)
    times = np.broadcast_to(np.asarray(t, dtype=float), (n_rows,))

    out = np.zeros(n_rows)
    # Trivial zero-hop rows have probability 1 for any non-negative budget.
    out[lengths == 0] = 1.0
    live = (lengths > 0) & (times > 0.0)
    if not live.any():
        return out

    rates = padded[live]
    mask = valid[live]
    tt = times[live][:, None]

    # Eq. (2) closed form, batched.  The coefficient stage is the
    # dispatchable kernel (python or compiled backend, bitwise equal);
    # the expm1 terms and the masked sum are shared numpy code.
    coeff, separated = _closed_form_coeff_batch(rates, mask)
    with np.errstate(invalid="ignore", over="ignore"):
        terms = coeff * -np.expm1(-rates * tt)
        closed = np.where(mask, terms, 0.0).sum(axis=1)
        # Single-rate rows: the closed form degenerates to exactly 1 − e^{-λt}.
        in_unit = (closed >= -1e-9) & (closed <= 1.0 + 1e-9)
    ok = separated & in_unit
    values = np.clip(closed, 0.0, 1.0)
    if not ok.all():
        # Fallback rows take the same route as the scalar
        # hypoexponential_cdf (rate clustering + matrix exponential),
        # batched through one stacked expm per hop count.
        bad = np.nonzero(~ok)[0]
        rate_lists = [rates[i][mask[i]].tolist() for i in bad]
        values[bad] = _matrix_cdf_batch(rate_lists, tt[bad, 0])
    out[live] = values
    return out


def _reference_cdf_batch(
    rate_rows: Union[np.ndarray, Sequence[Sequence[float]]],
    t: Union[float, np.ndarray],
) -> np.ndarray:
    """Scalar-loop oracle for :func:`hypoexponential_cdf_batch`.

    One :func:`hypoexponential_cdf` call per row (zero-hop rows are 1,
    non-positive times are 0).  The registered ``hypoexp_cdf_batch``
    kernel is pinned to this to 1e-10 by property tests, and the python
    and numba backends are pinned to each other bitwise.
    """
    padded = pad_rate_rows(rate_rows)
    times = np.broadcast_to(np.asarray(t, dtype=float), (len(padded),))
    out = np.zeros(len(padded))
    for i, row in enumerate(padded):
        rates = [float(r) for r in row if r > 0.0]
        if not rates:
            out[i] = 1.0
        elif times[i] > 0.0:
            out[i] = hypoexponential_cdf(rates, float(times[i]))
    return out


def path_delivery_probability(rates: Iterable[float], time_budget: float) -> float:
    """Paper Eq. (2): the weight of an opportunistic path.

    The probability that a data item is opportunistically relayed across
    all hops (with contact rates *rates*) within *time_budget* seconds.
    An empty rate list denotes the trivial zero-hop path (source is the
    destination) and has probability 1 for any non-negative budget.
    """
    rates = list(rates)
    if time_budget < 0:
        raise ValueError("time budget must be non-negative")
    if not rates:
        return 1.0
    return hypoexponential_cdf(rates, time_budget)


class Hypoexponential:
    """Distribution object for a fixed sequence of hop rates.

    Provides cdf/pdf/mean/variance and sampling; used by the path-weight
    computation, by tests, and by the analytical sanity checks in the
    benchmark harness.
    """

    def __init__(self, rates: Sequence[float]):
        self._rates = _validate_rates(rates)

    @property
    def rates(self) -> List[float]:
        return list(self._rates)

    @property
    def mean(self) -> float:
        """E[Y] = Σ 1/λₖ."""
        return sum(1.0 / lam for lam in self._rates)

    @property
    def variance(self) -> float:
        """Var[Y] = Σ 1/λₖ² (independent exponentials)."""
        return sum(1.0 / lam**2 for lam in self._rates)

    def cdf(self, t: float) -> float:
        return hypoexponential_cdf(self._rates, t)

    def sf(self, t: float) -> float:
        """Survival function P(Y > t)."""
        return 1.0 - self.cdf(t)

    def pdf(self, t: float, eps: float = 1e-6) -> float:
        """Density via a central difference of the robust CDF.

        The closed-form density (Eq. 1) suffers the same degeneracy as the
        CDF; a derivative of the robust CDF is accurate enough for every
        use in this library (plots and tests).
        """
        if t <= 0.0:
            return 0.0
        h = max(eps, eps * t)
        lo = max(0.0, t - h)
        return (self.cdf(t + h) - self.cdf(lo)) / (t + h - lo)

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw *size* end-to-end delays by summing per-hop exponentials."""
        draws = np.zeros(size)
        for lam in self._rates:
            draws = draws + rng.exponential(1.0 / lam, size=size)
        return draws

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Hypoexponential(rates={self._rates!r})"
