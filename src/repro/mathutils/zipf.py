"""Zipf query-popularity distribution (paper Eq. 8, Fig. 9b).

The paper models the probability that data item *j* (rank-ordered) is
requested as

    P_j = (1/j^s) / Σ_{i=1..M} (1/i^s),

with exponent *s* controlling skew.  Fig. 9(b) plots P_j for
s ∈ {0.5, 1, 1.5}; the evaluation itself uses s = 1.

The catalogue of data items in a running simulation grows over time, so
:class:`ZipfDistribution` supports cheap re-normalisation as M changes.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["ZipfDistribution"]


class ZipfDistribution:
    """Finite Zipf distribution over ranks 1..M."""

    def __init__(self, num_items: int, exponent: float = 1.0):
        if num_items < 1:
            raise ValueError("num_items must be >= 1")
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        self._exponent = float(exponent)
        self._num_items = int(num_items)
        self._weights = self._compute_weights(self._num_items, self._exponent)
        self._normalizer = float(self._weights.sum())

    @staticmethod
    def _compute_weights(num_items: int, exponent: float) -> np.ndarray:
        ranks = np.arange(1, num_items + 1, dtype=float)
        return ranks**-exponent

    @property
    def num_items(self) -> int:
        return self._num_items

    @property
    def exponent(self) -> float:
        return self._exponent

    def resize(self, num_items: int) -> None:
        """Change the catalogue size M, keeping the exponent."""
        if num_items < 1:
            raise ValueError("num_items must be >= 1")
        if num_items == self._num_items:
            return
        self._num_items = int(num_items)
        self._weights = self._compute_weights(self._num_items, self._exponent)
        self._normalizer = float(self._weights.sum())

    def pmf(self, rank: int) -> float:
        """P_j for 1-based rank *rank* (paper Eq. 8)."""
        if not 1 <= rank <= self._num_items:
            raise ValueError(f"rank must be in [1, {self._num_items}], got {rank}")
        return float(self._weights[rank - 1] / self._normalizer)

    def pmf_vector(self) -> np.ndarray:
        """The full probability vector (P_1, …, P_M)."""
        return self._weights / self._normalizer

    def sample_rank(self, rng: np.random.Generator) -> int:
        """Draw one 1-based rank."""
        return int(rng.choice(self._num_items, p=self.pmf_vector())) + 1

    def sample_ranks(self, rng: np.random.Generator, size: int) -> List[int]:
        """Draw *size* i.i.d. 1-based ranks."""
        draws = rng.choice(self._num_items, p=self.pmf_vector(), size=size)
        return [int(d) + 1 for d in draws]

    @staticmethod
    def pmf_series(num_items: int, exponents: Sequence[float]) -> dict:
        """P_j vectors for several exponents — the series of Fig. 9(b)."""
        return {
            float(s): ZipfDistribution(num_items, s).pmf_vector()
            for s in exponents
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ZipfDistribution(num_items={self._num_items}, exponent={self._exponent})"
