"""Probabilistic-response sigmoid (paper Eq. 4, Fig. 7).

When a caching node cannot estimate its opportunistic-path weight to the
requester, it decides whether to return a cached copy using only the
query's elapsed time t₀ (out of the constraint T_q).  The paper requires

    p_R(0)   = p_min ∈ (p_max/2, p_max)   — fresh query, many other copies
                                             may still make it, respond
                                             conservatively;
    p_R(T_q) = p_max ∈ (0, 1]             — query nearly expired, this may
                                             be the last chance, respond
                                             aggressively;

realised by the sigmoid ``p_R(t) = k₁ / (1 + e^{−k₂ t})`` with
``k₁ = 2 p_min`` and ``k₂ = ln(p_max / (2 p_min − p_max)) / T_q``.

Note on the argument: the paper's prose says the probability should be
"inversely proportional to T_q − t₀" (the *remaining* time) while the
boundary conditions are stated at t = 0 and t = T_q; the two statements
are consistent exactly when t is the **elapsed** time t₀, which is what
this class implements (see DESIGN.md interpretation notes).
"""

from __future__ import annotations

import math

__all__ = ["ResponseSigmoid"]


class ResponseSigmoid:
    """The paper's Eq. (4) with validated parameters.

    >>> sigmoid = ResponseSigmoid(p_min=0.45, p_max=0.8, time_constraint=36000)
    >>> round(sigmoid(0.0), 2)
    0.45
    >>> round(sigmoid(36000.0), 2)
    0.8
    """

    def __init__(self, p_min: float, p_max: float, time_constraint: float):
        if not 0.0 < p_max <= 1.0:
            raise ValueError(f"p_max must be in (0, 1], got {p_max}")
        if not p_max / 2.0 < p_min < p_max:
            raise ValueError(
                f"p_min must be in (p_max/2, p_max) = ({p_max / 2}, {p_max}), got {p_min}"
            )
        if time_constraint <= 0:
            raise ValueError("time_constraint must be positive")
        self._p_min = float(p_min)
        self._p_max = float(p_max)
        self._time_constraint = float(time_constraint)
        self._k1 = 2.0 * p_min
        self._k2 = math.log(p_max / (2.0 * p_min - p_max)) / time_constraint

    @property
    def p_min(self) -> float:
        return self._p_min

    @property
    def p_max(self) -> float:
        return self._p_max

    @property
    def time_constraint(self) -> float:
        return self._time_constraint

    @property
    def k1(self) -> float:
        return self._k1

    @property
    def k2(self) -> float:
        return self._k2

    def __call__(self, elapsed: float) -> float:
        """Response probability after *elapsed* seconds of query lifetime.

        Values outside [0, T_q] are clamped: a query cannot have negative
        elapsed time, and once past its constraint the caller should have
        dropped it, but clamping keeps the function total.
        """
        elapsed = min(max(elapsed, 0.0), self._time_constraint)
        return self._k1 / (1.0 + math.exp(-self._k2 * elapsed))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ResponseSigmoid(p_min={self._p_min}, p_max={self._p_max}, "
            f"time_constraint={self._time_constraint})"
        )
