"""Mathematical kernel underpinning the caching scheme.

* :mod:`repro.mathutils.hypoexponential` — the distribution of a sum of
  independent exponential inter-contact times (paper Eq. 1–2).
* :mod:`repro.mathutils.zipf` — the query popularity distribution
  (paper Eq. 8, Fig. 9b).
* :mod:`repro.mathutils.poisson` — contact/request rate estimation.
* :mod:`repro.mathutils.ks` — Kolmogorov–Smirnov goodness-of-fit
  distance (model-fidelity diagnostics, inter-contact analysis).
* :mod:`repro.mathutils.sigmoid` — the probabilistic-response sigmoid
  (paper Eq. 4, Fig. 7).
"""

from repro.mathutils.hypoexponential import (
    Hypoexponential,
    hypoexponential_cdf,
    path_delivery_probability,
)
from repro.mathutils.ks import exponential_ks, ks_statistic
from repro.mathutils.poisson import RateEstimator, poisson_probability_at_least_one
from repro.mathutils.sigmoid import ResponseSigmoid
from repro.mathutils.zipf import ZipfDistribution

__all__ = [
    "Hypoexponential",
    "hypoexponential_cdf",
    "path_delivery_probability",
    "RateEstimator",
    "poisson_probability_at_least_one",
    "ks_statistic",
    "exponential_ks",
    "ResponseSigmoid",
    "ZipfDistribution",
]
