"""Kolmogorov–Smirnov distance between a sample and a model CDF.

The fidelity diagnostics (``repro diagnose``) and the inter-contact
analysis of :mod:`repro.traces.analysis` both need the same two-sided
one-sample statistic

    D_n = sup_x |F_n(x) − F(x)|

computed against a continuous model CDF.  The supremum over a step
empirical CDF is attained at a sample point, comparing the model against
both the pre-jump (``i/n``) and post-jump (``(i−1)/n``) empirical levels.

No p-values here on purpose: the paper's model only needs the
exponential to be a *workable approximation*, so the diagnostics compare
D_n against loose plausibility thresholds (DESIGN.md §7) rather than
running a strict hypothesis test.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence, Union

import numpy as np

__all__ = ["ks_statistic", "exponential_ks"]


def ks_statistic(
    samples: Sequence[float],
    model_cdf: Union[Callable[[np.ndarray], np.ndarray], np.ndarray],
) -> float:
    """Two-sided KS distance of *samples* against *model_cdf*.

    ``model_cdf`` is either a vectorised callable evaluated at the sorted
    samples, or a precomputed array of model CDF values already aligned
    with the sorted samples.  Raises :class:`ValueError` on an empty
    sample.
    """
    ordered = np.sort(np.asarray(samples, dtype=float))
    n = ordered.size
    if n == 0:
        raise ValueError("ks_statistic needs at least one sample")
    if callable(model_cdf):
        model = np.asarray(model_cdf(ordered), dtype=float)
    else:
        model = np.asarray(model_cdf, dtype=float)
    if model.shape != ordered.shape:
        raise ValueError(
            f"model CDF shape {model.shape} does not match sample shape {ordered.shape}"
        )
    empirical_hi = np.arange(1, n + 1) / n
    empirical_lo = np.arange(0, n) / n
    return float(
        np.maximum(np.abs(empirical_hi - model), np.abs(model - empirical_lo)).max()
    )


def exponential_ks(samples: Sequence[float], rate: float) -> float:
    """KS distance of *samples* against Exp(*rate*)."""
    if rate <= 0 or not math.isfinite(rate):
        raise ValueError(f"rate must be positive and finite, got {rate}")
    return ks_statistic(samples, lambda x: 1.0 - np.exp(-rate * x))
