"""Poisson-process rate estimation.

Two places in the paper estimate a Poisson rate from observed event
timestamps:

* **Contact rates** (Sec. III-B): λ̂ᵢⱼ is "calculated at real-time from the
  cumulative contacts between nodes i and j in a time-average manner" —
  i.e. count / elapsed time since the network started.
* **Data popularity** (Sec. V-D1, Eq. 5): the request process of a data
  item has rate λ_d = k / (t_k − t_1) from the past k request occurrences
  in [t₁, t_k]; only two time values plus a counter are kept per item.

:class:`RateEstimator` implements both conventions behind one interface.
"""

from __future__ import annotations

import math

__all__ = ["RateEstimator", "poisson_probability_at_least_one"]


def poisson_probability_at_least_one(rate: float, horizon: float) -> float:
    """P(≥1 event in *horizon*) for a Poisson process with *rate*.

    This is the popularity formula of paper Eq. (6):
    ``w = 1 − e^{−λ_d (t_e − t_k)}``.
    """
    if rate < 0:
        raise ValueError("rate must be non-negative")
    if horizon <= 0:
        return 0.0
    return 1.0 - math.exp(-rate * horizon)


class RateEstimator:
    """Online estimator of a Poisson event rate from event timestamps.

    Parameters
    ----------
    origin:
        Reference start time.  With ``anchor='origin'`` the rate is
        count / (now − origin) — the paper's time-average contact-rate
        convention.  With ``anchor='first_event'`` the rate is
        (count) / (t_last − t_first) — the paper's data-popularity
        convention (Eq. 5, λ_d = k / (t_k − t₁)).
    """

    __slots__ = ("_origin", "_anchor", "_count", "_first", "_last")

    def __init__(self, origin: float = 0.0, anchor: str = "origin"):
        if anchor not in ("origin", "first_event"):
            raise ValueError("anchor must be 'origin' or 'first_event'")
        self._origin = float(origin)
        self._anchor = anchor
        self._count = 0
        self._first = math.nan
        self._last = math.nan

    @property
    def count(self) -> int:
        """Number of events recorded so far."""
        return self._count

    @property
    def first_event_time(self) -> float:
        return self._first

    @property
    def last_event_time(self) -> float:
        return self._last

    def record(self, timestamp: float) -> None:
        """Record one event occurrence at *timestamp* (non-decreasing)."""
        if self._count and timestamp < self._last:
            raise ValueError(
                f"event timestamps must be non-decreasing: {timestamp} < {self._last}"
            )
        if not self._count:
            self._first = timestamp
        self._last = timestamp
        self._count += 1

    def rate(self, now: float) -> float:
        """Current rate estimate at time *now* (events per second).

        Returns 0.0 until enough observations exist: one event for the
        ``origin`` anchor, two distinct event times for ``first_event``.
        """
        if self._anchor == "origin":
            elapsed = now - self._origin
            if self._count == 0 or elapsed <= 0:
                return 0.0
            return self._count / elapsed
        # 'first_event' anchor: λ = k / (t_k − t₁) per paper Eq. (5).
        if self._count < 2 or self._last <= self._first:
            return 0.0
        return self._count / (self._last - self._first)

    def merge_counts(self, other: "RateEstimator") -> None:
        """Fold another estimator's observations into this one.

        Used when caching nodes exchange query-history summaries on
        contact.  Only counts and boundary timestamps are needed, matching
        the paper's "two time values" space bound.
        """
        if other._count == 0:
            return
        if self._count == 0:
            self._first, self._last, self._count = other._first, other._last, other._count
            return
        self._count += other._count
        self._first = min(self._first, other._first)
        self._last = max(self._last, other._last)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RateEstimator(anchor={self._anchor!r}, count={self._count}, "
            f"first={self._first}, last={self._last})"
        )
