"""Opportunistic paths and their weights (paper Definition 1, Eq. 1–2).

A path between A and B on the contact graph is a node sequence whose hop
rates (λ₁, …, λ_r) define a hypoexponential end-to-end delay; the *path
weight* p_AB(T) is the probability that the delay is at most T.  "The
data transmission delay between two nodes ... is measured by the weight
of the shortest opportunistic path" (Sec. IV-A).

Two notions of "shortest" are supported:

* :attr:`PathMode.EXPECTED_DELAY` (default) — minimise the expected delay
  Σₖ 1/λₖ with a textbook Dijkstra, then score the resulting path with
  Eq. (2).  Additive costs make this exact for its own objective and
  fast, and at the paper's scales it picks the same hub-routed paths.
* :attr:`PathMode.MAX_PROBABILITY` — greedy label-setting that directly
  maximises p(T).  Extending a path can only decrease its weight, so
  labels settle in non-increasing weight order, exactly like Dijkstra;
  because the hypoexponential weight is not hop-separable the result is a
  (high-quality) heuristic rather than a guaranteed optimum.  Tests
  cross-check the two modes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import PathError
from repro.graph.contact_graph import ContactGraph
from repro.mathutils.hypoexponential import path_delivery_probability

__all__ = [
    "PathMode",
    "OpportunisticPath",
    "shortest_path",
    "shortest_paths_from",
    "shortest_path_weights_from",
]


class PathMode(Enum):
    """Objective used to define the shortest opportunistic path."""

    EXPECTED_DELAY = "expected_delay"
    MAX_PROBABILITY = "max_probability"


@dataclass(frozen=True)
class OpportunisticPath:
    """A concrete r-hop opportunistic path (paper Definition 1)."""

    nodes: Tuple[int, ...]
    rates: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.nodes) < 1:
            raise PathError("a path needs at least one node")
        if len(self.rates) != len(self.nodes) - 1:
            raise PathError(
                f"{len(self.nodes)} nodes require {len(self.nodes) - 1} hop rates, "
                f"got {len(self.rates)}"
            )
        if any(rate <= 0 for rate in self.rates):
            raise PathError("hop rates must be positive")

    @property
    def source(self) -> int:
        return self.nodes[0]

    @property
    def destination(self) -> int:
        return self.nodes[-1]

    @property
    def hop_count(self) -> int:
        return len(self.rates)

    @property
    def expected_delay(self) -> float:
        """E[delay] = Σ 1/λₖ (0 for the trivial single-node path)."""
        return sum(1.0 / rate for rate in self.rates)

    def weight(self, time_budget: float) -> float:
        """Paper Eq. (2): P(delay ≤ time_budget)."""
        return path_delivery_probability(self.rates, time_budget)

    def __len__(self) -> int:
        return len(self.nodes)


def _dijkstra_expected_delay(
    graph: ContactGraph, source: int
) -> Dict[int, OpportunisticPath]:
    """Single-source shortest paths minimising expected delay."""
    dist: Dict[int, float] = {source: 0.0}
    prev: Dict[int, int] = {}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    settled: set = set()
    while heap:
        d, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        for neighbor in graph.neighbors(node):
            if neighbor in settled:
                continue
            candidate = d + 1.0 / graph.rate(node, neighbor)
            if candidate < dist.get(neighbor, float("inf")):
                dist[neighbor] = candidate
                prev[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor))
    return _paths_from_predecessors(graph, source, prev, settled)


def _dijkstra_max_probability(
    graph: ContactGraph, source: int, time_budget: float
) -> Dict[int, OpportunisticPath]:
    """Greedy label-setting maximising the path weight p(T)."""
    best_prob: Dict[int, float] = {source: 1.0}
    best_rates: Dict[int, Tuple[float, ...]] = {source: ()}
    prev: Dict[int, int] = {}
    # Max-heap via negated probability; tie-break on node id for determinism.
    heap: List[Tuple[float, int]] = [(-1.0, source)]
    settled: set = set()
    while heap:
        neg_prob, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        rates_here = best_rates[node]
        for neighbor in graph.neighbors(node):
            if neighbor in settled:
                continue
            extended = rates_here + (graph.rate(node, neighbor),)
            prob = path_delivery_probability(extended, time_budget)
            if prob > best_prob.get(neighbor, 0.0):
                best_prob[neighbor] = prob
                best_rates[neighbor] = extended
                prev[neighbor] = node
                heapq.heappush(heap, (-prob, neighbor))
    return _paths_from_predecessors(graph, source, prev, settled)


def _paths_from_predecessors(
    graph: ContactGraph,
    source: int,
    prev: Dict[int, int],
    reachable: set,
) -> Dict[int, OpportunisticPath]:
    paths: Dict[int, OpportunisticPath] = {}
    for node in reachable:
        sequence = [node]
        while sequence[-1] != source:
            sequence.append(prev[sequence[-1]])
        sequence.reverse()
        rates = tuple(
            graph.rate(a, b) for a, b in zip(sequence, sequence[1:])
        )
        paths[node] = OpportunisticPath(tuple(sequence), rates)
    return paths


def shortest_paths_from(
    graph: ContactGraph,
    source: int,
    time_budget: float,
    mode: PathMode = PathMode.EXPECTED_DELAY,
) -> Dict[int, OpportunisticPath]:
    """Shortest opportunistic paths from *source* to every reachable node.

    The returned mapping includes the trivial zero-hop path to *source*
    itself (weight 1 for any non-negative budget).
    """
    if not 0 <= source < graph.num_nodes:
        raise PathError(f"source {source} outside graph of {graph.num_nodes} nodes")
    if time_budget <= 0:
        raise PathError("time budget must be positive")
    if mode is PathMode.EXPECTED_DELAY:
        return _dijkstra_expected_delay(graph, source)
    return _dijkstra_max_probability(graph, source, time_budget)


def shortest_path(
    graph: ContactGraph,
    source: int,
    destination: int,
    time_budget: float,
    mode: PathMode = PathMode.EXPECTED_DELAY,
) -> Optional[OpportunisticPath]:
    """Shortest opportunistic path between two nodes, or ``None`` if
    disconnected on the contact graph."""
    return shortest_paths_from(graph, source, time_budget, mode).get(destination)


def shortest_path_weights_from(
    graph: ContactGraph,
    source: int,
    time_budget: float,
    mode: PathMode = PathMode.EXPECTED_DELAY,
) -> np.ndarray:
    """Vector of path weights p_{source,j}(T) for every node j.

    Unreachable nodes get weight 0; the source itself gets weight 1.
    This is the inner quantity of the NCL metric (Eq. 3) — contact rates
    are symmetric, so p_{ij} = p_{ji}.
    """
    weights = np.zeros(graph.num_nodes)
    for node, path in shortest_paths_from(graph, source, time_budget, mode).items():
        weights[node] = path.weight(time_budget)
    return weights
