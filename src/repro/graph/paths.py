"""Opportunistic paths and their weights (paper Definition 1, Eq. 1–2).

A path between A and B on the contact graph is a node sequence whose hop
rates (λ₁, …, λ_r) define a hypoexponential end-to-end delay; the *path
weight* p_AB(T) is the probability that the delay is at most T.  "The
data transmission delay between two nodes ... is measured by the weight
of the shortest opportunistic path" (Sec. IV-A).

Two notions of "shortest" are supported:

* :attr:`PathMode.EXPECTED_DELAY` (default) — minimise the expected delay
  Σₖ 1/λₖ with a textbook Dijkstra, then score the resulting path with
  Eq. (2).  Additive costs make this exact for its own objective and
  fast, and at the paper's scales it picks the same hub-routed paths.
* :attr:`PathMode.MAX_PROBABILITY` — greedy label-setting that directly
  maximises p(T).  Extending a path can only decrease its weight, so
  labels settle in non-increasing weight order, exactly like Dijkstra;
  because the hypoexponential weight is not hop-separable the result is a
  (high-quality) heuristic rather than a guaranteed optimum.  Tests
  cross-check the two modes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix as _scipy_csr_matrix
from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

from repro.errors import PathError
from repro.graph.contact_graph import ContactGraph
from repro.kernels.registry import kernel_override
from repro.mathutils.hypoexponential import (
    hypoexponential_cdf_batch,
    path_delivery_probability,
)
from repro.obs.profile import active_profiler, maybe_span

__all__ = [
    "PathMode",
    "OpportunisticPath",
    "shortest_path",
    "shortest_paths_from",
    "shortest_path_weights_from",
    "shortest_path_weight_matrix",
    "hop_rate_tuples_from",
]


class PathMode(Enum):
    """Objective used to define the shortest opportunistic path."""

    EXPECTED_DELAY = "expected_delay"
    MAX_PROBABILITY = "max_probability"


@dataclass(frozen=True)
class OpportunisticPath:
    """A concrete r-hop opportunistic path (paper Definition 1)."""

    nodes: Tuple[int, ...]
    rates: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.nodes) < 1:
            raise PathError("a path needs at least one node")
        if len(self.rates) != len(self.nodes) - 1:
            raise PathError(
                f"{len(self.nodes)} nodes require {len(self.nodes) - 1} hop rates, "
                f"got {len(self.rates)}"
            )
        if any(rate <= 0 for rate in self.rates):
            raise PathError("hop rates must be positive")

    @property
    def source(self) -> int:
        return self.nodes[0]

    @property
    def destination(self) -> int:
        return self.nodes[-1]

    @property
    def hop_count(self) -> int:
        return len(self.rates)

    @property
    def expected_delay(self) -> float:
        """E[delay] = Σ 1/λₖ (0 for the trivial single-node path)."""
        return sum(1.0 / rate for rate in self.rates)

    def weight(self, time_budget: float) -> float:
        """Paper Eq. (2): P(delay ≤ time_budget)."""
        return path_delivery_probability(self.rates, time_budget)

    def __len__(self) -> int:
        return len(self.nodes)


def _dijkstra_expected_delay(
    graph: ContactGraph, source: int
) -> Dict[int, OpportunisticPath]:
    """Single-source shortest paths minimising expected delay."""
    dist: Dict[int, float] = {source: 0.0}
    prev: Dict[int, int] = {}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    settled: set = set()
    while heap:
        d, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        for neighbor in graph.neighbors(node):
            if neighbor in settled:
                continue
            candidate = d + 1.0 / graph.rate(node, neighbor)
            if candidate < dist.get(neighbor, float("inf")):
                dist[neighbor] = candidate
                prev[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor))
    return _paths_from_predecessors(graph, source, prev, settled)


def _dijkstra_max_probability(
    graph: ContactGraph, source: int, time_budget: float
) -> Dict[int, OpportunisticPath]:
    """Greedy label-setting maximising the path weight p(T)."""
    best_prob: Dict[int, float] = {source: 1.0}
    best_rates: Dict[int, Tuple[float, ...]] = {source: ()}
    prev: Dict[int, int] = {}
    # Max-heap via negated probability; tie-break on node id for determinism.
    heap: List[Tuple[float, int]] = [(-1.0, source)]
    settled: set = set()
    while heap:
        neg_prob, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        rates_here = best_rates[node]
        for neighbor in graph.neighbors(node):
            if neighbor in settled:
                continue
            extended = rates_here + (graph.rate(node, neighbor),)
            prob = path_delivery_probability(extended, time_budget)
            if prob > best_prob.get(neighbor, 0.0):
                best_prob[neighbor] = prob
                best_rates[neighbor] = extended
                prev[neighbor] = node
                heapq.heappush(heap, (-prob, neighbor))
    return _paths_from_predecessors(graph, source, prev, settled)


def _paths_from_predecessors(
    graph: ContactGraph,
    source: int,
    prev: Dict[int, int],
    reachable: set,
) -> Dict[int, OpportunisticPath]:
    paths: Dict[int, OpportunisticPath] = {}
    for node in reachable:
        sequence = [node]
        while sequence[-1] != source:
            sequence.append(prev[sequence[-1]])
        sequence.reverse()
        rates = tuple(
            graph.rate(a, b) for a, b in zip(sequence, sequence[1:])
        )
        paths[node] = OpportunisticPath(tuple(sequence), rates)
    return paths


def shortest_paths_from(
    graph: ContactGraph,
    source: int,
    time_budget: float,
    mode: PathMode = PathMode.EXPECTED_DELAY,
) -> Dict[int, OpportunisticPath]:
    """Shortest opportunistic paths from *source* to every reachable node.

    The returned mapping includes the trivial zero-hop path to *source*
    itself (weight 1 for any non-negative budget).
    """
    if not 0 <= source < graph.num_nodes:
        raise PathError(f"source {source} outside graph of {graph.num_nodes} nodes")
    if time_budget <= 0:
        raise PathError("time budget must be positive")
    if mode is PathMode.EXPECTED_DELAY:
        return _dijkstra_expected_delay(graph, source)
    return _dijkstra_max_probability(graph, source, time_budget)


def shortest_path(
    graph: ContactGraph,
    source: int,
    destination: int,
    time_budget: float,
    mode: PathMode = PathMode.EXPECTED_DELAY,
) -> Optional[OpportunisticPath]:
    """Shortest opportunistic path between two nodes, or ``None`` if
    disconnected on the contact graph."""
    return shortest_paths_from(graph, source, time_budget, mode).get(destination)


# --- vectorized expected-delay kernels (scipy.sparse.csgraph) -----------
#
# The expected-delay objective is an ordinary additive shortest path on
# the 1/λ cost matrix, so the whole sweep — including the all-pairs case
# the NCL metric needs — runs through scipy's C Dijkstra.  Hop-rate
# tuples are recovered from the predecessor matrix and scored in one
# batched Eq. (2) evaluation.  The pure-Python implementations above are
# retained as ``_reference_*`` oracles (property-tested to 1e-9).


def _expected_delay_dijkstra(
    graph: ContactGraph, sources: Optional[Sequence[int]] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """scipy Dijkstra on the 1/λ cost matrix; returns (dist, predecessors).

    Both outputs are 2D, one row per requested source (all nodes when
    *sources* is ``None``).  Zero-rate entries are non-edges.

    Dense graphs pass the dense cost matrix to scipy exactly as they
    always have (its internal tie-breaking defines the pinned results);
    sparse graphs hand over a CSR cost matrix built from the adjacency
    structure, never allocating N×N.
    """
    if graph.is_sparse:
        indptr, indices, data = graph.csr_rates()
        n = graph.num_nodes
        costs = _scipy_csr_matrix((1.0 / data, indices, indptr), shape=(n, n))
        dist, predecessors = _csgraph_dijkstra(
            costs,
            directed=False,
            indices=sources,
            return_predecessors=True,
        )
        return np.atleast_2d(dist), np.atleast_2d(predecessors)
    rates = graph.rate_matrix()
    with np.errstate(divide="ignore"):
        costs = np.where(rates > 0.0, 1.0 / np.maximum(rates, 1e-300), 0.0)
    dist, predecessors = _csgraph_dijkstra(
        costs,
        directed=False,
        indices=sources,
        return_predecessors=True,
    )
    return np.atleast_2d(dist), np.atleast_2d(predecessors)


def _rate_tuples_from_predecessors(
    graph: ContactGraph,
    source: int,
    dist_row: np.ndarray,
    pred_row: np.ndarray,
) -> Dict[int, Tuple[float, ...]]:
    """Rebuild hop-rate tuples for one source from a predecessor row.

    Nodes are processed in increasing-distance order so every node's
    predecessor tuple already exists (hop costs are strictly positive,
    hence dist[pred] < dist[node]).  Rates are read edge by edge through
    :meth:`ContactGraph.rate`, which works in both storage modes without
    materialising the matrix.
    """
    tuples: Dict[int, Tuple[float, ...]] = {source: ()}
    reachable = np.isfinite(dist_row)
    order = np.argsort(dist_row[reachable], kind="stable")
    nodes = np.nonzero(reachable)[0][order]
    for node in nodes:
        node = int(node)
        if node == source:
            continue
        pred = int(pred_row[node])
        tuples[node] = tuples[pred] + (graph.rate(pred, node),)
    return tuples


def hop_rate_tuples_from(
    graph: ContactGraph,
    source: int,
    time_budget: float,
    mode: PathMode = PathMode.EXPECTED_DELAY,
) -> Dict[int, Tuple[float, ...]]:
    """Hop-rate tuples of the shortest opportunistic paths from *source*.

    The cheap sibling of :func:`shortest_paths_from` when only the rate
    sequences are needed (path weights, calibration probes): in
    expected-delay mode it runs through the vectorized scipy Dijkstra
    without materialising :class:`OpportunisticPath` objects.
    """
    if not 0 <= source < graph.num_nodes:
        raise PathError(f"source {source} outside graph of {graph.num_nodes} nodes")
    if time_budget <= 0:
        raise PathError("time budget must be positive")
    with maybe_span(active_profiler(), "kernel.rate_tuples"):
        return _hop_rate_tuples_from(graph, source, time_budget, mode)


def _hop_rate_tuples_from(
    graph: ContactGraph,
    source: int,
    time_budget: float,
    mode: PathMode,
) -> Dict[int, Tuple[float, ...]]:
    if mode is not PathMode.EXPECTED_DELAY:
        paths = shortest_paths_from(graph, source, time_budget, mode)
        return {node: path.rates for node, path in paths.items()}
    dist, pred = _expected_delay_dijkstra(graph, sources=[source])
    return _rate_tuples_from_predecessors(graph, source, dist[0], pred[0])


def shortest_path_weights_from(
    graph: ContactGraph,
    source: int,
    time_budget: float,
    mode: PathMode = PathMode.EXPECTED_DELAY,
) -> np.ndarray:
    """Vector of path weights p_{source,j}(T) for every node j.

    Unreachable nodes get weight 0; the source itself gets weight 1.
    This is the inner quantity of the NCL metric (Eq. 3) — contact rates
    are symmetric, so p_{ij} = p_{ji}.  In expected-delay mode the sweep
    is fully vectorized (scipy Dijkstra + batched Eq. 2).
    """
    with maybe_span(active_profiler(), "kernel.weights_from"):
        return _shortest_path_weights_from(graph, source, time_budget, mode)


def _shortest_path_weights_from(
    graph: ContactGraph,
    source: int,
    time_budget: float,
    mode: PathMode,
) -> np.ndarray:
    if mode is not PathMode.EXPECTED_DELAY:
        return _reference_shortest_path_weights_from(graph, source, time_budget, mode)
    tuples = hop_rate_tuples_from(graph, source, time_budget, mode)
    weights = np.zeros(graph.num_nodes)
    nodes = list(tuples)
    weights[nodes] = hypoexponential_cdf_batch(
        [tuples[node] for node in nodes], time_budget
    )
    return weights


def shortest_path_weight_matrix(
    graph: ContactGraph,
    time_budget: float,
    mode: PathMode = PathMode.EXPECTED_DELAY,
) -> np.ndarray:
    """All-pairs path-weight matrix W with W[i, j] = p_{ij}(T).

    The NCL metric (Eq. 3) and selection consume rows of this matrix.
    In expected-delay mode one all-sources scipy Dijkstra feeds a single
    batched Eq. (2) evaluation across every (source, destination) pair.
    """
    if time_budget <= 0:
        raise PathError("time budget must be positive")
    with maybe_span(active_profiler(), "kernel.weight_matrix"):
        return _shortest_path_weight_matrix(graph, time_budget, mode)


def _shortest_path_weight_matrix(
    graph: ContactGraph,
    time_budget: float,
    mode: PathMode,
) -> np.ndarray:
    n = graph.num_nodes
    if mode is not PathMode.EXPECTED_DELAY:
        return np.vstack(
            [shortest_path_weights_from(graph, s, time_budget, mode) for s in range(n)]
        )
    weights, _, _ = _expected_delay_weight_matrix(graph, time_budget)
    return weights


def _expected_delay_weight_matrix(
    graph: ContactGraph,
    time_budget: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All-pairs weight matrix plus the Dijkstra tree that produced it.

    Returns ``(weights, dist, pred)``; the shortest-path tree is what
    the incremental NCL update (:mod:`repro.graph.incremental`) diffs
    against, so it is computed once here and reused rather than
    re-derived.
    """
    n = graph.num_nodes
    dist, pred = _expected_delay_dijkstra(graph)
    rates = graph.rate_matrix()
    # Rates are symmetric and Eq. (2) is invariant under hop reordering,
    # so p_ij = p_ji: only the upper triangle of reachable pairs is
    # evaluated.  The Dijkstra pass itself stays in scipy's C
    # implementation on every backend — its tie-breaking between
    # equal-cost trees picks the rate multisets that define the result —
    # and only the hop-slot extraction below is the dispatchable
    # ``weight_matrix`` kernel.
    ii, jj = np.triu_indices(n, k=1)
    reachable = np.isfinite(dist[ii, jj])
    ii, jj = ii[reachable], jj[reachable]
    weights = np.zeros((n, n))
    np.fill_diagonal(weights, 1.0)  # trivial zero-hop path to oneself
    if len(ii):
        pair_weights, _ = _pair_weights_from_tree(
            rates, pred, ii, jj, time_budget
        )
        weights[ii, jj] = pair_weights
        weights[jj, ii] = pair_weights
    return weights, dist, pred


def _pair_weights_from_tree(
    rates: np.ndarray,
    pred: np.ndarray,
    ii: np.ndarray,
    jj: np.ndarray,
    time_budget: float,
    pad_width: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Eq. (2) weights for the pairs ``(ii[p], jj[p])`` given a
    predecessor matrix; returns ``(pair_weights, hop_counts)``.

    *pad_width* left-extends the hop-slot rows with extra zero padding.
    The incremental updater passes the full build's pad width here so a
    re-evaluated subset feeds :func:`hypoexponential_cdf_batch` rows
    that are bitwise identical to the rows the from-scratch batch would
    contain (the batched reduction is sensitive to column count at the
    last ulp once rows exceed numpy's pairwise-summation block).
    """
    padded = _hop_slot_matrix(rates, pred, ii, jj)
    hop_counts = (padded > 0.0).sum(axis=1)
    if pad_width is not None and padded.shape[1] < pad_width:
        extension = np.zeros((padded.shape[0], pad_width - padded.shape[1]))
        padded = np.hstack([extension, padded])
    return hypoexponential_cdf_batch(padded, time_budget), hop_counts


def _hop_slot_matrix(
    rates: np.ndarray, pred: np.ndarray, ii: np.ndarray, jj: np.ndarray
) -> np.ndarray:
    """Padded per-pair hop-rate matrix from the predecessor matrix — the
    registered ``weight_matrix`` kernel.

    Hop rates are pulled out of the predecessor matrix one hop *slot* at
    a time (walking destination → source) across all pairs
    simultaneously, then the slot columns are reversed so each row reads
    source → destination with leading zero padding.  Eq. (2) is
    order-invariant mathematically but *not* in float arithmetic — near
    the closed form's separation threshold its coefficients are large
    and cancelling, and summation order moves the result at the 1e-8
    level — so rows are kept in the same hop order the scalar oracle
    evaluates.  A compiled backend walks each pair instead; both fill
    the same slots with the same rate-matrix entries, so the outputs
    are bitwise identical.
    """
    override = kernel_override("weight_matrix")
    if override is not None:
        return override(rates, pred, ii, jj)
    columns: List[np.ndarray] = []
    cur = jj.copy()
    active = cur != ii
    while active.any():
        prev = np.where(active, pred[ii, cur], cur)
        step = np.zeros(len(ii))
        step[active] = rates[prev[active], cur[active]]
        columns.append(step)
        cur = prev
        active = cur != ii
    columns.reverse()
    return np.column_stack(columns) if columns else np.zeros((len(ii), 1))


def _reference_weight_matrix(
    graph: ContactGraph,
    time_budget: float,
    mode: PathMode = PathMode.EXPECTED_DELAY,
) -> np.ndarray:
    """Pure-Python oracle for :func:`shortest_path_weight_matrix`: one
    reference single-source sweep per row.  The registered
    ``weight_matrix`` kernel is pinned to this to 1e-9 on random graphs;
    the python and numba backends are pinned to each other bitwise."""
    return np.vstack(
        [
            _reference_shortest_path_weights_from(graph, s, time_budget, mode)
            for s in range(graph.num_nodes)
        ]
    )


def _reference_shortest_path_weights_from(
    graph: ContactGraph,
    source: int,
    time_budget: float,
    mode: PathMode = PathMode.EXPECTED_DELAY,
) -> np.ndarray:
    """Pure-Python oracle for :func:`shortest_path_weights_from`.

    Kept as the correctness reference for the vectorized kernel
    (property tests assert agreement to 1e-9 on random graphs).
    """
    weights = np.zeros(graph.num_nodes)
    for node, path in shortest_paths_from(graph, source, time_budget, mode).items():
        weights[node] = path.weight(time_budget)
    return weights
