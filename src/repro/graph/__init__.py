"""Network contact graph G(V, E) and opportunistic paths (paper Sec. III-B, IV-A).

* :mod:`repro.graph.contact_graph` — the weighted undirected graph whose
  edge weights are pairwise Poisson contact rates λᵢⱼ.
* :mod:`repro.graph.estimator` — online, time-averaged estimation of the
  rates from observed contacts ("calculated at real-time from the
  cumulative contacts ... in a time-average manner").
* :mod:`repro.graph.paths` — opportunistic paths, their hypoexponential
  weights p_AB(T) (Eq. 2), and shortest-path computation (vectorized
  through scipy's C Dijkstra in expected-delay mode).
* :mod:`repro.graph.weight_cache` — the process-wide, content-keyed LRU
  over single-source path-weight sweeps shared by routers, NCL selection
  and calibration.
"""

from repro.graph.contact_graph import ContactGraph
from repro.graph.estimator import OnlineContactGraphEstimator
from repro.graph.paths import (
    OpportunisticPath,
    PathMode,
    hop_rate_tuples_from,
    shortest_path,
    shortest_path_weight_matrix,
    shortest_path_weights_from,
    shortest_paths_from,
)
from repro.graph.weight_cache import (
    PathWeightCache,
    cached_path_weights,
    shared_weight_cache,
)

__all__ = [
    "ContactGraph",
    "OnlineContactGraphEstimator",
    "OpportunisticPath",
    "PathMode",
    "PathWeightCache",
    "cached_path_weights",
    "hop_rate_tuples_from",
    "shared_weight_cache",
    "shortest_path",
    "shortest_paths_from",
    "shortest_path_weight_matrix",
    "shortest_path_weights_from",
]
