"""Network contact graph G(V, E) and opportunistic paths (paper Sec. III-B, IV-A).

* :mod:`repro.graph.contact_graph` — the weighted undirected graph whose
  edge weights are pairwise Poisson contact rates λᵢⱼ.
* :mod:`repro.graph.estimator` — online, time-averaged estimation of the
  rates from observed contacts ("calculated at real-time from the
  cumulative contacts ... in a time-average manner").
* :mod:`repro.graph.paths` — opportunistic paths, their hypoexponential
  weights p_AB(T) (Eq. 2), and shortest-path computation.
"""

from repro.graph.contact_graph import ContactGraph
from repro.graph.estimator import OnlineContactGraphEstimator
from repro.graph.paths import (
    OpportunisticPath,
    PathMode,
    shortest_path,
    shortest_path_weights_from,
    shortest_paths_from,
)

__all__ = [
    "ContactGraph",
    "OnlineContactGraphEstimator",
    "OpportunisticPath",
    "PathMode",
    "shortest_path",
    "shortest_paths_from",
    "shortest_path_weights_from",
]
