"""Graph-versioned LRU cache of path-weight computations.

Every consumer of the contact graph — NCL selection (Eq. 3), the
push/pull gradient routers, response strategies, and time-budget
calibration — reduces to the same two sweeps: a single-source path-weight
vector at a time budget T, or the hop-rate tuples of the shortest
opportunistic paths from a source.  The simulator recomputes these
constantly: each GRAPH_REFRESH rebuilds router tables, warm-up runs K
central-node sweeps that the routers then recompute verbatim, and the
push and query routers each kept private per-destination tables for the
*same* graph and horizon.

This module gives all of them one shared, bounded cache.

Keying / invalidation contract
------------------------------
Entries are keyed on ``(graph.fingerprint(), source, time_budget, mode)``.
The fingerprint is a content digest of the rate matrix, lazily computed
and invalidated by the graph's monotone :attr:`ContactGraph.version`
bump on mutation.  Content keying (rather than instance keying) is what
lets two *different* snapshot instances with identical rates — the
common case for periodic GRAPH_REFRESH events over a quiet trace window —
share one computation.  A mutated graph gets a new fingerprint, so stale
reads are impossible by construction; eviction is plain LRU.  The graph
enforces its side of the contract by keeping the rate matrix
non-writable at rest: in-place ``numpy`` writes that would skip the
version bump (``graph.rates[i, j] = x``) raise instead of silently
poisoning this cache — all mutation goes through
``ContactGraph.set_rate``/``set_rates``.

Cached weight vectors are returned read-only (``ndarray.flags.writeable
= False``); callers that need to mutate must copy.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from time import perf_counter
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from repro.graph import incremental as _incremental
from repro.graph.contact_graph import ContactGraph
from repro.graph.paths import (
    PathMode,
    hop_rate_tuples_from,
    shortest_path_weight_matrix,
    shortest_path_weights_from,
)
from repro.graph.sparse import KnnWeightRows, knn_weight_rows
from repro.obs.profile import active_profiler, maybe_span

__all__ = ["PathWeightCache", "shared_weight_cache", "cached_path_weights"]


def _entry_bytes(value: object) -> int:
    """Approximate heap footprint of a cached value (arrays only — the
    rate-tuple dicts are small and counted as entries, not bytes)."""
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, KnnWeightRows):
        return int(value.indptr.nbytes + value.indices.nbytes + value.weights.nbytes)
    return 0


class PathWeightCache:
    """Bounded LRU over single-source path-weight sweeps.

    One instance is process-wide (:func:`shared_weight_cache`); worker
    processes of the parallel runner each build their own on first use,
    so no cross-process coherency is needed.
    """

    def __init__(self, maxsize: int = 256, maxbytes: int = 512 * 1024 * 1024):
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        if maxbytes < 1:
            raise ValueError("cache maxbytes must be >= 1")
        self._maxsize = int(maxsize)
        # At trace scale every entry is tiny and the entry-count LRU is
        # the binding limit; at 10⁵ nodes a single k-NN row set or weight
        # vector is megabytes, so a byte budget keeps the resident cache
        # bounded no matter the graph size.
        self._maxbytes = int(maxbytes)
        self._bytes = 0
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        # Incremental all-pairs tree state, keyed (num_nodes, budget).
        # Deliberately separate from the LRU: states are mutable masters,
        # never handed to callers.
        self._tree_states: "OrderedDict[Hashable, object]" = OrderedDict()
        self._max_tree_states = 4
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # --- bookkeeping ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Tracked bytes of array payloads currently cached."""
        return self._bytes

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._tree_states.clear()
            self._bytes = 0
            self.hits = 0
            self.misses = 0

    def _lookup(self, key: Hashable) -> Optional[object]:
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
        return value

    def _store(self, key: Hashable, value: object) -> None:
        with self._lock:
            old = self._entries.get(key)
            if old is not None:
                self._bytes -= _entry_bytes(old)
            self._entries[key] = value
            self._entries.move_to_end(key)
            self._bytes += _entry_bytes(value)
            while len(self._entries) > self._maxsize or (
                self._bytes > self._maxbytes and len(self._entries) > 1
            ):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= _entry_bytes(evicted)

    # --- cached computations -------------------------------------------

    def weights(
        self,
        graph: ContactGraph,
        source: int,
        time_budget: float,
        mode: PathMode = PathMode.EXPECTED_DELAY,
    ) -> np.ndarray:
        """Cached :func:`shortest_path_weights_from` (read-only vector)."""
        # Hit latency is measured inline (a hit is too cheap for a span);
        # a miss wraps the recompute in a span so the kernel nests under it.
        prof = active_profiler()
        if prof.enabled:
            t0 = perf_counter()
        key = ("w", graph.fingerprint(), int(source), float(time_budget), mode)
        cached = self._lookup(key)
        if cached is None:
            with maybe_span(prof, "weight_cache.weights.miss"):
                cached = shortest_path_weights_from(graph, source, time_budget, mode)
            cached.flags.writeable = False
            self._store(key, cached)
        elif prof.enabled:
            prof.add("weight_cache.weights.hit", perf_counter() - t0)
        return cached  # type: ignore[return-value]

    def weight_matrix(
        self,
        graph: ContactGraph,
        time_budget: float,
        mode: PathMode = PathMode.EXPECTED_DELAY,
    ) -> np.ndarray:
        """Cached all-pairs :func:`shortest_path_weight_matrix` (read-only).

        Rows are also installed as single-source entries, so a
        selection/refresh that computed the full matrix hands the routers
        their per-central vectors for free.

        In expected-delay mode on a dense graph the miss path maintains
        incremental Dijkstra-tree state (:mod:`repro.graph.incremental`):
        when only a few rates changed since the previous miss, only the
        affected source rows are recomputed.  The result is bitwise
        identical to a from-scratch build — ``REPRO_INCREMENTAL_NCL=0``
        forces scratch builds if that ever needs ruling out.
        """
        prof = active_profiler()
        if prof.enabled:
            t0 = perf_counter()
        key = ("W", graph.fingerprint(), float(time_budget), mode)
        cached = self._lookup(key)
        if cached is None:
            with maybe_span(prof, "weight_cache.matrix.miss"):
                cached = self._compute_weight_matrix(graph, time_budget, mode)
            cached.flags.writeable = False
            self._store(key, cached)
            for source in range(graph.num_nodes):
                row = cached[source]
                row.flags.writeable = False
                self._store(
                    ("w", graph.fingerprint(), source, float(time_budget), mode), row
                )
        elif prof.enabled:
            prof.add("weight_cache.matrix.hit", perf_counter() - t0)
        return cached  # type: ignore[return-value]

    def _compute_weight_matrix(
        self, graph: ContactGraph, time_budget: float, mode: PathMode
    ) -> np.ndarray:
        """Miss-path compute: incremental when eligible, else scratch."""
        if (
            mode is not PathMode.EXPECTED_DELAY
            or graph.is_sparse
            or not _incremental.incremental_enabled()
        ):
            return shortest_path_weight_matrix(graph, time_budget, mode)
        state_key = ("T", graph.num_nodes, float(time_budget))
        with self._lock:
            state = self._tree_states.get(state_key)
        weights = None
        if state is not None:
            with maybe_span(active_profiler(), "kernel.weight_matrix_update"):
                weights = _incremental.update_state(state, graph, time_budget)
        if weights is None:
            with maybe_span(active_profiler(), "kernel.weight_matrix"):
                weights, state = _incremental.build_state(graph, time_budget)
        with self._lock:
            self._tree_states[state_key] = state
            self._tree_states.move_to_end(state_key)
            while len(self._tree_states) > self._max_tree_states:
                self._tree_states.popitem(last=False)
        return weights

    def knn_rows(
        self,
        graph: ContactGraph,
        time_budget: float,
        k: int,
        mode: PathMode = PathMode.EXPECTED_DELAY,
    ) -> KnnWeightRows:
        """Cached :func:`repro.graph.sparse.knn_weight_rows` (frozen rows).

        The CSR arrays inside the returned :class:`KnnWeightRows` are the
        cached payload; treat them as read-only.
        """
        prof = active_profiler()
        if prof.enabled:
            t0 = perf_counter()
        key = ("k", graph.fingerprint(), float(time_budget), int(k), mode)
        cached = self._lookup(key)
        if cached is None:
            with maybe_span(prof, "weight_cache.knn_rows.miss"):
                cached = knn_weight_rows(graph, time_budget, k, mode)
            self._store(key, cached)
        elif prof.enabled:
            prof.add("weight_cache.knn_rows.hit", perf_counter() - t0)
        return cached  # type: ignore[return-value]

    def rate_tuples(
        self,
        graph: ContactGraph,
        source: int,
        time_budget: float,
        mode: PathMode = PathMode.EXPECTED_DELAY,
    ) -> Dict[int, Tuple[float, ...]]:
        """Cached hop-rate tuples of the shortest paths from *source*.

        In expected-delay mode the tuples are independent of the budget,
        so the key collapses it; calibration probes at many budgets then
        hit one entry.
        """
        prof = active_profiler()
        if prof.enabled:
            t0 = perf_counter()
        budget_key = 0.0 if mode is PathMode.EXPECTED_DELAY else float(time_budget)
        key = ("r", graph.fingerprint(), int(source), budget_key, mode)
        cached = self._lookup(key)
        if cached is None:
            with maybe_span(prof, "weight_cache.rate_tuples.miss"):
                cached = hop_rate_tuples_from(graph, source, time_budget, mode)
            self._store(key, cached)
        elif prof.enabled:
            prof.add("weight_cache.rate_tuples.hit", perf_counter() - t0)
        return cached  # type: ignore[return-value]


_SHARED = PathWeightCache()


def shared_weight_cache() -> PathWeightCache:
    """The process-wide cache shared by routers, NCL selection and calibration."""
    return _SHARED


def cached_path_weights(
    graph: ContactGraph,
    source: int,
    time_budget: float,
    mode: PathMode = PathMode.EXPECTED_DELAY,
) -> np.ndarray:
    """Convenience wrapper over ``shared_weight_cache().weights(...)``."""
    return _SHARED.weights(graph, source, time_budget, mode)
