"""Online contact-rate estimation (paper Sec. III-B / VI-A).

"A node updates its contact rates with other nodes in real time based on
the up-to-date contact counts since the network starts."  This module
implements that estimator for the whole network: contacts are recorded as
they occur, and a :class:`ContactGraph` snapshot can be taken at any
simulation time.

Snapshots are cached and refreshed lazily at a configurable period, since
path computations consume graph snapshots far more often than rates
meaningfully change (the paper argues rates are stable long-term).
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.graph.contact_graph import ContactGraph
from repro.mathutils.poisson import RateEstimator

__all__ = ["OnlineContactGraphEstimator"]


class OnlineContactGraphEstimator:
    """Incremental time-average estimator of all pairwise contact rates.

    Parameters
    ----------
    num_nodes:
        Network size.
    origin:
        Network start time; the denominator of every rate estimate is
        (now − origin).
    min_contacts:
        Pairs observed fewer times than this report rate 0 (noise guard).
    snapshot_period:
        Minimum simulated-time spacing between freshly built
        :class:`ContactGraph` snapshots; requests inside the window are
        served from cache.  ``0`` disables caching.
    sparse:
        Storage mode of the snapshot graphs, forwarded to
        :class:`ContactGraph`: ``True``/``False`` force it, ``None``
        (default) lets the graph auto-select by node count — dense
        below the threshold (the historical representation), adjacency
        lists above it.
    """

    def __init__(
        self,
        num_nodes: int,
        origin: float = 0.0,
        min_contacts: int = 1,
        snapshot_period: float = 0.0,
        sparse: Optional[bool] = None,
    ):
        if num_nodes < 1:
            raise ConfigurationError("estimator needs at least one node")
        if min_contacts < 1:
            raise ConfigurationError("min_contacts must be >= 1")
        if snapshot_period < 0:
            raise ConfigurationError("snapshot_period must be non-negative")
        self._num_nodes = int(num_nodes)
        self._origin = float(origin)
        self._min_contacts = int(min_contacts)
        self._snapshot_period = float(snapshot_period)
        self._sparse = sparse
        self._estimators: Dict[Tuple[int, int], RateEstimator] = {}
        self._inactive: Set[int] = set()
        self._cached_graph: Optional[ContactGraph] = None
        self._cached_at: float = float("-inf")
        self._dirty = True

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def origin(self) -> float:
        return self._origin

    def record_contact(self, i: int, j: int, timestamp: float) -> None:
        """Record one contact between *i* and *j* at *timestamp*."""
        if not (0 <= i < self._num_nodes and 0 <= j < self._num_nodes):
            raise ConfigurationError(f"node ids out of range: ({i}, {j})")
        if i == j:
            raise ConfigurationError("self-contacts are not allowed")
        pair = (min(i, j), max(i, j))
        estimator = self._estimators.get(pair)
        if estimator is None:
            estimator = RateEstimator(origin=self._origin, anchor="origin")
            self._estimators[pair] = estimator
        estimator.record(timestamp)
        self._dirty = True

    def set_node_active(self, node: int, active: bool) -> None:
        """Mark *node* as (in)active; inactive nodes report rate 0.

        Churn and failure events (:mod:`repro.sim.dynamics`) call this so
        the next snapshot reflects the changed topology.  A topology
        change must be visible immediately — it invalidates the
        period-cached snapshot rather than waiting out ``snapshot_period``
        (rate drift within a period is benign; a vanished node is not).
        """
        if not 0 <= node < self._num_nodes:
            raise ConfigurationError(f"node id out of range: {node}")
        changed = (node in self._inactive) == active
        if not changed:
            return
        if active:
            self._inactive.discard(node)
        else:
            self._inactive.add(node)
        self._dirty = True
        self._cached_graph = None
        self._cached_at = float("-inf")

    def is_node_active(self, node: int) -> bool:
        return node not in self._inactive

    def contact_count(self, i: int, j: int) -> int:
        pair = (min(i, j), max(i, j))
        estimator = self._estimators.get(pair)
        return estimator.count if estimator else 0

    def total_contacts(self) -> int:
        return sum(e.count for e in self._estimators.values())

    def rate(self, i: int, j: int, now: float) -> float:
        """Current rate estimate λ̂ᵢⱼ at simulated time *now*."""
        if i in self._inactive or j in self._inactive:
            return 0.0
        pair = (min(i, j), max(i, j))
        estimator = self._estimators.get(pair)
        if estimator is None or estimator.count < self._min_contacts:
            return 0.0
        return estimator.rate(now)

    def snapshot(self, now: float, force: bool = False) -> ContactGraph:
        """A :class:`ContactGraph` of the rate estimates at time *now*.

        Served from cache if the previous snapshot is newer than
        ``snapshot_period`` and no recording policy forces a rebuild.
        """
        fresh_enough = (
            self._cached_graph is not None
            and self._snapshot_period > 0
            and now - self._cached_at < self._snapshot_period
        )
        if fresh_enough and not force:
            return self._cached_graph  # type: ignore[return-value]
        if not self._dirty and self._cached_graph is not None and not force:
            # No new contacts: only the denominators moved; rebuilding
            # rescales all rates uniformly, which leaves every path and
            # metric *ranking* unchanged, so the cache stays valid for
            # ranking purposes unless the caller forces a rebuild.
            if self._snapshot_period > 0:
                return self._cached_graph
        graph = ContactGraph(self._num_nodes, sparse=self._sparse)
        elapsed = now - self._origin
        if elapsed > 0:
            graph.set_edge_rates(
                (i, j, estimator.count / elapsed)
                for (i, j), estimator in self._estimators.items()
                if i not in self._inactive
                and j not in self._inactive
                and estimator.count >= self._min_contacts
            )
        self._cached_graph = graph
        self._cached_at = now
        self._dirty = False
        return graph

    def nbytes(self) -> int:
        """Deep heap footprint of the estimator state in bytes: the
        per-pair :class:`RateEstimator` dict (the dominant O(observed
        pairs) term), the inactive-node set, and the cached snapshot
        graph when one is held."""
        from repro.obs.memory import deep_sizeof

        return deep_sizeof(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"OnlineContactGraphEstimator(nodes={self._num_nodes}, "
            f"pairs_observed={len(self._estimators)})"
        )
