"""The network contact graph (paper Sec. III-B).

Nodes are mobile devices; an undirected edge (i, j) carries the rate λᵢⱼ
of the Poisson contact process between i and j.  The graph is the single
source of truth for every path-weight and NCL-metric computation.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.traces.contact import ContactTrace

__all__ = ["ContactGraph"]

#: Global monotone version source: every mutation of any graph draws a new
#: value, so a ``(version, …)`` cache key can never alias two different
#: rate-matrix states, even across graph instances.
_VERSION_COUNTER = itertools.count(1)


class ContactGraph:
    """Undirected contact graph with Poisson contact rates as edge weights.

    Internally a dense symmetric rate matrix plus adjacency lists; dense
    storage is the right trade-off at the paper's scales (41–275 nodes).

    The graph carries two cache-coherency handles consumed by the
    path-weight machinery (:mod:`repro.graph.weight_cache`):

    * :attr:`version` — a globally monotone counter bumped on every
      mutation; cheap identity for "has this instance changed?" checks
      (adjacency caching, router invalidation).
    * :meth:`fingerprint` — a lazy content digest of the rate matrix, so
      two snapshots with identical rates share cached path computations
      regardless of which instance produced them.
    """

    def __init__(self, num_nodes: int):
        if num_nodes < 1:
            raise ConfigurationError("contact graph needs at least one node")
        self._num_nodes = int(num_nodes)
        self._rates = np.zeros((num_nodes, num_nodes))
        # The rate matrix is non-writable at rest: every mutation must go
        # through set_rate/set_rates so the version bump (and thereby the
        # path-weight cache's fingerprint invalidation) can never be
        # skipped.  In-place writes like ``graph.rates[i, j] = x`` raise
        # immediately instead of silently serving stale cached paths.
        self._rates.flags.writeable = False
        self._version = next(_VERSION_COUNTER)
        self._fingerprint: Optional[bytes] = None
        self._adjacency_version = -1
        self._adjacency: Tuple[Tuple[int, ...], ...] = ()

    # --- construction ------------------------------------------------------

    @classmethod
    def from_rate_matrix(cls, rates: np.ndarray) -> "ContactGraph":
        """Build from a symmetric non-negative rate matrix."""
        rates = np.asarray(rates, dtype=float)
        if rates.ndim != 2 or rates.shape[0] != rates.shape[1]:
            raise ConfigurationError("rate matrix must be square")
        graph = cls(rates.shape[0])
        graph.set_rates(rates)
        return graph

    @classmethod
    def from_trace(
        cls,
        trace: ContactTrace,
        until: Optional[float] = None,
        min_contacts: int = 1,
    ) -> "ContactGraph":
        """Time-averaged rates from cumulative contact counts (Sec. III-B).

        λᵢⱼ = (number of contacts of the pair up to *until*) / elapsed
        time.  Pairs with fewer than *min_contacts* observations get rate
        zero — a single sighting over a long trace is noise, not a usable
        Poisson estimate.
        """
        horizon = trace.end_time if until is None else float(until)
        elapsed = horizon - trace.start_time
        if elapsed <= 0:
            raise ConfigurationError("estimation horizon precedes trace start")
        graph = cls(trace.num_nodes)
        counts: Dict[Tuple[int, int], int] = {}
        for contact in trace:
            if contact.start > horizon:
                break
            counts[contact.pair] = counts.get(contact.pair, 0) + 1
        for (a, b), count in counts.items():
            if count >= min_contacts:
                graph.set_rate(a, b, count / elapsed)
        return graph

    # --- mutation ------------------------------------------------------

    def set_rate(self, i: int, j: int, rate: float) -> None:
        if i == j:
            raise ConfigurationError("no self-loop contact rates")
        if rate < 0:
            raise ConfigurationError("contact rates must be non-negative")
        self._rates.flags.writeable = True
        try:
            self._rates[i, j] = rate
            self._rates[j, i] = rate
        finally:
            self._rates.flags.writeable = False
        self._mark_mutated()

    def set_rates(self, rates: np.ndarray) -> None:
        """Replace the whole rate matrix atomically (bulk mutation path).

        This is the supported way to apply vectorised updates that would
        otherwise tempt callers into in-place ``numpy`` writes on the
        internal array — which the graph forbids (the matrix is
        non-writable at rest) precisely because such writes would skip
        the version bump and leave the shared path-weight cache serving
        stale entries.
        """
        rates = np.array(rates, dtype=float)  # owned copy, decoupled from caller
        if rates.ndim != 2 or rates.shape != (self._num_nodes, self._num_nodes):
            raise ConfigurationError(
                f"rate matrix must be {self._num_nodes}x{self._num_nodes}, "
                f"got {rates.shape}"
            )
        if (rates < 0).any():
            raise ConfigurationError("contact rates must be non-negative")
        if not np.allclose(rates, rates.T):
            raise ConfigurationError("rate matrix must be symmetric")
        np.fill_diagonal(rates, 0.0)
        rates.flags.writeable = False
        self._rates = rates
        self._mark_mutated()

    def _mark_mutated(self) -> None:
        self._version = next(_VERSION_COUNTER)
        self._fingerprint = None

    # --- accessors -----------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def version(self) -> int:
        """Globally monotone mutation counter (bumped on every ``set_rate``)."""
        return self._version

    def fingerprint(self) -> bytes:
        """Content digest of the rate matrix (lazy, cached until mutation).

        Two graphs with bit-identical rate matrices share a fingerprint,
        which is what the path-weight cache keys on: the simulator's
        periodic GRAPH_REFRESH snapshots are distinct instances but often
        carry unchanged rates.
        """
        if self._fingerprint is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(self._num_nodes.to_bytes(8, "little"))
            digest.update(np.ascontiguousarray(self._rates).tobytes())
            self._fingerprint = digest.digest()
        return self._fingerprint

    def rate(self, i: int, j: int) -> float:
        """λᵢⱼ; zero when the pair has never been observed in contact."""
        return float(self._rates[i, j])

    def rate_matrix(self) -> np.ndarray:
        """A copy of the symmetric rate matrix."""
        return self._rates.copy()

    @property
    def rates(self) -> np.ndarray:
        """Read-only view of the rate matrix (zero-copy).

        Direct writes (``graph.rates[i, j] = x``) raise ``ValueError``;
        mutate through :meth:`set_rate` / :meth:`set_rates`, which bump
        :attr:`version` and invalidate the content fingerprint the
        shared path-weight cache keys on.
        """
        view = self._rates.view()
        view.flags.writeable = False
        return view

    def neighbors(self, i: int) -> Tuple[int, ...]:
        """Nodes with a positive contact rate to *i*.

        Returns the cached adjacency tuple itself (no per-call copy —
        this sits on the simulator's Dijkstra hot path); tuples are
        immutable, so sharing is safe.  The cache is invalidated by the
        :attr:`version` bump on mutation.
        """
        self._rebuild_adjacency()
        return self._adjacency[i]

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """All positive-rate edges as (i, j, λ) with i < j."""
        rows, cols = np.nonzero(np.triu(self._rates, k=1))
        for i, j in zip(rows, cols):
            yield int(i), int(j), float(self._rates[i, j])

    @property
    def num_edges(self) -> int:
        return int(np.count_nonzero(np.triu(self._rates, k=1)))

    def degree(self, i: int) -> int:
        self._rebuild_adjacency()
        return len(self._adjacency[i])

    def mean_degree(self) -> float:
        return 2.0 * self.num_edges / self._num_nodes if self._num_nodes else 0.0

    def expected_intercontact(self, i: int, j: int) -> float:
        """E[inter-contact time] = 1/λᵢⱼ, or +inf for unconnected pairs."""
        rate = self.rate(i, j)
        return 1.0 / rate if rate > 0 else float("inf")

    def _rebuild_adjacency(self) -> None:
        if self._adjacency_version == self._version:
            return
        self._adjacency = tuple(
            tuple(int(j) for j in np.nonzero(self._rates[i])[0])
            for i in range(self._num_nodes)
        )
        self._adjacency_version = self._version

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ContactGraph(nodes={self._num_nodes}, edges={self.num_edges})"
