"""The network contact graph (paper Sec. III-B).

Nodes are mobile devices; an undirected edge (i, j) carries the rate λᵢⱼ
of the Poisson contact process between i and j.  The graph is the single
source of truth for every path-weight and NCL-metric computation.

Storage is dual-mode.  At the paper's scales (41–275 nodes) a dense
symmetric rate matrix is the right trade-off and keeps every historical
code path (and its bitwise-pinned results) unchanged.  Above
:data:`DENSE_NODE_THRESHOLD` nodes — or when forced with ``sparse=True``
— the graph stores adjacency dictionaries instead and never allocates
N×N: real DTN contact graphs are sparse (most pairs rarely or never
meet), and the 10⁵-node scale-out target makes a dense matrix (80 GB at
float64) a non-starter.  Both modes expose the same API; dense-only
views (``rates`` / ``rate_matrix``) stay available on sparse graphs up
to the threshold so small forced-sparse graphs remain comparable against
the dense oracles in tests.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Dict, Iterable, Iterator, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.traces.contact import ContactTrace

__all__ = ["ContactGraph", "DENSE_NODE_THRESHOLD"]

#: Node count at which auto storage selection switches to sparse
#: adjacency.  Below it a dense N×N matrix is both faster and exactly
#: the historical representation; above it the matrix alone would dwarf
#: every other allocation of a run.
DENSE_NODE_THRESHOLD = 2048

#: Global monotone version source: every mutation of any graph draws a new
#: value, so a ``(version, …)`` cache key can never alias two different
#: rate-matrix states, even across graph instances.
_VERSION_COUNTER = itertools.count(1)


class ContactGraph:
    """Undirected contact graph with Poisson contact rates as edge weights.

    The graph carries two cache-coherency handles consumed by the
    path-weight machinery (:mod:`repro.graph.weight_cache`):

    * :attr:`version` — a globally monotone counter bumped on every
      mutation; cheap identity for "has this instance changed?" checks
      (adjacency caching, router invalidation).
    * :meth:`fingerprint` — a lazy content digest of the rates, so two
      snapshots with identical rates share cached path computations
      regardless of which instance produced them.

    Parameters
    ----------
    num_nodes:
        Network size.
    sparse:
        ``True`` forces adjacency-dict storage, ``False`` forces the
        dense matrix, ``None`` (default) picks dense below
        :data:`DENSE_NODE_THRESHOLD` nodes and sparse at or above it.
    """

    def __init__(self, num_nodes: int, sparse: Optional[bool] = None):
        if num_nodes < 1:
            raise ConfigurationError("contact graph needs at least one node")
        self._num_nodes = int(num_nodes)
        self._sparse = (
            bool(sparse) if sparse is not None else num_nodes >= DENSE_NODE_THRESHOLD
        )
        if self._sparse:
            self._rates: Optional[np.ndarray] = None
            self._adj: Dict[int, Dict[int, float]] = {}
        else:
            self._rates = np.zeros((num_nodes, num_nodes))
            # The rate matrix is non-writable at rest: every mutation must
            # go through set_rate/set_rates so the version bump (and
            # thereby the path-weight cache's fingerprint invalidation)
            # can never be skipped.  In-place writes like
            # ``graph.rates[i, j] = x`` raise immediately instead of
            # silently serving stale cached paths.
            self._rates.flags.writeable = False
            self._adj = {}
        self._version = next(_VERSION_COUNTER)
        self._fingerprint: Optional[bytes] = None
        self._adjacency_version = -1
        self._adjacency: Tuple[Tuple[int, ...], ...] = ()
        self._csr_version = -1
        self._csr: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._dense_version = -1
        self._dense_view: Optional[np.ndarray] = None

    # --- construction ------------------------------------------------------

    @classmethod
    def from_rate_matrix(
        cls, rates: np.ndarray, sparse: Optional[bool] = None
    ) -> "ContactGraph":
        """Build from a symmetric non-negative rate matrix."""
        rates = np.asarray(rates, dtype=float)
        if rates.ndim != 2 or rates.shape[0] != rates.shape[1]:
            raise ConfigurationError("rate matrix must be square")
        graph = cls(rates.shape[0], sparse=sparse)
        graph.set_rates(rates)
        return graph

    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: Iterable[Tuple[int, int, float]],
        sparse: Optional[bool] = None,
    ) -> "ContactGraph":
        """Build from an edge list of ``(i, j, rate)`` triples.

        The natural constructor for sparse graphs: only the observed
        pairs are touched, so a 10⁵-node graph costs O(edges), not
        O(N²).
        """
        graph = cls(num_nodes, sparse=sparse)
        graph.set_edge_rates(edges)
        return graph

    @classmethod
    def from_trace(
        cls,
        trace: ContactTrace,
        until: Optional[float] = None,
        min_contacts: int = 1,
        sparse: Optional[bool] = None,
    ) -> "ContactGraph":
        """Time-averaged rates from cumulative contact counts (Sec. III-B).

        λᵢⱼ = (number of contacts of the pair up to *until*) / elapsed
        time.  Pairs with fewer than *min_contacts* observations get rate
        zero — a single sighting over a long trace is noise, not a usable
        Poisson estimate.
        """
        horizon = trace.end_time if until is None else float(until)
        elapsed = horizon - trace.start_time
        if elapsed <= 0:
            raise ConfigurationError("estimation horizon precedes trace start")
        graph = cls(trace.num_nodes, sparse=sparse)
        counts: Dict[Tuple[int, int], int] = {}
        for contact in trace:
            if contact.start > horizon:
                break
            counts[contact.pair] = counts.get(contact.pair, 0) + 1
        graph.set_edge_rates(
            (a, b, count / elapsed)
            for (a, b), count in counts.items()
            if count >= min_contacts
        )
        return graph

    # --- mutation ------------------------------------------------------

    def set_rate(self, i: int, j: int, rate: float) -> None:
        if i == j:
            raise ConfigurationError("no self-loop contact rates")
        if rate < 0:
            raise ConfigurationError("contact rates must be non-negative")
        if not (0 <= i < self._num_nodes and 0 <= j < self._num_nodes):
            raise ConfigurationError(f"node ids out of range: ({i}, {j})")
        if self._sparse:
            i, j = int(i), int(j)
            if rate > 0:
                self._adj.setdefault(i, {})[j] = float(rate)
                self._adj.setdefault(j, {})[i] = float(rate)
            else:
                self._adj.get(i, {}).pop(j, None)
                self._adj.get(j, {}).pop(i, None)
        else:
            assert self._rates is not None
            self._rates.flags.writeable = True
            try:
                self._rates[i, j] = rate
                self._rates[j, i] = rate
            finally:
                self._rates.flags.writeable = False
        self._mark_mutated()

    def set_edge_rates(self, edges: Iterable[Tuple[int, int, float]]) -> None:
        """Apply many ``(i, j, rate)`` updates with one version bump.

        The bulk sibling of :meth:`set_rate` for edge lists — the sparse
        counterpart of :meth:`set_rates`, which requires a full N×N
        matrix.  One version bump regardless of edge count, so estimator
        snapshots of large graphs don't churn the global counter.
        """
        edges = list(edges)
        for i, j, rate in edges:
            if i == j:
                raise ConfigurationError("no self-loop contact rates")
            if rate < 0:
                raise ConfigurationError("contact rates must be non-negative")
            if not (0 <= i < self._num_nodes and 0 <= j < self._num_nodes):
                raise ConfigurationError(f"node ids out of range: ({i}, {j})")
        if self._sparse:
            for i, j, rate in edges:
                i, j = int(i), int(j)
                if rate > 0:
                    self._adj.setdefault(i, {})[j] = float(rate)
                    self._adj.setdefault(j, {})[i] = float(rate)
                else:
                    self._adj.get(i, {}).pop(j, None)
                    self._adj.get(j, {}).pop(i, None)
        else:
            assert self._rates is not None
            self._rates.flags.writeable = True
            try:
                for i, j, rate in edges:
                    self._rates[i, j] = rate
                    self._rates[j, i] = rate
            finally:
                self._rates.flags.writeable = False
        self._mark_mutated()

    def set_rates(self, rates: np.ndarray) -> None:
        """Replace the whole rate matrix atomically (bulk mutation path).

        This is the supported way to apply vectorised updates that would
        otherwise tempt callers into in-place ``numpy`` writes on the
        internal array — which the graph forbids (the matrix is
        non-writable at rest) precisely because such writes would skip
        the version bump and leave the shared path-weight cache serving
        stale entries.  Sparse graphs accept it too (the matrix is the
        caller's allocation); edges absent from the matrix are removed.
        """
        rates = np.array(rates, dtype=float)  # owned copy, decoupled from caller
        if rates.ndim != 2 or rates.shape != (self._num_nodes, self._num_nodes):
            raise ConfigurationError(
                f"rate matrix must be {self._num_nodes}x{self._num_nodes}, "
                f"got {rates.shape}"
            )
        if (rates < 0).any():
            raise ConfigurationError("contact rates must be non-negative")
        if not np.allclose(rates, rates.T):
            raise ConfigurationError("rate matrix must be symmetric")
        np.fill_diagonal(rates, 0.0)
        if self._sparse:
            self._adj = {}
            rows, cols = np.nonzero(rates)
            for i, j in zip(rows, cols):
                self._adj.setdefault(int(i), {})[int(j)] = float(rates[i, j])
        else:
            rates.flags.writeable = False
            self._rates = rates
        self._mark_mutated()

    def _mark_mutated(self) -> None:
        self._version = next(_VERSION_COUNTER)
        self._fingerprint = None
        self._csr = None
        self._dense_view = None

    # --- accessors -----------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def is_sparse(self) -> bool:
        """Whether this graph uses adjacency-dict (CSR-view) storage."""
        return self._sparse

    @property
    def version(self) -> int:
        """Globally monotone mutation counter (bumped on every ``set_rate``)."""
        return self._version

    def fingerprint(self) -> bytes:
        """Content digest of the rates (lazy, cached until mutation).

        Two graphs of the same storage mode with identical rates share a
        fingerprint, which is what the path-weight cache keys on: the
        simulator's periodic GRAPH_REFRESH snapshots are distinct
        instances but often carry unchanged rates.  Dense graphs hash
        the matrix bytes (the historical digest, so pre-existing cache
        behaviour is unchanged); sparse graphs hash the sorted COO
        triplets — O(edges), never O(N²).
        """
        if self._fingerprint is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(self._num_nodes.to_bytes(8, "little"))
            if self._sparse:
                indptr, indices, data = self.csr_rates()
                digest.update(b"coo")
                digest.update(np.ascontiguousarray(indptr).tobytes())
                digest.update(np.ascontiguousarray(indices).tobytes())
                digest.update(np.ascontiguousarray(data).tobytes())
            else:
                digest.update(np.ascontiguousarray(self._rates).tobytes())
            self._fingerprint = digest.digest()
        return self._fingerprint

    def rate(self, i: int, j: int) -> float:
        """λᵢⱼ; zero when the pair has never been observed in contact."""
        if self._sparse:
            return self._adj.get(int(i), {}).get(int(j), 0.0)
        assert self._rates is not None
        return float(self._rates[i, j])

    def _dense(self) -> np.ndarray:
        """The dense rate matrix (materialised on demand for sparse graphs).

        Sparse graphs refuse to materialise above the dense threshold —
        that allocation is exactly what sparse storage exists to avoid —
        so consumers of large graphs must go through :meth:`csr_rates`.
        """
        if not self._sparse:
            assert self._rates is not None
            return self._rates
        if self._num_nodes > DENSE_NODE_THRESHOLD:
            raise ConfigurationError(
                f"refusing to materialise a dense {self._num_nodes}x"
                f"{self._num_nodes} matrix from a sparse graph; use "
                "csr_rates()/neighbors() instead"
            )
        if self._dense_version != self._version or self._dense_view is None:
            dense = np.zeros((self._num_nodes, self._num_nodes))
            for i, row in self._adj.items():
                for j, rate in row.items():
                    dense[i, j] = rate
            dense.flags.writeable = False
            self._dense_view = dense
            self._dense_version = self._version
        return self._dense_view

    def rate_matrix(self) -> np.ndarray:
        """A copy of the symmetric rate matrix (dense; see :meth:`_dense`)."""
        return self._dense().copy()

    def aggregate_rates(self) -> np.ndarray:
        """Per-node sum of incident contact rates (social hubness).

        Computed from the CSR structure, so it works in both storage
        modes without materialising N×N — and because both modes emit
        identical CSR entries in identical order, the sums are bitwise
        independent of the storage choice.
        """
        indptr, _indices, data = self.csr_rates()
        aggregate = np.zeros(self._num_nodes)
        if data.size:
            nonempty = np.diff(indptr) > 0
            aggregate[nonempty] = np.add.reduceat(data, indptr[:-1][nonempty])
        return aggregate

    @property
    def rates(self) -> np.ndarray:
        """Read-only view of the rate matrix (zero-copy on dense graphs).

        Direct writes (``graph.rates[i, j] = x``) raise ``ValueError``;
        mutate through :meth:`set_rate` / :meth:`set_rates`, which bump
        :attr:`version` and invalidate the content fingerprint the
        shared path-weight cache keys on.
        """
        view = self._dense().view()
        view.flags.writeable = False
        return view

    def csr_rates(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The symmetric rate structure as CSR arrays ``(indptr, indices,
        data)``.

        Column indices are ascending within each row — the same neighbor
        order :meth:`neighbors` reports and the reference Dijkstra
        iterates, so sparse sweeps relax edges in exactly the oracle's
        order.  Cached per :attr:`version`; works in both storage modes
        (dense graphs build it from the matrix).
        """
        if self._csr is not None and self._csr_version == self._version:
            return self._csr
        n = self._num_nodes
        if self._sparse:
            counts = np.zeros(n + 1, dtype=np.int64)
            for i, row in self._adj.items():
                counts[i + 1] = len(row)
            indptr = np.cumsum(counts)
            total = int(indptr[-1])
            indices = np.empty(total, dtype=np.int64)
            data = np.empty(total, dtype=np.float64)
            for i, row in self._adj.items():
                start = indptr[i]
                for offset, j in enumerate(sorted(row)):
                    indices[start + offset] = j
                    data[start + offset] = row[j]
        else:
            assert self._rates is not None
            rows, cols = np.nonzero(self._rates)
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.add.at(indptr, rows + 1, 1)
            indptr = np.cumsum(indptr)
            indices = cols.astype(np.int64)
            data = self._rates[rows, cols].astype(np.float64)
        self._csr = (indptr, indices, data)
        self._csr_version = self._version
        return self._csr

    def neighbors(self, i: int) -> Tuple[int, ...]:
        """Nodes with a positive contact rate to *i*, ascending.

        Returns the cached adjacency tuple itself (no per-call copy —
        this sits on the simulator's Dijkstra hot path); tuples are
        immutable, so sharing is safe.  The cache is invalidated by the
        :attr:`version` bump on mutation.
        """
        self._rebuild_adjacency()
        return self._adjacency[i]

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """All positive-rate edges as (i, j, λ) with i < j, ordered."""
        if self._sparse:
            for i in sorted(self._adj):
                row = self._adj[i]
                for j in sorted(row):
                    if i < j:
                        yield i, j, row[j]
            return
        assert self._rates is not None
        rows, cols = np.nonzero(np.triu(self._rates, k=1))
        for i, j in zip(rows, cols):
            yield int(i), int(j), float(self._rates[i, j])

    @property
    def num_edges(self) -> int:
        if self._sparse:
            return sum(len(row) for row in self._adj.values()) // 2
        assert self._rates is not None
        return int(np.count_nonzero(np.triu(self._rates, k=1)))

    def degree(self, i: int) -> int:
        if self._sparse:
            return len(self._adj.get(int(i), ()))
        self._rebuild_adjacency()
        return len(self._adjacency[i])

    def mean_degree(self) -> float:
        return 2.0 * self.num_edges / self._num_nodes if self._num_nodes else 0.0

    def expected_intercontact(self, i: int, j: int) -> float:
        """E[inter-contact time] = 1/λᵢⱼ, or +inf for unconnected pairs."""
        rate = self.rate(i, j)
        return 1.0 / rate if rate > 0 else float("inf")

    def _rebuild_adjacency(self) -> None:
        if self._adjacency_version == self._version:
            return
        if self._sparse:
            self._adjacency = tuple(
                tuple(sorted(self._adj.get(i, ())))
                for i in range(self._num_nodes)
            )
        else:
            assert self._rates is not None
            self._adjacency = tuple(
                tuple(int(j) for j in np.nonzero(self._rates[i])[0])
                for i in range(self._num_nodes)
            )
        self._adjacency_version = self._version

    def nbytes(self) -> int:
        """Deep heap footprint of the graph's storage and caches in bytes.

        Covers whichever storage mode is live (dense matrix or adjacency
        dicts) plus every derived cache — CSR arrays, adjacency tuples,
        materialised dense view, fingerprint — so a sparse graph whose
        caches quietly re-densify shows up in the attribution.
        """
        from repro.obs.memory import deep_sizeof

        return deep_sizeof(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = "sparse" if self._sparse else "dense"
        return (
            f"ContactGraph(nodes={self._num_nodes}, edges={self.num_edges}, "
            f"storage={mode})"
        )
