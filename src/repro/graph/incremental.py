"""Incremental all-pairs weight-matrix maintenance under edge churn.

The simulator recomputes ``ncl_metrics`` — an Eq. 3 reduction over the
all-pairs weight matrix — on every graph refresh and every churn-driven
re-election, yet between refreshes only a handful of contact rates
change.  This module maintains the expected-delay weight matrix, its
Dijkstra tree (``dist``/``pred``) and per-pair hop counts as mutable
state, and on a rate change recomputes only the *dirty* source rows.

Bitwise contract
----------------
The updated matrix must be **bit-for-bit identical** to a from-scratch
:func:`repro.graph.paths.shortest_path_weight_matrix` on the new graph —
the shared :class:`~repro.graph.weight_cache.PathWeightCache` serves
either under the same content fingerprint, and downstream contracts
(parallel == serial simulation, trace↔counter consistency) assume one
canonical value per fingerprint.  Three ingredients deliver this:

* **Row independence.** scipy's Dijkstra with ``indices=[s]`` returns
  exactly row *s* of the all-sources run, so dirty rows can be replaced
  one by one.
* **Conservative dirtying.** A source row is kept only when *no* heap
  event of its Dijkstra run could have involved a changed edge, in
  either the old or the new run.  For a changed edge (u, v) the label of
  v at the moment u settles is bounded above by the best candidate
  through v's *unchanged* neighbours settled strictly earlier
  (``dist[s,x] < dist[s,u]``); if ``dist[s,u] + min(c_old, c_new)`` is
  not strictly below that bound (both directions), the edge can never
  have relaxed anything in either run, the two heap histories coincide,
  and the stored ``dist``/``pred`` row equals the scratch row exactly —
  ties included, because a tie never produces a strict improvement.
* **Padding discipline.** The batched Eq. 2 evaluation is sensitive to
  the hop-slot pad width at the last ulp (numpy's pairwise summation
  regroups once rows exceed its block size), so re-evaluated pairs are
  padded to the full build's width, and if the *global* maximum hop
  count changes at all the update is abandoned in favour of a scratch
  rebuild (rare: it takes a diameter-altering topology change).

``REPRO_INCREMENTAL_NCL=0`` disables the whole mechanism (every refresh
rebuilds from scratch); results are identical either way, only slower.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.graph.contact_graph import ContactGraph
from repro.graph.paths import (
    _expected_delay_dijkstra,
    _pair_weights_from_tree,
)

__all__ = ["ENV_FLAG", "incremental_enabled", "TreeState", "build_state", "update_state"]

ENV_FLAG = "REPRO_INCREMENTAL_NCL"

#: Give up on incremental maintenance beyond this many changed edges —
#: the O(changed · N · degree) dirty analysis would rival the scratch
#: rebuild it is meant to avoid.
_MAX_CHANGED_EDGES = 128

#: Likewise when the dirty-row fraction exceeds this share of sources.
_MAX_DIRTY_FRACTION = 0.5


@dataclass
class TreeState:
    """Mutable all-pairs state for one (graph size, time budget) stream.

    ``weights`` is the *master* writable copy — the cache hands out
    read-only copies, never views into this array.
    """

    num_nodes: int
    time_budget: float
    rates: np.ndarray  # dense symmetric rate matrix (owned copy)
    dist: np.ndarray
    pred: np.ndarray
    weights: np.ndarray
    hop_counts: np.ndarray  # per-pair hops, 0 on/below diagonal & unreachable
    pad_width: int


def incremental_enabled() -> bool:
    """The ``REPRO_INCREMENTAL_NCL`` kill switch (default: enabled)."""
    return os.environ.get(ENV_FLAG, "1") != "0"


def build_state(graph: ContactGraph, time_budget: float) -> Tuple[np.ndarray, TreeState]:
    """From-scratch build; returns ``(weights, state)``.

    Performs exactly the computation of
    :func:`~repro.graph.paths.shortest_path_weight_matrix` in
    expected-delay mode (same Dijkstra, same pair batch) while keeping
    the tree for later updates.
    """
    n = graph.num_nodes
    dist, pred = _expected_delay_dijkstra(graph)
    rates = graph.rate_matrix()
    ii, jj = np.triu_indices(n, k=1)
    reachable = np.isfinite(dist[ii, jj])
    ii, jj = ii[reachable], jj[reachable]
    weights = np.zeros((n, n))
    np.fill_diagonal(weights, 1.0)
    hop_counts = np.zeros((n, n), dtype=np.int64)
    pad_width = 1
    if len(ii):
        pair_weights, hops = _pair_weights_from_tree(rates, pred, ii, jj, time_budget)
        weights[ii, jj] = pair_weights
        weights[jj, ii] = pair_weights
        hop_counts[ii, jj] = hops
        pad_width = max(int(hops.max()), 1)
    state = TreeState(
        num_nodes=n,
        time_budget=float(time_budget),
        rates=rates,
        dist=dist,
        pred=pred,
        weights=weights.copy(),
        hop_counts=hop_counts,
        pad_width=pad_width,
    )
    return weights, state


def _label_bound(
    dist: np.ndarray,
    neighbor_nodes: np.ndarray,
    neighbor_costs: np.ndarray,
    anchor: int,
) -> np.ndarray:
    """Per-source upper bound on a node's Dijkstra label at the moment
    *anchor* settles: the best candidate through neighbours settled
    strictly before anchor.  ``inf`` where no such neighbour exists."""
    if len(neighbor_nodes) == 0:
        return np.full(dist.shape[0], np.inf)
    dn = dist[:, neighbor_nodes]
    candidates = np.where(
        dn < dist[:, anchor][:, None], dn + neighbor_costs[None, :], np.inf
    )
    return candidates.min(axis=1)


def update_state(
    state: TreeState, graph: ContactGraph, time_budget: float
) -> Optional[np.ndarray]:
    """Advance *state* to the graph's current rates; returns the new
    weight matrix, or ``None`` when the caller should rebuild from
    scratch (too much churn, hop-width change, shape mismatch).

    On success the state is mutated in place and the returned matrix is
    bitwise identical to a scratch build on the new graph.
    """
    if graph.is_sparse or graph.num_nodes != state.num_nodes:
        return None
    if float(time_budget) != state.time_budget:
        return None
    n = state.num_nodes
    new_rates = graph.rate_matrix()
    old_rates = state.rates
    changed_mask = np.triu(new_rates != old_rates, k=1)
    changed = np.argwhere(changed_mask)
    if len(changed) == 0:
        # Content-identical rates hit the cache by fingerprint before
        # reaching here; this branch is pure defence.
        return state.weights.copy()
    if len(changed) > _MAX_CHANGED_EDGES:
        return None

    with np.errstate(divide="ignore"):
        old_costs = np.where(old_rates > 0.0, 1.0 / np.maximum(old_rates, 1e-300), np.inf)
        new_costs = np.where(new_rates > 0.0, 1.0 / np.maximum(new_rates, 1e-300), np.inf)
    unchanged_edge = (new_rates == old_rates) & (new_rates > 0.0)

    dist = state.dist
    dirty = np.zeros(n, dtype=bool)
    for u, v in changed:
        u, v = int(u), int(v)
        c_min = min(old_costs[u, v], new_costs[u, v])
        for a, b in ((u, v), (v, u)):
            # Could edge (a → b) have produced a heap event in any row's
            # sweep, in either run?  Bound b's label at a's settle time
            # by its unchanged neighbours settled strictly earlier.
            nb = np.nonzero(unchanged_edge[:, b])[0]
            bound = _label_bound(dist, nb, new_costs[nb, b], a)
            dirty |= np.isfinite(dist[:, a]) & (dist[:, a] + c_min < bound)

    dirty_rows = np.nonzero(dirty)[0]
    if len(dirty_rows) == 0:
        # The changed edges were unused and uncompetitive in every
        # sweep: dist/pred/weights are already the scratch answer, only
        # the rates snapshot needs refreshing.
        state.rates = new_rates
        return state.weights.copy()
    if len(dirty_rows) > n * _MAX_DIRTY_FRACTION:
        return None

    new_dist, new_pred = _expected_delay_dijkstra(graph, sources=list(dirty_rows))
    state.dist[dirty_rows] = new_dist
    state.pred[dirty_rows] = new_pred.astype(state.pred.dtype, copy=False)

    # Re-evaluate exactly the pairs whose *source* row (the smaller
    # index — the row the scratch build reads the predecessor chain
    # from) went dirty; every other pair's chain and hop rates are
    # untouched, so its stored weight equals the scratch value.
    ii_parts: List[np.ndarray] = []
    jj_parts: List[np.ndarray] = []
    for s in dirty_rows:
        js = np.arange(int(s) + 1, n)
        ii_parts.append(np.full(len(js), int(s), dtype=np.int64))
        jj_parts.append(js)
    ii = np.concatenate(ii_parts)
    jj = np.concatenate(jj_parts)
    reachable = np.isfinite(state.dist[ii, jj])
    ii_r, jj_r = ii[reachable], jj[reachable]
    if len(ii_r):
        pair_weights, hops = _pair_weights_from_tree(
            new_rates, state.pred, ii_r, jj_r, time_budget, pad_width=state.pad_width
        )
        if int(hops.max()) > state.pad_width:
            # The diameter grew: a scratch batch would use a wider pad,
            # shifting every >block-size row by an ulp.  Rebuild.
            return None
        state.hop_counts[ii_r, jj_r] = hops
        state.weights[ii_r, jj_r] = pair_weights
        state.weights[jj_r, ii_r] = pair_weights
    ii_u, jj_u = ii[~reachable], jj[~reachable]
    state.hop_counts[ii_u, jj_u] = 0
    state.weights[ii_u, jj_u] = 0.0
    state.weights[jj_u, ii_u] = 0.0
    if max(int(state.hop_counts.max()), 1) != state.pad_width:
        # The global maximum hop count shrank — same ulp hazard as above.
        return None
    state.rates = new_rates
    return state.weights.copy()
