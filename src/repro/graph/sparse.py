"""k-nearest-contact sparse path-weight kernel (scale-out Eq. 2/3).

At 10⁵ nodes the all-pairs weight matrix of :mod:`repro.graph.paths` is
un-materialisable (N² doubles is 80 GB) and even one full Dijkstra per
source is too slow, because every source sweep would visit the whole
graph.  This module computes the Eq. (2) delivery weights that the NCL
metric (Eq. 3) actually needs — the weights to each node's *k nearest
contacts* — with an early-stopped Dijkstra per source over the graph's
CSR structure: the sweep settles exactly ``k`` destinations and stops,
so per-source cost scales with the local neighbourhood, not with N, and
no N×N array is ever allocated.

Truncation error: path weights decay with expected delay, and Dijkstra
settles destinations in ascending expected-delay order, so the dropped
(N−1−k) terms of a node's Eq. 3 sum are each no larger than the
smallest kept term's weight bound p(T; d_k) — the truncated metric is a
lower bound that converges monotonically to the exact metric as k grows
(larger k only ever adds non-negative terms; see DESIGN.md §5c).

The per-source sweep is the registered ``knn_weight_rows`` kernel
(python core here, ``@njit`` core in :mod:`repro.kernels.numba_backend`,
pinned bitwise: both are binary heaps keyed on the distinct pairs
``(dist, node)``, whose pop order any min-heap reproduces exactly).  The
dense :func:`_reference_knn_weight_rows` oracle runs the full
pure-python reference Dijkstra and truncates afterwards; property tests
pin the sparse kernel to it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import PathError
from repro.graph.contact_graph import ContactGraph
from repro.graph.paths import PathMode
from repro.kernels.registry import kernel_override
from repro.mathutils.hypoexponential import (
    hypoexponential_cdf_batch,
    path_delivery_probability,
)
from repro.obs.profile import active_profiler, maybe_span

__all__ = ["KnnWeightRows", "knn_weight_rows", "knn_weight_matrix"]

#: Sources per kernel batch: bounds the live hop-row scratch to
#: ``_CHUNK_SOURCES * k`` rows regardless of graph size.
_CHUNK_SOURCES = 2048


@dataclass(frozen=True)
class KnnWeightRows:
    """CSR-shaped k-nearest path weights: row *i* holds p_ij(T) for the
    (up to) k nearest contacts j of node i, column indices ascending."""

    num_nodes: int
    k: int
    time_budget: float
    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """(destination ids, weights) of node *i*'s kept pairs."""
        lo, hi = int(self.indptr[i]), int(self.indptr[i + 1])
        return self.indices[lo:hi], self.weights[lo:hi]

    def row_sums(self) -> np.ndarray:
        """Σⱼ p_ij(T) per source — the Eq. 3 numerator (diagonal excluded).

        ``np.bincount`` accumulates strictly sequentially, so the sum is
        deterministic and backend-independent for identical weights.
        """
        sources = np.repeat(
            np.arange(self.num_nodes), np.diff(self.indptr)
        )
        return np.bincount(sources, weights=self.weights, minlength=self.num_nodes)

    def to_dense(self) -> np.ndarray:
        """Dense N×N view (diagonal 1, dropped pairs 0) — small-N tests
        compare this against the dense weight matrix."""
        dense = np.zeros((self.num_nodes, self.num_nodes))
        np.fill_diagonal(dense, 1.0)
        sources = np.repeat(
            np.arange(self.num_nodes), np.diff(self.indptr)
        )
        dense[sources, self.indices] = self.weights
        return dense


def knn_weight_rows(
    graph: ContactGraph,
    time_budget: float,
    k: int,
    mode: PathMode = PathMode.EXPECTED_DELAY,
) -> KnnWeightRows:
    """Eq. (2) weights from every node to its k nearest contacts.

    Runs one early-stopped sparse Dijkstra per source (the registered
    ``knn_weight_rows`` kernel) and scores all settled paths in chunked
    :func:`hypoexponential_cdf_batch` calls.  Memory is O(N·k + E);
    never O(N²).
    """
    if time_budget <= 0:
        raise PathError("time budget must be positive")
    if k < 1:
        raise PathError("k must be at least 1")
    if mode is not PathMode.EXPECTED_DELAY:
        raise PathError("k-NN truncation is defined for expected-delay mode only")
    with maybe_span(active_profiler(), "kernel.knn_rows"):
        return _knn_weight_rows(graph, time_budget, k)


def _knn_weight_rows(
    graph: ContactGraph, time_budget: float, k: int
) -> KnnWeightRows:
    n = graph.num_nodes
    k = min(int(k), max(n - 1, 1))
    indptr, indices, data = graph.csr_rates()
    override = kernel_override("knn_weight_rows")
    core = override if override is not None else _knn_rows_core
    counts_parts: List[np.ndarray] = []
    index_parts: List[np.ndarray] = []
    weight_parts: List[np.ndarray] = []
    for start in range(0, n, _CHUNK_SOURCES):
        sources = np.arange(start, min(start + _CHUNK_SOURCES, n), dtype=np.int64)
        dest, hop_rows, counts = core(indptr, indices, data, sources, k)
        valid = dest >= 0
        dest = dest[valid]
        rows = hop_rows[valid]
        if len(dest):
            # Trim trailing all-zero hop columns before the batched
            # Eq. (2) call; both backends emit identical left-aligned
            # rows, so the trimmed matrix — and hence the weights — are
            # bitwise backend-independent.
            hops = (rows > 0.0).sum(axis=1)
            width = max(int(hops.max()), 1)
            chunk_weights = hypoexponential_cdf_batch(rows[:, :width], time_budget)
            # Canonical CSR: destinations ascending within each source.
            src_of_row = np.repeat(sources - start, counts)
            order = np.argsort(src_of_row * np.int64(n + 1) + dest, kind="stable")
            index_parts.append(dest[order])
            weight_parts.append(chunk_weights[order])
        counts_parts.append(counts)
    all_counts = np.concatenate(counts_parts) if counts_parts else np.zeros(0, np.int64)
    out_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(all_counts, out=out_indptr[1:])
    out_indices = (
        np.concatenate(index_parts) if index_parts else np.zeros(0, np.int64)
    )
    out_weights = (
        np.concatenate(weight_parts) if weight_parts else np.zeros(0)
    )
    return KnnWeightRows(
        num_nodes=n,
        k=k,
        time_budget=float(time_budget),
        indptr=out_indptr,
        indices=out_indices,
        weights=out_weights,
    )


def _knn_rows_core(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    sources: np.ndarray,
    k: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Python core of the ``knn_weight_rows`` kernel.

    For each source: binary-heap Dijkstra keyed on ``(dist, node)``
    (all heap keys distinct — re-pushes strictly improve the distance —
    so pop order is implementation-independent), strict ``<``
    relaxation, neighbours relaxed in ascending CSR order: the exact
    recipe of the reference Dijkstra in :mod:`repro.graph.paths`, which
    makes the settled prefix a prefix of the full sweep's settle order.
    Stops after settling k destinations.

    Returns ``(dest, hop_rows, counts)``: per source, up to k settled
    destination ids (slot-padded with −1 into ``dest[t*k:(t+1)*k]``),
    their left-aligned source→destination hop-rate rows, and the number
    settled.  The numba override emits identically-shaped,
    bitwise-identical arrays.
    """
    m = len(sources)
    dest = np.full(m * k, -1, dtype=np.int64)
    hop_rows = np.zeros((m * k, k))
    counts = np.zeros(m, dtype=np.int64)
    inf = float("inf")
    for t in range(m):
        s = int(sources[t])
        dist: Dict[int, float] = {s: 0.0}
        pred: Dict[int, int] = {}
        pred_rate: Dict[int, float] = {}
        settled: set = set()
        heap: List[Tuple[float, int]] = [(0.0, s)]
        base = t * k
        found = 0
        while heap and found < k:
            d, node = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            if node != s:
                row = base + found
                dest[row] = node
                hops: List[float] = []
                cur = node
                while cur != s:
                    hops.append(pred_rate[cur])
                    cur = pred[cur]
                hops.reverse()
                hop_rows[row, : len(hops)] = hops
                found += 1
                if found == k:
                    break
            for e in range(int(indptr[node]), int(indptr[node + 1])):
                nb = int(indices[e])
                if nb in settled:
                    continue
                rate = float(data[e])
                candidate = d + 1.0 / rate
                if candidate < dist.get(nb, inf):
                    dist[nb] = candidate
                    pred[nb] = node
                    pred_rate[nb] = rate
                    heapq.heappush(heap, (candidate, nb))
        counts[t] = found
    return dest, hop_rows, counts


def knn_weight_matrix(
    graph: ContactGraph,
    time_budget: float,
    k: int,
    mode: PathMode = PathMode.EXPECTED_DELAY,
) -> np.ndarray:
    """Dense N×N matrix of the k-NN truncated weights (small-N helper).

    With ``k >= N-1`` this equals the full
    :func:`repro.graph.paths.shortest_path_weight_matrix` to oracle
    tolerance — the truncation keeps everything.
    """
    return knn_weight_rows(graph, time_budget, k, mode).to_dense()


def _reference_knn_weight_rows(
    graph: ContactGraph,
    time_budget: float,
    k: int,
) -> np.ndarray:
    """Dense pure-python oracle for the ``knn_weight_rows`` kernel.

    Runs the *full* reference expected-delay Dijkstra per source
    (no early stop, no CSR — the graph's neighbor lists directly),
    records the settle order, keeps the first k settled destinations,
    and scores each hop tuple with the scalar Eq. (2).  Returns the
    dense N×N matrix (diagonal 1, dropped pairs 0) that
    :meth:`KnnWeightRows.to_dense` must reproduce.  Equal distances
    cannot make oracle and kernel diverge: both heaps key on the
    distinct ``(dist, node)`` pairs.
    """
    n = graph.num_nodes
    k = min(int(k), max(n - 1, 1))
    dense = np.zeros((n, n))
    np.fill_diagonal(dense, 1.0)
    inf = float("inf")
    for s in range(n):
        dist: Dict[int, float] = {s: 0.0}
        pred: Dict[int, int] = {}
        settled: set = set()
        settle_order: List[int] = []
        heap: List[Tuple[float, int]] = [(0.0, s)]
        while heap:
            d, node = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            settle_order.append(node)
            for nb in graph.neighbors(node):
                if nb in settled:
                    continue
                candidate = d + 1.0 / graph.rate(node, nb)
                if candidate < dist.get(nb, inf):
                    dist[nb] = candidate
                    pred[nb] = node
                    heapq.heappush(heap, (candidate, nb))
        kept = [node for node in settle_order if node != s][:k]
        for node in kept:
            hops: List[float] = []
            cur = node
            while cur != s:
                hops.append(graph.rate(pred[cur], cur))
                cur = pred[cur]
            hops.reverse()
            dense[s, node] = path_delivery_probability(hops, time_budget)
    return dense
