"""Derive run metrics and per-query audits from a lifecycle trace.

This is the independent accounting path of the observability layer: the
same successful ratio / access delay / caching overhead the live
:class:`~repro.metrics.collector.MetricsCollector` accumulates, but
recomputed purely from the emitted :class:`~repro.obs.events.TraceEvent`
stream.  The arithmetic deliberately replays the collector's exact
operations in the exact emission order (same subtractions, same
divisions, same summation order), so on a consistent run the two paths
agree **bit for bit** — any drift is a real accounting bug, and
:func:`repro.sim.invariants.check_trace_consistency` turns it into a
hard error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

from repro.obs.events import TraceEvent, TraceEventKind

__all__ = [
    "DerivedMetrics",
    "QueryAudit",
    "classify_outcome",
    "delivery_in_constraint",
    "derive_metrics",
    "audit_queries",
    "render_audit_report",
]


def delivery_in_constraint(time: float, expires_at: Optional[float]) -> bool:
    """Does a delivery at *time* satisfy the query's time constraint?

    Mirrors :meth:`repro.metrics.collector.MetricsCollector.
    on_query_satisfied`, which rejects only ``now > expires_at`` — a
    delivery landing **exactly at the boundary** counts as satisfied.
    The causality layer must use this predicate (never ``<`` or ``>=``)
    so trace reconstruction and the live counters classify boundary
    deliveries identically.
    """
    return expires_at is None or time <= expires_at


def classify_outcome(
    satisfied_at: Optional[float],
    expires_at: Optional[float],
    trace_end: float,
) -> str:
    """``satisfied`` / ``expired`` / ``pending`` — the one shared rule.

    A trace truncated before the constraint elapsed (``trace_end <
    expires_at``) keeps the query *pending* rather than expired; a trace
    ending exactly at the constraint boundary classifies as expired only
    when no satisfaction was recorded (the collector would still have
    accepted a delivery at that instant, see
    :func:`delivery_in_constraint`).  Both :class:`QueryAudit` and the
    causality layer (:mod:`repro.obs.causality`) classify through this
    predicate so the two paths can never diverge.
    """
    if satisfied_at is not None:
        return "satisfied"
    if expires_at is not None and trace_end >= expires_at:
        return "expired"
    return "pending"


@dataclass(frozen=True)
class DerivedMetrics:
    """The paper's evaluation metrics, recomputed from the trace alone."""

    queries_issued: int
    queries_satisfied: int
    successful_ratio: float
    mean_access_delay: float
    caching_overhead: float
    data_generated: int
    delivery_events: int
    responses_emitted: int
    duplicate_deliveries: int = 0
    late_deliveries: int = 0


@dataclass
class QueryAudit:
    """Everything the trace says about one query's life."""

    query_id: int
    requester: Optional[int] = None
    data_id: Optional[int] = None
    created_at: Optional[float] = None
    expires_at: Optional[float] = None
    observed_by: List[int] = field(default_factory=list)
    decisions: int = 0
    responses_emitted: int = 0
    forwards: int = 0
    deliveries: int = 0
    satisfied_at: Optional[float] = None
    events: List[TraceEvent] = field(default_factory=list)

    @property
    def delay(self) -> Optional[float]:
        if self.satisfied_at is None or self.created_at is None:
            return None
        return self.satisfied_at - self.created_at

    def outcome(self, trace_end: float) -> str:
        """``satisfied`` / ``expired`` / ``pending`` at *trace_end*."""
        return classify_outcome(self.satisfied_at, self.expires_at, trace_end)


def derive_metrics(events: Iterable[TraceEvent]) -> DerivedMetrics:
    """Recompute the headline metrics from the event stream.

    Satisfaction counts **distinct query ids**, never delivery events:
    two NCLs answering the same query contribute two
    ``RESPONSE_DELIVERED`` events (tracked separately as
    ``delivery_events``) but at most one satisfied query.
    """
    issued: Dict[int, float] = {}
    delays: List[float] = []
    satisfied: Dict[int, float] = {}
    copy_samples: List[float] = []
    data_generated = 0
    delivery_events = 0
    responses_emitted = 0
    duplicate_deliveries = 0
    late_deliveries = 0
    for event in events:
        kind = event.kind
        if kind is TraceEventKind.QUERY_CREATED:
            assert event.query_id is not None
            issued[event.query_id] = event.time
        elif kind is TraceEventKind.QUERY_SATISFIED:
            assert event.query_id is not None
            if event.query_id not in satisfied:
                satisfied[event.query_id] = event.time
                created = float(event.attrs.get("created_at", event.time))
                delays.append(event.time - created)
        elif kind is TraceEventKind.SAMPLE:
            live = int(event.attrs.get("live_items", 0))
            if live > 0:
                copy_samples.append(int(event.attrs["cached_copies"]) / live)
        elif kind is TraceEventKind.DATA_GENERATED:
            data_generated += 1
        elif kind is TraceEventKind.RESPONSE_DELIVERED:
            delivery_events += 1
        elif kind is TraceEventKind.RESPONSE_EMITTED:
            responses_emitted += 1
        elif kind is TraceEventKind.DELIVERY_DUPLICATE:
            duplicate_deliveries += 1
        elif kind is TraceEventKind.DELIVERY_LATE:
            late_deliveries += 1
    issued_count = len(issued)
    return DerivedMetrics(
        queries_issued=issued_count,
        queries_satisfied=len(satisfied),
        successful_ratio=(len(satisfied) / issued_count) if issued_count else 0.0,
        mean_access_delay=(sum(delays) / len(delays)) if delays else float("nan"),
        caching_overhead=(
            sum(copy_samples) / len(copy_samples) if copy_samples else 0.0
        ),
        data_generated=data_generated,
        delivery_events=delivery_events,
        responses_emitted=responses_emitted,
        duplicate_deliveries=duplicate_deliveries,
        late_deliveries=late_deliveries,
    )


def audit_queries(events: Iterable[TraceEvent]) -> Dict[int, QueryAudit]:
    """Group the trace into per-query lifecycle audits (insertion order)."""
    audits: Dict[int, QueryAudit] = {}

    def audit_for(query_id: int) -> QueryAudit:
        audit = audits.get(query_id)
        if audit is None:
            audit = audits[query_id] = QueryAudit(query_id=query_id)
        return audit

    for event in events:
        if event.query_id is None:
            continue
        audit = audit_for(event.query_id)
        audit.events.append(event)
        kind = event.kind
        if kind is TraceEventKind.QUERY_CREATED:
            audit.requester = event.node
            audit.data_id = event.data_id
            audit.created_at = event.time
            constraint = event.attrs.get("time_constraint")
            if constraint is not None:
                audit.expires_at = event.time + float(constraint)
        elif kind is TraceEventKind.QUERY_OBSERVED:
            if event.node is not None:
                audit.observed_by.append(event.node)
        elif kind is TraceEventKind.RESPONSE_DECIDED:
            audit.decisions += 1
        elif kind is TraceEventKind.RESPONSE_EMITTED:
            audit.responses_emitted += 1
        elif kind is TraceEventKind.RESPONSE_FORWARDED:
            audit.forwards += 1
        elif kind is TraceEventKind.RESPONSE_DELIVERED:
            audit.deliveries += 1
        elif kind is TraceEventKind.QUERY_SATISFIED:
            if audit.satisfied_at is None:
                audit.satisfied_at = event.time
    return audits


def render_audit_report(
    events: Union[Iterable[TraceEvent], List[TraceEvent]],
    limit: Optional[int] = None,
    only: Optional[str] = None,
) -> str:
    """Human-readable per-query audit of a trace.

    ``only`` filters by outcome (``satisfied`` / ``expired`` /
    ``pending``); ``limit`` caps the number of query lines printed.
    """
    events = list(events)
    trace_end = max((e.time for e in events), default=0.0)
    metrics = derive_metrics(events)
    audits = audit_queries(events)
    lines = [
        f"trace: {len(events)} events, {metrics.data_generated} data items, "
        f"{metrics.queries_issued} queries",
        f"derived: ratio={metrics.successful_ratio:.4f} "
        f"delay={_fmt_delay(metrics.mean_access_delay)} "
        f"copies/item={metrics.caching_overhead:.3f} "
        f"deliveries={metrics.delivery_events} "
        f"responses={metrics.responses_emitted}",
        "",
    ]
    selected = [
        (audit, audit.outcome(trace_end))
        for audit in audits.values()
        if only is None or audit.outcome(trace_end) == only
    ]
    shown = 0
    for audit, outcome in selected:
        if limit is not None and shown >= limit:
            lines.append(f"... ({len(selected) - shown} more queries)")
            break
        shown += 1
        delay = audit.delay
        lines.append(
            f"query {audit.query_id} [{outcome}] data={audit.data_id} "
            f"requester={audit.requester} observed_by={len(set(audit.observed_by))} "
            f"decisions={audit.decisions} emitted={audit.responses_emitted} "
            f"forwards={audit.forwards} deliveries={audit.deliveries}"
            + (f" delay={_fmt_delay(delay)}" if delay is not None else "")
        )
    return "\n".join(lines)


def _fmt_delay(delay: Optional[float]) -> str:
    if delay is None or math.isnan(delay):
        return "n/a"
    if delay >= 3600.0:
        return f"{delay / 3600.0:.2f}h"
    return f"{delay:.1f}s"
