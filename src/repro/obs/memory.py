"""Memory-footprint observability: byte attribution + process telemetry.

The 10⁵-node runs are footprint-bound, not time-bound, and ``ru_maxrss``
alone cannot say *which* subsystem holds the bytes.  This module closes
that gap with two complementary instruments:

* **Subsystem accountants** — every major state holder (contact graph,
  per-node buffers, metrics collector, workload catalogue, event queue,
  path-weight cache, scheme state, observability buffers) registers a
  deterministic ``nbytes()`` callable under a name from
  :data:`SUBSYSTEMS`.  :meth:`Simulator.memory_breakdown` sums them at
  any instant — no sampling, no process counters, reproducible.
* **Sampled process telemetry** — a :class:`MemoryMonitor` snapshots
  peak RSS (:func:`peak_rss_bytes`), the tracemalloc Python heap (when
  tracing), and the accountant breakdown at the existing time-series /
  health-window boundaries, producing frozen :class:`MemorySample`
  records that persist to ``memory.jsonl``.

Both live **outside** the frozen :class:`~repro.metrics.results.
SimulationResult`: process counters differ between workers, so they
travel next to the results like wall-clock throughput does, and the
bitwise serial==workers contract never sees them.  Sampling follows the
``.enabled`` zero-overhead convention — the shared
:data:`NULL_MEMORY_MONITOR` makes a profiling-off run pay one attribute
read per hook site.

:func:`check_memory_consistency` is the honesty invariant: the
accountant sum must reconcile against the tracemalloc-reported heap
within a documented tolerance, so the attribution cannot silently rot
into fiction as subsystems grow new containers.
"""

from __future__ import annotations

import json
import math
import resource
import sys
import time
import tracemalloc
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Set, Union

import numpy as np

from repro.errors import ConfigurationError, TraceConsistencyError

__all__ = [
    "SUBSYSTEMS",
    "peak_rss_bytes",
    "deep_sizeof",
    "MemorySample",
    "MemoryMonitor",
    "NullMemoryMonitor",
    "NULL_MEMORY_MONITOR",
    "check_memory_consistency",
    "write_memory_log",
    "read_memory_log",
    "render_memory_table",
    "render_memory_breakdown",
    "render_memory_gauges",
]

#: The attribution universe.  Accountants register under exactly these
#: names; ``scripts/check_memory_accountants.py`` AST-reads this literal
#: and demands (a) the simulator registers every name and (b) the test
#: corpus cross-checks each against an ``oracle_nbytes_<name>`` oracle.
SUBSYSTEMS = {
    "contact_graph": "contact-graph storage (dense / adjacency / CSR caches) and the online rate-estimator state",
    "nodes": "per-node state: cache buffers, own data, popularity tables, bundle routing state",
    "scheme": "caching-scheme state: NCL selection, routers, response strategy",
    "weight_cache": "shared PathWeightCache array payloads (path-weight memo)",
    "metrics": "MetricsCollector query/delivery state (exact or streaming)",
    "workload": "workload catalogue: retained data items and popularity indices",
    "events": "event-engine queue of scheduled simulation events",
    "observability": "trace recorder, timeline, time-series rows and memory samples",
}

_MB = float(2**20)


def peak_rss_bytes() -> int:
    """Process peak RSS (high-water mark) in bytes.

    ``resource.getrusage`` reports ``ru_maxrss`` in KiB on Linux but in
    bytes on macOS; this is the one place that unit quirk lives (the
    large-scale benches and the monitor both call through here).
    """
    peak = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    if sys.platform == "darwin":
        return peak
    return peak * 1024


#: containers the deep walk descends into element by element
_CONTAINERS = (list, tuple, set, frozenset)


def deep_sizeof(obj: Any, seen: Optional[Set[int]] = None) -> int:
    """Recursive ``sys.getsizeof`` over an object graph.

    Walks dicts, sequences, sets, numpy arrays and plain objects
    (``__dict__`` / ``__slots__``), counting every reachable object
    once per call (``seen`` dedups shared references).  Callables,
    modules and classes are fenced off — they are code, not state, and
    walking them would drag in the whole interpreter.  Pre-seeding
    ``seen`` with object ids is how one subsystem's accountant excludes
    state owned (and counted) by another.
    """
    if seen is None:
        seen = set()
    total = 0
    stack = [obj]
    while stack:
        current = stack.pop()
        if current is None:
            continue
        ident = id(current)
        if ident in seen:
            continue
        seen.add(ident)
        if isinstance(current, (type, type(json), type(peak_rss_bytes))) or callable(
            current
        ):
            continue
        if isinstance(current, np.ndarray):
            # getsizeof covers header + data for owning arrays but only
            # the header for views; nbytes of the base is counted when
            # (if) the walk reaches the base itself.
            total += int(current.__sizeof__())
            continue
        try:
            total += sys.getsizeof(current)
        except TypeError:  # pragma: no cover - exotic extension types
            continue
        if isinstance(current, dict):
            stack.extend(current.keys())
            stack.extend(current.values())
        elif isinstance(current, _CONTAINERS):
            stack.extend(current)
        elif isinstance(current, (str, bytes, bytearray, int, float, complex, bool)):
            continue
        else:
            attrs = getattr(current, "__dict__", None)
            if attrs is not None:
                stack.append(attrs)
            slots = getattr(type(current), "__slots__", ())
            for name in slots if isinstance(slots, (list, tuple)) else (slots,):
                if isinstance(name, str) and hasattr(current, name):
                    stack.append(getattr(current, name))
    return total


@dataclass(frozen=True)
class MemorySample:
    """One sampled memory observation (simulated-time stamped).

    ``rss_mb`` is the process peak RSS (high-water mark — monotone
    within a run); ``py_heap_mb`` is the tracemalloc *current* Python
    heap, NaN unless tracing was started by the caller;
    ``accounted_mb`` is the subsystem accountants' sum at sample time,
    with the per-subsystem bytes in ``subsystems`` and the largest
    holder named in ``top_subsystem``.
    """

    time: float
    rss_mb: float
    py_heap_mb: float
    accounted_mb: float
    top_subsystem: str = ""
    subsystems: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready record; NaN floats export as ``None`` (JSON
        ``null`` round-trips, bare ``NaN`` is not valid JSON)."""

        def _json_float(value: float) -> Optional[float]:
            return None if math.isnan(value) else value

        return {
            "time": self.time,
            "rss_mb": _json_float(self.rss_mb),
            "py_heap_mb": _json_float(self.py_heap_mb),
            "accounted_mb": _json_float(self.accounted_mb),
            "top_subsystem": self.top_subsystem,
            "subsystems": dict(self.subsystems),
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "MemorySample":
        def _from_json(value: Optional[float]) -> float:
            return float("nan") if value is None else float(value)

        return cls(
            time=float(record["time"]),
            rss_mb=_from_json(record["rss_mb"]),
            py_heap_mb=_from_json(record["py_heap_mb"]),
            accounted_mb=_from_json(record["accounted_mb"]),
            top_subsystem=record.get("top_subsystem", ""),
            subsystems={str(k): int(v) for k, v in record.get("subsystems", {}).items()},
        )


class MemoryMonitor:
    """Accountant registry + sampler behind one ``enabled`` flag.

    Construction is cheap (the accountants are zero-argument closures);
    the cost lives entirely in :meth:`sample`, which hook sites only
    reach through an ``enabled`` guard.

    The attribution walk is the expensive part of a sample (a deep
    sizeof over every subsystem), so :meth:`sample` **duty-cycles** it:
    after each full breakdown the next one is scheduled no sooner than
    ``cost / breakdown_budget`` wall-seconds later, and samples in
    between carry the latest attribution forward.  That bounds
    enabled-mode overhead near ``breakdown_budget`` (a fraction of wall
    time) at any scale — the bench guard's ``_memory`` twin holds the
    total under 5%.  The cheap fields (peak RSS, tracemalloc heap) are
    refreshed on every sample regardless.
    """

    #: hook sites skip sampling entirely when this is False
    enabled: bool = True

    def __init__(
        self,
        accountants: Optional[Mapping[str, Callable[[], int]]] = None,
        breakdown_budget: float = 0.02,
    ) -> None:
        if not (0.0 < breakdown_budget <= 1.0):
            raise ConfigurationError("breakdown_budget must be in (0, 1]")
        self._accountants: Dict[str, Callable[[], int]] = {}
        self.samples: List[MemorySample] = []
        self.breakdown_budget = breakdown_budget
        self._last_breakdown: Optional[Dict[str, int]] = None
        self._next_breakdown_wall = 0.0
        for name, accountant in (accountants or {}).items():
            self.register(name, accountant)

    def register(self, name: str, accountant: Callable[[], int]) -> None:
        """Register subsystem *name*'s deterministic byte accountant."""
        if name not in SUBSYSTEMS:
            raise ConfigurationError(
                f"unknown memory subsystem {name!r}; add it to "
                f"repro.obs.memory.SUBSYSTEMS first"
            )
        if name in self._accountants:
            raise ConfigurationError(f"memory subsystem {name!r} already registered")
        self._accountants[name] = accountant

    @property
    def subsystems(self) -> "tuple[str, ...]":
        return tuple(sorted(self._accountants))

    def breakdown(self) -> Dict[str, int]:
        """Per-subsystem bytes right now (accountants, no sampling)."""
        return {name: int(fn()) for name, fn in sorted(self._accountants.items())}

    def sample(self, now: float) -> MemorySample:
        """Snapshot RSS / heap / breakdown at simulated time *now*.

        The breakdown refreshes on the duty cycle described in the
        class docstring; ``rss_mb`` / ``py_heap_mb`` are always live.
        """
        wall = time.perf_counter()
        if self._last_breakdown is None or wall >= self._next_breakdown_wall:
            breakdown = self.breakdown()
            cost = time.perf_counter() - wall
            self._next_breakdown_wall = (
                time.perf_counter() + cost / self.breakdown_budget
            )
            self._last_breakdown = breakdown
        else:
            breakdown = self._last_breakdown
        accounted = sum(breakdown.values())
        top = max(breakdown, key=breakdown.__getitem__) if breakdown else ""
        heap = (
            tracemalloc.get_traced_memory()[0] / _MB
            if tracemalloc.is_tracing()
            else float("nan")
        )
        sample = MemorySample(
            time=now,
            rss_mb=peak_rss_bytes() / _MB,
            py_heap_mb=heap,
            accounted_mb=accounted / _MB,
            top_subsystem=top,
            subsystems=breakdown,
        )
        self.samples.append(sample)
        return sample


class NullMemoryMonitor(MemoryMonitor):
    """Profiling off: hook sites must guard on ``enabled``."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def register(self, name: str, accountant: Callable[[], int]) -> None:
        # Tolerate registration (it is construction-time, not hot), but
        # keep the shared singleton stateless.
        pass

    def sample(self, now: float) -> MemorySample:  # pragma: no cover - guarded
        # Tolerate stray samples rather than crash a live run; the guard
        # convention makes this path unreachable from repo code.
        return MemorySample(
            time=now,
            rss_mb=float("nan"),
            py_heap_mb=float("nan"),
            accounted_mb=float("nan"),
        )


#: Shared default monitor — stateless, so one instance serves the process.
NULL_MEMORY_MONITOR = NullMemoryMonitor()


def check_memory_consistency(
    breakdown: Mapping[str, int],
    py_heap_bytes: float,
    min_coverage: float = 0.9,
    max_overcount: float = 1.5,
) -> None:
    """Prove the accountant sum reconciles against the traced heap.

    ``py_heap_bytes`` is ``tracemalloc.get_traced_memory()[0]`` with
    tracing started *before* the attributed state was built.  The
    accountants must attribute at least ``min_coverage`` of that heap to
    named subsystems (default 90% — the scale-out acceptance floor) and
    at most ``max_overcount`` × it.  The upper tolerance is deliberate:
    shared :class:`~repro.core.data.DataItem` references are attributed
    to *every* holder (a buffer copy and the catalogue both count the
    item), and ``sys.getsizeof`` headers differ slightly from the
    allocator's view — both effects are bounded well inside 1.5×.

    Raises :class:`~repro.errors.TraceConsistencyError` on violation.
    """
    if not (0.0 < min_coverage <= 1.0):
        raise ConfigurationError("min_coverage must be in (0, 1]")
    if max_overcount < 1.0:
        raise ConfigurationError("max_overcount must be >= 1")
    if not math.isfinite(py_heap_bytes) or py_heap_bytes <= 0:
        raise TraceConsistencyError(
            "memory consistency needs a positive traced heap; start "
            "tracemalloc before building the simulator"
        )
    accounted = float(sum(breakdown.values()))
    if accounted < min_coverage * py_heap_bytes:
        raise TraceConsistencyError(
            f"memory accountants cover only {accounted / py_heap_bytes:.1%} of "
            f"the traced Python heap ({accounted / _MB:.1f} of "
            f"{py_heap_bytes / _MB:.1f} MB; floor {min_coverage:.0%})"
        )
    if accounted > max_overcount * py_heap_bytes:
        raise TraceConsistencyError(
            f"memory accountants claim {accounted / py_heap_bytes:.2f}x the "
            f"traced Python heap ({accounted / _MB:.1f} vs "
            f"{py_heap_bytes / _MB:.1f} MB; ceiling {max_overcount:.2f}x)"
        )


# --- persistence (memory.jsonl) --------------------------------------------


def write_memory_log(
    path: Union[str, Path], samples: Iterable[MemorySample]
) -> None:
    """Write samples as JSONL with a ``memory.meta`` header.

    Floats serialise via ``repr`` (the json default), so
    :func:`read_memory_log` round-trips them bit-exactly — same
    contract as ``health.jsonl``.
    """
    rows = list(samples)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        meta = {"kind": "memory.meta", "samples": len(rows)}
        handle.write(json.dumps(meta, sort_keys=True) + "\n")
        for sample in rows:
            record = {"kind": "memory.sample", **sample.to_dict()}
            handle.write(json.dumps(record, sort_keys=True) + "\n")


def read_memory_log(path: Union[str, Path]) -> List[MemorySample]:
    """Load ``memory.jsonl`` back into :class:`MemorySample` records."""
    samples: List[MemorySample] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") != "memory.sample":
                continue
            samples.append(MemorySample.from_dict(record))
    return samples


# --- rendering --------------------------------------------------------------


def _fmt_mb(value: float) -> str:
    if value != value:  # NaN
        return "-"
    return f"{value:.1f}"


def render_memory_table(
    samples: Iterable[MemorySample], limit: Optional[int] = None
) -> str:
    """Fixed-width sample table for ``repro report`` / ``repro watch``."""
    rows = list(samples)
    if limit is not None and limit >= 0:
        rows = rows[-limit:]
    lines = [
        f"{'time':>12s} {'rss_mb':>9s} {'heap_mb':>9s} {'acct_mb':>9s}  top subsystem"
    ]
    for sample in rows:
        lines.append(
            f"{sample.time:12.1f} {_fmt_mb(sample.rss_mb):>9s} "
            f"{_fmt_mb(sample.py_heap_mb):>9s} {_fmt_mb(sample.accounted_mb):>9s}  "
            f"{sample.top_subsystem or '-'}"
        )
    lines.append(f"{len(rows)} memory sample(s)")
    return "\n".join(lines)


def render_memory_breakdown(breakdown: Mapping[str, int]) -> str:
    """Per-subsystem bytes, largest first, with share-of-total."""
    total = sum(breakdown.values())
    lines = []
    for name in sorted(breakdown, key=breakdown.__getitem__, reverse=True):
        nbytes = breakdown[name]
        share = (nbytes / total) if total else 0.0
        lines.append(f"{name:>14s} {nbytes / _MB:10.1f} MB  {share:6.1%}")
    lines.append(f"{'total':>14s} {total / _MB:10.1f} MB")
    return "\n".join(lines)


def render_memory_gauges(sample: MemorySample) -> str:
    """Prometheus text gauges for the latest memory sample.

    Appended to :func:`repro.obs.health.render_prometheus` output when
    memory profiling is on: one ``repro_health_rss_bytes`` process gauge
    plus a ``repro_memory_subsystem_bytes`` gauge per accountant.
    """
    lines = [
        "# HELP repro_health_rss_bytes Process peak RSS (high-water mark).",
        "# TYPE repro_health_rss_bytes gauge",
        f"repro_health_rss_bytes {int(sample.rss_mb * _MB)}",
        "# HELP repro_memory_accounted_bytes Sum of subsystem accountants.",
        "# TYPE repro_memory_accounted_bytes gauge",
        f"repro_memory_accounted_bytes {int(sample.accounted_mb * _MB)}",
        "# HELP repro_memory_subsystem_bytes Attributed bytes per subsystem.",
        "# TYPE repro_memory_subsystem_bytes gauge",
    ]
    for name in sorted(sample.subsystems):
        lines.append(
            f'repro_memory_subsystem_bytes{{subsystem="{name}"}} '
            f"{int(sample.subsystems[name])}"
        )
    return "\n".join(lines) + "\n"
