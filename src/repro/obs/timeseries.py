"""Periodic time-series sampling of system state.

Generalises :mod:`repro.metrics.timeline` (which keeps the paper's
headline counters) into a full mid-run telemetry stream: each
:class:`TimeSeriesSample` additionally records per-node buffer
occupancy, per-NCL caching load, the cumulative cache-hit ratio and the
number of pending (issued, unsatisfied, unexpired) queries.

The sampler follows the same zero-overhead convention as tracing and
profiling: the simulator only assembles a sample when
``sampler.enabled`` is true (:data:`NULL_SAMPLER` otherwise), so
unsampled runs pay one attribute read per ``SAMPLE_METRICS`` event.

Samples serialise to plain row dicts (:meth:`TimeSeriesSampler.rows`),
export as JSONL (full detail, including the per-node and per-NCL
vectors) or CSV (scalar columns only), and merge across the parallel
runner's workers by tagging each run's rows with its seed
(:func:`merge_timeseries`), so ``workers > 1`` loses nothing relative
to a serial sweep.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

__all__ = [
    "TimeSeriesSample",
    "TimeSeriesSampler",
    "NullTimeSeriesSampler",
    "NULL_SAMPLER",
    "merge_timeseries",
    "summarize_timeseries",
    "write_jsonl",
    "write_csv",
]

#: scalar columns, in export order (vectors travel only through JSONL)
SCALAR_COLUMNS: Tuple[str, ...] = (
    "time",
    "live_items",
    "cached_copies",
    "copies_per_item",
    "queries_issued",
    "queries_satisfied",
    "pending_queries",
    "running_ratio",
    "cache_lookups",
    "cache_hits",
    "cache_hit_ratio",
    "mean_buffer_occupancy",
    "max_buffer_occupancy",
    "delay_p50",
    "delay_p95",
    "rss_mb",
    "py_heap_mb",
)


@dataclass(frozen=True)
class TimeSeriesSample:
    """One periodic snapshot of the running system."""

    time: float
    live_items: int
    cached_copies: int
    queries_issued: int
    queries_satisfied: int
    pending_queries: int
    cache_lookups: int
    cache_hits: int
    #: buffer occupancy fraction per node, indexed by node id
    node_occupancy: Tuple[float, ...] = ()
    #: cached item count per NCL central node (empty for NCL-less schemes)
    ncl_load: Mapping[int, int] = field(default_factory=dict)
    #: running P² delay-quantile estimates (NaN until deliveries arrive)
    delay_p50: float = float("nan")
    delay_p95: float = float("nan")
    #: memory telemetry (NaN/empty unless the run sampled with
    #: ``mem_profile``; process counters, so outside any frozen result)
    rss_mb: float = float("nan")
    py_heap_mb: float = float("nan")
    mem_top: str = ""

    @property
    def copies_per_item(self) -> float:
        return self.cached_copies / self.live_items if self.live_items else 0.0

    @property
    def running_ratio(self) -> float:
        return (
            self.queries_satisfied / self.queries_issued if self.queries_issued else 0.0
        )

    @property
    def cache_hit_ratio(self) -> float:
        return self.cache_hits / self.cache_lookups if self.cache_lookups else 0.0

    @property
    def mean_buffer_occupancy(self) -> float:
        occ = self.node_occupancy
        return sum(occ) / len(occ) if occ else 0.0

    @property
    def max_buffer_occupancy(self) -> float:
        return max(self.node_occupancy) if self.node_occupancy else 0.0

    def as_row(self) -> Dict[str, object]:
        """Flat JSON-ready dict: scalar columns plus the two vectors.

        NaN-valued columns (quantiles before any delivery) export as
        ``None`` — JSON ``null`` round-trips, bare NaN does not.
        """
        row: Dict[str, object] = {}
        for name in SCALAR_COLUMNS:
            value = getattr(self, name)
            if isinstance(value, float) and math.isnan(value):
                value = None
            row[name] = value
        row["node_occupancy"] = list(self.node_occupancy)
        row["ncl_load"] = {str(k): v for k, v in sorted(self.ncl_load.items())}
        row["mem_top"] = self.mem_top
        return row


class TimeSeriesSampler:
    """Accumulates :class:`TimeSeriesSample`\\ s in time order."""

    #: the simulator skips sample assembly entirely when this is False
    enabled: bool = True

    def __init__(self) -> None:
        self._samples: List[TimeSeriesSample] = []

    def record(self, sample: TimeSeriesSample) -> None:
        if self._samples and sample.time < self._samples[-1].time:
            raise ValueError("time-series samples must be time-ordered")
        self._samples.append(sample)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> Sequence[TimeSeriesSample]:
        return tuple(self._samples)

    def rows(self) -> List[Dict[str, object]]:
        """All samples as JSON-ready row dicts."""
        return [sample.as_row() for sample in self._samples]


class NullTimeSeriesSampler(TimeSeriesSampler):
    """Sampling off: recording a sample is a bug (sites guard on ``enabled``)."""

    enabled = False


#: Shared default — stateless in practice, so one instance serves the process.
NULL_SAMPLER = NullTimeSeriesSampler()


# --- export ----------------------------------------------------------------


def write_jsonl(rows: Iterable[Mapping[str, object]], path: str) -> None:
    """One JSON object per line, full detail (vectors included)."""
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True) + "\n")


def write_csv(rows: Iterable[Mapping[str, object]], path: str) -> None:
    """Scalar columns only (CSV cannot carry the per-node/per-NCL vectors).

    A ``seed`` column is included when present (merged multi-run rows).
    """
    rows = list(rows)
    columns: List[str] = list(SCALAR_COLUMNS)
    if any("seed" in row for row in rows):
        columns = ["seed"] + columns
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)


# --- merging and summary ---------------------------------------------------


def merge_timeseries(
    per_run: Iterable[Tuple[int, Iterable[Mapping[str, object]]]]
) -> List[Dict[str, object]]:
    """Combine rows from several runs, tagging each row with its seed.

    Rows keep their within-run time order; runs are ordered by seed so
    the merge is deterministic regardless of worker completion order.
    """
    merged: List[Dict[str, object]] = []
    for seed, rows in sorted(per_run, key=lambda item: item[0]):
        for row in rows:
            tagged = dict(row)
            tagged["seed"] = seed
            merged.append(tagged)
    return merged


def summarize_timeseries(
    rows: Iterable[Mapping[str, object]]
) -> Dict[str, Dict[str, float]]:
    """Per-column min/mean/max/last over all rows (for the run report)."""
    rows = list(rows)
    summary: Dict[str, Dict[str, float]] = {}
    for name in SCALAR_COLUMNS:
        values = [
            value
            for row in rows
            if row.get(name) is not None
            for value in (float(row[name]),)
            if not math.isnan(value)
        ]
        if not values:
            continue
        summary[name] = {
            "min": min(values),
            "mean": sum(values) / len(values),
            "max": max(values),
            "last": values[-1],
        }
    return summary
