"""Model-fidelity diagnostics: empirical behaviour vs analytical model.

The caching scheme's decisions all flow from the analytical model of
Sec. III–V: exponential inter-contact times, hypoexponential path
delivery probabilities (Eq. 1–2), the probabilistic-response sigmoid
(Eq. 4), and Poisson request-rate popularity estimates (Eq. 5–6).  This
module measures how far a *realized* run drifted from each assumption:

* **inter-contact exponentiality** — per-pair KS distance against the
  fitted λᵢⱼ (delegates to :mod:`repro.traces.analysis`);
* **delivery calibration** — for every emitted response copy, the
  hypoexponential path weight from responder to requester over the
  remaining time constraint is a *predicted* delivery probability; the
  realized in-constraint delivery is the outcome.  Binning predictions
  and comparing observed frequencies yields a reliability (calibration)
  curve plus a Brier score;
* **response calibration** — Eq. 4's sigmoid probability vs the realized
  respond/decline decision it parameterised;
* **popularity calibration** — the Eq. 5–6 estimate ŵᵢ (replayed from
  the query stream with the scheme's own estimator) vs whether another
  request actually arrived before the data expired;
* **NCL cache-load balance** — completed push chains per central node;
  a high coefficient of variation means the NCL selection metric is
  concentrating load.

Every section degrades gracefully: sections whose inputs are missing
(no contact trace for a bare ``trace.jsonl``, too few samples) are
skipped rather than guessed at, and warnings only fire above a minimum
sample size.  Thresholds are loose *plausibility* gates (DESIGN.md §7),
not hypothesis tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.mathutils.poisson import RateEstimator, poisson_probability_at_least_one
from repro.obs.causality import CausalityIndex
from repro.obs.derive import delivery_in_constraint
from repro.obs.events import TraceEvent, TraceEventKind

if TYPE_CHECKING:  # the graph/traces layers import repro.obs.profile at
    # init time, so importing them here at module scope would be circular
    from repro.traces.analysis import FitReport
    from repro.traces.contact import ContactTrace

__all__ = [
    "CalibrationBin",
    "Calibration",
    "calibrate",
    "delivery_calibration",
    "response_calibration",
    "popularity_calibration",
    "NCLLoadBalance",
    "ncl_load_balance",
    "FidelityThresholds",
    "FidelityReport",
    "assess_fidelity",
    "override_thresholds",
]


@dataclass(frozen=True)
class CalibrationBin:
    """One predicted-probability bin of a reliability curve."""

    lo: float
    hi: float
    count: int
    mean_predicted: float
    observed_rate: float

    @property
    def gap(self) -> float:
        return abs(self.observed_rate - self.mean_predicted)


@dataclass(frozen=True)
class Calibration:
    """Reliability curve + Brier score of (predicted, realized) pairs."""

    samples: int
    brier: float
    bins: Tuple[CalibrationBin, ...]
    #: largest |observed − predicted| over bins with enough samples
    max_gap: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "samples": self.samples,
            "brier": self.brier,
            "max_gap": self.max_gap,
            "bins": [
                {
                    "range": [b.lo, b.hi],
                    "count": b.count,
                    "mean_predicted": b.mean_predicted,
                    "observed_rate": b.observed_rate,
                }
                for b in self.bins
            ],
        }


def calibrate(
    pairs: Sequence[Tuple[float, bool]],
    num_bins: int = 10,
    min_bin_count: int = 5,
) -> Optional[Calibration]:
    """Bin (predicted probability, realized outcome) pairs.

    Equal-width bins on [0, 1]; ``max_gap`` ignores bins with fewer than
    *min_bin_count* samples (their observed rates are noise).  ``None``
    for an empty sample.
    """
    if not pairs:
        return None
    predicted = np.asarray([p for p, _ in pairs], dtype=float)
    realized = np.asarray([1.0 if o else 0.0 for _, o in pairs])
    brier = float(np.mean((predicted - realized) ** 2))
    edges = np.linspace(0.0, 1.0, num_bins + 1)
    indices = np.clip(np.digitize(predicted, edges[1:-1]), 0, num_bins - 1)
    bins: List[CalibrationBin] = []
    gaps: List[float] = []
    for b in range(num_bins):
        mask = indices == b
        count = int(mask.sum())
        if count == 0:
            continue
        bin_ = CalibrationBin(
            lo=float(edges[b]),
            hi=float(edges[b + 1]),
            count=count,
            mean_predicted=float(predicted[mask].mean()),
            observed_rate=float(realized[mask].mean()),
        )
        bins.append(bin_)
        if count >= min_bin_count:
            gaps.append(bin_.gap)
    return Calibration(
        samples=len(pairs),
        brier=brier,
        bins=tuple(bins),
        max_gap=max(gaps) if gaps else 0.0,
    )


def delivery_calibration(
    causality: CausalityIndex,
    contact_trace: "ContactTrace",
    num_bins: int = 10,
) -> Optional[Calibration]:
    """Hypoexponential path weight (Eq. 2) vs realized delivery.

    For every emitted response copy: the predicted probability that a
    copy travelling the expected-delay shortest path from responder to
    requester arrives within the query's remaining time constraint,
    against whether it actually did.  Rates come from the whole trace
    (time-averaged λᵢⱼ, Sec. III-B) — the same model the router's weight
    cache serves, via the same cache.  Censored copies (constraint still
    open at trace end) and zero-hop self-service copies are skipped.
    """
    from repro.graph.contact_graph import ContactGraph
    from repro.graph.weight_cache import shared_weight_cache
    from repro.mathutils.hypoexponential import path_delivery_probability

    graph = ContactGraph.from_trace(contact_trace)
    cache = shared_weight_cache()
    pairs: List[Tuple[float, bool]] = []
    for query in causality.queries.values():
        if query.expires_at is None or query.requester is None:
            continue
        if query.expires_at > causality.trace_end:
            continue  # outcome censored by trace truncation
        for copy in query.copies:
            if copy.self_service or copy.emitted_at is None:
                continue
            remaining = query.expires_at - copy.emitted_at
            if remaining <= 0:
                continue
            if not (0 <= copy.responder < graph.num_nodes):
                continue
            if not (0 <= query.requester < graph.num_nodes):
                continue
            if copy.responder == query.requester:
                predicted = 1.0
            else:
                rates = cache.rate_tuples(graph, copy.responder, remaining).get(
                    query.requester
                )
                predicted = (
                    path_delivery_probability(rates, remaining)
                    if rates is not None
                    else 0.0
                )
            realized = copy.delivered_at is not None and delivery_in_constraint(
                copy.delivered_at, query.expires_at
            )
            pairs.append((predicted, realized))
    return calibrate(pairs, num_bins=num_bins)


def response_calibration(
    causality: CausalityIndex, num_bins: int = 10
) -> Optional[Calibration]:
    """Eq. 4 sigmoid probability vs the realized respond/decline draw.

    Well-calibrated by construction when decisions are Bernoulli draws
    from the recorded probability — a drift here means the decision path
    stopped honouring its own sigmoid (or a seeding/replay bug).
    """
    pairs = [
        (probability, respond)
        for query in causality.queries.values()
        for _, _, respond, probability in query.decisions
        if not math.isnan(probability)
    ]
    return calibrate(pairs, num_bins=num_bins)


def popularity_calibration(
    events: Iterable[TraceEvent],
    causality: CausalityIndex,
    num_bins: int = 10,
) -> Optional[Calibration]:
    """Eq. 5–6 popularity estimate vs realized future demand.

    Replays each data item's query stream through the scheme's own
    :class:`RateEstimator` (``first_event`` anchor, exactly the
    estimator :mod:`repro.core.popularity` wraps): after the k-th
    request at t_k the model predicts
    ``P[at least one more request before expiry] = 1 − e^{−λ̂·(t_e − t_k)}``,
    which is scored against whether a later request actually arrived in
    time.  Items whose lifetime outruns the trace are censored and
    skipped.
    """
    requests: Dict[int, List[float]] = {}
    for event in events:
        if event.kind is TraceEventKind.QUERY_CREATED and event.data_id is not None:
            requests.setdefault(event.data_id, []).append(event.time)
    pairs: List[Tuple[float, bool]] = []
    for data_id, times in requests.items():
        tree = causality.pushes.get(data_id)
        expires_at = tree.expires_at if tree is not None else None
        if expires_at is None or expires_at > causality.trace_end:
            continue  # lifetime unknown or censored
        times = sorted(times)
        estimator = RateEstimator(anchor="first_event")
        for k, t_k in enumerate(times):
            estimator.record(t_k)
            horizon = expires_at - t_k
            if horizon <= 0:
                continue
            rate = estimator.rate(t_k)
            if rate <= 0:
                continue  # fewer than two distinct request times so far
            predicted = poisson_probability_at_least_one(rate, horizon)
            # "later" is stream order, not strict timestamp order: the
            # workload issues query batches at identical epochs, and a
            # co-batch request is still a subsequent arrival.
            realized = any(t <= expires_at for t in times[k + 1 :])
            pairs.append((predicted, realized))
    return calibrate(pairs, num_bins=num_bins)


@dataclass(frozen=True)
class NCLLoadBalance:
    """Completed push chains per central node."""

    counts: Dict[int, int]
    coefficient_of_variation: float
    max_share: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "per_central": {str(k): v for k, v in sorted(self.counts.items())},
            "cv": self.coefficient_of_variation,
            "max_share": self.max_share,
        }


def ncl_load_balance(causality: CausalityIndex) -> Optional[NCLLoadBalance]:
    """How evenly the push traffic spread over the NCLs."""
    counts: Dict[int, int] = {}
    for tree in causality.pushes.values():
        for chain in tree.chains:
            if chain.completed_at is not None:
                counts[chain.target_central] = counts.get(chain.target_central, 0) + 1
    if not counts:
        return None
    values = np.asarray(list(counts.values()), dtype=float)
    mean = float(values.mean())
    cv = float(values.std() / mean) if mean > 0 else 0.0
    return NCLLoadBalance(
        counts=counts,
        coefficient_of_variation=cv,
        max_share=float(values.max() / values.sum()),
    )


@dataclass(frozen=True)
class FidelityThresholds:
    """Warn gates for :func:`assess_fidelity` (all overridable from CLI).

    Defaults were pinned against the default synthetic scenario (whose
    pair processes are exact homogeneous Poisson, so every section sits
    comfortably inside them) and chosen loose enough that model-faithful
    runs never warn.  Measured there across seeds: median KS 0.12,
    delivery Brier 0.29–0.35 (Eq. 2 is an idealized upper bound, see
    :func:`delivery_calibration`), response gap ≤ 0.16, popularity gap
    ≤ 0.16 at ≥ 30 samples, load CV ≤ 0.43 — see DESIGN.md §7.
    """

    #: inter-contact gaps: median per-pair KS distance vs fitted Exp(λᵢⱼ).
    #: Fitted-parameter KS on pairs with only a handful of gaps biases
    #: high (scaled-down presets measure ~0.22 on near-exponential
    #: pairs), so the gate sits above that but well under the ~0.33 a
    #: genuinely heavy-tailed (Pareto) gap process produces.
    max_median_ks: float = 0.25
    #: delivery calibration Brier score (0 = perfect, 0.25 = coin toss)
    max_delivery_brier: float = 0.45
    #: reliability-curve gap |observed − predicted| for any calibration
    max_calibration_gap: float = 0.25
    #: NCL load coefficient of variation
    max_load_cv: float = 1.5
    #: sections with fewer samples than this never warn
    min_samples: int = 30


@dataclass
class FidelityReport:
    """All fidelity sections of one run, plus the warnings they tripped."""

    intercontact: Optional[FitReport] = None
    delivery: Optional[Calibration] = None
    response: Optional[Calibration] = None
    popularity: Optional[Calibration] = None
    load: Optional[NCLLoadBalance] = None
    thresholds: FidelityThresholds = field(default_factory=FidelityThresholds)
    warnings: List[str] = field(default_factory=list)


def assess_fidelity(
    events: Iterable[TraceEvent],
    causality: CausalityIndex,
    contact_trace: Optional[ContactTrace] = None,
    thresholds: Optional[FidelityThresholds] = None,
) -> FidelityReport:
    """Run every fidelity section the inputs allow and collect warnings.

    *contact_trace* unlocks the inter-contact and delivery-calibration
    sections (a bare ``trace.jsonl`` has no mobility information); the
    other sections need only the event stream.
    """
    events = list(events)
    gates = thresholds if thresholds is not None else FidelityThresholds()
    report = FidelityReport(thresholds=gates)

    if contact_trace is not None:
        from repro.traces.analysis import exponential_fit_report

        report.intercontact = exponential_fit_report(contact_trace)
        report.delivery = delivery_calibration(causality, contact_trace)
    report.response = response_calibration(causality)
    report.popularity = popularity_calibration(events, causality)
    report.load = ncl_load_balance(causality)

    inter = report.intercontact
    if (
        inter is not None
        and inter.pairs_fitted >= 3
        and not math.isnan(inter.median_ks)
        and inter.median_ks > gates.max_median_ks
    ):
        report.warnings.append(
            f"inter-contact times deviate from the exponential model: "
            f"median KS {inter.median_ks:.3f} > {gates.max_median_ks:.3f} "
            f"over {inter.pairs_fitted} pairs"
        )
    delivery = report.delivery
    if (
        delivery is not None
        and delivery.samples >= gates.min_samples
        and delivery.brier > gates.max_delivery_brier
    ):
        # Gated on Brier alone: Eq. 2 is an idealized upper bound (it
        # assumes every contact along the path is usable), so the curve
        # sits above the realized frequencies by construction and a bin
        # gap would flag healthy runs.
        report.warnings.append(
            f"delivery predictions uninformative: Brier "
            f"{delivery.brier:.3f} > {gates.max_delivery_brier:.3f}"
        )
    for name, calibration in (
        ("response", report.response),
        ("popularity", report.popularity),
    ):
        if calibration is None or calibration.samples < gates.min_samples:
            continue
        if calibration.max_gap > gates.max_calibration_gap:
            report.warnings.append(
                f"{name} calibration drifts from the model: max bin gap "
                f"{calibration.max_gap:.3f} > {gates.max_calibration_gap:.3f}"
            )
    load = report.load
    if (
        load is not None
        and sum(load.counts.values()) >= gates.min_samples
        and load.coefficient_of_variation > gates.max_load_cv
    ):
        report.warnings.append(
            f"NCL cache load imbalanced: CV "
            f"{load.coefficient_of_variation:.3f} > {gates.max_load_cv:.3f}"
        )
    return report


def override_thresholds(
    base: FidelityThresholds, **overrides: float
) -> FidelityThresholds:
    """A copy of *base* with the non-``None`` keyword overrides applied."""
    cleaned = {k: v for k, v in overrides.items() if v is not None}
    return replace(base, **cleaned) if cleaned else base
