"""Declarative service-level objectives over live health snapshots.

An :class:`SLORule` names one numeric field of a
:class:`repro.obs.health.HealthSnapshot`, a direction (``>=`` for
floors, ``<=`` for ceilings), a target, and a *sustain* count: the rule
is only **violated** after the target has been breached for that many
consecutive windows, so a single noisy window never pages.  The
:class:`SLOEngine` evaluates every registered rule against each
snapshot, tracks per-rule breach streaks, and reports edge-triggered
:class:`SLOTransition` records — ``slo.violated`` when a breach streak
reaches the sustain threshold, ``slo.recovered`` on the first healthy
window afterwards — which the health monitor also emits as trace
events through the run's recorder.

Evaluation is a pure function of the snapshot stream: no wall clock, no
RNG, so serve-mode SLO verdicts inherit the repo's serial == workers=N
bitwise reproducibility contract.

Rules parse from compact CLI specs::

    success_ratio>=0.25        # floor, violated after 1 breaching window
    delay_p95<=86400:3         # ceiling, sustained for 3 windows
    availability               # a named preset from SLO_PRESETS

``scripts/check_slo_rules.py`` lints every registered preset against
the actual :class:`HealthSnapshot` fields (pytest-wrapped), so a rule
can never silently reference a metric that does not exist.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.events import TraceEvent, TraceEventKind

__all__ = [
    "SLORule",
    "SLOTransition",
    "SLOEngine",
    "SLO_PRESETS",
    "parse_slo_rule",
    "rules_to_config",
    "rules_from_config",
]

#: comparison directions a rule may use (value OP target == healthy)
_OPS = (">=", "<=")


@dataclass(frozen=True)
class SLORule:
    """One objective: ``<field> <op> <target>`` sustained over windows."""

    name: str
    field: str
    op: str       # ">=" (floor) or "<=" (ceiling)
    target: float
    sustain: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("SLO rule needs a name")
        if not self.field:
            raise ConfigurationError(f"SLO rule {self.name!r} needs a field")
        if self.op not in _OPS:
            raise ConfigurationError(
                f"SLO rule {self.name!r}: op must be one of {_OPS}, got {self.op!r}"
            )
        if self.sustain < 1:
            raise ConfigurationError(
                f"SLO rule {self.name!r}: sustain must be >= 1"
            )
        if math.isnan(self.target):
            raise ConfigurationError(f"SLO rule {self.name!r}: target is NaN")

    def healthy(self, value: float) -> bool:
        """Whether *value* meets the objective."""
        return value >= self.target if self.op == ">=" else value <= self.target

    @property
    def spec(self) -> str:
        """The compact ``field>=target:sustain`` form (parse round-trips)."""
        text = f"{self.field}{self.op}{self.target!r}"
        return f"{text}:{self.sustain}" if self.sustain != 1 else text

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "field": self.field,
            "op": self.op,
            "target": self.target,
            "sustain": self.sustain,
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "SLORule":
        return cls(
            name=str(record["name"]),
            field=str(record["field"]),
            op=str(record["op"]),
            target=float(record["target"]),
            sustain=int(record.get("sustain", 1)),
        )


#: Named starting-point objectives for ``repro serve --slo <name>``.
#: Targets assume the paper-scale workload (delays in seconds); tune per
#: deployment.  The lint in ``scripts/check_slo_rules.py`` pins every
#: preset to a real HealthSnapshot field.
SLO_PRESETS: Dict[str, SLORule] = {
    "availability": SLORule(
        "availability", "success_ratio", ">=", 0.25, sustain=3
    ),
    "latency": SLORule("latency", "delay_p95", "<=", 24 * 3600.0, sustain=3),
    "backlog": SLORule("backlog", "backlog", "<=", 10_000.0, sustain=3),
    "hit_ratio": SLORule("hit_ratio", "cache_hit_ratio", ">=", 0.05, sustain=5),
    # Peak-RSS ceiling matching the documented sim_large end-to-end
    # budget; rss_mb is NaN on unprofiled runs, which carries no
    # evidence, so the rule only bites under --mem-profile.
    "memory": SLORule("memory", "rss_mb", "<=", 24_000.0, sustain=3),
}


def parse_slo_rule(text: str) -> SLORule:
    """Parse a CLI spec (``field>=target[:sustain]``) or a preset name."""
    text = text.strip()
    if text in SLO_PRESETS:
        return SLO_PRESETS[text]
    for op in _OPS:
        if op in text:
            field, _, rest = text.partition(op)
            target_text, _, sustain_text = rest.partition(":")
            try:
                target = float(target_text)
                sustain = int(sustain_text) if sustain_text else 1
            except ValueError:
                raise ConfigurationError(
                    f"cannot parse SLO spec {text!r}: expected "
                    "field>=NUMBER[:SUSTAIN] or field<=NUMBER[:SUSTAIN]"
                ) from None
            field = field.strip()
            return SLORule(
                name=field + op + target_text.strip(),
                field=field,
                op=op,
                target=target,
                sustain=sustain,
            )
    raise ConfigurationError(
        f"unknown SLO {text!r}: not a preset ({sorted(SLO_PRESETS)}) and "
        "not a field>=target / field<=target spec"
    )


def rules_to_config(rules: Sequence[SLORule]) -> List[Dict[str, Any]]:
    """JSON-ready rule list (stamped into provenance manifests)."""
    return [rule.to_dict() for rule in rules]


def rules_from_config(records: Sequence[Mapping[str, Any]]) -> Tuple[SLORule, ...]:
    """Inverse of :func:`rules_to_config`."""
    return tuple(SLORule.from_dict(record) for record in records)


@dataclass(frozen=True)
class SLOTransition:
    """One edge of a rule's state machine (violated ↔ recovered)."""

    time: float
    rule: str
    kind: str      # "slo.violated" / "slo.recovered"
    field: str
    value: float
    target: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "t": self.time,
            "rule": self.rule,
            "field": self.field,
            "value": self.value,
            "target": self.target,
        }


class SLOEngine:
    """Evaluates a rule set against each health snapshot in order."""

    def __init__(self, rules: Sequence[SLORule] = ()):
        names = [rule.name for rule in rules]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise ConfigurationError(f"duplicate SLO rule name(s): {duplicates}")
        self.rules: Tuple[SLORule, ...] = tuple(rules)
        self._streak: Dict[str, int] = {rule.name: 0 for rule in self.rules}
        self._violated: Dict[str, bool] = {rule.name: False for rule in self.rules}
        self._transitions: List[SLOTransition] = []

    @property
    def transitions(self) -> Tuple[SLOTransition, ...]:
        """Every edge observed so far, in evaluation order."""
        return tuple(self._transitions)

    def violated_rules(self) -> Tuple[str, ...]:
        """Names of the rules currently in the violated state."""
        return tuple(
            rule.name for rule in self.rules if self._violated[rule.name]
        )

    def evaluate(self, snapshot: Any, recorder: Any = None) -> List[SLOTransition]:
        """Feed one snapshot; returns the transitions it triggered.

        A NaN field value (e.g. a ratio over an idle window) carries no
        evidence either way: the rule's streak and state are left
        untouched.  When *recorder* is an enabled trace recorder, each
        transition is also emitted as an ``slo.violated`` /
        ``slo.recovered`` trace event at the snapshot's window end.
        """
        fired: List[SLOTransition] = []
        for rule in self.rules:
            value = float(getattr(snapshot, rule.field))
            if math.isnan(value):
                continue
            if rule.healthy(value):
                self._streak[rule.name] = 0
                if self._violated[rule.name]:
                    self._violated[rule.name] = False
                    fired.append(
                        self._transition(snapshot.end, rule, "slo.recovered", value)
                    )
            else:
                self._streak[rule.name] += 1
                if (
                    self._streak[rule.name] >= rule.sustain
                    and not self._violated[rule.name]
                ):
                    self._violated[rule.name] = True
                    fired.append(
                        self._transition(snapshot.end, rule, "slo.violated", value)
                    )
        self._transitions.extend(fired)
        if recorder is not None and recorder.enabled:
            for transition in fired:
                recorder.emit(
                    TraceEvent(
                        time=transition.time,
                        kind=TraceEventKind(transition.kind),
                        attrs={
                            "rule": transition.rule,
                            "field": transition.field,
                            "op": rule_by_name(self.rules, transition.rule).op,
                            "target": transition.target,
                            "value": transition.value,
                        },
                    )
                )
        return fired

    @staticmethod
    def _transition(
        time: float, rule: SLORule, kind: str, value: float
    ) -> SLOTransition:
        return SLOTransition(
            time=time,
            rule=rule.name,
            kind=kind,
            field=rule.field,
            value=value,
            target=rule.target,
        )


def rule_by_name(rules: Sequence[SLORule], name: str) -> SLORule:
    """The rule called *name* (rules are unique by construction)."""
    for rule in rules:
        if rule.name == name:
            return rule
    raise KeyError(name)
