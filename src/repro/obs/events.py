"""Trace event records — the vocabulary of the observability layer.

One :class:`TraceEvent` is one step of a data item's or query's
lifecycle.  Events are flat (time, kind, optional node/data/query ids,
plus a free-form ``attrs`` mapping) so they serialise losslessly to one
JSON object per line and back; Python's ``json`` round-trips floats
exactly (``repr``-based), which is what lets the trace-derived metrics
match the live counters bit for bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Mapping, Optional

__all__ = ["TraceEventKind", "TraceEvent"]


class TraceEventKind(str, Enum):
    """Lifecycle stages recorded by the hooks (see DESIGN.md §7)."""

    # data lifecycle
    DATA_GENERATED = "data_generated"        # source created an item
    PUSH_COMPLETED = "push_completed"        # a push copy reached its NCL
    DATA_EXPIRED = "data_expired"            # an item aged out at a node
    PUSH_FORWARDED = "push.forwarded"        # a push copy moved to a new relay
    # query lifecycle
    QUERY_CREATED = "query_created"          # requester issued the query
    QUERY_OBSERVED = "query_observed"        # a node recorded the query
    RESPONSE_DECIDED = "response_decided"    # Sec. V-C probabilistic decision
    RESPONSE_EMITTED = "response_emitted"    # a holder emitted a response copy
    RESPONSE_FORWARDED = "response_forwarded"  # a relay took over a response
    RESPONSE_DELIVERED = "response_delivered"  # a copy reached the requester
    QUERY_SATISFIED = "query_satisfied"      # first in-constraint delivery
    DELIVERY_DUPLICATE = "delivery.duplicate"  # redundant copy, already satisfied
    DELIVERY_LATE = "delivery.late"          # copy arrived past the constraint
    # network-wide bookkeeping
    ROUTE_DECISION = "route_decision"        # a router's forwarding verdict
    EXCHANGE = "exchange"                    # Sec. V-D pairwise replacement
    SAMPLE = "sample"                        # periodic caching-overhead sample
    # network dynamics (churn, failure, NCL re-election)
    NODE_JOINED = "node.joined"              # a node (re)joined the network
    NODE_LEFT = "node.left"                  # a node departed gracefully
    NODE_FAILED = "node.failed"              # a node crashed, losing its state
    NCL_REELECTED = "ncl.reelected"          # the top-K central set changed
    CACHE_MIGRATED = "cache.migrated"        # a copy re-pushed toward new NCLs
    # live health telemetry (serve-mode SLOs and anomaly detection)
    SLO_VIOLATED = "slo.violated"            # a rule breached for its sustain window
    SLO_RECOVERED = "slo.recovered"          # a previously violated rule is healthy
    HEALTH_ANOMALY = "health.anomaly"        # EWMA drift / CUSUM change-point fired
    WORKLOAD_FLASH_CROWD_WINDOW = "workload.flash_crowd_window"  # one-time surge-window announcement
    # memory-footprint telemetry (per-subsystem attribution sampling)
    MEMORY_SAMPLED = "memory.sampled"        # periodic RSS/heap/breakdown sample


@dataclass(frozen=True)
class TraceEvent:
    """One span-like record of the run's event stream."""

    time: float
    kind: TraceEventKind
    node: Optional[int] = None
    data_id: Optional[int] = None
    query_id: Optional[int] = None
    attrs: Mapping[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        """One compact JSON line (stable key order for diffability)."""
        record: Dict[str, Any] = {"t": self.time, "kind": self.kind.value}
        if self.node is not None:
            record["node"] = self.node
        if self.data_id is not None:
            record["data"] = self.data_id
        if self.query_id is not None:
            record["query"] = self.query_id
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return json.dumps(record, separators=(",", ":"), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        record = json.loads(line)
        return cls(
            time=float(record["t"]),
            kind=TraceEventKind(record["kind"]),
            node=record.get("node"),
            data_id=record.get("data"),
            query_id=record.get("query"),
            attrs=record.get("attrs", {}),
        )
