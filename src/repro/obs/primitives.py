"""Counter/histogram primitives for near-zero-overhead instrumentation.

These are the building blocks for aggregate observability that is *on*
even when full event tracing is off: a :class:`Counter` increment is one
integer add, a :class:`Histogram` observation is a bisect plus three
float ops.  A :class:`MetricsRegistry` groups them for reporting.

They deliberately mirror the Prometheus data model (monotone counters,
cumulative bucket histograms) so a future exporter can serialise them
directly.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        """Fold another counter's total into this one (worker merge)."""
        self.value += other.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Cumulative-bucket histogram with exact count/sum/min/max.

    ``bounds`` are the upper edges of the finite buckets; observations
    above the last bound land in the implicit +inf bucket.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    #: default edges suited to delays in seconds across trace scales
    DEFAULT_BOUNDS: Tuple[float, ...] = (
        1.0, 10.0, 60.0, 600.0, 3600.0, 6 * 3600.0, 24 * 3600.0, 7 * 24 * 3600.0
    )

    def __init__(self, name: str, bounds: Optional[Sequence[float]] = None):
        edges = tuple(bounds) if bounds is not None else self.DEFAULT_BOUNDS
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError("histogram bounds must be strictly increasing")
        self.name = name
        self.bounds = edges
        self.bucket_counts: List[int] = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate: the upper edge of the
        bucket holding the q-th observation, clamped into the exact
        [min, max] of what was observed.

        The clamp resolves the boundary cases exactly: q=0 is the
        minimum, q=1 the maximum (never +inf), and a single-observation
        histogram returns that observation for every q.  An empty
        histogram has no quantiles and returns NaN.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return float("nan")
        if q == 0.0:
            return self.min
        rank = q * self.count
        cumulative = 0
        for edge, bucket in zip(self.bounds, self.bucket_counts):
            cumulative += bucket
            if cumulative >= rank:
                return min(max(edge, self.min), self.max)
        return self.max

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        Requires identical bucket bounds (same instrument recorded in
        two worker processes).
        """
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        for i, bucket in enumerate(other.bucket_counts):
            self.bucket_counts[i] += bucket
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.min if self.count else float("nan"),
            "max": self.max if self.count else float("nan"),
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.3g})"


class MetricsRegistry:
    """Named collection of counters and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, bounds)
        return histogram

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one.

        Instruments present only in *other* are adopted wholesale (as
        fresh copies); shared ones merge additively.  Used to combine
        per-worker registries into one report.
        """
        for name, counter in other._counters.items():
            self.counter(name).merge(counter)
        for name, histogram in other._histograms.items():
            self.histogram(name, histogram.bounds).merge(histogram)

    def snapshot(self) -> Dict[str, object]:
        """Flat report of every instrument's current state."""
        report: Dict[str, object] = {}
        for name, counter in sorted(self._counters.items()):
            report[name] = counter.value
        for name, histogram in sorted(self._histograms.items()):
            report[name] = histogram.summary()
        return report
