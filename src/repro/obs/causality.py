"""Causal reconstruction of push trees and query response DAGs.

The lifecycle trace (PR 2) records *what* happened; this module recovers
*why*: for every data item, the custody chains its push copies took
toward their NCLs (``data_generated`` → ``push.forwarded``* →
``push_completed``), and for every query, the response DAG from creation
through observation, the Sec. V-C response decisions, per-copy relay
custody, and delivery (``query_created`` → ``query_observed`` →
``response_decided``/``emitted``/``forwarded``/``delivered``).

Two properties make the reconstruction exact rather than heuristic:

* response events carry the bundle's process-unique ``sequence`` (one
  physical copy = one sequence), so forwards and deliveries attach to
  the right copy even when several responders serve one query;
* push bundles are unique per ``(data_id, target_central)`` at any one
  carrier, so a ``push.forwarded`` hop matches the chain whose custody
  sits at its ``carrier``.

Older traces without ``sequence`` attrs degrade to custody-based
matching (flagged ``ambiguous`` when more than one copy qualifies).

Chains crossing network-dynamics events terminate cleanly: a
``node.failed``/``node.left`` at the custody holder breaks the chain and
tags the break reason; a ``cache.migrated`` event opens a new
migration-origin chain toward the new central.  Outcome classification
shares :func:`repro.obs.derive.classify_outcome` and
:func:`repro.obs.derive.delivery_in_constraint` with the audit layer, so
boundary deliveries and truncated traces can never classify differently
between the two paths — :func:`check_causal_consistency` additionally
proves, event for event, that the causal chains reproduce the derived
(and therefore the live collector's) metrics bit-exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import TraceConsistencyError
from repro.obs.derive import (
    classify_outcome,
    delivery_in_constraint,
    derive_metrics,
)
from repro.obs.events import TraceEvent, TraceEventKind

__all__ = [
    "HANDLED_KINDS",
    "IGNORED_KINDS",
    "Hop",
    "ResponseCopy",
    "QueryCausality",
    "PushChain",
    "PushTree",
    "CausalityIndex",
    "build_causality",
    "check_causal_consistency",
    "assert_causal_consistency",
    "summarize_causality",
    "render_query_timeline",
    "render_push_timeline",
]

#: Event kinds the causal reconstruction dispatches on.  Together with
#: :data:`IGNORED_KINDS` this must cover every :class:`TraceEventKind`
#: member — enforced by ``scripts/check_trace_kinds.py`` — so a newly
#: added event kind can never be dropped silently by the diagnose parser.
HANDLED_KINDS = frozenset(
    {
        TraceEventKind.DATA_GENERATED,
        TraceEventKind.PUSH_FORWARDED,
        TraceEventKind.PUSH_COMPLETED,
        TraceEventKind.DATA_EXPIRED,
        TraceEventKind.QUERY_CREATED,
        TraceEventKind.QUERY_OBSERVED,
        TraceEventKind.RESPONSE_DECIDED,
        TraceEventKind.RESPONSE_EMITTED,
        TraceEventKind.RESPONSE_FORWARDED,
        TraceEventKind.RESPONSE_DELIVERED,
        TraceEventKind.QUERY_SATISFIED,
        TraceEventKind.NODE_FAILED,
        TraceEventKind.NODE_LEFT,
        TraceEventKind.CACHE_MIGRATED,
    }
)

#: Kinds that carry no custody information: router verdicts, buffer
#: exchanges (data placement, not bundle custody), periodic samples,
#: committee re-elections (the migration events that follow are what
#: move copies), node (re)joins (joining cannot break a chain), the
#: delivery-classification audit events (the custody chain already
#: carries the RESPONSE_DELIVERED hop; duplicate/late only label it),
#: and the live-health annotations (SLO transitions, anomaly flags,
#: the flash-crowd window and memory-footprint samples are commentary
#: *about* the run, not steps of any item's custody).
IGNORED_KINDS = frozenset(
    {
        TraceEventKind.ROUTE_DECISION,
        TraceEventKind.EXCHANGE,
        TraceEventKind.SAMPLE,
        TraceEventKind.NCL_REELECTED,
        TraceEventKind.NODE_JOINED,
        TraceEventKind.DELIVERY_DUPLICATE,
        TraceEventKind.DELIVERY_LATE,
        TraceEventKind.SLO_VIOLATED,
        TraceEventKind.SLO_RECOVERED,
        TraceEventKind.HEALTH_ANOMALY,
        TraceEventKind.WORKLOAD_FLASH_CROWD_WINDOW,
        TraceEventKind.MEMORY_SAMPLED,
    }
)


@dataclass(frozen=True)
class Hop:
    """One custody transfer: *carrier* handed the copy to *node*."""

    time: float
    carrier: int
    node: int
    action: str  # "handover" / "replicate" (responses), "push" (pushes)


@dataclass
class ResponseCopy:
    """One physical response copy (one :class:`ResponseBundle`)."""

    query_id: int
    responder: int
    sequence: Optional[int] = None
    emitted_at: Optional[float] = None
    #: True for the degenerate zero-hop chain: the requester itself held
    #: the data and the response decision delivered on the spot.
    self_service: bool = False
    hops: List[Hop] = field(default_factory=list)
    custody: List[int] = field(default_factory=list)
    delivered_at: Optional[float] = None
    delivered_by: Optional[int] = None
    break_reason: Optional[str] = None
    #: set when a sequence-less trace left more than one candidate copy
    orphan: bool = False

    @property
    def hop_count(self) -> int:
        if self.self_service:
            return 0
        return len(self.hops) + (0 if self.delivered_at is None else 1)

    def hop_delays(self) -> List[float]:
        """Per-hop latencies along the custody chain, emission first."""
        times = [self.emitted_at] if self.emitted_at is not None else []
        times += [hop.time for hop in self.hops]
        if self.delivered_at is not None:
            times.append(self.delivered_at)
        return [b - a for a, b in zip(times, times[1:])]


@dataclass
class QueryCausality:
    """The full response DAG of one query."""

    query_id: int
    requester: Optional[int] = None
    data_id: Optional[int] = None
    created_at: Optional[float] = None
    expires_at: Optional[float] = None
    created_seen: bool = False
    observed: List[Tuple[float, int]] = field(default_factory=list)
    #: (time, node, respond, probability) per Sec. V-C decision
    decisions: List[Tuple[float, int, bool, float]] = field(default_factory=list)
    copies: List[ResponseCopy] = field(default_factory=list)
    satisfied_at: Optional[float] = None  # from QUERY_SATISFIED events
    #: chain-derived first in-constraint delivery (time, copy index)
    first_delivery: Optional[Tuple[float, int]] = None
    ambiguous: bool = False

    @property
    def satisfying_copy(self) -> Optional[ResponseCopy]:
        if self.first_delivery is None:
            return None
        return self.copies[self.first_delivery[1]]

    @property
    def delay(self) -> Optional[float]:
        if self.first_delivery is None or self.created_at is None:
            return None
        return self.first_delivery[0] - self.created_at

    def outcome(self, trace_end: float) -> str:
        """Chain-derived outcome through the shared predicate."""
        satisfied = self.first_delivery[0] if self.first_delivery else None
        return classify_outcome(satisfied, self.expires_at, trace_end)


@dataclass
class PushChain:
    """Custody chain of one push copy toward one central node."""

    data_id: int
    target_central: int
    origin: str  # "source" / "migration" / "unknown"
    started_at: Optional[float] = None
    start_node: Optional[int] = None
    custody: Optional[int] = None
    hops: List[Hop] = field(default_factory=list)
    completed_at: Optional[float] = None
    completed_node: Optional[int] = None
    spilled: bool = False
    break_reason: Optional[str] = None

    @property
    def hop_count(self) -> int:
        return len(self.hops)

    def hop_delays(self) -> List[float]:
        times = [self.started_at] if self.started_at is not None else []
        times += [hop.time for hop in self.hops]
        return [b - a for a, b in zip(times, times[1:])]

    def state(self, trace_end: float, expires_at: Optional[float]) -> str:
        if self.completed_at is not None:
            return "completed"
        if self.break_reason is not None:
            return f"broken:{self.break_reason}"
        if expires_at is not None and trace_end >= expires_at:
            return "expired"
        return "in_flight"


@dataclass
class PushTree:
    """All push chains of one data item (source → relays → NCLs)."""

    data_id: int
    source: Optional[int] = None
    generated_at: Optional[float] = None
    expires_at: Optional[float] = None
    size: Optional[int] = None
    chains: List[PushChain] = field(default_factory=list)
    #: (time, node) records of copies aging out
    expiries: List[Tuple[float, int]] = field(default_factory=list)

    def open_chains(self) -> List[PushChain]:
        return [
            c for c in self.chains if c.completed_at is None and c.break_reason is None
        ]


@dataclass
class CausalityIndex:
    """Everything :func:`build_causality` reconstructed from one trace."""

    queries: Dict[int, QueryCausality]
    pushes: Dict[int, PushTree]
    trace_end: float
    data_generated: int
    delivery_events: int
    responses_emitted: int
    #: (query_id, delivery time, delay) in stream order of the first
    #: in-constraint delivery — replays the collector's summation order
    satisfied_order: List[Tuple[int, float, float]]

    def satisfied_ids(self) -> List[int]:
        return [query_id for query_id, _, _ in self.satisfied_order]


def _copy_for(
    query: QueryCausality,
    carrier: Optional[int],
    responder: Optional[int],
    sequence: Optional[int],
) -> ResponseCopy:
    """The copy a forward/delivery event belongs to.

    Exact via ``sequence`` when present; otherwise custody + responder
    narrowing (legacy traces), creating an orphan copy when nothing
    matches (truncated traces).
    """
    if sequence is not None:
        for copy in query.copies:
            if copy.sequence == sequence:
                return copy
        copy = ResponseCopy(
            query_id=query.query_id,
            responder=responder if responder is not None else (carrier or -1),
            sequence=sequence,
            orphan=True,
            custody=[carrier] if carrier is not None else [],
        )
        query.copies.append(copy)
        return copy
    candidates = [
        copy
        for copy in query.copies
        if copy.delivered_at is None
        and (carrier is None or carrier in copy.custody)
        and (responder is None or copy.responder == responder)
    ]
    if len(candidates) > 1:
        query.ambiguous = True
    if candidates:
        return candidates[0]
    copy = ResponseCopy(
        query_id=query.query_id,
        responder=responder if responder is not None else (carrier or -1),
        orphan=True,
        custody=[carrier] if carrier is not None else [],
    )
    query.copies.append(copy)
    return copy


def _chain_for(
    tree: PushTree, target: int, carrier: Optional[int]
) -> Optional[PushChain]:
    """The open chain toward *target* whose custody sits at *carrier*."""
    for chain in tree.chains:
        if (
            chain.target_central == target
            and chain.completed_at is None
            and chain.break_reason is None
            and (carrier is None or chain.custody == carrier)
        ):
            return chain
    return None


def build_causality(events: Iterable[TraceEvent]) -> CausalityIndex:
    """Reconstruct push trees and response DAGs from an event stream."""
    queries: Dict[int, QueryCausality] = {}
    pushes: Dict[int, PushTree] = {}
    satisfied_order: List[Tuple[int, float, float]] = []
    chain_satisfied: Dict[int, float] = {}
    trace_end = 0.0
    data_generated = 0
    delivery_events = 0
    responses_emitted = 0

    def query_for(query_id: int) -> QueryCausality:
        query = queries.get(query_id)
        if query is None:
            query = queries[query_id] = QueryCausality(query_id=query_id)
        return query

    def tree_for(data_id: int) -> PushTree:
        tree = pushes.get(data_id)
        if tree is None:
            tree = pushes[data_id] = PushTree(data_id=data_id)
        return tree

    def record_delivery(query: QueryCausality, index: int, time: float) -> None:
        """First in-constraint delivery wins — the satisfying chain."""
        if query.query_id in chain_satisfied:
            return
        if not delivery_in_constraint(time, query.expires_at):
            return
        chain_satisfied[query.query_id] = time
        query.first_delivery = (time, index)
        created = query.created_at if query.created_at is not None else time
        satisfied_order.append((query.query_id, time, time - created))

    for event in events:
        trace_end = max(trace_end, event.time)
        kind = event.kind

        if kind is TraceEventKind.DATA_GENERATED:
            data_generated += 1
            assert event.data_id is not None
            tree = tree_for(event.data_id)
            tree.source = event.node
            tree.generated_at = event.time
            expires = event.attrs.get("expires_at")
            tree.expires_at = float(expires) if expires is not None else None
            size = event.attrs.get("size")
            tree.size = int(size) if size is not None else None

        elif kind is TraceEventKind.PUSH_FORWARDED:
            assert event.data_id is not None and event.node is not None
            tree = tree_for(event.data_id)
            carrier = event.attrs.get("carrier")
            target = int(event.attrs["target_central"])
            chain = _chain_for(tree, target, carrier)
            if chain is None:
                origin = "source" if carrier == tree.source else "unknown"
                chain = PushChain(
                    data_id=event.data_id,
                    target_central=target,
                    origin=origin,
                    started_at=tree.generated_at if origin == "source" else event.time,
                    start_node=carrier,
                    custody=carrier,
                )
                tree.chains.append(chain)
            chain.hops.append(
                Hop(
                    time=event.time,
                    carrier=int(carrier) if carrier is not None else -1,
                    node=event.node,
                    action="push",
                )
            )
            chain.custody = event.node

        elif kind is TraceEventKind.PUSH_COMPLETED:
            assert event.data_id is not None and event.node is not None
            tree = tree_for(event.data_id)
            target = int(event.attrs["target_central"])
            # Prefer the chain whose custody reached the completing node
            # (normal arrival); a spill that found the NCL already served
            # completes with custody still at the carrier.
            chain = _chain_for(tree, target, event.node) or _chain_for(
                tree, target, None
            )
            if chain is None:
                chain = PushChain(
                    data_id=event.data_id,
                    target_central=target,
                    origin="unknown",
                    start_node=event.node,
                )
                tree.chains.append(chain)
            chain.completed_at = event.time
            chain.completed_node = event.node
            chain.spilled = bool(event.attrs.get("spilled", False))
            chain.custody = event.node

        elif kind is TraceEventKind.DATA_EXPIRED:
            if event.data_id is not None and event.node is not None:
                tree_for(event.data_id).expiries.append((event.time, event.node))

        elif kind is TraceEventKind.QUERY_CREATED:
            assert event.query_id is not None
            query = query_for(event.query_id)
            query.created_seen = True
            query.requester = event.node
            query.data_id = event.data_id
            query.created_at = event.time
            constraint = event.attrs.get("time_constraint")
            if constraint is not None:
                query.expires_at = event.time + float(constraint)

        elif kind is TraceEventKind.QUERY_OBSERVED:
            if event.query_id is not None and event.node is not None:
                query_for(event.query_id).observed.append((event.time, event.node))

        elif kind is TraceEventKind.RESPONSE_DECIDED:
            assert event.query_id is not None
            query = query_for(event.query_id)
            respond = bool(event.attrs.get("respond", False))
            probability = float(event.attrs.get("probability", float("nan")))
            node = event.node if event.node is not None else -1
            query.decisions.append((event.time, node, respond, probability))
            if respond and query.requester is not None and node == query.requester:
                # Zero-hop chain: the requester served itself on the spot.
                copy = ResponseCopy(
                    query_id=query.query_id,
                    responder=node,
                    emitted_at=event.time,
                    self_service=True,
                    delivered_at=event.time,
                    delivered_by=node,
                )
                query.copies.append(copy)
                record_delivery(query, len(query.copies) - 1, event.time)

        elif kind is TraceEventKind.RESPONSE_EMITTED:
            assert event.query_id is not None
            responses_emitted += 1
            query = query_for(event.query_id)
            responder = event.node if event.node is not None else -1
            query.copies.append(
                ResponseCopy(
                    query_id=query.query_id,
                    responder=responder,
                    sequence=event.attrs.get("sequence"),
                    emitted_at=event.time,
                    custody=[responder],
                )
            )

        elif kind is TraceEventKind.RESPONSE_FORWARDED:
            assert event.query_id is not None and event.node is not None
            query = query_for(event.query_id)
            carrier = event.attrs.get("carrier")
            copy = _copy_for(
                query,
                carrier,
                event.attrs.get("responder"),
                event.attrs.get("sequence"),
            )
            action = str(event.attrs.get("action", "handover"))
            copy.hops.append(
                Hop(
                    time=event.time,
                    carrier=int(carrier) if carrier is not None else -1,
                    node=event.node,
                    action=action,
                )
            )
            if action == "handover" and carrier in copy.custody:
                copy.custody.remove(carrier)
            if event.node not in copy.custody:
                copy.custody.append(event.node)

        elif kind is TraceEventKind.RESPONSE_DELIVERED:
            assert event.query_id is not None
            delivery_events += 1
            query = query_for(event.query_id)
            if query.requester is None:
                query.requester = event.node
            carrier = event.attrs.get("carrier")
            copy = _copy_for(
                query,
                carrier,
                event.attrs.get("responder"),
                event.attrs.get("sequence"),
            )
            copy.delivered_at = event.time
            copy.delivered_by = int(carrier) if carrier is not None else None
            if carrier in copy.custody:
                copy.custody.remove(carrier)
            record_delivery(query, query.copies.index(copy), event.time)

        elif kind is TraceEventKind.QUERY_SATISFIED:
            assert event.query_id is not None
            query = query_for(event.query_id)
            if query.satisfied_at is None:
                query.satisfied_at = event.time
                if query.created_at is None:
                    created = event.attrs.get("created_at")
                    if created is not None:
                        query.created_at = float(created)

        elif kind in (TraceEventKind.NODE_FAILED, TraceEventKind.NODE_LEFT):
            assert event.node is not None
            reason = kind.value
            for query in queries.values():
                for copy in query.copies:
                    if copy.delivered_at is not None or copy.break_reason:
                        continue
                    if event.node in copy.custody:
                        copy.custody.remove(event.node)
                        if not copy.custody:
                            copy.break_reason = reason
            for tree in pushes.values():
                for chain in tree.open_chains():
                    if chain.custody == event.node:
                        chain.break_reason = reason
                        chain.custody = None

        elif kind is TraceEventKind.CACHE_MIGRATED:
            assert event.data_id is not None and event.node is not None
            tree = tree_for(event.data_id)
            tree.chains.append(
                PushChain(
                    data_id=event.data_id,
                    target_central=int(event.attrs["to_central"]),
                    origin="migration",
                    started_at=event.time,
                    start_node=event.node,
                    custody=event.node,
                )
            )

        # IGNORED_KINDS carry no custody information (see module doc).

    return CausalityIndex(
        queries=queries,
        pushes=pushes,
        trace_end=trace_end,
        data_generated=data_generated,
        delivery_events=delivery_events,
        responses_emitted=responses_emitted,
        satisfied_order=satisfied_order,
    )


# --- consistency cross-check ----------------------------------------------


def _float_equal(a: float, b: float) -> bool:
    if math.isnan(a) and math.isnan(b):
        return True
    return a == b


def check_causal_consistency(
    events: Iterable[TraceEvent],
    causality: Optional[CausalityIndex] = None,
) -> List[str]:
    """Mismatches between the causal chains and the derived metrics.

    Empty list on a consistent trace.  The chains must reproduce the
    collector's arithmetic **bit-exactly**: satisfied queries (each
    mapping to exactly one delivered chain), the delay sum in emission
    order, and the delivery/response tallies.  ``caching_overhead`` is a
    buffer-occupancy sample average, not a causal quantity, so it stays
    with :func:`repro.obs.derive.derive_metrics`.
    """
    events = list(events)
    if causality is None:
        causality = build_causality(events)
    derived = derive_metrics(events)
    mismatches: List[str] = []

    issued = sum(1 for q in causality.queries.values() if q.created_seen)
    if issued != derived.queries_issued:
        mismatches.append(
            f"queries_issued: chains {issued} != derived {derived.queries_issued}"
        )

    chain_ids = causality.satisfied_ids()
    event_ids = [
        query.query_id
        for query in causality.queries.values()
        if query.satisfied_at is not None
    ]
    if set(chain_ids) != set(event_ids):
        missing = sorted(set(event_ids) - set(chain_ids))
        extra = sorted(set(chain_ids) - set(event_ids))
        mismatches.append(
            f"satisfied query sets differ: missing chains for {missing[:5]}, "
            f"chains without query_satisfied for {extra[:5]}"
        )

    for query_id, time, _delay in causality.satisfied_order:
        query = causality.queries[query_id]
        if query.satisfied_at is not None and not _float_equal(
            time, query.satisfied_at
        ):
            mismatches.append(
                f"query {query_id}: first chain delivery at {time!r} but "
                f"query_satisfied at {query.satisfied_at!r}"
            )
        delivered = [
            c
            for c in query.copies
            if c.delivered_at is not None
            and delivery_in_constraint(c.delivered_at, query.expires_at)
        ]
        first = [c for c in delivered if _float_equal(c.delivered_at, time)]
        if query.first_delivery is None or not first:
            mismatches.append(
                f"query {query_id}: satisfied but no delivered chain matches"
            )

    if len(chain_ids) != derived.queries_satisfied:
        mismatches.append(
            f"queries_satisfied: chains {len(chain_ids)} != derived "
            f"{derived.queries_satisfied}"
        )

    ratio = (len(chain_ids) / issued) if issued else 0.0
    if not _float_equal(ratio, derived.successful_ratio):
        mismatches.append(
            f"successful_ratio: chains {ratio!r} != derived "
            f"{derived.successful_ratio!r}"
        )

    delays = [delay for _, _, delay in causality.satisfied_order]
    mean_delay = (sum(delays) / len(delays)) if delays else float("nan")
    if not _float_equal(mean_delay, derived.mean_access_delay):
        mismatches.append(
            f"mean_access_delay: chains {mean_delay!r} != derived "
            f"{derived.mean_access_delay!r}"
        )

    for name, chain_value, derived_value in (
        ("delivery_events", causality.delivery_events, derived.delivery_events),
        ("responses_emitted", causality.responses_emitted, derived.responses_emitted),
        ("data_generated", causality.data_generated, derived.data_generated),
    ):
        if chain_value != derived_value:
            mismatches.append(f"{name}: chains {chain_value} != derived {derived_value}")

    return mismatches


def assert_causal_consistency(
    events: Iterable[TraceEvent],
    causality: Optional[CausalityIndex] = None,
) -> None:
    """Raise :class:`TraceConsistencyError` on any chain/metric mismatch."""
    mismatches = check_causal_consistency(events, causality)
    if mismatches:
        raise TraceConsistencyError(
            "causal chains disagree with derived metrics:\n  "
            + "\n  ".join(mismatches)
        )


# --- summaries -------------------------------------------------------------


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else float("nan")


def summarize_causality(causality: CausalityIndex) -> Dict[str, object]:
    """Aggregate chain statistics for the diagnose report."""
    queries = list(causality.queries.values())
    satisfying = [q.satisfying_copy for q in queries if q.satisfying_copy is not None]
    hop_delays = [d for copy in satisfying for d in copy.hop_delays()]
    fan_out = [len(q.copies) for q in queries if q.copies]
    broken_copies: Dict[str, int] = {}
    for query in queries:
        for copy in query.copies:
            if copy.break_reason:
                broken_copies[copy.break_reason] = (
                    broken_copies.get(copy.break_reason, 0) + 1
                )
    chains = [chain for tree in causality.pushes.values() for chain in tree.chains]
    chain_states: Dict[str, int] = {}
    for tree in causality.pushes.values():
        for chain in tree.chains:
            state = chain.state(causality.trace_end, tree.expires_at)
            chain_states[state] = chain_states.get(state, 0) + 1
    completed = [c for c in chains if c.completed_at is not None]
    return {
        "queries": len(queries),
        "queries_satisfied": len(causality.satisfied_order),
        "self_service_deliveries": sum(
            1 for c in satisfying if c.self_service
        ),
        "mean_delivery_hops": _mean([float(c.hop_count) for c in satisfying]),
        "mean_hop_delay": _mean(hop_delays),
        "mean_copies_per_query": _mean([float(n) for n in fan_out]),
        "max_copies_per_query": max(fan_out, default=0),
        "delivery_events": causality.delivery_events,
        "duplicate_deliveries": causality.delivery_events
        - sum(1 for c in satisfying if not c.self_service),
        "response_breaks": broken_copies,
        "push_trees": len(causality.pushes),
        "push_chains": len(chains),
        "push_chain_states": chain_states,
        "mean_push_hops": _mean([float(c.hop_count) for c in completed]),
        "ambiguous_queries": sum(1 for q in queries if q.ambiguous),
    }


# --- drill-down rendering --------------------------------------------------


def _rel(time: Optional[float], anchor: Optional[float]) -> str:
    if time is None:
        return "?"
    if anchor is None:
        return f"@{time:.1f}"
    return f"+{time - anchor:.1f}s"


def render_query_timeline(
    causality: CausalityIndex, query_id: int
) -> str:
    """One query's response DAG as an indented timeline."""
    query = causality.queries.get(query_id)
    if query is None:
        raise KeyError(f"query {query_id} not in trace")
    anchor = query.created_at
    outcome = query.outcome(causality.trace_end)
    lines = [
        f"query {query.query_id} [{outcome}] data={query.data_id} "
        f"requester={query.requester} created={query.created_at} "
        f"expires={query.expires_at}"
    ]
    if query.observed:
        first_time, first_node = query.observed[0]
        lines.append(
            f"  observed by {len({n for _, n in query.observed})} node(s); "
            f"first node {first_node} {_rel(first_time, anchor)}"
        )
    if query.decisions:
        yes = sum(1 for _, _, respond, _ in query.decisions if respond)
        lines.append(
            f"  decisions: {len(query.decisions)} "
            f"({yes} respond / {len(query.decisions) - yes} decline)"
        )
    satisfying = query.satisfying_copy
    for index, copy in enumerate(query.copies):
        tag = " (self-service)" if copy.self_service else ""
        seq = f" seq={copy.sequence}" if copy.sequence is not None else ""
        lines.append(
            f"  copy #{index} responder={copy.responder}{seq} "
            f"emitted {_rel(copy.emitted_at, anchor)}{tag}"
        )
        previous = copy.emitted_at
        for hop in copy.hops:
            delta = (
                f"  [Δ {hop.time - previous:.1f}s]" if previous is not None else ""
            )
            lines.append(
                f"    {_rel(hop.time, anchor)}  {hop.carrier} -> {hop.node} "
                f"{hop.action}{delta}"
            )
            previous = hop.time
        if copy.delivered_at is not None and not copy.self_service:
            delta = (
                f"  [Δ {copy.delivered_at - previous:.1f}s]"
                if previous is not None
                else ""
            )
            marker = ""
            if copy is satisfying:
                delay = query.delay
                marker = (
                    f"  <- satisfied (delay {delay:.1f}s)"
                    if delay is not None
                    else "  <- satisfied"
                )
            elif delivery_in_constraint(copy.delivered_at, query.expires_at):
                marker = "  (duplicate delivery)"
            else:
                marker = "  (out of constraint)"
            lines.append(
                f"    {_rel(copy.delivered_at, anchor)}  "
                f"{copy.delivered_by} -> {query.requester} delivered{delta}{marker}"
            )
        elif copy.self_service and copy is satisfying:
            delay = query.delay
            marker = (
                f"  <- satisfied (delay {delay:.1f}s)"
                if delay is not None
                else "  <- satisfied"
            )
            lines.append(f"    delivered on the spot{marker}")
        elif copy.break_reason:
            lines.append(f"    chain broken: {copy.break_reason}")
        elif copy.delivered_at is None:
            state = classify_outcome(None, query.expires_at, causality.trace_end)
            where = (
                f" in custody of {sorted(copy.custody)}" if copy.custody else ""
            )
            lines.append(f"    undelivered [{state}]{where}")
    if not query.copies:
        lines.append("  no response copies")
    return "\n".join(lines)


def render_push_timeline(causality: CausalityIndex, data_id: int) -> str:
    """One data item's push tree as an indented timeline."""
    tree = causality.pushes.get(data_id)
    if tree is None:
        raise KeyError(f"data item {data_id} not in trace")
    anchor = tree.generated_at
    lines = [
        f"data {tree.data_id} source={tree.source} generated={tree.generated_at} "
        f"expires={tree.expires_at} size={tree.size}"
    ]
    for chain in tree.chains:
        state = chain.state(causality.trace_end, tree.expires_at)
        lines.append(
            f"  chain -> central {chain.target_central} [{state}] "
            f"origin={chain.origin} start=node {chain.start_node}"
        )
        previous = chain.started_at
        for hop in chain.hops:
            delta = (
                f"  [Δ {hop.time - previous:.1f}s]" if previous is not None else ""
            )
            lines.append(
                f"    {_rel(hop.time, anchor)}  {hop.carrier} -> {hop.node}{delta}"
            )
            previous = hop.time
        if chain.completed_at is not None:
            spill = " (spilled)" if chain.spilled else ""
            lines.append(
                f"    {_rel(chain.completed_at, anchor)}  cached at node "
                f"{chain.completed_node}{spill}"
            )
        elif chain.break_reason:
            lines.append(f"    chain broken: {chain.break_reason}")
        elif chain.custody is not None:
            lines.append(f"    custody at node {chain.custody}")
    if not tree.chains:
        lines.append("  no push chains")
    if tree.expiries:
        lines.append(f"  expired at {len(tree.expiries)} node(s)")
    return "\n".join(lines)
