"""Live serve-mode health telemetry.

A :class:`HealthMonitor` rides along a serve session and freezes one
:class:`HealthSnapshot` per replayed batch/window.  Each snapshot pairs

* **windowed deltas** — the difference between two O(1)
  :class:`repro.metrics.collector.CollectorTotals` views, so the
  snapshots' deltas sum *bit-exactly* to the final collector totals
  (:func:`check_health_consistency` enforces it), and
* **instantaneous gauges** — open-query backlog, running P² delay
  percentiles, per-NCL load skew (coefficient of variation).

Every value is derived from simulated time and the collector's
counters — never the wall clock — so serve-mode health streams are
bitwise identical between a serial replay and ``workers=4``
(the repo's standing determinism contract).

On top of the snapshot stream sit two consumers:

* the declarative SLO engine (:mod:`repro.obs.slo`), emitting
  ``slo.violated`` / ``slo.recovered`` trace events, and
* rolling-window anomaly detectors — :class:`EWMADrift` (k-sigma
  deviation from an exponentially weighted mean) and
  :class:`CUSUMChangePoint` (two-sided standardized CUSUM) — over the
  hit-ratio, throughput, and backlog-growth signals, emitting
  ``health.anomaly`` events.

Exposition: :func:`write_health_log` / :func:`read_health_log` persist
the stream as JSONL in the run directory (floats round-trip exactly),
:func:`render_prometheus` emits the Prometheus text format for
``repro serve --prom-out``, and :func:`render_health_table` backs the
``repro watch`` CLI.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import TraceConsistencyError
from repro.metrics.collector import CollectorTotals
from repro.obs.events import TraceEvent, TraceEventKind
from repro.obs.memory import MemorySample, render_memory_gauges
from repro.obs.slo import SLOEngine, SLORule, SLOTransition

__all__ = [
    "HealthSnapshot",
    "HealthAnomaly",
    "HealthReport",
    "HealthMonitor",
    "EWMADrift",
    "CUSUMChangePoint",
    "ANOMALY_SIGNALS",
    "check_health_consistency",
    "write_health_log",
    "read_health_log",
    "render_health_table",
    "render_prometheus",
]

#: snapshot fields watched by the anomaly detectors
ANOMALY_SIGNALS: Tuple[str, ...] = (
    "cache_hit_ratio",
    "queries_per_sim_second",
    "backlog_delta",
)

#: the eight windowed-delta counters (must mirror CollectorTotals order)
_DELTA_FIELDS: Tuple[str, ...] = CollectorTotals._fields


@dataclass(frozen=True)
class HealthSnapshot:
    """One frozen health window ``[start, end)`` of a serve session.

    The eight counter fields are **per-window deltas** of the
    collector's cumulative totals; ratios and throughput derive from
    those deltas (NaN when the window carries no evidence, e.g. a
    hit ratio over zero lookups).  ``delay_p*`` are the collector's
    *running* P² estimates sampled at the window end — cheap O(1)
    views, explicitly cumulative rather than windowed.  ``backlog`` is
    the open-query set size at the window end and ``backlog_delta`` its
    change since the previous window.
    """

    index: int
    start: float
    end: float
    # windowed deltas (CollectorTotals field order)
    queries_issued: int
    queries_satisfied: int
    duplicate_deliveries: int
    late_deliveries: int
    cache_lookups: int
    cache_hits: int
    data_generated: int
    responses_delivered: int
    # instantaneous gauges
    backlog: int
    backlog_delta: int
    # derived rates (NaN when the window has no evidence)
    success_ratio: float
    cache_hit_ratio: float
    queries_per_sim_second: float
    # running sketch views at the window end
    delay_p50: float
    delay_p95: float
    delay_p99: float
    # per-NCL load skew (coefficient of variation; NaN without NCL load)
    ncl_load_cv: float
    # whether this window overlaps the flash-crowd surge (first cycle)
    flash_crowd: bool
    # memory telemetry sampled at the window end (NaN/empty unless the
    # run profiled memory; process counters, so deliberately outside the
    # delta-consistency contract above)
    rss_mb: float = float("nan")
    py_heap_mb: float = float("nan")
    mem_accounted_mb: float = float("nan")
    mem_top: str = ""

    def delta_totals(self) -> CollectorTotals:
        """This window's counter deltas as a :class:`CollectorTotals`."""
        return CollectorTotals(*(getattr(self, f) for f in _DELTA_FIELDS))

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "HealthSnapshot":
        # Default-aware: health logs written before the memory fields
        # existed load with those fields at their defaults.
        return cls(**{f: record[f] for f in cls.__dataclass_fields__ if f in record})


@dataclass(frozen=True)
class HealthAnomaly:
    """One anomaly-detector firing over a health signal."""

    time: float
    signal: str
    detector: str   # "ewma" / "cusum"
    value: float
    score: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "health.anomaly",
            "t": self.time,
            "signal": self.signal,
            "detector": self.detector,
            "value": self.value,
            "score": self.score,
        }


class HealthReport(NamedTuple):
    """Frozen, picklable product of one monitored serve session.

    Workers in a parallel serve sweep build their own monitor and ship
    this report back — plain tuples of frozen dataclasses, so it
    crosses process boundaries without dragging simulator state along.
    """

    snapshots: Tuple[HealthSnapshot, ...]
    transitions: Tuple[SLOTransition, ...]
    anomalies: Tuple[HealthAnomaly, ...]
    flash_window: Optional[Tuple[float, float]]


class EWMADrift:
    """k-sigma deviation from an exponentially weighted mean.

    Tracks an EW mean and EW variance of the signal; once warmed up,
    a sample deviating more than ``k`` EW standard deviations from the
    *prior* mean flags drift and returns its signed z-score.  NaN
    samples carry no evidence and are skipped.  Pure function of the
    sample stream — deterministic by construction.
    """

    def __init__(self, alpha: float = 0.25, k: float = 4.0, warmup: int = 8):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if k <= 0.0 or warmup < 1:
            raise ValueError("k must be > 0 and warmup >= 1")
        self._alpha = alpha
        self._k = k
        self._warmup = warmup
        self._mean = 0.0
        self._var = 0.0
        self._count = 0

    def update(self, value: float) -> Optional[float]:
        """Feed one sample; returns the z-score when drift fires."""
        if math.isnan(value):
            return None
        self._count += 1
        if self._count == 1:
            self._mean = value
            return None
        diff = value - self._mean
        sigma = math.sqrt(self._var)
        score: Optional[float] = None
        if self._count > self._warmup:
            if sigma > 0.0:
                if abs(diff) > self._k * sigma:
                    score = diff / sigma
            elif diff != 0.0:
                # Any deviation from a zero-variance baseline is
                # infinitely surprising; ±inf keeps the sign convention.
                score = math.inf if diff > 0.0 else -math.inf
        # Standard EW mean/variance recurrences (West 1979).
        incr = self._alpha * diff
        self._mean += incr
        self._var = (1.0 - self._alpha) * (self._var + diff * incr)
        return score


class CUSUMChangePoint:
    """Two-sided standardized CUSUM change-point detector.

    Samples are standardized against Welford running mean/variance,
    then accumulated into positive and negative CUSUM statistics with
    slack ``drift``; a side crossing ``threshold`` fires (returning the
    signed statistic) and resets both sides.  NaN samples are skipped.
    """

    def __init__(
        self, drift: float = 0.5, threshold: float = 8.0, warmup: int = 8
    ):
        if drift < 0.0 or threshold <= 0.0 or warmup < 2:
            raise ValueError("need drift >= 0, threshold > 0, warmup >= 2")
        self._drift = drift
        self._threshold = threshold
        self._warmup = warmup
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._pos = 0.0
        self._neg = 0.0

    def update(self, value: float) -> Optional[float]:
        """Feed one sample; returns the signed statistic on a change."""
        if math.isnan(value):
            return None
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if self._count <= self._warmup:
            return None
        sigma = math.sqrt(self._m2 / (self._count - 1))
        if sigma == 0.0:
            return None
        z = (value - self._mean) / sigma
        self._pos = max(0.0, self._pos + z - self._drift)
        self._neg = max(0.0, self._neg - z - self._drift)
        if self._pos > self._threshold:
            score = self._pos
            self._pos = self._neg = 0.0
            return score
        if self._neg > self._threshold:
            score = -self._neg
            self._pos = self._neg = 0.0
            return score
        return None


class HealthMonitor:
    """Snapshots serve-session health once per replayed window.

    Usage::

        monitor = HealthMonitor(rules=slo_rules)
        monitor.attach(simulator)          # after start_session()
        ...
        monitor.observe_window(i, start, end)   # after each batch
        report = monitor.report()

    The monitor never touches the event loop: it reads O(1) views of
    the collector and scheme state *between* windows, so its overhead
    is one totals tuple plus detector arithmetic per window (the bench
    guard caps monitored serve at 1.05x untraced).
    """

    def __init__(
        self,
        rules: Sequence[SLORule] = (),
        recorder: Any = None,
        *,
        ewma_alpha: float = 0.25,
        ewma_k: float = 4.0,
        cusum_drift: float = 0.5,
        cusum_threshold: float = 8.0,
        detector_warmup: int = 8,
    ):
        self.slo = SLOEngine(rules)
        self._recorder = recorder
        self._snapshots: List[HealthSnapshot] = []
        self._anomalies: List[HealthAnomaly] = []
        self._detectors: Dict[str, Dict[str, Any]] = {
            signal: {
                "ewma": EWMADrift(ewma_alpha, ewma_k, detector_warmup),
                "cusum": CUSUMChangePoint(
                    cusum_drift, cusum_threshold, max(2, detector_warmup)
                ),
            }
            for signal in ANOMALY_SIGNALS
        }
        self._simulator: Any = None
        self._baseline: Optional[CollectorTotals] = None
        self._last_totals: Optional[CollectorTotals] = None
        self._last_backlog = 0
        self._flash_window: Optional[Tuple[float, float]] = None

    # --- lifecycle -----------------------------------------------------

    def attach(self, simulator: Any) -> None:
        """Bind to a simulator with an active serve session.

        Captures the baseline totals (all zero right after
        ``start_session()`` — warm-up generates no workload) so window
        deltas start from the session's first batch.
        """
        self._simulator = simulator
        self._baseline = simulator.metrics.totals()
        self._last_totals = self._baseline
        self._last_backlog = simulator.metrics.open_queries
        arrivals = getattr(simulator.workload_process, "arrivals", None)
        flash = getattr(arrivals, "flash_window", None)
        self._flash_window = flash() if callable(flash) else None

    @property
    def baseline(self) -> Optional[CollectorTotals]:
        """Collector totals at attach time (delta-consistency anchor)."""
        return self._baseline

    @property
    def flash_window(self) -> Optional[Tuple[float, float]]:
        """The workload's flash-crowd surge window, when one exists."""
        return self._flash_window

    @property
    def snapshots(self) -> Tuple[HealthSnapshot, ...]:
        return tuple(self._snapshots)

    @property
    def last(self) -> Optional[HealthSnapshot]:
        """The most recent snapshot (None before the first window)."""
        return self._snapshots[-1] if self._snapshots else None

    # --- per-window observation ---------------------------------------

    def observe_window(self, index: int, start: float, end: float) -> HealthSnapshot:
        """Freeze the window ``[start, end)`` that just finished replaying.

        Must be called with the same ``end`` the session advanced to
        (the collector's ``pending_queries`` requires non-decreasing
        times in streaming mode).
        """
        if self._simulator is None or self._last_totals is None:
            raise RuntimeError("HealthMonitor.attach(simulator) must run first")
        metrics = self._simulator.metrics
        totals = metrics.totals()
        delta = totals.delta(self._last_totals)
        backlog = int(metrics.pending_queries(end))
        duration = end - start
        loads = self._simulator.ncl_load(end)
        rss_mb = py_heap_mb = mem_accounted_mb = float("nan")
        mem_top = ""
        memory = getattr(self._simulator, "memory", None)
        if memory is not None and memory.enabled:
            mem_sample = memory.sample(end)
            rss_mb = mem_sample.rss_mb
            py_heap_mb = mem_sample.py_heap_mb
            mem_accounted_mb = mem_sample.accounted_mb
            mem_top = mem_sample.top_subsystem
        snapshot = HealthSnapshot(
            index=index,
            start=start,
            end=end,
            queries_issued=delta.queries_issued,
            queries_satisfied=delta.queries_satisfied,
            duplicate_deliveries=delta.duplicate_deliveries,
            late_deliveries=delta.late_deliveries,
            cache_lookups=delta.cache_lookups,
            cache_hits=delta.cache_hits,
            data_generated=delta.data_generated,
            responses_delivered=delta.responses_delivered,
            backlog=backlog,
            backlog_delta=backlog - self._last_backlog,
            success_ratio=_ratio(delta.queries_satisfied, delta.queries_issued),
            cache_hit_ratio=_ratio(delta.cache_hits, delta.cache_lookups),
            queries_per_sim_second=_ratio(delta.queries_issued, duration),
            delay_p50=metrics.delay_p50,
            delay_p95=metrics.delay_p95,
            delay_p99=metrics.delay_p99,
            ncl_load_cv=_coefficient_of_variation(loads),
            flash_crowd=_overlaps(self._flash_window, start, end),
            rss_mb=rss_mb,
            py_heap_mb=py_heap_mb,
            mem_accounted_mb=mem_accounted_mb,
            mem_top=mem_top,
        )
        self._last_totals = totals
        self._last_backlog = backlog
        self._snapshots.append(snapshot)
        self.slo.evaluate(snapshot, self._recorder)
        self._detect(snapshot)
        return snapshot

    def _detect(self, snapshot: HealthSnapshot) -> None:
        for signal in ANOMALY_SIGNALS:
            value = float(getattr(snapshot, signal))
            for name, detector in self._detectors[signal].items():
                score = detector.update(value)
                if score is None:
                    continue
                anomaly = HealthAnomaly(
                    time=snapshot.end,
                    signal=signal,
                    detector=name,
                    value=value,
                    score=score,
                )
                self._anomalies.append(anomaly)
                if self._recorder is not None and self._recorder.enabled:
                    self._recorder.emit(
                        TraceEvent(
                            time=anomaly.time,
                            kind=TraceEventKind.HEALTH_ANOMALY,
                            attrs={
                                "signal": signal,
                                "detector": name,
                                "value": value,
                                "score": score,
                            },
                        )
                    )

    # --- products ------------------------------------------------------

    def report(self) -> HealthReport:
        """Freeze everything observed so far into a picklable report."""
        return HealthReport(
            snapshots=tuple(self._snapshots),
            transitions=self.slo.transitions,
            anomalies=tuple(self._anomalies),
            flash_window=self._flash_window,
        )

    def to_prometheus(self) -> str:
        """Prometheus text exposition of the current health state."""
        return render_prometheus(self.report(), self.slo)


# --- derivations ------------------------------------------------------


def _ratio(numerator: float, denominator: float) -> float:
    """numerator/denominator, NaN when the denominator is zero."""
    return numerator / denominator if denominator else float("nan")


def _coefficient_of_variation(loads: Mapping[int, int]) -> float:
    """Population CV (std/mean) of per-NCL cached-copy loads.

    Iterates NCL ids in sorted order so the float accumulation order —
    and thus the bitwise result — never depends on dict history.
    """
    values = [float(loads[k]) for k in sorted(loads)]
    n = len(values)
    if n == 0:
        return float("nan")
    mean = sum(values) / n
    if mean == 0.0:
        return float("nan")
    variance = sum((v - mean) ** 2 for v in values) / n
    return math.sqrt(variance) / mean


def _overlaps(
    window: Optional[Tuple[float, float]], start: float, end: float
) -> bool:
    if window is None:
        return False
    return start < window[1] and window[0] < end


def check_health_consistency(
    report: HealthReport,
    totals: CollectorTotals,
    baseline: Optional[CollectorTotals] = None,
) -> None:
    """Prove the snapshot stream is delta-consistent with the collector.

    * Windows must tile: indices consecutive from 0, each window
      starting where the previous ended.
    * Summing every snapshot's counter deltas must reproduce
      ``totals - baseline`` **bit-exactly** (integer counters, so there
      is no tolerance to hide behind).

    Raises :class:`~repro.errors.TraceConsistencyError` on any
    mismatch — the same contract violation class the trace-vs-counter
    audits use.
    """
    snapshots = report.snapshots
    for i, snap in enumerate(snapshots):
        if snap.index != i:
            raise TraceConsistencyError(
                f"health snapshots out of order: position {i} has index {snap.index}"
            )
        if i > 0 and snap.start != snapshots[i - 1].end:
            raise TraceConsistencyError(
                f"health window {i} starts at {snap.start} but window "
                f"{i - 1} ended at {snapshots[i - 1].end}"
            )
    expected = totals if baseline is None else totals.delta(baseline)
    summed = CollectorTotals(
        *(
            sum(getattr(s, field) for s in snapshots)
            for field in _DELTA_FIELDS
        )
    )
    mismatched = [
        f"{field}: snapshots sum to {got}, collector says {want}"
        for field, got, want in zip(_DELTA_FIELDS, summed, expected)
        if got != want
    ]
    if mismatched:
        raise TraceConsistencyError(
            "health snapshot deltas diverge from collector totals — "
            + "; ".join(mismatched)
        )


# --- exposition -------------------------------------------------------


def write_health_log(path: Path, report: HealthReport) -> None:
    """Persist a health report as JSONL (one record per line).

    Record kinds: one ``health.meta`` header, then ``health.snapshot``,
    ``slo.violated`` / ``slo.recovered`` and ``health.anomaly`` records
    interleaved in time order (stable within one timestamp:
    snapshot → SLO transitions → anomalies).  Floats round-trip exactly
    through ``json`` (repr-based), preserving the bitwise contract on
    disk.
    """
    import json

    records: List[Tuple[float, int, Dict[str, Any]]] = []
    for snap in report.snapshots:
        record = {"kind": "health.snapshot"}
        record.update(snap.to_dict())
        records.append((snap.end, 0, record))
    for transition in report.transitions:
        records.append((transition.time, 1, transition.to_dict()))
    for anomaly in report.anomalies:
        records.append((anomaly.time, 2, anomaly.to_dict()))
    records.sort(key=lambda item: (item[0], item[1]))
    meta: Dict[str, Any] = {
        "kind": "health.meta",
        "snapshots": len(report.snapshots),
        "flash_window": list(report.flash_window) if report.flash_window else None,
    }
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(meta, sort_keys=True) + "\n")
        for _, _, record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")


def read_health_log(path: Path) -> HealthReport:
    """Load a JSONL health log back into a :class:`HealthReport`."""
    import json

    snapshots: List[HealthSnapshot] = []
    transitions: List[SLOTransition] = []
    anomalies: List[HealthAnomaly] = []
    flash_window: Optional[Tuple[float, float]] = None
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("kind")
            if kind == "health.meta":
                raw = record.get("flash_window")
                flash_window = (raw[0], raw[1]) if raw else None
            elif kind == "health.snapshot":
                snapshots.append(HealthSnapshot.from_dict(record))
            elif kind in ("slo.violated", "slo.recovered"):
                transitions.append(
                    SLOTransition(
                        time=float(record["t"]),
                        rule=str(record["rule"]),
                        kind=kind,
                        field=str(record["field"]),
                        value=float(record["value"]),
                        target=float(record["target"]),
                    )
                )
            elif kind == "health.anomaly":
                anomalies.append(
                    HealthAnomaly(
                        time=float(record["t"]),
                        signal=str(record["signal"]),
                        detector=str(record["detector"]),
                        value=float(record["value"]),
                        score=float(record["score"]),
                    )
                )
    return HealthReport(
        snapshots=tuple(snapshots),
        transitions=tuple(transitions),
        anomalies=tuple(anomalies),
        flash_window=flash_window,
    )


def _fmt(value: float, digits: int = 3) -> str:
    if isinstance(value, bool):
        return "yes" if value else "-"
    if isinstance(value, int):
        return str(value)
    if math.isnan(value):
        return "-"
    return f"{value:.{digits}f}"


def render_health_table(report: HealthReport, limit: Optional[int] = None) -> str:
    """Human-readable health table (the ``repro watch`` view).

    One row per window plus a flags column: ``flash`` marks windows
    overlapping the flash-crowd surge, ``!rule`` / ``+rule`` mark SLO
    violation/recovery edges, ``~signal`` marks anomaly firings.

    An ``rss_mb`` column appears only when at least one snapshot
    carries memory telemetry, so unprofiled runs render the historical
    layout unchanged.
    """
    snapshots = report.snapshots
    if limit is not None and limit > 0:
        snapshots = snapshots[-limit:]
    has_memory = any(not math.isnan(s.rss_mb) for s in report.snapshots)
    flags: Dict[float, List[str]] = {}
    for transition in report.transitions:
        mark = "!" if transition.kind == "slo.violated" else "+"
        flags.setdefault(transition.time, []).append(mark + transition.rule)
    for anomaly in report.anomalies:
        flags.setdefault(anomaly.time, []).append(
            f"~{anomaly.signal}[{anomaly.detector}]"
        )
    mem_header = f" {'rss_mb':>9}" if has_memory else ""
    header = (
        f"{'win':>4} {'start':>10} {'end':>10} {'qps':>8} {'succ':>6} "
        f"{'hit':>6} {'backlog':>8} {'p95':>10} {'flash':>5}{mem_header}  flags"
    )
    lines = [header, "-" * len(header)]
    for snap in snapshots:
        marks = list(flags.get(snap.end, []))
        mem_cell = f" {_fmt(snap.rss_mb, 1):>9}" if has_memory else ""
        lines.append(
            f"{snap.index:>4} {snap.start:>10.0f} {snap.end:>10.0f} "
            f"{_fmt(snap.queries_per_sim_second, 4):>8} "
            f"{_fmt(snap.success_ratio):>6} "
            f"{_fmt(snap.cache_hit_ratio):>6} "
            f"{snap.backlog:>8} "
            f"{_fmt(snap.delay_p95, 1):>10} "
            f"{_fmt(snap.flash_crowd):>5}{mem_cell}  "
            f"{' '.join(marks)}".rstrip()
        )
    violated = sum(1 for t in report.transitions if t.kind == "slo.violated")
    summary = (
        f"{len(report.snapshots)} windows · {violated} SLO violation(s) · "
        f"{len(report.anomalies)} anomaly firing(s)"
    )
    if report.flash_window is not None:
        summary += (
            f" · flash crowd [{report.flash_window[0]:.0f}, "
            f"{report.flash_window[1]:.0f}) (first replay cycle only)"
        )
    lines.append(summary)
    return "\n".join(lines)


#: gauge fields exported to Prometheus, with help strings
_PROM_GAUGES: Tuple[Tuple[str, str], ...] = (
    ("queries_issued", "Queries issued in the last health window"),
    ("queries_satisfied", "Queries satisfied in the last health window"),
    ("cache_lookups", "Cache lookups in the last health window"),
    ("cache_hits", "Cache hits in the last health window"),
    ("backlog", "Open queries at the last window end"),
    ("backlog_delta", "Backlog change over the last window"),
    ("success_ratio", "Window success ratio (satisfied/issued)"),
    ("cache_hit_ratio", "Window cache hit ratio (hits/lookups)"),
    ("queries_per_sim_second", "Window query throughput per simulated second"),
    ("delay_p50", "Running P2 estimate of the median access delay"),
    ("delay_p95", "Running P2 estimate of the 95th-percentile delay"),
    ("delay_p99", "Running P2 estimate of the 99th-percentile delay"),
    ("ncl_load_cv", "Coefficient of variation of per-NCL cached load"),
)


def _prom_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isnan(value):
        return "NaN"
    return repr(value)


def _prom_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def render_prometheus(
    report: HealthReport,
    slo: Optional[SLOEngine] = None,
    memory: Optional[MemorySample] = None,
) -> str:
    """Prometheus text exposition (one scrape) of the latest health state.

    Exports the last snapshot's gauges under ``repro_health_*``, the
    total window/anomaly counters, and — when an SLO engine is given —
    one ``repro_slo_violated{rule=...}`` gauge per rule (1 while the
    rule is in the violated state).  When a :class:`MemorySample` is
    given (memory-profiled serves), the ``repro_health_rss_bytes`` and
    per-subsystem memory gauges are appended.
    """
    lines: List[str] = []
    last = report.snapshots[-1] if report.snapshots else None
    if last is not None:
        for field, help_text in _PROM_GAUGES:
            name = f"repro_health_{field}"
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_prom_value(getattr(last, field))}")
        lines.append("# HELP repro_health_window_end Simulated end time of the last window")
        lines.append("# TYPE repro_health_window_end gauge")
        lines.append(f"repro_health_window_end {_prom_value(last.end)}")
        lines.append("# HELP repro_health_flash_crowd Last window overlapped the flash-crowd surge")
        lines.append("# TYPE repro_health_flash_crowd gauge")
        lines.append(f"repro_health_flash_crowd {_prom_value(last.flash_crowd)}")
    lines.append("# HELP repro_health_windows_total Health windows observed")
    lines.append("# TYPE repro_health_windows_total counter")
    lines.append(f"repro_health_windows_total {len(report.snapshots)}")
    lines.append("# HELP repro_health_anomalies_total Anomaly detector firings")
    lines.append("# TYPE repro_health_anomalies_total counter")
    lines.append(f"repro_health_anomalies_total {len(report.anomalies)}")
    if slo is not None and slo.rules:
        violated = set(slo.violated_rules())
        lines.append("# HELP repro_slo_violated SLO rule currently in violated state")
        lines.append("# TYPE repro_slo_violated gauge")
        for rule in slo.rules:
            state = 1 if rule.name in violated else 0
            lines.append(
                f'repro_slo_violated{{rule="{_prom_label(rule.name)}"}} {state}'
            )
    text = "\n".join(lines) + "\n"
    if memory is not None:
        text += render_memory_gauges(memory)
    return text
