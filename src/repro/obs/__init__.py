"""Observability: structured lifecycle tracing and metric derivation.

Every data item and query in a simulation run has a lifecycle
(generated → pushed → cached@NCL → queried → responded → delivered /
expired).  This package records that lifecycle as span-like events,
persists them as JSONL, and *re-derives* the paper's evaluation metrics
(successful ratio, access delay, caching overhead) from the event
stream — an independent accounting path that is cross-checked against
the live counters of :class:`repro.metrics.collector.MetricsCollector`
(see :func:`repro.sim.invariants.check_trace_consistency`).

On top of the raw stream, :mod:`repro.obs.causality` reconstructs *why*
each metric came out as it did (per-data push trees, per-query response
DAGs, bit-exact chain↔counter cross-check), :mod:`repro.obs.fidelity`
measures how far the realized run drifted from the paper's analytical
model (KS, calibration curves, Brier scores, NCL load balance), and
:mod:`repro.obs.diagnose` bundles both into ``repro diagnose``.

Tracing is strictly opt-in: every hook guards on
``recorder.enabled``, and the default :data:`NULL_RECORDER` keeps the
guard a single attribute read, so tracing-off runs pay no measurable
overhead (enforced by the ``python -m repro bench`` guard).
"""

from repro.obs.events import TraceEvent, TraceEventKind
from repro.obs.recorder import (
    NULL_RECORDER,
    JsonlRecorder,
    MemoryRecorder,
    NullRecorder,
    TraceRecorder,
    read_events,
)
from repro.obs.primitives import Counter, Histogram, MetricsRegistry
from repro.obs.derive import (
    DerivedMetrics,
    QueryAudit,
    audit_queries,
    classify_outcome,
    delivery_in_constraint,
    derive_metrics,
    render_audit_report,
)
from repro.obs.causality import (
    CausalityIndex,
    PushChain,
    PushTree,
    QueryCausality,
    ResponseCopy,
    assert_causal_consistency,
    build_causality,
    check_causal_consistency,
    render_push_timeline,
    render_query_timeline,
    summarize_causality,
)
from repro.obs.fidelity import (
    Calibration,
    FidelityReport,
    FidelityThresholds,
    assess_fidelity,
)
from repro.obs.diagnose import (
    Diagnosis,
    diagnosis_to_dict,
    render_diagnosis,
    run_diagnosis,
)
from repro.obs.profile import (
    NULL_PROFILER,
    NullProfiler,
    Profiler,
    activated,
    active_profiler,
    check_profile_tree,
    merge_profiles,
    render_profile_table,
    set_active_profiler,
)
from repro.obs.timeseries import (
    NULL_SAMPLER,
    NullTimeSeriesSampler,
    TimeSeriesSample,
    TimeSeriesSampler,
    merge_timeseries,
    summarize_timeseries,
)
from repro.obs.memory import (
    NULL_MEMORY_MONITOR,
    SUBSYSTEMS,
    MemoryMonitor,
    MemorySample,
    NullMemoryMonitor,
    check_memory_consistency,
    deep_sizeof,
    peak_rss_bytes,
    read_memory_log,
    render_memory_breakdown,
    render_memory_gauges,
    render_memory_table,
    write_memory_log,
)
from repro.obs.provenance import (
    build_manifest,
    config_hash,
    read_manifest,
    write_manifest,
)
from repro.obs.slo import (
    SLO_PRESETS,
    SLOEngine,
    SLORule,
    SLOTransition,
    parse_slo_rule,
)
from repro.obs.health import (
    ANOMALY_SIGNALS,
    CUSUMChangePoint,
    EWMADrift,
    HealthAnomaly,
    HealthMonitor,
    HealthReport,
    HealthSnapshot,
    check_health_consistency,
    read_health_log,
    render_health_table,
    render_prometheus,
    write_health_log,
)

__all__ = [
    "TraceEvent",
    "TraceEventKind",
    "TraceRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "MemoryRecorder",
    "JsonlRecorder",
    "read_events",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "DerivedMetrics",
    "QueryAudit",
    "audit_queries",
    "classify_outcome",
    "delivery_in_constraint",
    "derive_metrics",
    "render_audit_report",
    "CausalityIndex",
    "QueryCausality",
    "ResponseCopy",
    "PushChain",
    "PushTree",
    "build_causality",
    "check_causal_consistency",
    "assert_causal_consistency",
    "summarize_causality",
    "render_query_timeline",
    "render_push_timeline",
    "Calibration",
    "FidelityReport",
    "FidelityThresholds",
    "assess_fidelity",
    "Diagnosis",
    "run_diagnosis",
    "render_diagnosis",
    "diagnosis_to_dict",
    "Profiler",
    "NullProfiler",
    "NULL_PROFILER",
    "active_profiler",
    "activated",
    "set_active_profiler",
    "merge_profiles",
    "render_profile_table",
    "check_profile_tree",
    "TimeSeriesSample",
    "TimeSeriesSampler",
    "NullTimeSeriesSampler",
    "NULL_SAMPLER",
    "merge_timeseries",
    "summarize_timeseries",
    "SUBSYSTEMS",
    "peak_rss_bytes",
    "deep_sizeof",
    "MemorySample",
    "MemoryMonitor",
    "NullMemoryMonitor",
    "NULL_MEMORY_MONITOR",
    "check_memory_consistency",
    "write_memory_log",
    "read_memory_log",
    "render_memory_table",
    "render_memory_breakdown",
    "render_memory_gauges",
    "build_manifest",
    "config_hash",
    "read_manifest",
    "write_manifest",
    "SLORule",
    "SLOTransition",
    "SLOEngine",
    "SLO_PRESETS",
    "parse_slo_rule",
    "HealthSnapshot",
    "HealthAnomaly",
    "HealthReport",
    "HealthMonitor",
    "EWMADrift",
    "CUSUMChangePoint",
    "ANOMALY_SIGNALS",
    "check_health_consistency",
    "write_health_log",
    "read_health_log",
    "render_health_table",
    "render_prometheus",
]
