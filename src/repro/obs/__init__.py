"""Observability: structured lifecycle tracing and metric derivation.

Every data item and query in a simulation run has a lifecycle
(generated → pushed → cached@NCL → queried → responded → delivered /
expired).  This package records that lifecycle as span-like events,
persists them as JSONL, and *re-derives* the paper's evaluation metrics
(successful ratio, access delay, caching overhead) from the event
stream — an independent accounting path that is cross-checked against
the live counters of :class:`repro.metrics.collector.MetricsCollector`
(see :func:`repro.sim.invariants.check_trace_consistency`).

Tracing is strictly opt-in: every hook guards on
``recorder.enabled``, and the default :data:`NULL_RECORDER` keeps the
guard a single attribute read, so tracing-off runs pay no measurable
overhead (enforced by the ``python -m repro bench`` guard).
"""

from repro.obs.events import TraceEvent, TraceEventKind
from repro.obs.recorder import (
    NULL_RECORDER,
    JsonlRecorder,
    MemoryRecorder,
    NullRecorder,
    TraceRecorder,
    read_events,
)
from repro.obs.primitives import Counter, Histogram, MetricsRegistry
from repro.obs.derive import (
    DerivedMetrics,
    QueryAudit,
    audit_queries,
    derive_metrics,
    render_audit_report,
)
from repro.obs.profile import (
    NULL_PROFILER,
    NullProfiler,
    Profiler,
    activated,
    active_profiler,
    check_profile_tree,
    merge_profiles,
    render_profile_table,
    set_active_profiler,
)
from repro.obs.timeseries import (
    NULL_SAMPLER,
    NullTimeSeriesSampler,
    TimeSeriesSample,
    TimeSeriesSampler,
    merge_timeseries,
    summarize_timeseries,
)
from repro.obs.provenance import (
    build_manifest,
    config_hash,
    read_manifest,
    write_manifest,
)

__all__ = [
    "TraceEvent",
    "TraceEventKind",
    "TraceRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "MemoryRecorder",
    "JsonlRecorder",
    "read_events",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "DerivedMetrics",
    "QueryAudit",
    "audit_queries",
    "derive_metrics",
    "render_audit_report",
    "Profiler",
    "NullProfiler",
    "NULL_PROFILER",
    "active_profiler",
    "activated",
    "set_active_profiler",
    "merge_profiles",
    "render_profile_table",
    "check_profile_tree",
    "TimeSeriesSample",
    "TimeSeriesSampler",
    "NullTimeSeriesSampler",
    "NULL_SAMPLER",
    "merge_timeseries",
    "summarize_timeseries",
    "build_manifest",
    "config_hash",
    "read_manifest",
    "write_manifest",
]
