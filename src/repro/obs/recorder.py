"""Trace recorders — where lifecycle events go.

Three sinks cover the use cases:

* :class:`NullRecorder` — the default.  ``enabled`` is ``False`` and
  every hook in the simulator guards on it, so a tracing-off run costs
  one attribute read per hook site and allocates nothing.
* :class:`MemoryRecorder` — in-process list, for tests and for the
  consistency cross-check at the end of a traced run.
* :class:`JsonlRecorder` — append-only JSONL file, the persistent form
  consumed by ``python -m repro trace <run.jsonl>``.

The recorder API is intentionally one method (:meth:`emit`); hook sites
build the :class:`TraceEvent` themselves *after* checking ``enabled`` so
the event construction cost is also skipped when tracing is off.
"""

from __future__ import annotations

from pathlib import Path
from typing import IO, Iterable, List, Optional, Union

from repro.obs.events import TraceEvent

__all__ = [
    "TraceRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "MemoryRecorder",
    "JsonlRecorder",
    "read_events",
]


class TraceRecorder:
    """Base recorder: an ``enabled`` flag plus an :meth:`emit` sink."""

    #: hook sites skip event construction entirely when this is False
    enabled: bool = True

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any underlying resource (no-op by default)."""

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class NullRecorder(TraceRecorder):
    """Tracing off: every emit is a bug (hooks must guard on ``enabled``)."""

    enabled = False

    def emit(self, event: TraceEvent) -> None:
        # Tolerate stray emits rather than crash a live run; the guard
        # convention makes this path unreachable from repo code.
        pass


#: Shared default sink — stateless, so one instance serves the process.
NULL_RECORDER = NullRecorder()


class MemoryRecorder(TraceRecorder):
    """Collect events in a list (tests, end-of-run cross-checks)."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)


class JsonlRecorder(TraceRecorder):
    """Append events to a JSONL file, one event per line."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._file: Optional[IO[str]] = None
        self.emitted = 0

    def emit(self, event: TraceEvent) -> None:
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self.path.open("w", encoding="utf-8")
        self._file.write(event.to_json())
        self._file.write("\n")
        self.emitted += 1

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


def read_events(path: Union[str, Path]) -> List[TraceEvent]:
    """Load a JSONL trace back into :class:`TraceEvent` records."""
    events: List[TraceEvent] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_json(line))
    return events


def ensure_events(source: Union[str, Path, Iterable[TraceEvent]]) -> List[TraceEvent]:
    """Accept a path or an event iterable and return the event list."""
    if isinstance(source, (str, Path)):
        return read_events(source)
    return list(source)
