"""``repro diagnose`` — causal-chain + model-fidelity diagnosis of a run.

Thin orchestration over :mod:`repro.obs.causality` and
:mod:`repro.obs.fidelity`: build the causal index, cross-check it
bit-exactly against the derived metrics, assess model fidelity, and
render the result as Markdown (for terminals and ``repro report``
embedding) or a JSON document carrying the run's provenance stamp.

Consistency mismatches and fidelity threshold violations both land in
:attr:`Diagnosis.warnings`; ``repro diagnose --strict`` turns a
non-empty warning list into a non-zero exit code, which is what CI
gates on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.causality import (
    CausalityIndex,
    build_causality,
    check_causal_consistency,
    summarize_causality,
)
from repro.obs.events import TraceEvent
from repro.obs.fidelity import (
    Calibration,
    FidelityReport,
    FidelityThresholds,
    assess_fidelity,
)
from repro.traces.contact import ContactTrace

__all__ = [
    "Diagnosis",
    "run_diagnosis",
    "render_diagnosis",
    "diagnosis_to_dict",
]


@dataclass
class Diagnosis:
    """Everything one diagnose pass established about a run."""

    num_events: int
    causality: CausalityIndex
    summary: Dict[str, Any]
    consistency: List[str]
    fidelity: FidelityReport
    warnings: List[str] = field(default_factory=list)
    provenance: Optional[Dict[str, Any]] = None


def run_diagnosis(
    events: Iterable[TraceEvent],
    contact_trace: Optional[ContactTrace] = None,
    thresholds: Optional[FidelityThresholds] = None,
    provenance: Optional[Dict[str, Any]] = None,
) -> Diagnosis:
    """Diagnose a trace: causal chains, consistency, model fidelity."""
    events = list(events)
    causality = build_causality(events)
    consistency = check_causal_consistency(events, causality)
    fidelity = assess_fidelity(
        events, causality, contact_trace=contact_trace, thresholds=thresholds
    )
    warnings = [f"consistency: {m}" for m in consistency] + list(fidelity.warnings)
    return Diagnosis(
        num_events=len(events),
        causality=causality,
        summary=summarize_causality(causality),
        consistency=consistency,
        fidelity=fidelity,
        warnings=warnings,
        provenance=provenance,
    )


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "n/a"
        return f"{value:.4g}"
    return str(value)


def _calibration_lines(name: str, calibration: Optional[Calibration]) -> List[str]:
    if calibration is None:
        return [f"- {name}: no samples"]
    lines = [
        f"- {name}: {calibration.samples} samples, "
        f"Brier {_fmt(calibration.brier)}, max bin gap {_fmt(calibration.max_gap)}"
    ]
    for b in calibration.bins:
        lines.append(
            f"    [{b.lo:.1f}, {b.hi:.1f}): n={b.count} "
            f"predicted {_fmt(b.mean_predicted)} observed {_fmt(b.observed_rate)}"
        )
    return lines


def render_diagnosis(diagnosis: Diagnosis, level: int = 1) -> str:
    """The diagnosis as a Markdown document.

    *level* sets the top heading depth (2 when embedded as a section of
    ``repro report``).
    """
    h1, h2 = "#" * level, "#" * (level + 1)
    lines: List[str] = [f"{h1} Run diagnosis", ""]
    if diagnosis.provenance:
        config_hash = diagnosis.provenance.get("config_hash")
        git = diagnosis.provenance.get("git") or {}
        stamp = []
        if config_hash:
            stamp.append(f"config `{str(config_hash)[:12]}`")
        if git.get("revision"):
            dirty = "+dirty" if git.get("dirty") else ""
            stamp.append(f"git `{str(git['revision'])[:12]}{dirty}`")
        if stamp:
            lines += [f"_{', '.join(stamp)}_", ""]

    lines += [f"{h2} Causal chains", ""]
    for key, value in diagnosis.summary.items():
        lines.append(f"- {key.replace('_', ' ')}: {_fmt(value)}")
    lines.append("")

    lines += [f"{h2} Trace/chain consistency", ""]
    if diagnosis.consistency:
        lines += [f"- MISMATCH: {m}" for m in diagnosis.consistency]
    else:
        lines.append(
            f"- OK: causal chains reproduce the derived metrics bit-exactly "
            f"over {diagnosis.num_events} events"
        )
    lines.append("")

    fidelity = diagnosis.fidelity
    lines += [f"{h2} Model fidelity", ""]
    inter = fidelity.intercontact
    if inter is None:
        lines.append("- inter-contact: skipped (no contact trace available)")
    elif inter.pairs_fitted == 0:
        lines.append("- inter-contact: no pair had enough gaps to fit")
    else:
        lines.append(
            f"- inter-contact: {inter.pairs_fitted} pairs fitted "
            f"({inter.pairs_skipped} skipped), median KS "
            f"{_fmt(inter.median_ks)}, {inter.fraction_plausible:.0%} plausible"
        )
    if fidelity.delivery is None and inter is None:
        lines.append("- delivery calibration: skipped (no contact trace available)")
    else:
        lines += _calibration_lines("delivery calibration", fidelity.delivery)
    lines += _calibration_lines("response calibration", fidelity.response)
    lines += _calibration_lines("popularity calibration", fidelity.popularity)
    load = fidelity.load
    if load is None:
        lines.append("- NCL load: no completed push chains")
    else:
        shares = ", ".join(
            f"{central}: {count}" for central, count in sorted(load.counts.items())
        )
        lines.append(
            f"- NCL load: CV {_fmt(load.coefficient_of_variation)}, "
            f"max share {_fmt(load.max_share)} ({shares})"
        )
    lines.append("")

    lines += [f"{h2} Warnings", ""]
    if diagnosis.warnings:
        lines += [f"- WARN: {w}" for w in diagnosis.warnings]
    else:
        lines.append("- none")
    return "\n".join(lines) + "\n"


def diagnosis_to_dict(diagnosis: Diagnosis) -> Dict[str, Any]:
    """JSON-serialisable form of the diagnosis (for ``--json``)."""
    fidelity = diagnosis.fidelity
    return {
        "num_events": diagnosis.num_events,
        "summary": diagnosis.summary,
        "consistency": {
            "ok": not diagnosis.consistency,
            "mismatches": diagnosis.consistency,
        },
        "fidelity": {
            "intercontact": (
                fidelity.intercontact.as_row()
                if fidelity.intercontact is not None
                else None
            ),
            "delivery": (
                fidelity.delivery.as_dict() if fidelity.delivery else None
            ),
            "response": (
                fidelity.response.as_dict() if fidelity.response else None
            ),
            "popularity": (
                fidelity.popularity.as_dict() if fidelity.popularity else None
            ),
            "ncl_load": fidelity.load.as_dict() if fidelity.load else None,
            "thresholds": {
                "max_median_ks": fidelity.thresholds.max_median_ks,
                "max_delivery_brier": fidelity.thresholds.max_delivery_brier,
                "max_calibration_gap": fidelity.thresholds.max_calibration_gap,
                "max_load_cv": fidelity.thresholds.max_load_cv,
                "min_samples": fidelity.thresholds.min_samples,
            },
        },
        "warnings": diagnosis.warnings,
        "provenance": diagnosis.provenance,
    }
