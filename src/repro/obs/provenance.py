"""Run provenance: which exact configuration produced a result.

A :func:`build_manifest` call captures everything needed to reproduce
or audit a run:

* ``config`` — the run's deterministic inputs (trace, workload, scheme,
  simulator settings) as passed in by the caller;
* ``config_hash`` — sha256 over the canonical JSON of that config, so
  two runs with identical inputs hash identically regardless of dict
  ordering, and any drift in inputs is immediately visible;
* ``seeds`` — the root seeds of every repetition;
* ``git`` — current revision and dirty flag (best-effort: absent when
  not in a git checkout);
* ``kernel_backend`` — the requested/active kernel backend and whether
  numba was importable (execution detail: backends are bitwise
  equivalent, so this sits outside the hashed config);
* ``slo_rules`` — the live-health SLO rules a serve run monitored
  (observation detail: rules never influence the simulation, so they
  too sit outside the hashed config; absent when none were set);
* ``packages`` — versions of the scientific stack actually imported;
* ``platform`` — python version, implementation, OS.

Output paths, timestamps and host identity are deliberately excluded
from the hashed config: the hash identifies the *experiment*, not the
invocation, so re-running the same experiment elsewhere (or writing its
outputs to a different directory) yields the same ``config_hash``.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import sys
from typing import Any, Dict, Iterable, Mapping, Optional

__all__ = [
    "canonical_json",
    "config_hash",
    "build_manifest",
    "write_manifest",
    "read_manifest",
]

#: packages whose versions materially affect numeric results
_TRACKED_PACKAGES = ("numpy", "scipy", "networkx", "numba")


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, NaN rejected."""
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def config_hash(config: Mapping[str, Any]) -> str:
    """sha256 of the canonical JSON encoding of *config*."""
    return hashlib.sha256(canonical_json(config).encode("utf-8")).hexdigest()


def _git_info() -> Optional[Dict[str, Any]]:
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            timeout=5,
            check=True,
        ).stdout
    except (OSError, subprocess.SubprocessError):
        return None
    return {"revision": rev, "dirty": bool(status.strip())}


def _package_versions() -> Dict[str, str]:
    versions: Dict[str, str] = {}
    for name in _TRACKED_PACKAGES:
        module = sys.modules.get(name)
        if module is None:
            try:
                module = __import__(name)
            except ImportError:
                continue
        versions[name] = str(getattr(module, "__version__", "unknown"))
    return versions


def build_manifest(
    config: Mapping[str, Any],
    seeds: Iterable[int],
    slo_rules: Optional[Iterable[Any]] = None,
) -> Dict[str, Any]:
    """Assemble a run manifest (see module docstring for the fields)."""
    from repro.kernels import backend_status

    config = dict(config)
    manifest = {
        "config": config,
        "config_hash": config_hash(config),
        "seeds": sorted(int(seed) for seed in seeds),
        "git": _git_info(),
        # Execution detail, not experiment identity: backends are
        # bitwise-equivalent, so the kernel backend is stamped outside
        # the hashed config (like packages and platform).
        "kernel_backend": backend_status(),
        "packages": _package_versions(),
        "platform": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "system": platform.system(),
            "machine": platform.machine(),
        },
    }
    if slo_rules:
        # Observation detail: SLO rules watch the run without touching
        # it, so — like the backend — they are stamped outside the
        # hashed config for auditability.
        manifest["slo_rules"] = [
            rule.to_dict() if hasattr(rule, "to_dict") else dict(rule)
            for rule in slo_rules
        ]
    return manifest


def write_manifest(manifest: Mapping[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")


def read_manifest(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
