"""Phase profiler: nestable wall-clock spans with own/cumulative time.

The runtime companion of lifecycle tracing: where tracing answers *what
happened* to each item and query, the profiler answers *where the time
goes*.  A :class:`Profiler` keeps a stack of open spans; closing a span
attributes its elapsed wall-clock time to the span's *path* (the names
of every open ancestor plus its own), so the report is a tree in which
a child's cumulative time is always bounded by its parent's.

The zero-overhead convention matches tracing exactly: profiling is off
by default (:data:`NULL_PROFILER`, ``enabled = False``) and every hot
site reads ``enabled`` *before* opening a span, so an unprofiled run
pays one attribute read per site::

    prof = active_profiler()
    if prof.enabled:
        with prof.span("kernel.weight_matrix"):
            return _impl(...)
    return _impl(...)

Module-level kernels (``graph.paths``, ``graph.weight_cache``) reach the
run's profiler through :func:`active_profiler`; the simulator installs
its profiler for the duration of :meth:`Simulator.run` and restores the
previous one afterwards, so nothing leaks between runs (worker processes
of the parallel runner each have their own module state).

Profiles serialise to a flat ``{"a/b/c": {calls, own, cum}}`` dict
(:meth:`Profiler.as_dict`), merge additively across repetitions and
workers (:func:`merge_profiles`), and render as an indented Markdown
table (:func:`render_profile_table`).
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from time import perf_counter
from typing import ContextManager, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "Profiler",
    "NullProfiler",
    "NULL_PROFILER",
    "active_profiler",
    "set_active_profiler",
    "activated",
    "maybe_span",
    "merge_profiles",
    "render_profile_table",
    "check_profile_tree",
]

#: separator between span names in a serialised path
PATH_SEP = "/"


class _Record:
    """Aggregate stats of one span path."""

    __slots__ = ("calls", "cum", "own")

    def __init__(self) -> None:
        self.calls = 0
        self.cum = 0.0
        self.own = 0.0


class Profiler:
    """Nestable wall-clock span profiler (one per run, not thread-safe)."""

    #: hot sites skip span construction entirely when this is False
    enabled: bool = True

    def __init__(self) -> None:
        # Open frames: [name, start time, accumulated child time].
        self._stack: List[List[object]] = []
        self._records: Dict[Tuple[str, ...], _Record] = {}

    # --- span lifecycle -------------------------------------------------

    def start(self, name: str) -> None:
        """Open a span; every span opened until :meth:`stop` nests under it."""
        self._stack.append([name, perf_counter(), 0.0])

    def stop(self) -> None:
        """Close the innermost open span and record its timings."""
        name, started, child_time = self._stack.pop()
        elapsed = perf_counter() - started  # type: ignore[operator]
        path = tuple(frame[0] for frame in self._stack) + (name,)  # type: ignore[misc]
        record = self._records.get(path)
        if record is None:
            record = self._records[path] = _Record()
        record.calls += 1
        record.cum += elapsed
        record.own += max(elapsed - child_time, 0.0)  # type: ignore[operator]
        if self._stack:
            self._stack[-1][2] += elapsed  # type: ignore[operator]

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Context manager form of :meth:`start`/:meth:`stop`."""
        self.start(name)
        try:
            yield
        finally:
            self.stop()

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Record an already-measured leaf span under the current path.

        For sites that time a section themselves (cache hit latency);
        the parent's own time is reduced exactly as for a nested span.
        """
        path = tuple(frame[0] for frame in self._stack) + (name,)  # type: ignore[misc]
        record = self._records.get(path)
        if record is None:
            record = self._records[path] = _Record()
        record.calls += calls
        record.cum += seconds
        record.own += seconds
        if self._stack:
            self._stack[-1][2] += seconds  # type: ignore[operator]

    # --- reporting ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    @property
    def open_spans(self) -> int:
        return len(self._stack)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Serialise to ``{"a/b": {"calls": n, "own": s, "cum": s}}``."""
        return {
            PATH_SEP.join(path): {
                "calls": float(record.calls),
                "own": record.own,
                "cum": record.cum,
            }
            for path, record in sorted(self._records.items())
        }


class NullProfiler(Profiler):
    """Profiling off: every span is a bug (sites must guard on ``enabled``)."""

    enabled = False


#: Shared default — stateless in practice, so one instance serves the process.
NULL_PROFILER = NullProfiler()

#: the profiler module-level kernels report to (installed per run)
_ACTIVE: Profiler = NULL_PROFILER


def active_profiler() -> Profiler:
    """The profiler hot kernels should consult (``NULL_PROFILER`` when off)."""
    return _ACTIVE


def set_active_profiler(profiler: Optional[Profiler]) -> Profiler:
    """Install *profiler* as the active one; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = profiler if profiler is not None else NULL_PROFILER
    return previous


@contextmanager
def activated(profiler: Optional[Profiler]) -> Iterator[Profiler]:
    """Scope *profiler* as the active one, restoring the previous on exit."""
    previous = set_active_profiler(profiler)
    try:
        yield _ACTIVE
    finally:
        set_active_profiler(previous)


#: One shared inert context: ``maybe_span`` on a disabled profiler costs a
#: call plus this object's trivial enter/exit, never a span allocation.
_NULL_SPAN: ContextManager[None] = nullcontext()


def maybe_span(profiler: Profiler, name: str) -> ContextManager[None]:
    """A span on *profiler* when it is enabled, else an inert context.

    The single-``with`` form of the zero-overhead convention: call sites
    write ``with maybe_span(prof, "sim.contact"): ...`` once instead of
    duplicating the body across ``if prof.enabled:`` / ``else:`` branches.
    The ``enabled`` guard lives here, so the guard lint's contract (no
    span without a reachable ``.enabled`` read) is preserved by
    construction.
    """
    if profiler.enabled:
        return profiler.span(name)
    return _NULL_SPAN


def merge_profiles(
    profiles: Iterable[Mapping[str, Mapping[str, float]]]
) -> Dict[str, Dict[str, float]]:
    """Additively merge serialised profiles (across seeds and workers)."""
    merged: Dict[str, Dict[str, float]] = {}
    for profile in profiles:
        for path, stats in profile.items():
            into = merged.setdefault(path, {"calls": 0.0, "own": 0.0, "cum": 0.0})
            into["calls"] += float(stats.get("calls", 0.0))
            into["own"] += float(stats.get("own", 0.0))
            into["cum"] += float(stats.get("cum", 0.0))
    return {path: merged[path] for path in sorted(merged)}


def check_profile_tree(profile: Mapping[str, Mapping[str, float]]) -> None:
    """Assert the structural invariant of a span tree.

    For every parent path, the summed cumulative time of its direct
    children must not exceed the parent's cumulative time (children run
    inside their parent), modulo a small float tolerance.
    """
    children: Dict[str, float] = {}
    for path, stats in profile.items():
        parts = path.split(PATH_SEP)
        if len(parts) > 1:
            parent = PATH_SEP.join(parts[:-1])
            children[parent] = children.get(parent, 0.0) + float(stats["cum"])
    for parent, child_sum in children.items():
        if parent not in profile:
            continue
        parent_cum = float(profile[parent]["cum"])
        if child_sum > parent_cum * (1.0 + 1e-9) + 1e-9:
            raise ValueError(
                f"profile tree inconsistent at {parent!r}: children sum to "
                f"{child_sum:.6f}s > parent cumulative {parent_cum:.6f}s"
            )


def render_profile_table(profile: Mapping[str, Mapping[str, float]]) -> str:
    """Markdown table of a serialised profile, indented by span depth.

    Siblings are ordered by cumulative time (descending) within their
    parent; the tree order makes the children-within-parent containment
    visible at a glance.
    """
    if not profile:
        return "(no spans recorded)"

    by_parent: Dict[str, List[str]] = {}
    for path in profile:
        parts = path.split(PATH_SEP)
        parent = PATH_SEP.join(parts[:-1])
        by_parent.setdefault(parent, []).append(path)
    for paths in by_parent.values():
        paths.sort(key=lambda p: -float(profile[p]["cum"]))

    lines = [
        "| span | calls | own (s) | cum (s) |",
        "|---|---:|---:|---:|",
    ]

    def emit(path: str, depth: int) -> None:
        stats = profile[path]
        name = path.split(PATH_SEP)[-1]
        indent = "&nbsp;&nbsp;" * depth
        lines.append(
            f"| {indent}{name} | {int(stats['calls'])} "
            f"| {stats['own']:.6f} | {stats['cum']:.6f} |"
        )
        for child in by_parent.get(path, []):
            emit(child, depth + 1)

    for root in by_parent.get("", []):
        emit(root, 0)
    return "\n".join(lines)
