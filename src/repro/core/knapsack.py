"""0/1 knapsack solver for cache replacement (paper Eq. 7).

When two caching nodes meet, the higher-priority node selects which items
from the joint selection pool to keep, maximising total utility under its
buffer capacity — a 0/1 knapsack solved "in pseudo-polynomial time
O(n · S_A) by dynamic programming" (Sec. V-D2).

Buffer capacities in this library are in **bits** (hundreds of megabits),
so a literal O(n · S_A) table is infeasible; the solver first quantises
sizes to a resolution chosen so the capacity axis has at most
``max_capacity_units`` cells.  Item sizes are rounded **up** and the
capacity **down**, so a quantised solution never overfills the real
buffer (it may only be slightly conservative — the error is bounded by
one resolution unit per item and covered by property tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, List, Sequence, Tuple

from repro.errors import KnapsackError

__all__ = ["KnapsackItem", "KnapsackSolution", "solve_knapsack"]


@dataclass(frozen=True)
class KnapsackItem:
    """One candidate item: an opaque key, a non-negative value (utility),
    and a positive integral size (bits)."""

    key: Hashable
    value: float
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise KnapsackError(f"item {self.key!r} has non-positive size {self.size}")
        if not math.isfinite(self.value) or self.value < 0:
            raise KnapsackError(f"item {self.key!r} has invalid value {self.value}")


@dataclass(frozen=True)
class KnapsackSolution:
    """Selected items plus totals; `selected` preserves input order."""

    selected: Tuple[KnapsackItem, ...]
    total_value: float
    total_size: int

    @property
    def keys(self) -> Tuple[Hashable, ...]:
        return tuple(item.key for item in self.selected)


def _resolution_for(capacity: int, max_capacity_units: int) -> int:
    if capacity <= max_capacity_units:
        return 1
    return math.ceil(capacity / max_capacity_units)


def solve_knapsack(
    items: Sequence[KnapsackItem],
    capacity: int,
    max_capacity_units: int = 4096,
) -> KnapsackSolution:
    """Solve the 0/1 knapsack over *items* with buffer *capacity* (bits).

    Returns the utility-maximising subset under quantisation (see module
    docstring).  Deterministic: ties are resolved by preferring items
    earlier in the input sequence.
    """
    if capacity < 0:
        raise KnapsackError(f"capacity must be non-negative, got {capacity}")
    if max_capacity_units < 1:
        raise KnapsackError("max_capacity_units must be >= 1")
    items = list(items)
    if not items or capacity == 0:
        return KnapsackSolution(selected=(), total_value=0.0, total_size=0)

    resolution = _resolution_for(capacity, max_capacity_units)
    cap_units = capacity // resolution
    sizes = [math.ceil(item.size / resolution) for item in items]

    feasible = [
        (item, size) for item, size in zip(items, sizes) if size <= cap_units
    ]
    if not feasible:
        return KnapsackSolution(selected=(), total_value=0.0, total_size=0)

    n = len(feasible)
    width = cap_units + 1
    # value[w] = best value with capacity w; keep[i][w] = item i taken at w.
    values = [0.0] * width
    keep: List[List[bool]] = []
    for i, (item, size) in enumerate(feasible):
        keep_row = [False] * width
        # Iterate capacity descending: classic 1-D 0/1 knapsack update.
        for w in range(cap_units, size - 1, -1):
            candidate = values[w - size] + item.value
            if candidate > values[w]:
                values[w] = candidate
                keep_row[w] = True
        keep.append(keep_row)

    # Traceback from full capacity.
    selected_indices: List[int] = []
    w = cap_units
    for i in range(n - 1, -1, -1):
        if keep[i][w]:
            selected_indices.append(i)
            w -= feasible[i][1]
    selected_indices.reverse()

    selected = tuple(feasible[i][0] for i in selected_indices)
    return KnapsackSolution(
        selected=selected,
        total_value=sum(item.value for item in selected),
        total_size=sum(item.size for item in selected),
    )
