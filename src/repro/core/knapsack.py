"""0/1 knapsack solver for cache replacement (paper Eq. 7).

When two caching nodes meet, the higher-priority node selects which items
from the joint selection pool to keep, maximising total utility under its
buffer capacity — a 0/1 knapsack solved "in pseudo-polynomial time
O(n · S_A) by dynamic programming" (Sec. V-D2).

Buffer capacities in this library are in **bits** (hundreds of megabits),
so a literal O(n · S_A) table is infeasible; the solver first quantises
sizes to a resolution chosen so the capacity axis has at most
``max_capacity_units`` cells.  Item sizes are rounded **up** and the
capacity **down**, so a quantised solution never overfills the real
buffer.

Quantisation bound.  Rounding can only *exclude* value, never overfill:
the solution is optimal for the quantised instance, and the true optimum
exceeds it by at most the value displaced when each selected item grows
by under one resolution unit (≤ n·resolution bits of phantom occupancy).
One failure mode of naive rounding is repaired explicitly: an item whose
rounded-up size exceeds the rounded-down capacity may still *truly* fit
(its real size lies in ``(cap_units·resolution, capacity]``, a window
narrower than one resolution unit).  At most one such item fits at a
time — any two of them sum past the capacity — so after the DP the best
truly-fitting oversize item replaces the DP selection when its value
strictly beats the DP total (ties prefer the DP solution, and among
oversize items the earliest highest-value one wins, preserving the
solver's determinism contract).  What remains unrepaired is bounded:
combining one oversize item with sub-resolution leftovers can be missed,
costing at most the value packable into one resolution unit.

The DP table fill is the registered ``knapsack_dp`` kernel: the pure
Python loop in :func:`_reference_knapsack_dp` is the oracle, and the
numba backend runs the same strict-improvement recurrence compiled —
identical additions and comparisons, hence bitwise-identical keep tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import KnapsackError
from repro.kernels.registry import kernel_override

__all__ = ["KnapsackItem", "KnapsackSolution", "KnapsackPool", "solve_knapsack"]


@dataclass(frozen=True)
class KnapsackItem:
    """One candidate item: an opaque key, a non-negative value (utility),
    and a positive integral size (bits)."""

    key: Hashable
    value: float
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise KnapsackError(f"item {self.key!r} has non-positive size {self.size}")
        if not math.isfinite(self.value) or self.value < 0:
            raise KnapsackError(f"item {self.key!r} has invalid value {self.value}")


@dataclass(frozen=True)
class KnapsackSolution:
    """Selected items plus totals; `selected` preserves input order."""

    selected: Tuple[KnapsackItem, ...]
    total_value: float
    total_size: int

    @property
    def keys(self) -> Tuple[Hashable, ...]:
        return tuple(item.key for item in self.selected)


_EMPTY_SOLUTION = KnapsackSolution(selected=(), total_value=0.0, total_size=0)


def _resolution_for(capacity: int, max_capacity_units: int) -> int:
    if capacity <= max_capacity_units:
        return 1
    return math.ceil(capacity / max_capacity_units)


def _reference_knapsack_dp(
    values: Sequence[float], sizes: Sequence[int], cap_units: int
) -> List[List[bool]]:
    """Pure-Python 1-D 0/1 knapsack fill — the ``knapsack_dp`` oracle.

    Returns the keep table (``keep[i][w]`` = item *i* taken at capacity
    *w*); ties resolve toward earlier items via the strict ``>``.
    """
    width = cap_units + 1
    best = [0.0] * width
    keep: List[List[bool]] = []
    for value, size in zip(values, sizes):
        keep_row = [False] * width
        # Iterate capacity descending: classic 1-D 0/1 knapsack update.
        for w in range(cap_units, size - 1, -1):
            candidate = best[w - size] + value
            if candidate > best[w]:
                best[w] = candidate
                keep_row[w] = True
        keep.append(keep_row)
    return keep


def _knapsack_keep(values: List[float], sizes: List[int], cap_units: int):
    """Dispatch point of the ``knapsack_dp`` kernel.

    Returns either the python list-of-lists table or the compiled
    backend's boolean array — the traceback only indexes ``keep[i][w]``,
    which both support with identical contents.
    """
    override = kernel_override("knapsack_dp")
    if override is not None:
        return override(
            np.asarray(values, dtype=float),
            np.asarray(sizes, dtype=np.int64),
            cap_units,
        )
    return _reference_knapsack_dp(values, sizes, cap_units)


def _solve(
    items: Sequence[KnapsackItem],
    capacity: int,
    max_capacity_units: int,
    qsize_cache: Optional[Dict[int, Dict[int, int]]],
) -> KnapsackSolution:
    """Shared solver core behind :func:`solve_knapsack` and
    :meth:`KnapsackPool.solve` (one code path keeps them bitwise equal)."""
    if capacity < 0:
        raise KnapsackError(f"capacity must be non-negative, got {capacity}")
    if max_capacity_units < 1:
        raise KnapsackError("max_capacity_units must be >= 1")
    items = list(items)
    if not items or capacity == 0:
        return _EMPTY_SOLUTION

    resolution = _resolution_for(capacity, max_capacity_units)
    cap_units = capacity // resolution
    if qsize_cache is None:
        sizes = [math.ceil(item.size / resolution) for item in items]
    else:
        # Memoised per (resolution, raw size): math.ceil of the same
        # float division, so cached and uncached paths agree bitwise.
        table = qsize_cache.setdefault(resolution, {})
        sizes = []
        for item in items:
            quantised = table.get(item.size)
            if quantised is None:
                quantised = math.ceil(item.size / resolution)
                table[item.size] = quantised
            sizes.append(quantised)

    feasible = [
        (item, size) for item, size in zip(items, sizes) if size <= cap_units
    ]
    # Singleton repair (see module docstring): the best item whose
    # rounded-up size overflows the quantised capacity but whose true
    # size fits.  Strict > keeps earlier items on value ties.
    best_single: Optional[KnapsackItem] = None
    for item, size in zip(items, sizes):
        if size > cap_units and item.size <= capacity:
            if best_single is None or item.value > best_single.value:
                best_single = item

    if not feasible:
        if best_single is not None and best_single.value > 0.0:
            return KnapsackSolution(
                selected=(best_single,),
                total_value=best_single.value,
                total_size=best_single.size,
            )
        return _EMPTY_SOLUTION

    keep = _knapsack_keep(
        [item.value for item, _ in feasible],
        [size for _, size in feasible],
        cap_units,
    )

    # Traceback from full capacity.
    selected_indices: List[int] = []
    w = cap_units
    for i in range(len(feasible) - 1, -1, -1):
        if keep[i][w]:
            selected_indices.append(i)
            w -= feasible[i][1]
    selected_indices.reverse()

    selected = tuple(feasible[i][0] for i in selected_indices)
    total_value = sum(item.value for item in selected)
    if best_single is not None and best_single.value > total_value:
        return KnapsackSolution(
            selected=(best_single,),
            total_value=best_single.value,
            total_size=best_single.size,
        )
    return KnapsackSolution(
        selected=selected,
        total_value=total_value,
        total_size=sum(item.size for item in selected),
    )


def solve_knapsack(
    items: Sequence[KnapsackItem],
    capacity: int,
    max_capacity_units: int = 4096,
) -> KnapsackSolution:
    """Solve the 0/1 knapsack over *items* with buffer *capacity* (bits).

    Returns the utility-maximising subset under quantisation (see module
    docstring).  Deterministic: ties are resolved by preferring items
    earlier in the input sequence.
    """
    return _solve(items, capacity, max_capacity_units, qsize_cache=None)


class KnapsackPool:
    """Shared quantisation cache for the repeated Eq. 7 solves of a tick.

    Algorithm 1 re-solves the knapsack once per round per side over
    overlapping item sets and shrinking capacities, and the simulator
    may run several exchanges in one tick.  A pool memoises every item
    size's quantisation per resolution, so each pool member is rounded
    once per resolution instead of once per solve; on the numba backend
    the compiled DP additionally reuses one keep-table scratch across
    solves.  Results are those of :func:`solve_knapsack` call-for-call
    (same code path), so batching is bitwise-invisible.
    """

    def __init__(self, max_capacity_units: int = 4096):
        if max_capacity_units < 1:
            raise KnapsackError("max_capacity_units must be >= 1")
        self._max_capacity_units = int(max_capacity_units)
        self._qsize_cache: Dict[int, Dict[int, int]] = {}

    def solve(
        self, items: Sequence[KnapsackItem], capacity: int
    ) -> KnapsackSolution:
        """Exactly :func:`solve_knapsack`, with the pool's caches."""
        return _solve(items, capacity, self._max_capacity_units, self._qsize_cache)
