"""Data items and queries (paper Sec. III-C).

Each node may generate data with a globally unique identifier, a size,
and a finite lifetime, and may request data by issuing queries carrying a
finite time constraint.  Both objects are immutable value types; all
mutable bookkeeping (where copies live, whether a query was satisfied)
belongs to the simulator and metrics layers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import ClassVar

from repro.errors import ConfigurationError

__all__ = ["DataItem", "Query"]


@dataclass(frozen=True)
class DataItem:
    """An immutable data item.

    Attributes
    ----------
    data_id:
        Globally unique identifier.
    source:
        Node id of the generator.
    size:
        Size in bits (integral, for the knapsack DP).
    created_at / expires_at:
        Lifetime bounds in simulation seconds.
    """

    data_id: int
    source: int
    size: int
    created_at: float
    expires_at: float

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(f"data size must be positive, got {self.size}")
        if self.expires_at <= self.created_at:
            raise ConfigurationError(
                f"data {self.data_id} expires at {self.expires_at} "
                f"<= creation {self.created_at}"
            )

    @property
    def lifetime(self) -> float:
        return self.expires_at - self.created_at

    def is_expired(self, now: float) -> bool:
        return now >= self.expires_at

    def remaining_lifetime(self, now: float) -> float:
        return max(0.0, self.expires_at - now)


@dataclass(frozen=True)
class Query:
    """A query for one data item, with a finite time constraint.

    The paper's evaluation sets the constraint to half the average data
    lifetime (Sec. VI-A2); the constraint is carried on the query so each
    relay can compute the elapsed/remaining time of Sec. V-C.
    """

    query_id: int
    requester: int
    data_id: int
    created_at: float
    time_constraint: float

    _id_counter: ClassVar[itertools.count] = itertools.count()

    def __post_init__(self) -> None:
        if self.time_constraint <= 0:
            raise ConfigurationError("query time constraint must be positive")

    @classmethod
    def create(
        cls,
        requester: int,
        data_id: int,
        created_at: float,
        time_constraint: float,
    ) -> "Query":
        """Create a query with a fresh process-unique id."""
        return cls(
            query_id=next(cls._id_counter),
            requester=requester,
            data_id=data_id,
            created_at=created_at,
            time_constraint=time_constraint,
        )

    @property
    def expires_at(self) -> float:
        return self.created_at + self.time_constraint

    def is_expired(self, now: float) -> bool:
        return now >= self.expires_at

    def elapsed(self, now: float) -> float:
        """Elapsed query time t₀ (clamped to [0, T_q])."""
        return min(max(0.0, now - self.created_at), self.time_constraint)

    def remaining(self, now: float) -> float:
        """Remaining time T_q − t₀ before the constraint expires."""
        return self.time_constraint - self.elapsed(now)
