"""Probabilistic response strategies (paper Sec. V-C).

Multiple NCLs may all hold a copy of the requested data; only the first
copy that reaches the requester is useful, so each caching node decides
*probabilistically* whether to respond at all.  Two strategies are given
by the paper, chosen by how much network state a node maintains:

* :class:`PathAwareResponse` — with unconstrained storage a node knows
  its shortest opportunistic path to every node, and responds with
  probability p_CR(T_q − t₀): the weight of its path to the requester
  evaluated at the query's *remaining* time.
* :class:`SigmoidResponse` — with only per-NCL state the node falls back
  to Eq. (4)'s sigmoid of the query's *elapsed* time (see the
  interpretation note in :mod:`repro.mathutils.sigmoid`).

:class:`AlwaysRespond` disables the optimisation (every caching node
replies), which is the natural ablation baseline for the overhead/
accessibility trade-off the paper discusses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

import numpy as np

from repro.core.data import Query
from repro.graph.contact_graph import ContactGraph
from repro.graph.paths import PathMode
from repro.graph.weight_cache import shared_weight_cache
from repro.mathutils.hypoexponential import path_delivery_probability
from repro.mathutils.sigmoid import ResponseSigmoid

__all__ = [
    "ResponseDecision",
    "ResponseStrategy",
    "AlwaysRespond",
    "SigmoidResponse",
    "PathAwareResponse",
]


@dataclass(frozen=True)
class ResponseDecision:
    """Outcome of one response decision, kept for metrics/auditing."""

    respond: bool
    probability: float
    strategy: str


class ResponseStrategy(Protocol):
    """A caching node's respond-or-not policy."""

    def decide(
        self,
        query: Query,
        now: float,
        caching_node: int,
        rng: np.random.Generator,
    ) -> ResponseDecision:
        """Decide whether *caching_node* returns its cached copy."""
        ...


class AlwaysRespond:
    """Deterministically respond — the no-optimisation ablation."""

    name = "always"

    def decide(
        self,
        query: Query,
        now: float,
        caching_node: int,
        rng: np.random.Generator,
    ) -> ResponseDecision:
        return ResponseDecision(respond=True, probability=1.0, strategy=self.name)


class SigmoidResponse:
    """Eq. (4): respond with probability p_R(t₀) of the elapsed time.

    Parameters mirror the paper: ``p_max ∈ (0, 1]`` and
    ``p_min ∈ (p_max/2, p_max)``; k₂ depends on the query's own time
    constraint T_q, so sigmoids are memoised per distinct T_q (the
    workload typically uses one constraint for every query).

    The elapsed time t₀ is clamped to [0, T_q] **before** Eq. (4) is
    evaluated: a late-forwarded query with t₀ > T_q would otherwise
    extrapolate the sigmoid past p_max (its supremum is k₁ = 2·p_min,
    which exceeds p_max whenever p_min > p_max/2 — i.e. always), and a
    clock skew giving t₀ < 0 would drop the probability below p_min.
    """

    name = "sigmoid"

    def __init__(self, p_min: float = 0.45, p_max: float = 0.8):
        # Validate eagerly with a representative constraint; per-query
        # sigmoids reuse the same (p_min, p_max).
        ResponseSigmoid(p_min, p_max, time_constraint=1.0)
        self._p_min = p_min
        self._p_max = p_max
        self._sigmoids: dict = {}

    @property
    def p_min(self) -> float:
        return self._p_min

    @property
    def p_max(self) -> float:
        return self._p_max

    def _sigmoid_for(self, time_constraint: float) -> ResponseSigmoid:
        sigmoid = self._sigmoids.get(time_constraint)
        if sigmoid is None:
            sigmoid = self._sigmoids[time_constraint] = ResponseSigmoid(
                self._p_min, self._p_max, time_constraint
            )
        return sigmoid

    def probability(self, query: Query, now: float) -> float:
        sigmoid = self._sigmoid_for(query.time_constraint)
        # Query.elapsed clamps to [0, T_q]; ResponseSigmoid.__call__
        # clamps again, so the bound survives any caller handing raw
        # ``now - created_at`` deltas to the sigmoid directly.
        return sigmoid(query.elapsed(now))

    def decide(
        self,
        query: Query,
        now: float,
        caching_node: int,
        rng: np.random.Generator,
    ) -> ResponseDecision:
        probability = self.probability(query, now)
        return ResponseDecision(
            respond=bool(rng.random() < probability),
            probability=probability,
            strategy=self.name,
        )


class PathAwareResponse:
    """Respond with probability p_CR(T_q − t₀), the weight of the node's
    shortest opportunistic path to the requester over the remaining time.

    Requires a contact-graph snapshot; the simulator refreshes it through
    :meth:`update_graph`.  Falls back to a configurable floor probability
    when the requester is unreachable on the snapshot (rate estimates may
    lag reality, and a zero floor would starve such requesters forever).
    """

    name = "path_aware"

    def __init__(
        self,
        graph: Optional[ContactGraph] = None,
        mode: PathMode = PathMode.EXPECTED_DELAY,
        floor: float = 0.05,
    ):
        if not 0.0 <= floor <= 1.0:
            raise ValueError("floor must be a probability")
        self._graph = graph
        self._mode = mode
        self._floor = floor

    def update_graph(self, graph: ContactGraph) -> None:
        self._graph = graph

    def probability(self, query: Query, now: float, caching_node: int) -> float:
        remaining = query.remaining(now)
        if remaining <= 0.0:
            return 0.0
        if self._graph is None:
            return self._floor
        # Expected-delay paths don't depend on the budget, so the hop-rate
        # tuples come from the shared content-keyed cache and only the
        # Eq. (2) evaluation runs per decision.
        tuples = shared_weight_cache().rate_tuples(
            self._graph, caching_node, remaining, self._mode
        )
        rates = tuples.get(query.requester)
        if rates is None:
            return self._floor
        return max(self._floor, path_delivery_probability(rates, remaining))

    def decide(
        self,
        query: Query,
        now: float,
        caching_node: int,
        rng: np.random.Generator,
    ) -> ResponseDecision:
        probability = self.probability(query, now, caching_node)
        return ResponseDecision(
            respond=bool(rng.random() < probability),
            probability=probability,
            strategy=self.name,
        )
