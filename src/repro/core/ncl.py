"""NCL selection metric and top-K central-node selection (paper Sec. IV).

The metric of node *i* (Eq. 3) is

    Cᵢ = (1 / (N−1)) · Σ_{j≠i} p_{ji}(T),

the average probability that data reaches *i* from a uniformly random
node within the time budget T along the shortest opportunistic path.
Contact rates are symmetric, so p_{ji} = p_{ij} and one single-source
computation per node suffices.

The network administrator selects the top-K metric nodes as central nodes
before any data access (Sec. IV-A); :func:`select_ncls` reproduces that
step and also records, for every node, its closest central node — used by
the caching scheme's utility weighting.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.contact_graph import ContactGraph
from repro.graph.paths import PathMode, _reference_shortest_path_weights_from
from repro.graph.sparse import _reference_knn_weight_rows
from repro.graph.weight_cache import shared_weight_cache
from repro.mathutils.hypoexponential import hypoexponential_cdf_batch, pad_rate_rows

__all__ = [
    "DEFAULT_KNN_K",
    "ncl_metric",
    "ncl_metrics",
    "sparse_ncl_metrics",
    "_reference_ncl_metrics",
    "_reference_sparse_ncl_metrics",
    "select_ncls",
    "select_ncls_by",
    "calibrate_time_budget",
    "NCLSelection",
    "SELECTION_STRATEGIES",
]

#: Default k-NN truncation width for sparse-graph NCL metrics.  Real DTN
#: contact graphs concentrate almost all of a node's Eq. 3 mass in its
#: few dozen best-connected peers (weights decay with expected delay);
#: 32 keeps the truncated sum within the noise floor of rate estimation
#: while holding the per-source sweep O(k·degree·log).
DEFAULT_KNN_K = 32


def ncl_metric(
    graph: ContactGraph,
    node: int,
    time_budget: float,
    mode: PathMode = PathMode.EXPECTED_DELAY,
) -> float:
    """The Eq. (3) metric Cᵢ of a single node."""
    if graph.num_nodes < 2:
        raise ConfigurationError("NCL metric needs at least two nodes")
    weights = shared_weight_cache().weights(graph, node, time_budget, mode)
    # Exclude the node itself (its trivial path has weight 1).
    return float((weights.sum() - weights[node]) / (graph.num_nodes - 1))


def ncl_metrics(
    graph: ContactGraph,
    time_budget: float,
    mode: PathMode = PathMode.EXPECTED_DELAY,
    knn_k: Optional[int] = None,
) -> np.ndarray:
    """Vector of Eq. (3) metrics for every node in the graph.

    Dense graphs run through the vectorized all-pairs weight matrix (one
    scipy Dijkstra + one batched Eq. 2 evaluation, cached per graph
    content); :func:`_reference_ncl_metrics` is the retained pure-Python
    oracle.  Sparse graphs — or any graph when *knn_k* is given — route
    to :func:`sparse_ncl_metrics`, which never allocates N×N.

    Registered as the *derived* kernel ``ncl_metrics``: its hot loop is
    the ``weight_matrix`` kernel (compiled under the numba backend),
    while the row reduction below deliberately stays in shared numpy
    code on every backend — ``np.sum`` accumulates pairwise, which a
    sequential compiled loop cannot reproduce bitwise.
    """
    if graph.num_nodes < 2:
        raise ConfigurationError("NCL metric needs at least two nodes")
    if graph.is_sparse or knn_k is not None:
        return sparse_ncl_metrics(
            graph, time_budget, knn_k or DEFAULT_KNN_K, mode
        )
    weights = shared_weight_cache().weight_matrix(graph, time_budget, mode)
    return (weights.sum(axis=1) - np.diag(weights)) / (graph.num_nodes - 1)


def sparse_ncl_metrics(
    graph: ContactGraph,
    time_budget: float,
    k: int = DEFAULT_KNN_K,
    mode: PathMode = PathMode.EXPECTED_DELAY,
) -> np.ndarray:
    """Eq. (3) metrics over the k-NN truncated sparse weight rows.

    A lower bound on :func:`ncl_metrics` that converges monotonically as
    *k* grows (truncation only drops non-negative terms) and matches the
    full metric to oracle tolerance once ``k >= N-1``.  Registered as
    the *derived* kernel ``sparse_ncl_metrics``: its hot loop is the
    ``knn_weight_rows`` kernel; the row-sum reduction stays in shared
    sequential ``np.bincount`` code on every backend.
    """
    if graph.num_nodes < 2:
        raise ConfigurationError("NCL metric needs at least two nodes")
    rows = shared_weight_cache().knn_rows(graph, time_budget, k, mode)
    return rows.row_sums() / (graph.num_nodes - 1)


def _reference_sparse_ncl_metrics(
    graph: ContactGraph,
    time_budget: float,
    k: int = DEFAULT_KNN_K,
) -> np.ndarray:
    """Dense pure-python oracle for :func:`sparse_ncl_metrics`: row means
    of the dense :func:`_reference_knn_weight_rows` matrix (full
    reference Dijkstra per source, truncated afterwards).  Property
    tests pin the sparse kernel path to this at 1e-9."""
    if graph.num_nodes < 2:
        raise ConfigurationError("NCL metric needs at least two nodes")
    dense = _reference_knn_weight_rows(graph, time_budget, k)
    return (dense.sum(axis=1) - np.diag(dense)) / (graph.num_nodes - 1)


def _reference_ncl_metrics(
    graph: ContactGraph,
    time_budget: float,
    mode: PathMode = PathMode.EXPECTED_DELAY,
) -> np.ndarray:
    """Pure-Python oracle for :func:`ncl_metrics` (N independent Dijkstras
    with per-path scalar Eq. 2 evaluation); property tests and the kernel
    benchmarks assert agreement with the vectorized path to 1e-9."""
    if graph.num_nodes < 2:
        raise ConfigurationError("NCL metric needs at least two nodes")
    metrics = np.zeros(graph.num_nodes)
    for node in range(graph.num_nodes):
        weights = _reference_shortest_path_weights_from(graph, node, time_budget, mode)
        metrics[node] = (weights.sum() - weights[node]) / (graph.num_nodes - 1)
    return metrics


@dataclass(frozen=True)
class NCLSelection:
    """Result of the administrator's NCL selection.

    Attributes
    ----------
    central_nodes:
        Node ids of the K selected central nodes, highest metric first.
    metrics:
        The full Eq. (3) metric vector (all nodes).
    time_budget:
        The T used in the metric.
    nearest_central:
        For each node, the central node with the highest path weight from
        it (ties broken toward the higher-metric central node); ``-1``
        for nodes disconnected from every NCL.
    weights_to_central:
        ``weights_to_central[c]`` is the path-weight vector from central
        node *c* to every node (symmetric, so also node→c weights).
    """

    central_nodes: Tuple[int, ...]
    metrics: np.ndarray
    time_budget: float
    nearest_central: np.ndarray
    weights_to_central: Dict[int, np.ndarray]

    @property
    def k(self) -> int:
        return len(self.central_nodes)

    def is_central(self, node: int) -> bool:
        return node in self.central_nodes

    def weight_to(self, node: int, central: int) -> float:
        """Path weight p(T) between *node* and central node *central*."""
        return float(self.weights_to_central[central][node])

    def best_weight(self, node: int) -> float:
        """Path weight from *node* to its nearest central node."""
        central = int(self.nearest_central[node])
        if central < 0:
            return 0.0
        return self.weight_to(node, central)

    def rank_of(self, node: int) -> Optional[int]:
        """0-based rank of *node* among central nodes, or ``None``."""
        try:
            return self.central_nodes.index(node)
        except ValueError:
            return None


def select_ncls(
    graph: ContactGraph,
    k: int,
    time_budget: float,
    mode: PathMode = PathMode.EXPECTED_DELAY,
    knn_k: Optional[int] = None,
) -> NCLSelection:
    """Select the top-K central nodes by the Eq. (3) metric.

    Ties are broken by node id so the selection is deterministic.
    Sparse graphs rank by the k-NN truncated metric (*knn_k*, defaulting
    to :data:`DEFAULT_KNN_K`); the per-central weight vectors are still
    exact single-source sweeps.
    """
    if k < 1:
        raise ConfigurationError("at least one NCL is required")
    if k > graph.num_nodes:
        raise ConfigurationError(
            f"cannot select {k} NCLs from {graph.num_nodes} nodes"
        )
    metrics = ncl_metrics(graph, time_budget, mode, knn_k=knn_k)
    order: List[int] = sorted(
        range(graph.num_nodes), key=lambda n: (-metrics[n], n)
    )
    return _build_selection(graph, tuple(order[:k]), metrics, time_budget, mode)


def _build_selection(
    graph: ContactGraph,
    central_nodes: Tuple[int, ...],
    metrics: np.ndarray,
    time_budget: float,
    mode: PathMode,
) -> NCLSelection:
    cache = shared_weight_cache()
    weights_to_central = {
        c: cache.weights(graph, c, time_budget, mode) for c in central_nodes
    }
    nearest = np.full(graph.num_nodes, -1, dtype=int)
    best = np.zeros(graph.num_nodes)
    for c in central_nodes:  # iteration order = selection priority
        weights = weights_to_central[c]
        better = weights > best
        nearest[better] = c
        best[better] = weights[better]
    return NCLSelection(
        central_nodes=central_nodes,
        metrics=metrics,
        time_budget=time_budget,
        nearest_central=nearest,
        weights_to_central=weights_to_central,
    )


def _rank_by_degree(graph: ContactGraph) -> List[int]:
    return sorted(range(graph.num_nodes), key=lambda n: (-graph.degree(n), n))


def _rank_by_aggregate_rate(graph: ContactGraph) -> List[int]:
    totals = graph.aggregate_rates()
    return sorted(range(graph.num_nodes), key=lambda n: (-totals[n], n))


#: strategies accepted by :func:`select_ncls_by` — the Eq. (3) metric the
#: paper proposes plus the cheaper heuristics its ablations should be
#: compared against (degree centrality, total contact rate, random).
SELECTION_STRATEGIES = ("metric", "degree", "aggregate_rate", "random")


def select_ncls_by(
    graph: ContactGraph,
    k: int,
    time_budget: float,
    strategy: str = "metric",
    mode: PathMode = PathMode.EXPECTED_DELAY,
    seed: int = 0,
    knn_k: Optional[int] = None,
) -> NCLSelection:
    """Select K central nodes by an alternative ranking strategy.

    ``"metric"`` is the paper's Eq. (3) selection (identical to
    :func:`select_ncls`); ``"degree"`` ranks by contact-graph degree,
    ``"aggregate_rate"`` by total contact rate, and ``"random"`` draws a
    seeded uniform sample — the ablations for Sec. IV's claim that
    *appropriate* NCL selection matters.

    The returned :class:`NCLSelection` still carries the Eq. (3) metric
    vector so the quality of the chosen centrals can be inspected.
    """
    if strategy not in SELECTION_STRATEGIES:
        raise ConfigurationError(
            f"unknown selection strategy {strategy!r}; choose from {SELECTION_STRATEGIES}"
        )
    if strategy == "metric":
        return select_ncls(graph, k, time_budget, mode, knn_k=knn_k)
    if k < 1 or k > graph.num_nodes:
        raise ConfigurationError(
            f"cannot select {k} NCLs from {graph.num_nodes} nodes"
        )
    if strategy == "degree":
        order = _rank_by_degree(graph)
    elif strategy == "aggregate_rate":
        order = _rank_by_aggregate_rate(graph)
    else:  # random
        rng = np.random.default_rng(seed)
        order = list(rng.permutation(graph.num_nodes))
    central_nodes = tuple(int(n) for n in order[:k])
    metrics = ncl_metrics(graph, time_budget, mode, knn_k=knn_k)
    return _build_selection(graph, central_nodes, metrics, time_budget, mode)


def calibrate_time_budget(
    graph: ContactGraph,
    target_median: float = 0.5,
    mode: PathMode = PathMode.EXPECTED_DELAY,
    sample_sources: Optional[int] = None,
    seed: int = 0,
    tolerance: float = 0.05,
    max_iterations: int = 40,
) -> float:
    """Choose the metric time budget T adaptively (paper Sec. IV-B).

    "Inappropriate values of T will make C_i close to 0 or 1 ...
    different values of T are used adaptively ... to ensure the
    differentiation of the NCL selection metric values."  This helper
    automates that choice: binary-search the T at which the *median*
    node metric hits ``target_median``, so the distribution is neither
    saturated at 1 nor collapsed at 0.

    In EXPECTED_DELAY mode shortest paths are independent of T, so the
    per-source path computation runs once and only the hypoexponential
    weights are re-evaluated per probe.  ``sample_sources`` restricts
    the calibration to a random subset of source nodes for large graphs.
    """
    if not 0.0 < target_median < 1.0:
        raise ConfigurationError("target_median must be in (0, 1)")
    if graph.num_nodes < 2:
        raise ConfigurationError("calibration needs at least two nodes")

    sources = list(range(graph.num_nodes))
    if sample_sources is not None and sample_sources < len(sources):
        rng = np.random.default_rng(seed)
        sources = sorted(rng.choice(sources, size=sample_sources, replace=False))

    # Precompute hop-rate tuples once (paths don't depend on T in
    # expected-delay mode; in max-probability mode this is a fixed-point
    # approximation anchored at a mid-range budget).  The tuples come from
    # the shared weight cache, and every bisection probe evaluates all of
    # them in a single batched Eq. (2) call.
    anchor = 1.0
    positive = [rate for _, _, rate in graph.edges()]
    if positive:
        anchor = 1.0 / float(np.median(positive))
    cache = shared_weight_cache()
    all_rates = []
    segments = []  # parallel to all_rates: index into *sources*
    for index, source in enumerate(sources):
        tuples = cache.rate_tuples(graph, source, max(anchor, 1.0), mode)
        for node, rates in tuples.items():
            if node != source:
                all_rates.append(rates)
                segments.append(index)
    padded = pad_rate_rows(all_rates)
    segments = np.asarray(segments, dtype=int)

    def median_metric(budget: float) -> float:
        totals = np.zeros(len(sources))
        if len(all_rates):
            probabilities = hypoexponential_cdf_batch(padded, budget)
            np.add.at(totals, segments, probabilities)
        return float(np.median(totals / (graph.num_nodes - 1)))

    # Bracket the target.
    lo, hi = anchor, anchor
    for _ in range(60):
        if median_metric(lo) <= target_median:
            break
        lo /= 2.0
    for _ in range(60):
        if median_metric(hi) >= target_median:
            break
        hi *= 2.0
    if median_metric(hi) < target_median:
        return hi  # graph too sparse to ever reach the target
    for _ in range(max_iterations):
        mid = math.sqrt(lo * hi)  # geometric bisection on a time scale
        value = median_metric(mid)
        if abs(value - target_median) <= tolerance:
            return mid
        if value < target_median:
            lo = mid
        else:
            hi = mid
    return math.sqrt(lo * hi)
