"""Cache-replacement policies (paper Sec. V-D, evaluated in Fig. 12).

Two operations make up a policy:

* **admit** — a single node receives a new item and must decide what, if
  anything, to evict.  This is the classic cache-replacement setting and
  is all that FIFO, LRU, and Greedy-Dual-Size define.
* **exchange** — the paper's pairwise operation: when two *caching nodes*
  meet, their cached items are pooled and re-partitioned so the more
  central node keeps the most useful data (Eq. 7 knapsack with
  Algorithm 1's probabilistic selection).  For the traditional policies
  the exchange degenerates to each policy's own priority order, which is
  exactly the comparison Fig. 12 runs.

The paper's utility of item *i* at node *n* is the product of the item's
popularity wᵢ (Eq. 6) and the node's path weight to its nearest central
node, which "places popular data nearer to the central nodes" — the node
with the higher weight (p_A > p_B in Fig. 8) selects first.  Utilities
are supplied by the caller through :class:`ExchangeContext` so the policy
layer stays independent of the caching scheme.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.buffer import CacheBuffer
from repro.core.data import DataItem
from repro.core.knapsack import KnapsackItem, KnapsackPool


def _memo_utility(
    utility: Callable[[DataItem], float],
) -> Callable[[DataItem], float]:
    """Memoise a utility function by data id for the span of one exchange.

    Scheme utilities (popularity × NCL path weight) only change when
    queries are observed, never from buffer puts inside an exchange, so
    caching the first call per item is bitwise-invisible while removing
    the per-round recomputation from Algorithm 1's loop.
    """
    cache: Dict[str, float] = {}

    def wrapped(item: DataItem) -> float:
        value = cache.get(item.data_id)
        if value is None:
            value = utility(item)
            cache[item.data_id] = value
        return value

    return wrapped

__all__ = [
    "ExchangeContext",
    "ExchangeResult",
    "ReplacementPolicy",
    "FIFOPolicy",
    "LRUPolicy",
    "GreedyDualSizePolicy",
    "UtilityKnapsackPolicy",
]


@dataclass
class ExchangeContext:
    """Everything a policy may need to score items during an exchange.

    Attributes
    ----------
    now:
        Current simulation time (drives expiry and popularity horizons).
    utility_a / utility_b:
        Utility of a data item *as seen by* node A / node B.  For the
        paper's policy this is popularity × path-weight-to-central; the
        traditional policies ignore it.
    rng:
        Random stream for Algorithm 1's Bernoulli draws.
    exempt_a / exempt_b:
        Optional predicates marking items in A's / B's buffer that are
        excluded from the exchange and stay where they are (the paper's
        footnote 4: newly generated, never-requested data undergoes no
        replacement at its relay).
    dedup:
        When True (default), an item cached at both nodes collapses to
        one copy — Eq. (7)'s constraint xᵢ + yᵢ ≤ 1, the paper's
        coordination of cached data *within* an NCL.  Caching nodes of
        two different NCLs each hold their own NCL's copy ("one copy of
        data is cached at each NCL"), so their exchanges run with
        ``dedup=False``: common items sit out the exchange on both
        sides.
    observer:
        Optional observability hook called with the
        :class:`ExchangeResult` before the exchange returns (the tracing
        layer emits an EXCHANGE event from it).
    """

    now: float
    utility_a: Callable[[DataItem], float]
    utility_b: Callable[[DataItem], float]
    rng: np.random.Generator
    exempt_a: Optional[Callable[[DataItem], bool]] = None
    exempt_b: Optional[Callable[[DataItem], bool]] = None
    dedup: bool = True
    observer: Optional[Callable[["ExchangeResult"], None]] = None

    def notify(self, result: "ExchangeResult") -> "ExchangeResult":
        """Run the observer hook (if any) and pass the result through."""
        if self.observer is not None:
            self.observer(result)
        return result


@dataclass(frozen=True)
class ExchangeResult:
    """Outcome of a pairwise exchange, for the Fig. 12(c) overhead metric.

    ``moved`` counts items that changed holder; ``dropped`` are items that
    fit in neither buffer and left the cache entirely.
    """

    kept_a: Tuple[DataItem, ...]
    kept_b: Tuple[DataItem, ...]
    dropped: Tuple[DataItem, ...]
    moved: int
    bits_transferred: int


class ReplacementPolicy(abc.ABC):
    """Interface shared by all replacement policies."""

    #: short name used in reports and experiment configs
    name: str = "abstract"

    @abc.abstractmethod
    def admit(
        self,
        buffer: CacheBuffer,
        item: DataItem,
        now: float,
        utility: Optional[Callable[[DataItem], float]] = None,
    ) -> bool:
        """Make room for *item* (evicting per policy) and insert it.

        Returns ``True`` iff the item ended up cached.  Expired items are
        always evicted first, whatever the policy.
        """

    @abc.abstractmethod
    def exchange(
        self,
        buffer_a: CacheBuffer,
        buffer_b: CacheBuffer,
        context: ExchangeContext,
    ) -> ExchangeResult:
        """Re-partition the two buffers' contents on contact."""

    # --- shared helpers -------------------------------------------------

    @staticmethod
    def _drop_expired(buffer: CacheBuffer, now: float) -> None:
        buffer.evict_expired(now)

    @staticmethod
    def _withdraw_pool(
        buffer_a: CacheBuffer,
        buffer_b: CacheBuffer,
        context: ExchangeContext,
    ) -> List[DataItem]:
        """Remove every non-exempt item from both buffers and return the
        deduplicated selection pool.  Exempt items stay in place and keep
        occupying their buffer's capacity."""
        exempt_a = context.exempt_a or (lambda item: False)
        exempt_b = context.exempt_b or (lambda item: False)
        shared: set = set()
        if not context.dedup:
            # Items cached on both sides are distinct NCLs' copies: both
            # stay in place (see ExchangeContext.dedup).
            ids_a = {d.data_id for d in buffer_a.items()}
            shared = {d.data_id for d in buffer_b.items() if d.data_id in ids_a}
        pool: List[DataItem] = []
        seen: set = set()
        for item in buffer_a.items():
            if exempt_a(item) or item.data_id in shared:
                continue
            buffer_a.remove(item.data_id)
            pool.append(item)
            seen.add(item.data_id)
        for item in buffer_b.items():
            if exempt_b(item) or item.data_id in shared:
                continue
            buffer_b.remove(item.data_id)
            if item.data_id not in seen:
                pool.append(item)
        return pool

    @staticmethod
    def _result(
        before_a: Dict[int, DataItem],
        before_b: Dict[int, DataItem],
        kept_a: Sequence[DataItem],
        kept_b: Sequence[DataItem],
        dropped: Sequence[DataItem],
    ) -> ExchangeResult:
        moved = 0
        bits = 0
        for item in kept_a:
            if item.data_id not in before_a:
                moved += 1
                bits += item.size
        for item in kept_b:
            if item.data_id not in before_b:
                moved += 1
                bits += item.size
        return ExchangeResult(
            kept_a=tuple(kept_a),
            kept_b=tuple(kept_b),
            dropped=tuple(dropped),
            moved=moved,
            bits_transferred=bits,
        )


class _OrderedPolicy(ReplacementPolicy):
    """Base for policies defined by a linear keep-priority order."""

    def _eviction_order(self, buffer: CacheBuffer) -> List[DataItem]:
        """Items in eviction order: first element is evicted first."""
        raise NotImplementedError

    def _keep_priority(
        self, item: DataItem, context: ExchangeContext
    ) -> float:
        """Score used to rank pooled items during exchange (higher kept)."""
        raise NotImplementedError

    def admit(
        self,
        buffer: CacheBuffer,
        item: DataItem,
        now: float,
        utility: Optional[Callable[[DataItem], float]] = None,
    ) -> bool:
        self._drop_expired(buffer, now)
        if item.size > buffer.capacity:
            return False
        if buffer.put(item):
            return True
        for victim in self._eviction_order(buffer):
            buffer.remove(victim.data_id)
            if buffer.put(item):
                return True
        return buffer.put(item)

    def exchange(
        self,
        buffer_a: CacheBuffer,
        buffer_b: CacheBuffer,
        context: ExchangeContext,
    ) -> ExchangeResult:
        """Pool both caches; refill A then B in keep-priority order."""
        self._drop_expired(buffer_a, context.now)
        self._drop_expired(buffer_b, context.now)
        before_a = {d.data_id: d for d in buffer_a.items()}
        before_b = {d.data_id: d for d in buffer_b.items()}
        pool = self._withdraw_pool(buffer_a, buffer_b, context)
        pool.sort(key=lambda d: (-self._keep_priority(d, context), d.data_id))
        kept_a: List[DataItem] = []
        kept_b: List[DataItem] = []
        dropped: List[DataItem] = []
        for item in pool:
            if buffer_a.put(item):
                kept_a.append(item)
            elif buffer_b.put(item):
                kept_b.append(item)
            else:
                dropped.append(item)
        return context.notify(
            self._result(before_a, before_b, kept_a, kept_b, dropped)
        )


class FIFOPolicy(_OrderedPolicy):
    """Evict the oldest-inserted item first; keep the newest on exchange."""

    name = "fifo"

    def _eviction_order(self, buffer: CacheBuffer) -> List[DataItem]:
        return buffer.insertion_order()

    def _keep_priority(self, item: DataItem, context: ExchangeContext) -> float:
        # Newest data (latest creation) is kept preferentially — the
        # closest pooled analogue of FIFO's insertion recency.
        return item.created_at


class LRUPolicy(_OrderedPolicy):
    """Evict the least-recently-used item first."""

    name = "lru"

    def __init__(self) -> None:
        # Pairwise exchange pools items from two buffers whose access
        # counters are incomparable; we track global access recency here.
        self._last_access: Dict[int, float] = {}

    def record_access(self, data_id: int, now: float) -> None:
        """Note a cache hit (the scheme calls this when serving queries)."""
        self._last_access[data_id] = now

    def _eviction_order(self, buffer: CacheBuffer) -> List[DataItem]:
        return buffer.access_order()

    def _keep_priority(self, item: DataItem, context: ExchangeContext) -> float:
        return self._last_access.get(item.data_id, item.created_at)


class GreedyDualSizePolicy(ReplacementPolicy):
    """Greedy-Dual-Size [Cao & Irani]: H(i) = L + value(i) / size(i).

    The inflation term L rises to the H of each evicted item, aging
    resident entries.  The value function defaults to 1 (GDS(1), the
    classic web variant); the caching scheme plugs in data popularity so
    Fig. 12 compares GDS on the same signal as the paper's policy.
    """

    name = "gds"

    def __init__(self, value_fn: Optional[Callable[[DataItem], float]] = None):
        self._value_fn = value_fn or (lambda item: 1.0)
        self._inflation = 0.0
        self._h: Dict[int, float] = {}

    @property
    def inflation(self) -> float:
        return self._inflation

    def _h_value(self, item: DataItem) -> float:
        h = self._h.get(item.data_id)
        if h is None:
            h = self._inflation + self._value_fn(item) / item.size
            self._h[item.data_id] = h
        return h

    def refresh(self, item: DataItem) -> None:
        """On a cache hit, restore H to the current-inflation value."""
        self._h[item.data_id] = self._inflation + self._value_fn(item) / item.size

    def admit(
        self,
        buffer: CacheBuffer,
        item: DataItem,
        now: float,
        utility: Optional[Callable[[DataItem], float]] = None,
    ) -> bool:
        self._drop_expired(buffer, now)
        if item.size > buffer.capacity:
            return False
        if buffer.put(item):
            self._h_value(item)
            return True
        # Evict minimum-H items until the new item fits.
        while not buffer.fits(item) and len(buffer):
            victim = min(buffer.items(), key=lambda d: (self._h_value(d), d.data_id))
            self._inflation = max(self._inflation, self._h_value(victim))
            buffer.remove(victim.data_id)
            self._h.pop(victim.data_id, None)
        if buffer.put(item):
            self._h.pop(item.data_id, None)
            self._h_value(item)
            return True
        return False

    def exchange(
        self,
        buffer_a: CacheBuffer,
        buffer_b: CacheBuffer,
        context: ExchangeContext,
    ) -> ExchangeResult:
        self._drop_expired(buffer_a, context.now)
        self._drop_expired(buffer_b, context.now)
        before_a = {d.data_id: d for d in buffer_a.items()}
        before_b = {d.data_id: d for d in buffer_b.items()}
        pool = self._withdraw_pool(buffer_a, buffer_b, context)
        pool.sort(key=lambda d: (-self._h_value(d), d.data_id))
        kept_a: List[DataItem] = []
        kept_b: List[DataItem] = []
        dropped: List[DataItem] = []
        for item in pool:
            if buffer_a.put(item):
                kept_a.append(item)
            elif buffer_b.put(item):
                kept_b.append(item)
            else:
                self._inflation = max(self._inflation, self._h_value(item))
                self._h.pop(item.data_id, None)
                dropped.append(item)
        return context.notify(
            self._result(before_a, before_b, kept_a, kept_b, dropped)
        )


class UtilityKnapsackPolicy(ReplacementPolicy):
    """The paper's replacement policy: Eq. (7) + Algorithm 1.

    On contact, the two caches form a selection pool.  Node A — by
    convention the node whose utilities are given by
    ``context.utility_a``, which the caching scheme arranges to be the
    node with the higher path weight to its central node — selects items
    with the knapsack DP, accepting each DP-selected item with
    probability equal to its (clamped) utility; the selection loop
    repeats so the buffer fills up (Algorithm 1).  Node B then runs the
    same procedure on the remainder.  Items fitting in neither buffer are
    dropped.

    ``probabilistic=False`` disables Algorithm 1 and keeps the pure DP
    selection — the "basic strategy" of Sec. V-D2, exposed for the
    ablation benchmark.
    """

    name = "utility_knapsack"

    def __init__(self, probabilistic: bool = True, max_rounds: int = 8):
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        self.probabilistic = probabilistic
        self.max_rounds = max_rounds
        # Shared across all exchanges this policy handles: one size
        # quantisation (and, on compiled backends, one DP scratch) per
        # tick-wide pool instead of a per-solve recompute.
        self._pool = KnapsackPool()

    # --- admit: utility-ordered eviction ------------------------------

    def admit(
        self,
        buffer: CacheBuffer,
        item: DataItem,
        now: float,
        utility: Optional[Callable[[DataItem], float]] = None,
    ) -> bool:
        """Single-node admission: keep the utility-maximising subset of
        {cached items} ∪ {new item} via the same knapsack."""
        self._drop_expired(buffer, now)
        if item.size > buffer.capacity:
            return False
        if buffer.put(item):
            return True
        utility = utility or (lambda d: 0.0)
        pool = buffer.items() + [item]
        solution = self._pool.solve(
            [
                KnapsackItem(key=d.data_id, value=self._admit_value(d, item, utility), size=d.size)
                for d in pool
            ],
            buffer.capacity,
        )
        keep = set(solution.keys)
        for cached in buffer.items():
            if cached.data_id not in keep:
                buffer.remove(cached.data_id)
        if item.data_id in keep:
            return buffer.put(item)
        return False

    @staticmethod
    def _admit_value(
        candidate: DataItem, incoming: DataItem, utility: Callable[[DataItem], float]
    ) -> float:
        # Epsilon nudge so a zero-utility incoming item still displaces
        # nothing but can occupy genuinely free space deterministically.
        base = max(0.0, utility(candidate))
        return base + (1e-12 if candidate.data_id == incoming.data_id else 0.0)

    # --- exchange: Eq. (7) + Algorithm 1 ----------------------------------

    def exchange(
        self,
        buffer_a: CacheBuffer,
        buffer_b: CacheBuffer,
        context: ExchangeContext,
    ) -> ExchangeResult:
        self._drop_expired(buffer_a, context.now)
        self._drop_expired(buffer_b, context.now)
        before_a = {d.data_id: d for d in buffer_a.items()}
        before_b = {d.data_id: d for d in buffer_b.items()}
        pool = self._withdraw_pool(buffer_a, buffer_b, context)

        # One utility evaluation per (side, item) per exchange; see
        # _memo_utility for why this is bitwise-invisible.
        utility_a = _memo_utility(context.utility_a)
        utility_b = _memo_utility(context.utility_b)
        kept_a = self._select_for(buffer_a, pool, utility_a, context)
        remainder = [d for d in pool if d.data_id not in {x.data_id for x in kept_a}]
        kept_b = self._select_for(buffer_b, remainder, utility_b, context)
        kept_b_ids = {x.data_id for x in kept_b}
        leftover = [d for d in remainder if d.data_id not in kept_b_ids]

        # Probabilistic selection decides *placement*; data leaves the
        # cache only under space pressure (Fig. 8b removes d6 because
        # neither node can hold it).  Stuff unselected items into whatever
        # space remains, best utility first, before declaring them dropped.
        leftover.sort(
            key=lambda d: (
                -max(utility_a(d), utility_b(d)),
                d.data_id,
            )
        )
        dropped: List[DataItem] = []
        for item in leftover:
            if item.is_expired(context.now):
                dropped.append(item)
            elif buffer_b.put(item):
                kept_b.append(item)
            elif buffer_a.put(item):
                kept_a.append(item)
            else:
                dropped.append(item)
        return context.notify(
            self._result(before_a, before_b, kept_a, kept_b, dropped)
        )

    def _select_for(
        self,
        buffer: CacheBuffer,
        pool: Sequence[DataItem],
        utility: Callable[[DataItem], float],
        context: ExchangeContext,
    ) -> List[DataItem]:
        """Algorithm 1 at one node: repeated DP + Bernoulli acceptance."""
        remaining = [d for d in pool if not d.is_expired(context.now)]
        selected: List[DataItem] = []
        for _ in range(self.max_rounds):
            remaining = [d for d in remaining if d.size <= buffer.free]
            if not remaining:
                break
            solution = self._pool.solve(
                [
                    KnapsackItem(
                        key=d.data_id,
                        value=min(1.0, max(0.0, utility(d))),
                        size=d.size,
                    )
                    for d in remaining
                ],
                buffer.free,
            )
            if not solution.selected:
                break
            by_id = {d.data_id: d for d in remaining}
            # Walk DP-selected items in descending utility (Algorithm 1's
            # inner loop) and Bernoulli-accept each with its utility.
            ordered = sorted(
                solution.selected, key=lambda k: (-k.value, k.key)
            )
            accepted_this_round = 0
            for kitem in ordered:
                item = by_id[kitem.key]
                if item.size > buffer.free:
                    continue
                accept_probability = kitem.value if self.probabilistic else 1.0
                if not self.probabilistic or context.rng.random() < accept_probability:
                    if buffer.put(item):
                        selected.append(item)
                        remaining.remove(item)
                        accepted_this_round += 1
            if not self.probabilistic:
                break
            if accepted_this_round == 0:
                # Every Bernoulli failed (e.g. all utilities ~0); a further
                # round would loop on the same pool. Guarantee progress by
                # deterministically keeping the top-utility DP pick, which
                # preserves Algorithm 1's "buffer fully utilized" goal.
                top = by_id[ordered[0].key]
                if top.size <= buffer.free and buffer.put(top):
                    selected.append(top)
                    remaining.remove(top)
                else:
                    break
        return selected
