"""Data-popularity estimation (paper Sec. V-D1, Eq. 5–6).

The occurrences of past requests to a data item are modelled as a Poisson
process with rate λ_d = k / (t_k − t₁) estimated from the k requests
observed in [t₁, t_k] (Eq. 5).  The *popularity* of the item is the
probability it is requested at least once more before it expires at t_e
(Eq. 6):

    w = 1 − e^{−λ_d · (t_e − t_k)}.

A node needs only a counter and two timestamps per item — the negligible
space overhead the paper claims — which is exactly what
:class:`repro.mathutils.poisson.RateEstimator` stores with the
``first_event`` anchor.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.mathutils.poisson import RateEstimator, poisson_probability_at_least_one

__all__ = ["PopularityEstimator", "PopularityTable"]


class PopularityEstimator:
    """Popularity of a single data item from its observed request history."""

    __slots__ = ("_rates",)

    def __init__(self) -> None:
        self._rates = RateEstimator(anchor="first_event")

    @property
    def request_count(self) -> int:
        return self._rates.count

    def record_request(self, timestamp: float) -> None:
        """Record one observed request (query) for the item."""
        self._rates.record(timestamp)

    def request_rate(self) -> float:
        """λ_d of Eq. (5); 0 until two distinct request times exist."""
        return self._rates.rate(now=0.0)  # 'first_event' anchor ignores now

    def popularity(self, expires_at: float) -> float:
        """w of Eq. (6): P(another request before *expires_at*).

        The horizon runs from the last observed request t_k to the data's
        expiration t_e.  Items never requested (or requested once, so no
        rate is estimable) get popularity 0 — the paper's footnote 3:
        newly created data initially has low utility.
        """
        rate = self.request_rate()
        if rate <= 0.0:
            return 0.0
        horizon = expires_at - self._rates.last_event_time
        return poisson_probability_at_least_one(rate, horizon)

    def merge(self, other: "PopularityEstimator") -> None:
        """Fold another node's observed history into this estimator.

        Caching nodes exchange request-history summaries during cache
        replacement so both sides score data on the union of what they
        have seen.
        """
        self._rates.merge_counts(other._rates)


class PopularityTable:
    """Per-node table of :class:`PopularityEstimator`s keyed by data id."""

    def __init__(self) -> None:
        self._estimators: Dict[int, PopularityEstimator] = {}

    def __len__(self) -> int:
        return len(self._estimators)

    def __contains__(self, data_id: int) -> bool:
        return data_id in self._estimators

    def items(self) -> Iterator[Tuple[int, PopularityEstimator]]:
        return iter(self._estimators.items())

    def estimator(self, data_id: int) -> PopularityEstimator:
        """The estimator for *data_id*, created on first access."""
        est = self._estimators.get(data_id)
        if est is None:
            est = PopularityEstimator()
            self._estimators[data_id] = est
        return est

    def record_request(self, data_id: int, timestamp: float) -> None:
        self.estimator(data_id).record_request(timestamp)

    def popularity(self, data_id: int, expires_at: float) -> float:
        est = self._estimators.get(data_id)
        return est.popularity(expires_at) if est else 0.0

    def request_count(self, data_id: int) -> int:
        est = self._estimators.get(data_id)
        return est.request_count if est else 0

    def merge_from(self, other: "PopularityTable") -> None:
        """Merge another node's table into this one (both directions are
        applied by the caller during a contact)."""
        for data_id, est in other._estimators.items():
            self.estimator(data_id).merge(est)

    def forget(self, data_id: int) -> None:
        """Drop the history of an expired item to bound memory."""
        self._estimators.pop(data_id, None)
