"""Core contribution of the paper: NCL caching building blocks.

* :mod:`repro.core.data` — data items and queries.
* :mod:`repro.core.ncl` — NCL selection metric and top-K selection (Eq. 3).
* :mod:`repro.core.popularity` — Poisson data-popularity estimation (Eq. 5–6).
* :mod:`repro.core.response` — probabilistic response strategies (Sec. V-C).
* :mod:`repro.core.knapsack` — 0/1 knapsack DP for Eq. (7).
* :mod:`repro.core.buffer` — node cache buffers.
* :mod:`repro.core.replacement` — cache-replacement policies, including
  the paper's utility-knapsack policy with Algorithm 1.
"""

from repro.core.buffer import CacheBuffer
from repro.core.data import DataItem, Query
from repro.core.knapsack import KnapsackItem, KnapsackSolution, solve_knapsack
from repro.core.ncl import NCLSelection, ncl_metric, ncl_metrics, select_ncls
from repro.core.popularity import PopularityEstimator, PopularityTable
from repro.core.response import (
    PathAwareResponse,
    ResponseDecision,
    SigmoidResponse,
    AlwaysRespond,
)
from repro.core.replacement import (
    FIFOPolicy,
    GreedyDualSizePolicy,
    LRUPolicy,
    ReplacementPolicy,
    UtilityKnapsackPolicy,
)

__all__ = [
    "CacheBuffer",
    "DataItem",
    "Query",
    "KnapsackItem",
    "KnapsackSolution",
    "solve_knapsack",
    "NCLSelection",
    "ncl_metric",
    "ncl_metrics",
    "select_ncls",
    "PopularityEstimator",
    "PopularityTable",
    "ResponseDecision",
    "PathAwareResponse",
    "SigmoidResponse",
    "AlwaysRespond",
    "ReplacementPolicy",
    "FIFOPolicy",
    "LRUPolicy",
    "GreedyDualSizePolicy",
    "UtilityKnapsackPolicy",
]
