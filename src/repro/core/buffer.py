"""Per-node cache buffer.

Each node has a finite caching buffer (paper Sec. III-C; sizes uniform in
[200 Mb, 600 Mb] in the evaluation).  The buffer tracks occupancy in
bits, insertion order (FIFO), and last-access times (LRU), and evicts
expired items eagerly.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.data import DataItem
from repro.errors import BufferError_

__all__ = ["CacheBuffer"]


class CacheBuffer:
    """A size-bounded container of :class:`DataItem`s.

    The buffer never silently evicts to make room — callers (replacement
    policies) own that decision; :meth:`put` simply refuses when the item
    does not fit.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise BufferError_(f"buffer capacity must be positive, got {capacity}")
        self._capacity = int(capacity)
        self._items: Dict[int, DataItem] = {}
        self._used = 0
        self._sequence = itertools.count()
        self._inserted_at: Dict[int, int] = {}   # data_id -> insertion seq no
        self._accessed_at: Dict[int, int] = {}   # data_id -> last access seq no
        self._version = 0                        # bumped on every content change
        self._expiry_cache: Optional[Tuple[int, np.ndarray]] = None

    # --- capacity accounting ---------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def used(self) -> int:
        return self._used

    @property
    def free(self) -> int:
        return self._capacity - self._used

    def fits(self, item: DataItem) -> bool:
        return item.size <= self.free

    @property
    def version(self) -> int:
        """Monotone counter bumped on every content change.

        Lets callers (the simulator's periodic tick, node holdings)
        cache derived views and invalidate them only when the buffer
        actually changed.
        """
        return self._version

    def live_count(self, now: float) -> int:
        """Number of cached items not yet expired at *now*.

        Uses a version-tagged expiry array so the per-tick sampling cost
        is one vectorised comparison instead of a Python loop per item.
        """
        cache = self._expiry_cache
        if cache is None or cache[0] != self._version:
            cache = (
                self._version,
                np.array([d.expires_at for d in self._items.values()]),
            )
            self._expiry_cache = cache
        # DataItem.is_expired is `now >= expires_at`, so live means >.
        return int(np.count_nonzero(cache[1] > now))

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, data_id: int) -> bool:
        return data_id in self._items

    def __iter__(self) -> Iterator[DataItem]:
        return iter(list(self._items.values()))

    def data_ids(self) -> List[int]:
        return list(self._items.keys())

    def items(self) -> List[DataItem]:
        return list(self._items.values())

    # --- mutation ----------------------------------------------------------

    def put(self, item: DataItem) -> bool:
        """Insert *item*; returns ``False`` (buffer unchanged) if it does
        not fit.  Re-inserting an already-cached item refreshes nothing
        and returns ``True``."""
        if item.data_id in self._items:
            return True
        if item.size > self.free:
            return False
        seq = next(self._sequence)
        self._items[item.data_id] = item
        self._inserted_at[item.data_id] = seq
        self._accessed_at[item.data_id] = seq
        self._used += item.size
        self._version += 1
        return True

    def get(self, data_id: int) -> Optional[DataItem]:
        """Fetch an item and mark it accessed (for LRU)."""
        item = self._items.get(data_id)
        if item is not None:
            self._accessed_at[data_id] = next(self._sequence)
        return item

    def peek(self, data_id: int) -> Optional[DataItem]:
        """Fetch without touching access metadata."""
        return self._items.get(data_id)

    def remove(self, data_id: int) -> Optional[DataItem]:
        item = self._items.pop(data_id, None)
        if item is not None:
            self._used -= item.size
            self._inserted_at.pop(data_id, None)
            self._accessed_at.pop(data_id, None)
            self._version += 1
        return item

    def clear(self) -> List[DataItem]:
        """Remove and return every cached item (used by exchange)."""
        items = self.items()
        self._items.clear()
        self._inserted_at.clear()
        self._accessed_at.clear()
        self._used = 0
        self._version += 1
        return items

    def evict_expired(self, now: float) -> List[DataItem]:
        """Drop all items expired at *now*; returns what was dropped."""
        expired = [item for item in self._items.values() if item.is_expired(now)]
        for item in expired:
            self.remove(item.data_id)
        return expired

    # --- ordering views (for FIFO/LRU policies) ------------------------

    def insertion_order(self) -> List[DataItem]:
        """Items oldest-inserted first (FIFO eviction order)."""
        return sorted(self._items.values(), key=lambda d: self._inserted_at[d.data_id])

    def access_order(self) -> List[DataItem]:
        """Items least-recently-accessed first (LRU eviction order)."""
        return sorted(self._items.values(), key=lambda d: self._accessed_at[d.data_id])

    # --- memory accounting -------------------------------------------------

    def nbytes(self) -> int:
        """Deep heap footprint of the buffer in bytes (bookkeeping dicts,
        the expiry cache, and the cached :class:`DataItem` objects).

        Attribution is by holder: an item cached on two nodes counts on
        both, which is the documented overcount tolerance of
        :func:`repro.obs.memory.check_memory_consistency`.
        """
        from repro.obs.memory import deep_sizeof

        return deep_sizeof(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CacheBuffer(capacity={self._capacity}, used={self._used}, "
            f"items={len(self._items)})"
        )
