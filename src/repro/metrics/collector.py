"""Per-run metric collection.

The paper's metrics (Sec. VI):

* **Successful ratio** — fraction of issued queries satisfied with the
  requested data before their time constraint expires.
* **Data access delay** — mean delay of *satisfied* queries (delay of a
  query is the time from issue to first data copy received).
* **Caching overhead** — "the average number of data copies being cached
  in the network": sampled periodically as cached copies per live data
  item and averaged over samples.
* **Replacement overhead** (Fig. 12c) — "the average number for data
  items to be replaced before expiration": items that changed holder
  during pairwise exchanges, normalised by data items generated.

Two storage modes share one event API:

* **exact** (default) — the historical path: every query and its
  satisfaction time are retained, and :meth:`MetricsCollector.finalize`
  recomputes the delays from the full record.  Per-query state is
  O(queries issued).
* **streaming** (``streaming=True``) — the heavy-traffic path: delays
  fold into running sums (same addition order as the exact path, so
  shared metrics agree bit for bit), a fixed-capacity reservoir keeps a
  uniform delay sample, and per-query state is bounded: open queries
  retire at expiry and satisfied ids are forgotten once no delivery can
  still reference them.  A 10⁶-query run holds O(open + reservoir)
  state instead of O(10⁶).

Delivery classification (shared by both modes, in this order):
``duplicate`` (query already satisfied) → ``late`` (past the
constraint) → ``unknown`` (never issued) → ``first``.  The streaming
mode's only documented divergence: once a satisfied id is forgotten
(possible only *after* the query expired), a further delivery counts as
``late`` rather than ``duplicate`` — the sum of the two counters always
matches the exact path, and the individual counters match whenever
response copies never outlive their query (which
:func:`repro.sim.invariants.check_node` enforces in simulation runs).

In both modes the former full-scan :meth:`pending_queries` is replaced
by a compact open-query set retired through an expiry min-heap, so
periodic time-series sampling is O(expired this period) instead of
O(queries ever issued).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.core.data import DataItem, Query
from repro.metrics.results import SimulationResult
from repro.metrics.streaming import P2Quantile, ReservoirSampler

__all__ = ["CollectorTotals", "MetricsCollector"]


class CollectorTotals(NamedTuple):
    """Cheap immutable view of the collector's cumulative counters.

    Every field is a plain integer read, so capturing one view per
    health window costs a tuple allocation — the delta between two
    views is exactly the activity of the window between them (the
    foundation of :class:`repro.obs.health.HealthMonitor`'s
    snapshot-sum == collector-total contract).
    """

    queries_issued: int
    queries_satisfied: int
    duplicate_deliveries: int
    late_deliveries: int
    cache_lookups: int
    cache_hits: int
    data_generated: int
    responses_delivered: int

    def delta(self, earlier: "CollectorTotals") -> "CollectorTotals":
        """Field-wise difference ``self - earlier`` (window activity)."""
        return CollectorTotals(*(a - b for a, b in zip(self, earlier)))


class MetricsCollector:
    """Accumulates events during one simulation run."""

    def __init__(
        self,
        streaming: bool = False,
        reservoir_size: int = 256,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._streaming = bool(streaming)
        # Exact-mode full records (None in streaming mode — their absence
        # is the bounded-memory guarantee).
        self._queries: Optional[Dict[int, Query]] = None if streaming else {}
        self._satisfied_at: Optional[Dict[int, float]] = None if streaming else {}
        # Streaming-mode satisfied-id set, pruned once past expiry.
        self._satisfied: Optional[Dict[int, float]] = {} if streaming else None
        self._satisfied_heap: List[Tuple[float, int]] = []
        self._reservoir: Optional[ReservoirSampler] = (
            ReservoirSampler(reservoir_size, rng or np.random.default_rng(0))
            if streaming
            else None
        )
        # Compact open-query set (both modes): qid → expires_at plus an
        # expiry min-heap for O(log n) retirement.
        self._open: Dict[int, float] = {}
        self._open_heap: List[Tuple[float, int]] = []
        self._retire_floor = float("-inf")
        # Running aggregates shared by both modes.  The sums accumulate
        # in event order — the same order the exact path's
        # ``sum(list)`` adds in — so both modes produce bitwise equal
        # means.
        self._issued = 0
        self._satisfied_count = 0
        self._delay_sum = 0.0
        self._copy_sum = 0.0
        self._copy_count = 0
        self._delay_p50 = P2Quantile(0.5)
        self._delay_p95 = P2Quantile(0.95)
        self._delay_p99 = P2Quantile(0.99)
        self._data_generated = 0
        self._copy_samples: Optional[List[float]] = None if streaming else []
        self._replaced_items = 0
        self._exchanges = 0
        self._responses_emitted = 0
        self._responses_delivered = 0
        self._duplicate_deliveries = 0
        self._late_deliveries = 0
        self._bits_transferred = 0
        self._pushes_completed = 0
        self._cache_lookups = 0
        self._cache_hits = 0

    @property
    def streaming(self) -> bool:
        """Whether this collector runs in bounded-memory mode."""
        return self._streaming

    # --- queries --------------------------------------------------------

    def on_query_created(self, query: Query) -> None:
        qid = query.query_id
        if self._streaming:
            assert self._satisfied is not None
            if qid in self._open or qid in self._satisfied:
                return
            self._issued += 1
        else:
            assert self._queries is not None
            if qid not in self._queries:
                self._issued += 1
            self._queries[qid] = query
        self._open[qid] = query.expires_at
        heapq.heappush(self._open_heap, (query.expires_at, qid))

    def record_delivery(self, query: Query, now: float) -> str:
        """Classify and record one delivery event.

        Returns ``"first"`` / ``"duplicate"`` / ``"late"`` /
        ``"unknown"`` (see the module docstring for the precedence).
        Only ``"first"`` affects the successful ratio; the others feed
        their dedicated counters so trace-derived accounting can audit
        redundant and late copies.
        """
        qid = query.query_id
        if self._streaming:
            self._retire_satisfied(now)
            satisfied = self._satisfied is not None and qid in self._satisfied
            known = qid in self._open
        else:
            assert self._satisfied_at is not None and self._queries is not None
            satisfied = qid in self._satisfied_at
            known = qid in self._queries
        if satisfied:
            self._duplicate_deliveries += 1
            return "duplicate"
        if now > query.expires_at:
            self._late_deliveries += 1
            return "late"
        if not known:
            # Defensive: deliveries for unknown queries indicate a scheme
            # bug; count nothing rather than corrupt ratios.
            return "unknown"
        if self._streaming:
            assert self._satisfied is not None
            self._satisfied[qid] = query.expires_at
            heapq.heappush(self._satisfied_heap, (query.expires_at, qid))
        else:
            assert self._satisfied_at is not None
            self._satisfied_at[qid] = now
        self._open.pop(qid, None)
        delay = now - query.created_at
        self._satisfied_count += 1
        self._delay_sum += delay
        self._delay_p50.observe(delay)
        self._delay_p95.observe(delay)
        self._delay_p99.observe(delay)
        if self._reservoir is not None:
            self._reservoir.observe(delay)
        return "first"

    def on_query_satisfied(self, query: Query, now: float) -> bool:
        """Record a delivery; returns True iff this is the first (useful)
        copy and it arrived within the constraint.

        Satisfaction is keyed on **distinct query ids**, never on
        delivery events: when several NCLs respond and more than one copy
        reaches the requester (the paper's overhead scenario, Sec. V-C),
        the extra copies are tallied as :attr:`duplicate_deliveries` —
        and copies arriving past the constraint as
        :attr:`late_deliveries` — leaving the successful ratio untouched.
        """
        return self.record_delivery(query, now) == "first"

    def _retire_satisfied(self, now: float) -> None:
        """Forget satisfied ids whose query has expired (streaming only).

        A delivery at ``now == expires_at`` is still in-constraint, so
        ids retire strictly *after* expiry — a boundary duplicate
        classifies identically in both modes.
        """
        assert self._satisfied is not None
        heap = self._satisfied_heap
        while heap and heap[0][0] < now:
            _, qid = heapq.heappop(heap)
            self._satisfied.pop(qid, None)

    def is_satisfied(self, query_id: int) -> bool:
        if self._streaming:
            assert self._satisfied is not None
            return query_id in self._satisfied
        assert self._satisfied_at is not None
        return query_id in self._satisfied_at

    def pending_queries(self, now: float) -> int:
        """Issued queries still unsatisfied and unexpired at *now*.

        Amortised O(retired this call): satisfied queries left the open
        set at delivery, and expired ones retire here through the expiry
        heap.  Calls must be monotone in *now* (the simulator samples in
        event order); the exact mode answers an out-of-order call with
        the historical full scan instead.
        """
        if now < self._retire_floor:
            if self._streaming:
                raise ValueError(
                    "streaming pending_queries requires non-decreasing times"
                )
            assert self._queries is not None and self._satisfied_at is not None
            return sum(
                1
                for qid, query in self._queries.items()
                if qid not in self._satisfied_at and now <= query.expires_at
            )
        self._retire_floor = now
        heap = self._open_heap
        while heap and heap[0][0] < now:
            _, qid = heapq.heappop(heap)
            expires_at = self._open.get(qid)
            if expires_at is not None and expires_at < now:
                del self._open[qid]
        return len(self._open)

    @property
    def open_queries(self) -> int:
        """Size of the compact open-query set (bounded-memory probe)."""
        return len(self._open)

    # --- data and caching ----------------------------------------------

    def on_data_generated(self, item: DataItem) -> None:
        self._data_generated += 1

    def on_push_completed(self) -> None:
        self._pushes_completed += 1

    def sample_copies_per_item(self, cached_copies: int, live_items: int) -> None:
        """One caching-overhead sample: copies currently cached network-wide
        divided by currently live data items."""
        if live_items > 0:
            sample = cached_copies / live_items
            self._copy_sum += sample
            self._copy_count += 1
            if self._copy_samples is not None:
                self._copy_samples.append(sample)

    def on_exchange(self, moved_items: int, bits: int) -> None:
        self._exchanges += 1
        self._replaced_items += moved_items
        self._bits_transferred += bits

    def on_response_emitted(self) -> None:
        self._responses_emitted += 1

    def on_response_delivered(self) -> None:
        self._responses_delivered += 1

    def on_transfer(self, bits: int) -> None:
        self._bits_transferred += bits

    def on_cache_lookup(self, hit: bool) -> None:
        """One attempt to serve a query locally; *hit* iff a cached
        (buffer) copy answered."""
        self._cache_lookups += 1
        if hit:
            self._cache_hits += 1

    # --- summary -----------------------------------------------------------

    @property
    def queries_issued(self) -> int:
        if self._streaming:
            return self._issued
        assert self._queries is not None
        return len(self._queries)

    @property
    def queries_satisfied(self) -> int:
        """Distinct queries satisfied in time (never delivery events)."""
        if self._streaming:
            return self._satisfied_count
        assert self._satisfied_at is not None
        return len(self._satisfied_at)

    @property
    def duplicate_deliveries(self) -> int:
        """Deliveries for already-satisfied queries (redundant copies)."""
        return self._duplicate_deliveries

    @property
    def late_deliveries(self) -> int:
        """Deliveries arriving after the query's time constraint."""
        return self._late_deliveries

    @property
    def responses_delivered(self) -> int:
        return self._responses_delivered

    @property
    def cache_lookups(self) -> int:
        return self._cache_lookups

    @property
    def cache_hits(self) -> int:
        return self._cache_hits

    @property
    def delay_p50(self) -> float:
        """Running P² estimate of the median access delay (NaN early)."""
        return self._delay_p50.value

    @property
    def delay_p95(self) -> float:
        """Running P² estimate of the 95th-percentile delay (NaN early)."""
        return self._delay_p95.value

    @property
    def delay_p99(self) -> float:
        """Running P² estimate of the 99th-percentile delay (NaN early)."""
        return self._delay_p99.value

    def totals(self) -> CollectorTotals:
        """Snapshot the cumulative counters as a :class:`CollectorTotals`.

        O(1) attribute reads in both storage modes — the per-window
        delta view used by the live health monitor.
        """
        return CollectorTotals(
            queries_issued=self.queries_issued,
            queries_satisfied=self.queries_satisfied,
            duplicate_deliveries=self._duplicate_deliveries,
            late_deliveries=self._late_deliveries,
            cache_lookups=self._cache_lookups,
            cache_hits=self._cache_hits,
            data_generated=self._data_generated,
            responses_delivered=self._responses_delivered,
        )

    @property
    def delay_reservoir(self) -> Tuple[float, ...]:
        """Uniform delay sample (streaming mode; empty otherwise)."""
        if self._reservoir is None:
            return ()
        return self._reservoir.samples

    def nbytes(self) -> int:
        """Deep heap footprint of the collector's per-query state in
        bytes.

        In exact mode this is dominated by the full query/satisfaction
        records (O(queries issued)); in streaming mode by the bounded
        open/satisfied sets, their retirement heaps and the reservoir —
        making the two modes' footprint difference directly visible in
        the memory breakdown.
        """
        from repro.obs.memory import deep_sizeof

        return deep_sizeof(self)

    def finalize(self, name: str, seed: int) -> SimulationResult:
        """Freeze the run into a :class:`SimulationResult`."""
        if self._streaming:
            issued = self._issued
            satisfied = self._satisfied_count
            mean_delay = (
                self._delay_sum / satisfied if satisfied else float("nan")
            )
            caching_overhead = (
                self._copy_sum / self._copy_count if self._copy_count else 0.0
            )
        else:
            assert (
                self._queries is not None
                and self._satisfied_at is not None
                and self._copy_samples is not None
            )
            delays = [
                self._satisfied_at[qid] - self._queries[qid].created_at
                for qid in self._satisfied_at
            ]
            issued = len(self._queries)
            satisfied = len(self._satisfied_at)
            mean_delay = (sum(delays) / len(delays)) if delays else float("nan")
            caching_overhead = (
                sum(self._copy_samples) / len(self._copy_samples)
                if self._copy_samples
                else 0.0
            )
        return SimulationResult(
            name=name,
            seed=seed,
            queries_issued=issued,
            queries_satisfied=satisfied,
            successful_ratio=(satisfied / issued) if issued else 0.0,
            mean_access_delay=mean_delay,
            caching_overhead=caching_overhead,
            data_generated=self._data_generated,
            replaced_items=self._replaced_items,
            replacement_overhead=(
                self._replaced_items / self._data_generated
                if self._data_generated
                else 0.0
            ),
            exchanges=self._exchanges,
            responses_emitted=self._responses_emitted,
            responses_delivered=self._responses_delivered,
            bits_transferred=self._bits_transferred,
            duplicate_deliveries=self._duplicate_deliveries,
            late_deliveries=self._late_deliveries,
        )
